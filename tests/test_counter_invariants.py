"""Invariant tests for the incrementally maintained aggregate counters.

The hot-path rework made ``num_edges()`` / ``num_active_vertices()`` O(1)
reads of counters that every mutation updates incrementally (scatter-adds
over the batch, never a capacity-sized scan).  These tests hammer the
mutation API with randomized workloads and verify the incremental
aggregates always equal the ground-truth full-array sums.
"""

import numpy as np
import pytest

from repro import DynamicGraph
from repro.core.vertex_dict import VertexDictionary
from repro.gpusim.wcws import delete_vertices_reference, insert_edges_reference


def assert_aggregates_exact(g: DynamicGraph):
    """The incremental counters must equal the full-array ground truth."""
    vd = g._dict
    assert g.num_edges() == int(vd.edge_count.sum())
    assert g.num_active_vertices() == int(np.count_nonzero(vd.active))
    vd.check_invariants()  # the library's own debug check agrees


@pytest.mark.parametrize("directed", [True, False])
def test_randomized_workload_keeps_aggregates_exact(rng, directed):
    n = 120
    g = DynamicGraph(num_vertices=n, weighted=False, directed=directed)
    g._dict.debug_invariants = True  # re-verify after every mutation
    for step in range(12):
        src = rng.integers(0, n, 90)
        dst = rng.integers(0, n, 90)
        g.insert_edges(src, dst)
        assert_aggregates_exact(g)
        g.delete_edges(rng.integers(0, n, 40), rng.integers(0, n, 40))
        assert_aggregates_exact(g)
        if step % 3 == 0:
            g.delete_vertices(rng.choice(n, size=5, replace=False))
            assert_aggregates_exact(g)


def test_aggregates_survive_capacity_growth(rng):
    g = DynamicGraph(num_vertices=8, weighted=False)
    g.insert_edges([0, 1, 2], [1, 2, 3])
    before_edges, before_active = g.num_edges(), g.num_active_vertices()
    g.insert_vertices([500])  # forces dictionary doubling
    assert g.vertex_capacity >= 501
    assert g.num_edges() == before_edges
    assert g.num_active_vertices() == before_active + 1
    assert_aggregates_exact(g)


def test_aggregates_exact_under_wcws_reference_engine(rng):
    """The scalar Algorithm 1/2 reference path maintains the same counters."""
    n = 48
    g = DynamicGraph(num_vertices=n, weighted=True, directed=False)
    g._dict.debug_invariants = True
    src = rng.integers(0, n, 64)
    dst = rng.integers(0, n, 64)
    w = rng.integers(0, 100, 64)
    both_s = np.concatenate([src, dst])
    both_d = np.concatenate([dst, src])
    insert_edges_reference(g, both_s, both_d, np.concatenate([w, w]))
    assert_aggregates_exact(g)
    delete_vertices_reference(g, np.array([3, 9, 11]))
    assert_aggregates_exact(g)


def test_duplicate_heavy_batches(rng):
    """Duplicates within a batch must not double-credit any counter."""
    g = DynamicGraph(num_vertices=16, weighted=True)
    g._dict.debug_invariants = True
    src = np.array([1, 1, 1, 2, 2, 1])
    dst = np.array([2, 2, 2, 3, 3, 2])
    added = g.insert_edges(src, dst, weights=[1, 2, 3, 4, 5, 6])
    assert added == 2  # (1,2) once, (2,3) once
    assert g.num_edges() == 2
    removed = g.delete_edges([1, 1, 2], [2, 2, 3])
    assert removed == 2  # only one delete of a pair succeeds
    assert g.num_edges() == 0
    assert_aggregates_exact(g)


def test_zero_edge_counts_collapses_duplicates():
    vd = VertexDictionary(8, weighted=False)
    vd.add_edge_counts(np.array([3, 3, 5]))
    dropped = vd.zero_edge_counts(np.array([3, 3, 5, 5]))
    assert dropped == 3
    assert vd.total_edges() == 0
    vd.check_invariants()


def test_activate_deactivate_count_unique_flips():
    vd = VertexDictionary(8, weighted=False)
    vd.activate(np.array([1, 1, 2, 2, 3]))
    assert vd.num_active() == 3
    vd.activate(np.array([2, 3]))  # already active: no change
    assert vd.num_active() == 3
    flipped = vd.deactivate(np.array([2, 2, 7]))
    assert flipped.tolist() == [2]  # 7 was never active
    assert vd.num_active() == 2
    vd.check_invariants()


def test_debug_mode_catches_desync():
    """The debug invariant actually fires when counters are corrupted."""
    vd = VertexDictionary(8, weighted=False)
    vd.debug_invariants = True
    vd.edge_count[0] = 5  # illegal direct write desyncs the aggregate
    with pytest.raises(AssertionError):
        vd.add_edge_counts(np.array([1]))
