"""Tests for the bench harness, workloads, and (smoke) table/figure engines."""

import numpy as np
import pytest

from repro.bench.figures import figure2_sweep, figure3_sweep
from repro.bench.harness import BenchRecord, format_table, mean, time_call
from repro.bench.workloads import (
    STRUCTURES,
    bulk_built_structure,
    make_structure,
    random_edge_batch,
    random_vertex_batch,
)
from repro.coo import COO
from repro.util.errors import ValidationError


class TestWorkloads:
    def test_random_edge_batch(self):
        src, dst, w = random_edge_batch(100, 50, seed=1)
        assert src.shape == dst.shape == (50,)
        assert w is None
        assert src.max() < 100

    def test_random_edge_batch_weighted(self):
        _, _, w = random_edge_batch(100, 50, seed=1, weighted=True)
        assert w is not None and w.shape == (50,)

    def test_batch_deterministic(self):
        a = random_edge_batch(100, 50, seed=9)
        b = random_edge_batch(100, 50, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_vertex_batch_distinct(self):
        vids = random_vertex_batch(100, 64, seed=2)
        assert np.unique(vids).size == vids.size

    def test_vertex_batch_capped(self):
        assert random_vertex_batch(10, 100, seed=0).size == 10

    def test_make_structure_all(self):
        for name in STRUCTURES:
            g = make_structure(name, 16)
            assert g.num_edges() == 0 if callable(getattr(g, "num_edges", None)) else True

    def test_make_structure_unknown(self):
        with pytest.raises(ValidationError):
            make_structure("no-such-backend", 16)

    def test_make_structure_btree_registered(self):
        # The registry opened the factory to every backend, btree included.
        g = make_structure("btree", 16)
        assert g.num_edges() == 0

    def test_bulk_built_structure(self, rng):
        coo = COO(rng.integers(0, 30, 100), rng.integers(0, 30, 100), 30)
        for name in STRUCTURES:
            g = bulk_built_structure(name, coo)
            assert g.num_edges() > 0


class TestHarness:
    def test_time_call_returns_result(self):
        rec, out = time_call("lbl", lambda a, b: a + b, 2, 3, items=10)
        assert out == 5
        assert rec.label == "lbl" and rec.items == 10
        assert rec.seconds >= 0

    def test_counters_captured(self):
        g = make_structure("ours", 16, weighted=False)
        rec, _ = time_call("ins", g.insert_edges, [0, 1], [1, 2], items=2)
        assert rec.counters.get("slab_writes", 0) > 0
        assert rec.model_seconds > 0
        assert rec.throughput_m > 0

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_format_table(self):
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "T" in text and "2.50" in text and "—" in text

    def test_record_millis(self):
        rec = BenchRecord("x", seconds=0.5, items=1_000_000)
        assert rec.millis == 500.0
        assert rec.wall_throughput_m == pytest.approx(2.0)


class TestFigureSweeps:
    @pytest.fixture(scope="class")
    def fig2_points(self):
        import repro.bench.figures as F

        # Tiny smoke sweep: one edge factor, three load factors.
        old_ef, old_lf = F.EDGE_FACTORS, F.LOAD_FACTORS
        F.EDGE_FACTORS, F.LOAD_FACTORS = [16], [0.3, 1.0, 5.0]
        try:
            yield figure2_sweep(scale=8, seed=0)
        finally:
            F.EDGE_FACTORS, F.LOAD_FACTORS = old_ef, old_lf

    def test_fig2_utilization_rises_with_load(self, fig2_points):
        utils = [p.memory_utilization for p in fig2_points]
        assert utils == sorted(utils)

    def test_fig2_memory_falls_with_load(self, fig2_points):
        mems = [p.memory_mb for p in fig2_points]
        assert mems == sorted(mems, reverse=True)

    def test_fig2_chain_length_tracks_load_factor(self, fig2_points):
        chains = [p.mean_chain_length for p in fig2_points]
        assert chains == sorted(chains)

    def test_fig3_tc_time_rises_at_high_load(self):
        import repro.bench.figures as F

        old_ef, old_lf = F.TC_EDGE_FACTORS, F.LOAD_FACTORS
        F.TC_EDGE_FACTORS, F.LOAD_FACTORS = [16], [0.7, 5.0]
        try:
            pts = figure3_sweep(scale=8, seed=0)
        finally:
            F.TC_EDGE_FACTORS, F.LOAD_FACTORS = old_ef, old_lf
        assert pts[1].tc_seconds > pts[0].tc_seconds
