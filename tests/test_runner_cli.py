"""CLI behavior of ``python -m repro.bench.runner``.

Heavy artifacts are replaced with a stub registered under a test-only id,
so these tests exercise the runner's argument validation, JSON emission,
baseline comparison exit codes, and baseline refresh without paying for a
real sweep.  One test drives a real (tiny) artifact end to end.
"""

import json

import pytest

import repro.bench.runner as runner
from repro.bench.results import ArtifactBuilder, SuiteResult, validate_suite


def stub_artifact(scale=1.0):
    """A fake table whose metric values scale with ``scale``."""

    def build(seed=0, quick=False):
        b = ArtifactBuilder("tstub", "Stub table", ["Dataset", "Ours"])
        b.add_row(["demo", 10.0 * scale])
        b.metric(10.0 * scale, "ms", "demo", "ours", dataset="demo", backend="ours")
        b.metric(5.0 / scale, "MEdge/s", "demo", "rate", dataset="demo", backend="ours")
        return b.build()

    return build


@pytest.fixture
def stub(monkeypatch):
    monkeypatch.setitem(runner._ARTIFACTS, "tstub", stub_artifact())


class TestArgumentValidation:
    def test_unknown_id_rejected_up_front(self, capsys):
        # The valid id comes first: nothing may run before validation.
        assert runner.main(["t8", "t99"]) == 2
        captured = capsys.readouterr()
        assert "t99" in captured.err
        assert "valid:" in captured.err
        assert captured.out == ""  # t8 never started

    def test_all_unknown_ids_listed(self, capsys):
        assert runner.main(["t99", "f9"]) == 2
        err = capsys.readouterr().err
        assert "'t99'" in err and "'f9'" in err

    def test_known_ids_accepted(self, stub, capsys):
        assert runner.main(["tstub"]) == 0
        assert "Stub table" in capsys.readouterr().out


class TestJsonEmission:
    def test_json_output_is_schema_valid(self, stub, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert runner.main(["tstub", "--quick", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_suite(doc)
        assert [a["artifact"] for a in doc["artifacts"]] == ["tstub"]
        assert doc["environment"]["quick"] is True
        assert "wrote 2 metrics" in capsys.readouterr().out

    def test_update_baselines_writes_mode_path(self, stub, tmp_path, monkeypatch):
        monkeypatch.setattr(runner, "BASELINE_DIR", tmp_path)
        monkeypatch.setattr(runner, "DEFAULT_ARTIFACTS", ("tstub",))
        assert runner.main(["tstub", "--quick", "--update-baselines"]) == 0
        assert runner.main(["tstub", "--update-baselines"]) == 0
        assert (tmp_path / "BENCH_baseline_quick.json").exists()
        assert (tmp_path / "BENCH_baseline_full.json").exists()

    def test_update_baselines_refuses_partial_run(self, stub, tmp_path, monkeypatch, capsys):
        # A subset run must not truncate the committed baseline (that would
        # silently turn off CI gating for every metric it drops).
        monkeypatch.setattr(runner, "BASELINE_DIR", tmp_path)
        assert runner.main(["t8", "--quick", "--update-baselines"]) == 2
        captured = capsys.readouterr()
        assert "refusing --update-baselines" in captured.err
        assert captured.out == ""  # refused before any bench work
        assert not (tmp_path / "BENCH_baseline_quick.json").exists()


class TestCompareExitCodes:
    def write_baseline(self, tmp_path, scale):
        suite = runner.run_suite(["tstub"], quick=True, echo=lambda *_: None)
        path = tmp_path / "baseline.json"
        suite.save(path)
        return path

    def test_compare_passes_against_identical_baseline(self, stub, tmp_path, capsys):
        path = self.write_baseline(tmp_path, 1.0)
        assert runner.main(["tstub", "--quick", "--compare", str(path)]) == 0
        assert "baseline comparison: OK" in capsys.readouterr().out

    def test_compare_fails_on_2x_slowdown(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(runner._ARTIFACTS, "tstub", stub_artifact())
        path = self.write_baseline(tmp_path, 1.0)
        # Injected slowdown: times double, throughput halves.
        monkeypatch.setitem(runner._ARTIFACTS, "tstub", stub_artifact(scale=2.0))
        assert runner.main(["tstub", "--quick", "--compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "tstub/demo/ours" in out

    def test_compare_missing_baseline_is_usage_error(self, stub, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert runner.main(["tstub", "--compare", str(missing)]) == 2
        captured = capsys.readouterr()
        assert "cannot load baseline" in captured.err
        assert captured.out == ""  # rejected before the suite ran

    def test_compare_corrupt_baseline_is_usage_error(self, stub, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "other"}')
        assert runner.main(["tstub", "--compare", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "cannot load baseline" in captured.err
        assert captured.out == ""

    def test_mode_mismatch_warns(self, stub, tmp_path, capsys):
        path = self.write_baseline(tmp_path, 1.0)  # quick baseline
        assert runner.main(["tstub", "--compare", str(path)]) == 0  # full run
        assert "differ in --quick mode" in capsys.readouterr().err


class TestRealArtifact:
    def test_quick_t8_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "t8.json"
        assert runner.main(["t8", "--quick", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_suite(doc)
        suite = SuiteResult.from_dict(doc)
        metrics = suite.metrics()
        # Quick panel: 4 datasets x 2 structures.
        assert len(metrics) == 8
        assert all(m.unit == "ms" for m in metrics.values())
        assert all(m.model_seconds > 0 for m in metrics.values())

    def test_committed_quick_baseline_is_loadable(self):
        path = runner.baseline_path(quick=True)
        assert path.exists(), "committed quick baseline missing"
        suite = SuiteResult.load(path)
        expected = set(runner.DEFAULT_ARTIFACTS)
        assert {a.artifact for a in suite.artifacts} == expected
        assert suite.environment["quick"] is True
