"""Tolerance-band logic tests for repro.bench.compare."""

import pytest

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    MetricComparison,
    Tolerance,
    compare_suites,
)
from repro.bench.results import ArtifactBuilder, SuiteResult


def suite(metrics: dict) -> SuiteResult:
    """Build a suite from {tail key: (value, unit)} under artifact 'tX'."""
    b = ArtifactBuilder("tX", "demo", ["k", "v"])
    for tail, (value, unit) in metrics.items():
        b.add_row([tail, value])
        b.metric(value, unit, tail)
    return SuiteResult(environment={"seed": 0, "quick": True}, artifacts=[b.build()])


def one(report, key="tX/m"):
    matches = [c for c in report.comparisons if c.metric == key]
    assert len(matches) == 1
    return matches[0]


class TestBands:
    def test_within_warn_band_passes(self):
        r = compare_suites(suite({"m": (100.0, "MEdge/s")}), suite({"m": (95.0, "MEdge/s")}))
        assert one(r).status == "pass" and r.ok

    def test_throughput_drop_past_warn_warns(self):
        r = compare_suites(suite({"m": (100.0, "MEdge/s")}), suite({"m": (85.0, "MEdge/s")}))
        assert one(r).status == "warn"
        assert r.ok  # warns do not gate

    def test_throughput_drop_past_fail_fails(self):
        r = compare_suites(suite({"m": (100.0, "MEdge/s")}), suite({"m": (70.0, "MEdge/s")}))
        assert one(r).status == "fail" and not r.ok

    def test_throughput_improvement_passes(self):
        r = compare_suites(suite({"m": (100.0, "MEdge/s")}), suite({"m": (400.0, "MEdge/s")}))
        assert one(r).status == "pass"

    def test_time_increase_fails(self):
        r = compare_suites(suite({"m": (10.0, "ms")}), suite({"m": (20.0, "ms")}))
        assert one(r).status == "fail"
        assert one(r).change == pytest.approx(1.0)

    def test_time_decrease_passes(self):
        r = compare_suites(suite({"m": (10.0, "ms")}), suite({"m": (1.0, "ms")}))
        assert one(r).status == "pass"

    def test_directionless_unit_fails_both_ways(self):
        up = compare_suites(suite({"m": (1.0, "util")}), suite({"m": (2.0, "util")}))
        down = compare_suites(suite({"m": (1.0, "util")}), suite({"m": (0.5, "util")}))
        assert one(up).status == "fail"
        assert one(down).status == "fail"

    def test_zero_baseline_zero_current_passes(self):
        r = compare_suites(suite({"m": (0.0, "ms")}), suite({"m": (0.0, "ms")}))
        assert one(r).status == "pass"

    def test_zero_baseline_nonzero_current_fails(self):
        r = compare_suites(suite({"m": (0.0, "ms")}), suite({"m": (0.1, "ms")}))
        assert one(r).status == "fail"


class TestMissingAndNew:
    def test_missing_metric_fails_by_default(self):
        r = compare_suites(suite({"m": (1.0, "ms"), "n": (1.0, "ms")}), suite({"m": (1.0, "ms")}))
        assert one(r, "tX/n").status == "missing"
        assert not r.ok

    def test_missing_metric_tolerated_when_disabled(self):
        r = compare_suites(
            suite({"m": (1.0, "ms"), "n": (1.0, "ms")}),
            suite({"m": (1.0, "ms")}),
            missing_fails=False,
        )
        assert one(r, "tX/n").status == "missing"
        assert r.ok

    def test_new_metric_is_informational(self):
        r = compare_suites(suite({"m": (1.0, "ms")}), suite({"m": (1.0, "ms"), "n": (9.0, "ms")}))
        assert one(r, "tX/n").status == "new"
        assert r.ok


class TestOverrides:
    def test_per_metric_override_applies(self):
        # Default fail band is 25%; a tight override catches a 6% slip.
        r = compare_suites(
            suite({"m": (100.0, "ms")}),
            suite({"m": (106.0, "ms")}),
            tolerances={"tX/*": Tolerance(warn=0.01, fail=0.05)},
        )
        assert one(r).status == "fail"

    def test_longest_pattern_wins(self):
        r = compare_suites(
            suite({"m": (100.0, "ms")}),
            suite({"m": (140.0, "ms")}),
            tolerances={"tX/*": Tolerance(0.01, 0.05), "tX/m*": Tolerance(1.0, 2.0)},
        )
        assert one(r).status == "pass"

    def test_triangle_counts_must_match_exactly(self):
        # The shipped override pins */triangles to zero drift.
        r = compare_suites(
            suite({"d/triangles": (100.0, "count")}),
            suite({"d/triangles": (101.0, "count")}),
        )
        assert one(r, "tX/d/triangles").status == "fail"

    def test_tolerance_validates_ordering(self):
        with pytest.raises(ValueError, match="exceed"):
            Tolerance(warn=0.5, fail=0.1)
        with pytest.raises(ValueError, match="non-negative"):
            Tolerance(warn=-0.1, fail=0.1)

    def test_default_tolerance_sane(self):
        assert 0 < DEFAULT_TOLERANCE.warn < DEFAULT_TOLERANCE.fail < 1


class TestReport:
    def test_summary_counts(self):
        r = compare_suites(
            suite({"a": (100.0, "ms"), "b": (10.0, "ms")}),
            suite({"a": (200.0, "ms"), "b": (10.0, "ms")}),
        )
        assert "REGRESSION" in r.summary()
        assert "1 pass" in r.summary() and "1 fail" in r.summary()

    def test_format_lists_offenders_worst_first(self):
        r = compare_suites(
            suite({"a": (100.0, "ms"), "b": (10.0, "ms")}),
            suite({"a": (200.0, "ms"), "b": (11.2, "ms")}),
        )
        text = r.format()
        assert text.index("FAIL") < text.index("WARN")
        assert "tX/a" in text and "+100.0%" in text

    def test_format_verbose_includes_passes(self):
        r = compare_suites(suite({"a": (1.0, "ms")}), suite({"a": (1.0, "ms")}))
        assert "tX/a" not in r.format()
        assert "tX/a" in r.format(verbose=True)

    def test_change_pct_rendering(self):
        assert MetricComparison("m", "missing").change_pct == "—"
        assert MetricComparison("m", "warn", change=-0.125).change_pct == "-12.5%"
