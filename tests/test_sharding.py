"""Tests for the sharded multi-graph service (Partitioner + ShardedGraph).

The load-bearing contract: the same workload applied to a ShardedGraph
and to a single Graph must produce **bit-identical** global snapshots —
and therefore identical pagerank / connected-components / triangle-count
results — across every registered backend.
"""

import numpy as np
import pytest

from repro.analytics import connected_components, pagerank
from repro.analytics.triangle_count import triangle_count_csr
from repro.api import Graph, Partitioner, ShardedGraph, backend_names, capabilities
from repro.stream.incremental import IncrementalConnectedComponents, IncrementalPageRank
from repro.util.errors import ValidationError

ALL_BACKENDS = tuple(backend_names())


def workload(rng, n, e):
    return (
        rng.integers(0, n, e, dtype=np.int64),
        rng.integers(0, n, e, dtype=np.int64),
        rng.integers(1, 50, e, dtype=np.int64),
    )


def apply_mixed(g, src, dst, w=None):
    """A mixed stream: staged inserts, then a delete slice, then more."""
    third = len(src) // 3
    g.insert_edges(src[:third], dst[:third], None if w is None else w[:third])
    mid = slice(third, 2 * third)
    g.insert_edges(src[mid], dst[mid], None if w is None else w[mid])
    g.delete_edges(src[: third // 2], dst[: third // 2])
    g.insert_edges(src[2 * third :], dst[2 * third :], None if w is None else w[2 * third :])


def assert_snapshots_identical(a, b):
    assert np.array_equal(a.row_ptr, b.row_ptr)
    assert np.array_equal(a.col_idx, b.col_idx)
    if a.weights is None:
        assert b.weights is None
    else:
        assert np.array_equal(a.weights, b.weights)


class TestPartitioner:
    def test_covers_all_shards_roughly_evenly(self):
        p = Partitioner(4)
        owners = p.shard_of(np.arange(100_000))
        counts = np.bincount(owners, minlength=4)
        assert counts.min() > 0.8 * counts.max()  # balanced on contiguous ids

    def test_deterministic_and_in_range(self):
        p = Partitioner(3)
        ids = np.array([0, 1, 17, 2**31], dtype=np.int64)
        a, b = p.shard_of(ids), p.shard_of(ids)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 3

    def test_cut_mask(self):
        p = Partitioner(2)
        src = np.arange(1000)
        dst = src.copy()
        assert not p.cut_mask(src, dst).any()  # self-pairs are never cut

    def test_rejects_zero_shards(self):
        with pytest.raises(ValidationError):
            Partitioner(0)


class TestShardedExactness:
    """ShardedGraph == single Graph, bit for bit, on every backend."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_snapshot_and_analytics_match_single_graph(self, name, rng):
        n, e = 200, 1200
        weighted = capabilities(name).weighted
        src, dst, w = workload(rng, n, e)
        w = w if weighted else None
        single = Graph.create(name, num_vertices=n, weighted=weighted)
        sharded = ShardedGraph.create(name, n, num_shards=3, weighted=weighted)
        apply_mixed(single, src, dst, w)
        apply_mixed(sharded, src, dst, w)
        assert sharded.num_edges() == single.num_edges()
        s1, s2 = single.snapshot(), sharded.snapshot()
        assert_snapshots_identical(s1, s2)
        assert np.array_equal(connected_components(s1), connected_components(s2))
        assert np.allclose(pagerank(single), pagerank(sharded))
        assert triangle_count_csr(s1) == triangle_count_csr(s2)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_point_queries_match_single_graph(self, name, rng):
        n, e = 150, 900
        src, dst, _ = workload(rng, n, e)
        single = Graph.create(name, num_vertices=n)
        sharded = ShardedGraph.create(name, n, num_shards=4)
        single.insert_edges(src, dst)
        sharded.insert_edges(src, dst)
        q_src, q_dst, _ = workload(rng, n, 300)
        assert np.array_equal(
            single.edge_exists(q_src, q_dst), sharded.edge_exists(q_src, q_dst)
        )
        assert np.array_equal(single.degree(q_src), sharded.degree(q_src))
        p1, d1, _ = single.adjacencies(q_src[:20])
        p2, d2, _ = sharded.adjacencies(q_src[:20])
        assert np.array_equal(p1, p2)
        # neighbor order within a vertex is backend-native on both sides
        for v in np.unique(q_src[:20]):
            assert np.array_equal(
                np.sort(single.neighbors(int(v))[0]),
                np.sort(sharded.neighbors(int(v))[0]),
            )

    def test_edge_weights_match(self, rng):
        n = 100
        src, dst, w = workload(rng, n, 500)
        single = Graph.create("slabhash", num_vertices=n, weighted=True)
        sharded = ShardedGraph.create("slabhash", n, num_shards=3, weighted=True)
        single.insert_edges(src, dst, w)
        sharded.insert_edges(src, dst, w)
        q_src, q_dst, _ = workload(rng, n, 200)
        e1, w1 = single.edge_weights(q_src, q_dst)
        e2, w2 = sharded.edge_weights(q_src, q_dst)
        assert np.array_equal(e1, e2)
        assert np.array_equal(w1[e1], w2[e2])

    def test_bulk_build_splits_by_owner(self, rng):
        from repro.coo import COO

        n = 120
        src, dst, w = workload(rng, n, 800)
        coo = COO(src, dst, n, weights=w)
        single = Graph.create("hornet", num_vertices=n, weighted=True)
        sharded = ShardedGraph.create("hornet", n, num_shards=4, weighted=True)
        single.bulk_build(coo)
        sharded.bulk_build(coo)
        assert_snapshots_identical(single.snapshot(), sharded.snapshot())

    def test_delete_vertices_fans_out_to_all_shards(self, rng):
        n = 80
        src, dst, _ = workload(rng, n, 600)
        single = Graph.create("slabhash", num_vertices=n)
        sharded = ShardedGraph.create("slabhash", n, num_shards=3)
        single.insert_edges(src, dst)
        sharded.insert_edges(src, dst)
        victims = [3, 17, 42]
        single.delete_vertices(victims)
        sharded.delete_vertices(victims)
        # post-state is the contract (return counts differ: a vertex can
        # deactivate once per shard)
        assert_snapshots_identical(single.snapshot(), sharded.snapshot())
        assert sharded.degree(victims).tolist() == [0, 0, 0]

    def test_export_coo_matches(self, rng):
        n = 90
        src, dst, _ = workload(rng, n, 400)
        single = Graph.create("slabhash", num_vertices=n)
        sharded = ShardedGraph.create("slabhash", n, num_shards=2)
        single.insert_edges(src, dst)
        sharded.insert_edges(src, dst)
        a, b = single.export_coo(), sharded.export_coo()
        assert sorted(zip(a.src.tolist(), a.dst.tolist())) == sorted(
            zip(b.src.tolist(), b.dst.tolist())
        )


class TestShardedService:
    def test_snapshot_cache_serves_identity_when_unchanged(self):
        sg = ShardedGraph.create("slabhash", 64, num_shards=2)
        sg.insert_edges([0, 1], [1, 2])
        assert sg.snapshot() is sg.snapshot()
        sg.insert_edges([2], [3])
        assert sg.snapshot().num_edges == 3

    def test_mutation_version_is_monotone_aggregate(self):
        sg = ShardedGraph.create("slabhash", 64, num_shards=3)
        v0 = sg.mutation_version
        sg.insert_edges([0, 1, 2], [1, 2, 3])
        v1 = sg.mutation_version
        assert v1 > v0
        sg.delete_edges([0], [1])
        assert sg.mutation_version > v1

    def test_events_published_with_aggregate_versions(self):
        sg = ShardedGraph.create("slabhash", 64, num_shards=2)
        cur = sg.events.cursor()
        sg.insert_edges([0, 1, 5], [1, 2, 6])
        sg.delete_vertices([5])
        events, gapped = cur.poll()
        assert not gapped and len(events) == 2
        assert events[0].rows == 3
        assert events[0].after_version == events[1].before_version
        assert events[1].after_version == sg.mutation_version

    def test_incremental_analytics_attach_to_sharded_service(self, rng):
        n = 100
        sg = ShardedGraph.create("slabhash", n, num_shards=3)
        ref = Graph.create("slabhash", num_vertices=n)
        cc = IncrementalConnectedComponents(sg)
        pr = IncrementalPageRank(sg, tol=1e-8)
        for _ in range(4):
            src, dst, _ = workload(rng, n, 50)
            sg.insert_edges(src, dst)
            ref.insert_edges(src, dst)
            assert np.array_equal(cc.labels(), connected_components(ref.snapshot()))
            assert np.allclose(pr.compute(), pagerank(ref), atol=1e-6)
        assert cc.last_mode == "incremental"
        assert pr.last_mode in ("warm", "cached")

    def test_update_costs_model_parallel_speedup(self, rng):
        """The modeled parallel time of a balanced batch beats the serial
        aggregate — the scaling story t12 prices."""
        sg = ShardedGraph.create("slabhash", 1 << 12, num_shards=4)
        src, dst, _ = workload(rng, 1 << 12, 1 << 13)
        sg.insert_edges(src, dst)
        assert sg.update_costs.calls == 1
        assert sg.update_costs.parallel_seconds < 0.5 * sg.update_costs.serial_seconds
        assert len([s for s in sg.update_costs.per_shard_seconds if s > 0]) == 4

    def test_normalization_happens_once_globally(self):
        """Router-level dedup dedups across shard boundaries."""
        sg = ShardedGraph.create("slabhash", 64, num_shards=4, dedup_batches=True)
        added = sg.insert_edges([1, 1, 2, 2], [2, 2, 3, 3])
        assert added == 2
        assert sg.num_edges() == 2

    def test_self_loop_policy_enforced_at_router(self):
        sg = ShardedGraph.create("slabhash", 16, num_shards=2, self_loops="error")
        with pytest.raises(ValidationError):
            sg.insert_edges([3], [3])


class TestShardedValidation:
    def test_rejects_undirected_shards(self):
        g = Graph.create("slabhash", num_vertices=8, directed=False)
        with pytest.raises(ValidationError, match="directed"):
            ShardedGraph([g])

    def test_rejects_populated_shards(self):
        g = Graph.create("slabhash", num_vertices=8)
        g.insert_edges([0], [1])
        with pytest.raises(ValidationError, match="empty"):
            ShardedGraph([g])

    def test_rejects_mismatched_vertex_spaces(self):
        a = Graph.create("slabhash", num_vertices=8)
        b = Graph.create("slabhash", num_vertices=16)
        with pytest.raises(ValidationError, match="vertex-id space"):
            ShardedGraph([a, b])

    def test_rejects_partitioner_shard_count_mismatch(self):
        shards = [Graph.create("slabhash", num_vertices=8) for _ in range(2)]
        with pytest.raises(ValidationError, match="partitioner"):
            ShardedGraph(shards, Partitioner(3))

    def test_rejects_raw_backends_and_empty_lists(self):
        from repro.api import create

        with pytest.raises(ValidationError):
            ShardedGraph([create("slabhash", num_vertices=8)])
        with pytest.raises(ValidationError):
            ShardedGraph([])

    def test_out_of_range_queries_rejected(self):
        sg = ShardedGraph.create("slabhash", 16, num_shards=2)
        with pytest.raises(ValidationError):
            sg.degree([99])
        with pytest.raises(ValidationError):
            sg.edge_exists([0], [99])


class TestScatterGatherShardErrors:
    """Regression: a raw exception inside one shard's scatter-gather leg
    surfaces as a typed ShardError naming the shard and the operation —
    never as the shard's bare RuntimeError/KeyError/etc."""

    def _broken_service(self, op):
        from repro.api import ShardError  # noqa: F401 - re-exported surface

        sg = ShardedGraph.create("slabhash", 32, num_shards=2)
        rng = np.random.default_rng(9)
        sg.insert_edges(
            rng.integers(0, 32, 40, dtype=np.int64), rng.integers(0, 32, 40, dtype=np.int64)
        )

        def boom(*args, **kwargs):
            raise RuntimeError("shard-internal explosion")

        setattr(sg.shards[1].backend, op, boom)
        return sg

    @pytest.mark.parametrize(
        "op, call",
        [
            ("degree", lambda sg: sg.degree(np.arange(32, dtype=np.int64))),
            ("edge_exists", lambda sg: sg.edge_exists([0, 1, 2, 3], [1, 2, 3, 4])),
            ("adjacencies", lambda sg: sg.adjacencies(np.arange(32, dtype=np.int64))),
        ],
    )
    def test_query_wraps_raw_shard_exception(self, op, call):
        from repro.api import ShardError

        sg = self._broken_service(op)
        with pytest.raises(ShardError) as exc:
            call(sg)
        assert exc.value.shard == 1
        assert exc.value.op == op
        assert isinstance(exc.value.__cause__, RuntimeError)
        # The raw error degraded (not killed) the shard; the others serve.
        assert sg.shard_health(1) == "degraded"
        assert sg.shard_health(0) == "healthy"

    def test_edge_weights_wraps_raw_shard_exception(self):
        from repro.api import ShardError

        sg = ShardedGraph.create("slabhash", 32, num_shards=2, weighted=True)
        sg.insert_edges([1, 2, 3], [2, 3, 4], [7, 8, 9])

        def boom(*args, **kwargs):
            raise KeyError("lost bucket")

        sg.shards[0].backend.edge_weights = boom
        with pytest.raises(ShardError) as exc:
            sg.edge_weights(np.arange(32, dtype=np.int64), (np.arange(32, dtype=np.int64) + 1) % 32)
        assert exc.value.op == "edge_weights"
        assert exc.value.shard == 0

    def test_neighbors_wraps_raw_shard_exception(self):
        from repro.api import ShardError

        sg = self._broken_service("neighbors")
        victim = int(np.flatnonzero(sg.partitioner.shard_of(np.arange(32)) == 1)[0])
        with pytest.raises(ShardError) as exc:
            sg.neighbors(victim)
        assert exc.value.shard == 1 and exc.value.op == "neighbors"

    def test_shard_error_is_catchable_as_repro_error(self):
        from repro.api import ShardError
        from repro.util.errors import ReproError

        err = ShardError("boom", shard=3, op="degree")
        assert isinstance(err, ReproError) and isinstance(err, RuntimeError)
        assert err.shard == 3 and err.op == "degree"


def test_committed_quick_baseline_gates_shard_speedup():
    """The t12 quick gate: ≥ 2x modeled insert throughput at 4 shards."""
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "benchmarks/baselines/BENCH_baseline_quick.json"
    doc = json.loads(path.read_text())
    metrics = {r["metric"]: r["value"] for a in doc["artifacts"] for r in a.get("results", [])}
    gate = [
        k
        for k in metrics
        if k.startswith("t12/") and "/shards=4/" in k and k.endswith("/insert_speedup")
    ]
    assert gate, "t12 4-shard insert_speedup metrics missing from the quick baseline"
    for key in gate:
        assert metrics[key] >= 2.0, (key, metrics[key])


def test_shard_artifact_quick_structure():
    from repro.bench.shard_bench import shard_artifact

    art = shard_artifact(seed=0, quick=True)
    keys = {r.metric for r in art.results}
    assert "t12/slabhash/shards=1/insert" in keys
    assert "t12/slabhash/shards=4/insert_speedup" in keys
    assert "t12/slabhash/shards=4/query_tax" in keys
    assert "t12/slabhash/shards=4/snapshot_assembly" in keys
    by_key = {r.metric: r.value for r in art.results}
    assert by_key["t12/slabhash/shards=1/insert_speedup"] == 1.0
    assert by_key["t12/slabhash/shards=4/insert_speedup"] >= 2.0
