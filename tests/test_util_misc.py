"""Tests for hashing, validation, and RNG plumbing."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.hashing import PRIME, UniversalHashFamily, mix32
from repro.util.rng import spawn_seeds, substream
from repro.util.validation import (
    as_float_array,
    as_int_array,
    check_equal_length,
    check_in_range,
)


class TestUniversalHashFamily:
    def test_deterministic(self):
        a = UniversalHashFamily(10, seed=42)
        b = UniversalHashFamily(10, seed=42)
        t = np.arange(10)
        k = np.arange(10) * 7
        nb = np.full(10, 8)
        assert np.array_equal(a.bucket(t, k, nb), b.bucket(t, k, nb))

    def test_different_seeds_differ(self):
        a = UniversalHashFamily(64, seed=1)
        b = UniversalHashFamily(64, seed=2)
        t = np.arange(64)
        k = np.arange(64)
        nb = np.full(64, 1024)
        assert not np.array_equal(a.bucket(t, k, nb), b.bucket(t, k, nb))

    def test_range(self):
        fam = UniversalHashFamily(5)
        t = np.zeros(1000, dtype=np.int64)
        k = np.arange(1000)
        nb = np.full(5, 7)
        buckets = fam.bucket(t, k, nb)
        assert buckets.min() >= 0 and buckets.max() < 7

    def test_scalar_matches_vector(self):
        fam = UniversalHashFamily(3)
        nb = np.array([4, 9, 16])
        for table in range(3):
            for key in [0, 1, 99, 12345]:
                vec = fam.bucket(np.array([table]), np.array([key]), nb)[0]
                assert fam.bucket_single(table, key, int(nb[table])) == vec

    def test_grow_preserves_existing(self):
        fam = UniversalHashFamily(4, seed=7)
        before = fam.bucket(np.arange(4), np.arange(4) * 3, np.full(4, 11)).copy()
        fam.grow(16)
        after = fam.bucket(np.arange(4), np.arange(4) * 3, np.full(16, 11)[:16])
        assert np.array_equal(before, after)
        assert fam.num_tables == 16

    def test_spread(self):
        """Keys hashing into one table should spread across buckets."""
        fam = UniversalHashFamily(1)
        nb = np.array([64])
        buckets = fam.bucket(np.zeros(6400, np.int64), np.arange(6400), nb)
        counts = np.bincount(buckets, minlength=64)
        assert counts.max() < 6400 * 0.10  # far from degenerate


class TestMix32:
    def test_scalar_and_vector_agree(self):
        xs = np.array([0, 1, 2, 0xFFFF, 123456], dtype=np.uint64)
        vec = mix32(xs)
        for i, x in enumerate(xs.tolist()):
            assert int(mix32(int(x))) == int(vec[i])

    def test_prime_is_mersenne(self):
        assert PRIME == (1 << 31) - 1


class TestValidation:
    def test_as_int_array_from_list(self):
        out = as_int_array([1, 2, 3])
        assert out.dtype == np.int64 and out.tolist() == [1, 2, 3]

    def test_as_int_array_scalar(self):
        assert as_int_array(5).tolist() == [5]

    def test_as_int_array_integral_floats_ok(self):
        assert as_int_array(np.array([1.0, 2.0])).tolist() == [1, 2]

    def test_as_int_array_fractional_rejected(self):
        with pytest.raises(ValidationError):
            as_int_array(np.array([1.5]))

    def test_as_int_array_2d_rejected(self):
        with pytest.raises(ValidationError):
            as_int_array(np.zeros((2, 2)))

    def test_as_float_array(self):
        assert as_float_array([1, 2]).dtype == np.float64

    def test_check_equal_length(self):
        assert check_equal_length(("a", np.arange(3)), ("b", np.arange(3))) == 3
        with pytest.raises(ValidationError):
            check_equal_length(("a", np.arange(3)), ("b", np.arange(4)))

    def test_check_in_range(self):
        check_in_range(np.array([0, 4]), 0, 5)
        with pytest.raises(ValidationError):
            check_in_range(np.array([5]), 0, 5)
        with pytest.raises(ValidationError):
            check_in_range(np.array([-1]), 0, 5)
        check_in_range(np.array([], dtype=np.int64), 0, 5)  # empty ok


class TestRng:
    def test_substream_deterministic(self):
        a = substream(1, "edges", 3).integers(0, 100, 10)
        b = substream(1, "edges", 3).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_substream_tags_independent(self):
        a = substream(1, "edges").integers(0, 1000, 20)
        b = substream(1, "verts").integers(0, 1000, 20)
        assert not np.array_equal(a, b)

    def test_spawn_seeds(self):
        seeds = spawn_seeds(9, 5)
        assert len(seeds) == 5 and len(set(seeds)) == 5
        assert spawn_seeds(9, 5) == seeds
