"""The docs tree's intra-repo markdown links must resolve.

Runs the stdlib link checker (``tools/check_markdown_links.py``) over
README/CHANGES/ROADMAP and ``docs/`` as part of tier-1, so a renamed
file or a typoed relative path fails CI instead of shipping a dead link.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "check_markdown_links.py"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_markdown_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_markdown_links_resolve():
    mod = _load_checker()
    problems = mod.broken_links(ROOT)
    assert problems == [], "broken markdown links:\n" + "\n".join(
        f"{md.relative_to(ROOT)}:{line}: {target}" for md, line, target in problems
    )


def test_docs_tree_is_covered():
    mod = _load_checker()
    covered = {p.relative_to(ROOT).as_posix() for p in mod.markdown_files(ROOT)}
    assert "README.md" in covered
    assert "docs/architecture.md" in covered
    assert "docs/analytics.md" in covered
    assert "docs/benchmarks.md" in covered


def test_checker_flags_broken_and_escaping_links(tmp_path):
    mod = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/a.md)\n"
        "[dead](docs/missing.md)\n"
        "[out](../outside.md)\n"
        "[web](https://example.com)\n"
        "[anchor](#section)\n"
        "```\n[fenced](docs/also-missing.md)\n```\n"
    )
    (docs / "a.md").write_text("[up](../README.md)\n[anchored](a.md#top)\n")
    problems = mod.broken_links(tmp_path)
    targets = sorted(t for _, _, t in problems)
    assert targets == ["../outside.md", "docs/missing.md"]


def test_cli_exit_codes(tmp_path):
    (tmp_path / "README.md").write_text("[dead](nope.md)\n")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(tmp_path)], capture_output=True, text=True
    )
    assert proc.returncode == 1
    assert "nope.md" in proc.stdout
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(ROOT)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout
