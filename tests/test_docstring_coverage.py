"""Docstring coverage of the public surface, enforced without ruff.

The CI lint job runs ruff's D1 (undocumented-public-*) rules scoped to
the public surface packages (see ``ruff.toml``); this test mirrors that
contract with a stdlib AST walk so plain ``pytest`` runs — and
environments without ruff — catch a missing docstring too.  Scope and
exemptions match the ruff config: every public module, class, function,
method, and property in ``repro.api``, ``repro.chaos``,
``repro.eventlog``, and ``repro.stream`` needs a docstring;
underscore-private names, magic methods (D105), and ``__init__``
(D107) are exempt.

``repro.kernels`` is covered too: the dispatch layer and both kernel
tiers are the documented seam other backends (and the jit CI leg) build
against.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The packages whose public surface carries the documentation contract
#: (kept in sync with the D1 scope in ``ruff.toml``).
COVERED_PACKAGES = ("api", "chaos", "eventlog", "kernels", "stream")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    gaps = []
    if not ast.get_docstring(tree):
        gaps.append((path, 1, "<module>"))

    def walk(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if not _is_public(child.name):
                continue
            if not ast.get_docstring(child):
                gaps.append((path, child.lineno, prefix + child.name))
            if isinstance(child, ast.ClassDef):
                walk(child, prefix=prefix + child.name + ".")

    walk(tree)
    return gaps


def test_public_surface_is_documented():
    gaps = []
    for pkg in COVERED_PACKAGES:
        for path in sorted((SRC / pkg).rglob("*.py")):
            gaps.extend(_missing_in(path))
    assert gaps == [], "undocumented public names:\n" + "\n".join(
        f"  {p.relative_to(SRC.parent.parent)}:{line}: {name}" for p, line, name in gaps
    )


def test_covered_packages_exist():
    for pkg in COVERED_PACKAGES:
        assert (SRC / pkg / "__init__.py").exists(), pkg
