"""Tests for the single-table SlabHashMap / SlabHashSet facades."""

import numpy as np

from repro.slabhash import SlabHashMap, SlabHashSet
from repro.slabhash.constants import SLAB_KEY_CAPACITY, SLAB_KV_CAPACITY


class TestSlabHashMap:
    def test_insert_and_get(self):
        m = SlabHashMap(expected_size=16)
        assert m.insert_batch([1, 2, 3], [10, 20, 30]) == 3
        assert m.get(2) == 20
        assert m.get(99) is None
        assert m.get(99, default=-1) == -1

    def test_replace_semantics(self):
        m = SlabHashMap(expected_size=16)
        assert m.insert_batch([1, 1], [10, 20]) == 1  # dup within batch
        assert m.get(1) == 20
        assert m.insert_batch([1], [30]) == 0  # dup across batches
        assert m.get(1) == 30
        assert len(m) == 1

    def test_delete(self):
        m = SlabHashMap(expected_size=16)
        m.insert_batch([1, 2], [10, 20])
        assert m.delete_batch([1, 5]) == 1
        assert m.get(1) is None
        assert m.get(2) == 20
        assert len(m) == 1

    def test_delete_then_reinsert(self):
        m = SlabHashMap(expected_size=16)
        m.insert_batch([7], [1])
        m.delete_batch([7])
        assert m.insert_batch([7], [2]) == 1
        assert m.get(7) == 2

    def test_contains(self):
        m = SlabHashMap(expected_size=4)
        m.insert_batch([42], [0])
        assert 42 in m and 43 not in m

    def test_items(self):
        m = SlabHashMap(expected_size=8)
        m.insert_batch([3, 1, 2], [30, 10, 20])
        ks, vs = m.items()
        assert dict(zip(ks.tolist(), vs.tolist())) == {1: 10, 2: 20, 3: 30}

    def test_chaining_with_single_bucket(self):
        """Forcing one bucket exercises multi-slab chains."""
        m = SlabHashMap(num_buckets=1)
        keys = np.arange(100)
        assert m.insert_batch(keys, keys * 2) == 100
        assert m.num_slabs > 1
        found, vals = m.get_batch(keys)
        assert found.all()
        assert np.array_equal(vals, keys * 2)

    def test_flush_compacts_tombstones(self):
        m = SlabHashMap(num_buckets=1)
        keys = np.arange(60)
        m.insert_batch(keys, keys)
        slabs_before = m.num_slabs
        m.delete_batch(np.arange(0, 60, 2))
        m.flush()
        assert m.num_slabs <= slabs_before
        ks, vs = m.items()
        assert sorted(ks.tolist()) == list(range(1, 60, 2))
        assert all(int(k) == int(v) for k, v in zip(ks, vs))

    def test_bucket_sizing_uses_load_factor(self):
        m = SlabHashMap(expected_size=150, load_factor=0.5)
        # ceil(150 / (0.5 * 15)) = 20 buckets
        assert m.num_buckets == 20


class TestSlabHashSet:
    def test_insert_and_contains(self):
        s = SlabHashSet(expected_size=8)
        assert s.insert_batch([5, 6, 5]) == 2
        assert 5 in s and 6 in s and 7 not in s
        assert len(s) == 2

    def test_items(self):
        s = SlabHashSet(expected_size=8)
        s.insert_batch([9, 3, 7])
        assert sorted(s.items().tolist()) == [3, 7, 9]

    def test_delete(self):
        s = SlabHashSet(expected_size=8)
        s.insert_batch([1, 2, 3])
        assert s.delete_batch([2, 9]) == 1
        assert sorted(s.items().tolist()) == [1, 3]

    def test_set_packs_more_keys_per_slab(self):
        assert SLAB_KEY_CAPACITY == 2 * SLAB_KV_CAPACITY
        s = SlabHashSet(num_buckets=1)
        s.insert_batch(np.arange(SLAB_KEY_CAPACITY))
        assert s.num_slabs == 1  # exactly one full slab
        s.insert_batch([SLAB_KEY_CAPACITY])
        assert s.num_slabs == 2

    def test_large_random_vs_python_set(self):
        rng = np.random.default_rng(5)
        s = SlabHashSet(expected_size=64)
        ref = set()
        for _ in range(6):
            keys = rng.integers(0, 3000, 2000)
            s.insert_batch(keys)
            ref |= set(keys.tolist())
            dels = rng.integers(0, 3000, 700)
            s.delete_batch(dels)
            ref -= set(dels.tolist())
        assert len(s) == len(ref)
        assert set(s.items().tolist()) == ref

    def test_contains_batch(self):
        s = SlabHashSet(expected_size=8)
        s.insert_batch([10, 20])
        got = s.contains_batch([10, 15, 20])
        assert got.tolist() == [True, False, True]
