"""Dataset generators: determinism, symmetry, and Table I degree shapes."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    delaunay_graph,
    load,
    mesh_like_graph,
    powerlaw_graph,
    rgg_graph,
    rmat_graph,
    road_graph,
)
from repro.datasets.registry import DATASET_ORDER
from repro.util.errors import ValidationError


def is_symmetric(coo):
    fwd = set(zip(coo.src.tolist(), coo.dst.tolist()))
    return all((d, s) in fwd for s, d in fwd)


def no_dups_no_loops(coo):
    pairs = list(zip(coo.src.tolist(), coo.dst.tolist()))
    return len(pairs) == len(set(pairs)) and all(s != d for s, d in pairs)


GENERATORS = {
    "road": lambda seed: road_graph(900, seed=seed),
    "delaunay": lambda seed: delaunay_graph(500, seed=seed),
    "rgg": lambda seed: rgg_graph(500, 10.0, seed=seed),
    "powerlaw": lambda seed: powerlaw_graph(500, 8.0, seed=seed),
    "mesh": lambda seed: mesh_like_graph(300, 20.0, seed=seed),
}


@pytest.mark.parametrize("family", sorted(GENERATORS))
class TestGeneratorContracts:
    def test_deterministic(self, family):
        a = GENERATORS[family](7)
        b = GENERATORS[family](7)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_seed_sensitivity(self, family):
        a = GENERATORS[family](1)
        b = GENERATORS[family](2)
        assert a.num_edges != b.num_edges or not np.array_equal(a.src, b.src)

    def test_symmetric_simple(self, family):
        coo = GENERATORS[family](3)
        assert is_symmetric(coo)
        assert no_dups_no_loops(coo)


class TestDegreeShapes:
    def test_road_low_degree(self):
        st = road_graph(2000, seed=0).degree_stats()
        assert 1.8 < st["mean"] < 2.8
        assert st["max"] <= 10

    def test_delaunay_mean_six(self):
        st = delaunay_graph(2000, seed=0).degree_stats()
        assert 5.5 < st["mean"] < 6.1
        assert st["min"] >= 3

    def test_rgg_target_mean(self):
        st = rgg_graph(3000, 13.0, seed=0).degree_stats()
        assert 10.0 < st["mean"] < 16.0

    def test_powerlaw_heavy_tail(self):
        st = powerlaw_graph(3000, 15.0, 2.1, seed=0).degree_stats()
        assert st["max"] > 8 * st["mean"]  # heavy tail
        assert st["std"] > st["mean"]

    def test_mesh_low_variance(self):
        st = mesh_like_graph(2000, 48.0, seed=0).degree_stats()
        assert 40 < st["mean"] < 56
        assert st["std"] < 0.35 * st["mean"]


class TestRmat:
    def test_size(self):
        coo = rmat_graph(8, 4.0, seed=1)
        assert coo.num_vertices == 256
        assert coo.num_edges == 1024

    def test_deterministic(self):
        a = rmat_graph(8, 4.0, seed=5)
        b = rmat_graph(8, 4.0, seed=5)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_skewed_degrees(self):
        st = rmat_graph(12, 8.0, seed=0).degree_stats()
        assert st["max"] > 10 * st["mean"]  # RMAT hubs

    def test_uniform_probabilities_flatten(self):
        """Equal quadrant probabilities give an Erdős–Rényi-like graph."""
        st = rmat_graph(12, 8.0, a=0.25, b=0.25, c=0.25, seed=0).degree_stats()
        assert st["max"] < 5 * st["mean"]

    def test_deduplicate_option(self):
        coo = rmat_graph(6, 32.0, seed=0, deduplicate=True)
        assert no_dups_no_loops(coo.without_self_loops()) or True
        pairs = set(zip(coo.src.tolist(), coo.dst.tolist()))
        assert len(pairs) == coo.num_edges

    def test_bad_scale(self):
        with pytest.raises(ValidationError):
            rmat_graph(0)

    def test_bad_probabilities(self):
        with pytest.raises(ValidationError):
            rmat_graph(4, a=0.8, b=0.3, c=0.3)


class TestRegistry:
    def test_all_twelve_present(self):
        assert len(DATASET_ORDER) == 12
        assert set(DATASET_ORDER) == set(DATASETS)

    def test_load_by_name(self):
        coo = load("luxembourg_osm")
        assert coo.num_edges > 0

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            load("not-a-dataset")

    def test_specs_have_paper_sizes(self):
        for spec in DATASETS.values():
            assert spec.paper_vertices > 0
            assert spec.paper_edges > spec.paper_vertices

    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_scaled_family_shapes(self, name):
        """Every scaled dataset keeps its family's degree signature."""
        coo = load(name)
        st = coo.degree_stats()
        spec = DATASETS[name]
        if spec.family == "road":
            assert st["mean"] < 3.5
        elif spec.family == "delaunay":
            assert 5 < st["mean"] < 7
        elif spec.family == "rgg":
            assert 10 < st["mean"] < 20
        elif spec.family == "mesh":
            assert st["std"] < 0.3 * st["mean"]
        elif spec.family == "social":
            assert st["max"] > 5 * st["mean"]
        assert is_symmetric(coo)
