"""Tests for the faimGraph-like baseline (pages, compaction, reuse queues)."""

import numpy as np

from repro.baselines.faimgraph import FaimGraph
from repro.coo import COO
from repro.gpusim.counters import counting
from tests.conftest import structure_edges, structure_state


class TestDenseInvariant:
    def check_dense(self, g):
        """Every vertex's entries occupy positions 0..deg-1 of its chain."""
        for v in range(g.num_vertices):
            deg = int(g.degree[v])
            owner, dsts, pages, lanes = g._gather(np.array([v]))
            assert dsts.size == deg
            if deg:
                assert np.all(dsts >= 0)

    def test_after_mixed_ops(self, rng):
        n = 60
        g = FaimGraph(n)
        for _ in range(8):
            m = int(rng.integers(20, 300))
            g.insert_edges(rng.integers(0, n, m), rng.integers(0, n, m))
            k = int(rng.integers(10, 150))
            g.delete_edges(rng.integers(0, n, k), rng.integers(0, n, k))
            self.check_dense(g)


class TestUpdates:
    def test_insert_full_scan_dedup(self):
        g = FaimGraph(8)
        assert g.insert_edges([0, 0, 0], [1, 1, 2]) == 2
        with counting() as delta:
            assert g.insert_edges([0], [1]) == 0
        assert delta["scanned_elements"] >= 2  # scanned the whole list

    def test_weight_replace(self):
        g = FaimGraph(8, weighted=True)
        g.insert_edges([0], [1], weights=[5])
        g.insert_edges([0], [1], weights=[9])
        assert structure_state(g) == {(0, 1): 9}

    def test_page_chain_growth(self):
        g = FaimGraph(8)
        dsts = np.arange(1, 8).tolist() * 10  # duplicates collapse
        g.insert_edges([0] * 31, list(range(1, 8)) * 4 + [1, 2, 3])
        # Force >30 distinct neighbors for a multi-page chain.
        g2 = FaimGraph(100)
        g2.insert_edges(np.zeros(90, np.int64), np.arange(1, 91))
        assert g2.degree[0] == 90
        _, pages, _ = g2._collect_pages(np.array([0]))
        assert pages.size == 3  # ceil(90/30)

    def test_delete_compaction_frees_pages(self):
        g = FaimGraph(100)
        g.insert_edges(np.zeros(90, np.int64), np.arange(1, 91))
        with counting() as delta:
            g.delete_edges(np.zeros(70, np.int64), np.arange(1, 71))
        assert delta["slabs_freed"] >= 2  # 3 pages -> 1 page
        assert g.degree[0] == 20
        d, _ = g.neighbors(0)
        assert sorted(d.tolist()) == list(range(71, 91))

    def test_page_queue_recycles(self):
        g = FaimGraph(100)
        g.insert_edges(np.zeros(90, np.int64), np.arange(1, 91))
        g.delete_edges(np.zeros(90, np.int64), np.arange(1, 91))
        bump = g._bump
        g.insert_edges(np.ones(60, np.int64), np.arange(2, 62))
        assert g._bump == bump  # reused freed pages

    def test_randomized_vs_model(self, rng, dict_graph):
        n = 90
        g = FaimGraph(n, weighted=True)
        for _ in range(10):
            m = int(rng.integers(20, 400))
            src, dst = rng.integers(0, n, m), rng.integers(0, n, m)
            w = rng.integers(0, 50, m)
            assert g.insert_edges(src, dst, w) == dict_graph.insert(src, dst, w)
            k = int(rng.integers(10, 200))
            ds, dd = rng.integers(0, n, k), rng.integers(0, n, k)
            assert g.delete_edges(ds, dd) == dict_graph.delete(ds, dd)
        assert structure_state(g) == dict_graph.edges()

    def test_bulk_build(self, rng):
        coo = COO(rng.integers(0, 40, 500), rng.integers(0, 40, 500), 40)
        g = FaimGraph(40)
        g.bulk_build(coo)
        ref = {(int(s), int(d)) for s, d in zip(coo.src, coo.dst) if s != d}
        assert structure_edges(g) == ref


class TestVertexOps:
    def test_delete_vertices_and_id_reuse(self, rng):
        n = 50
        g = FaimGraph(n)
        src = rng.integers(0, n, 400)
        dst = rng.integers(0, n, 400)
        both_s = np.concatenate([src, dst])
        both_d = np.concatenate([dst, src])
        g.insert_edges(both_s, both_d)
        g.delete_vertices([4, 9])
        assert g.degree[4] == 0 and g.degree[9] == 0
        edges = structure_edges(g)
        assert not any(4 in e or 9 in e for e in edges)
        # The id-reuse queue vends the freed ids (the faimGraph feature the
        # paper notes its own structure lacks).
        reused = set(g.reusable_vertex_ids(5).tolist())
        assert reused == {4, 9}
        assert g.reusable_vertex_ids(1).size == 0

    def test_vertex_queue_atomics_charged(self, rng):
        g = FaimGraph(20)
        g.insert_edges([0, 1], [1, 0])
        with counting() as delta:
            g.delete_vertices([0])
        assert delta["atomics"] >= 1


class TestSortedAdjacency:
    def test_page_sort_produces_sorted_rows(self, rng):
        n = 40
        g = FaimGraph(n)
        g.insert_edges(rng.integers(0, n, 2000), rng.integers(0, n, 2000))
        row_ptr, col = g.sorted_adjacency()
        assert row_ptr[-1] == g.num_edges()
        for v in range(n):
            seg = col[row_ptr[v] : row_ptr[v + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_page_sort_cost_scales_with_chain(self, rng):
        """A high-degree vertex pays quadratically more sort passes —
        the Table VIII blow-up."""
        # Low: 10 vertices, one full page each (no padding distortion).
        low = FaimGraph(400)
        src = np.repeat(np.arange(10), 30)
        dst = (np.tile(np.arange(30), 10) + 10 + src * 7) % 400
        low.insert_edges(src, dst)
        low_edges = low.num_edges()
        with counting() as d_low:
            low.sorted_adjacency()
        # High: the same edge count concentrated in one 10-page chain.
        high = FaimGraph(400)
        high.insert_edges(np.zeros(399, np.int64), np.arange(1, 400))
        with counting() as d_high:
            high.sorted_adjacency()
        per_edge_low = d_low["faim_sort_elements"] / low_edges
        per_edge_high = d_high["faim_sort_elements"] / 399
        assert per_edge_high > 3 * per_edge_low
