"""Unit and property tests for the segmented/group-by primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.groupby import (
    first_occurrence_mask,
    group_starts,
    last_occurrence_mask,
    rank_within_group,
    segment_lengths_from_starts,
    segmented_sum,
    sorted_group_ids,
)

int_lists = st.lists(st.integers(min_value=-50, max_value=50), max_size=200)


class TestSortedGroupIds:
    def test_example(self):
        out = sorted_group_ids(np.array([3, 3, 5, 9, 9, 9]))
        assert out.tolist() == [0, 0, 1, 2, 2, 2]

    def test_empty(self):
        assert sorted_group_ids(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert sorted_group_ids(np.array([7])).tolist() == [0]

    @given(int_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_unique_inverse(self, values):
        arr = np.sort(np.array(values, dtype=np.int64))
        got = sorted_group_ids(arr)
        if arr.size:
            _, expected = np.unique(arr, return_inverse=True)
            assert np.array_equal(got, expected)


class TestGroupStarts:
    def test_example(self):
        assert group_starts(np.array([3, 3, 5, 9, 9, 9])).tolist() == [0, 2, 3]

    def test_all_distinct(self):
        assert group_starts(np.arange(5)).tolist() == [0, 1, 2, 3, 4]

    def test_all_equal(self):
        assert group_starts(np.zeros(5, dtype=np.int64)).tolist() == [0]

    def test_lengths_roundtrip(self):
        keys = np.array([1, 1, 2, 4, 4, 4, 9])
        starts = group_starts(keys)
        lens = segment_lengths_from_starts(starts, keys.size)
        assert lens.tolist() == [2, 1, 3, 1]
        assert int(lens.sum()) == keys.size


class TestRankWithinGroup:
    def test_example(self):
        got = rank_within_group(np.array([3, 3, 5, 9, 9, 9]))
        assert got.tolist() == [0, 1, 0, 0, 1, 2]

    def test_empty(self):
        assert rank_within_group(np.array([], dtype=np.int64)).size == 0

    @given(int_lists)
    @settings(max_examples=50, deadline=None)
    def test_rank_bounded_by_group_size(self, values):
        arr = np.sort(np.array(values, dtype=np.int64))
        rank = rank_within_group(arr)
        for key in np.unique(arr):
            grp = rank[arr == key]
            assert sorted(grp.tolist()) == list(range(grp.size))


class TestSegmentedSum:
    def test_basic(self):
        out = segmented_sum(np.array([1, 2, 3, 4]), np.array([0, 1, 0, 2]), 3)
        assert out.tolist() == [4, 2, 4]

    def test_bool_values(self):
        out = segmented_sum(np.array([True, False, True]), np.array([0, 0, 1]), 2)
        assert out.tolist() == [1, 1]

    def test_float_values(self):
        out = segmented_sum(np.array([0.5, 0.25]), np.array([1, 1]), 2)
        assert out[1] == pytest.approx(0.75)


class TestOccurrenceMasks:
    def test_last_example(self):
        keys = np.array([5, 3, 5, 7, 3])
        mask = last_occurrence_mask(keys)
        assert mask.tolist() == [False, False, True, True, True]

    def test_first_example(self):
        keys = np.array([5, 3, 5, 7, 3])
        mask = first_occurrence_mask(keys)
        assert mask.tolist() == [True, True, False, True, False]

    def test_empty(self):
        assert last_occurrence_mask(np.array([], dtype=np.int64)).size == 0
        assert first_occurrence_mask(np.array([], dtype=np.int64)).size == 0

    @given(int_lists)
    @settings(max_examples=50, deadline=None)
    def test_masks_partition_uniques(self, values):
        arr = np.array(values, dtype=np.int64)
        last = last_occurrence_mask(arr)
        first = first_occurrence_mask(arr)
        n_unique = np.unique(arr).size
        assert int(last.sum()) == n_unique
        assert int(first.sum()) == n_unique
        # The masked keys cover every distinct key exactly once.
        assert sorted(arr[last].tolist()) == np.unique(arr).tolist()
        assert sorted(arr[first].tolist()) == np.unique(arr).tolist()

    @given(int_lists)
    @settings(max_examples=50, deadline=None)
    def test_last_selects_highest_index(self, values):
        arr = np.array(values, dtype=np.int64)
        mask = last_occurrence_mask(arr)
        for idx in np.flatnonzero(mask):
            assert not np.any(arr[idx + 1 :] == arr[idx])
