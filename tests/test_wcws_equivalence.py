"""Cross-validation: vectorized kernels vs. the literal Algorithm 1/2
WCWS reference engine.

The reference engine executes the paper's pseudocode lane-by-lane (ballot /
ffs / shuffle / popc scheduling); the production path runs batched NumPy
kernels.  Final graph states and per-vertex edge counters must coincide on
every input — including batches with intra-warp duplicate edges, where both
realize "most recent wins".
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicGraph
from repro.gpusim.wcws import delete_edges_reference, insert_edges_reference
from tests.conftest import structure_state

N = 24

edge_batches = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1), st.integers(0, 50)),
    min_size=1,
    max_size=120,
)


def unpack(batch):
    src = np.array([e[0] for e in batch], dtype=np.int64)
    dst = np.array([e[1] for e in batch], dtype=np.int64)
    w = np.array([e[2] for e in batch], dtype=np.int64)
    return src, dst, w


@given(edge_batches)
@settings(max_examples=50, deadline=None)
def test_insert_equivalence(batch):
    src, dst, w = unpack(batch)

    fast = DynamicGraph(num_vertices=N, hash_seed=7)
    added_fast = fast.insert_edges(src, dst, w)

    ref = DynamicGraph(num_vertices=N, hash_seed=7)
    added_ref = insert_edges_reference(ref, src, dst, w)

    assert added_fast == added_ref
    assert structure_state(fast) == structure_state(ref)
    assert np.array_equal(fast._dict.edge_count, ref._dict.edge_count)


@given(edge_batches, edge_batches)
@settings(max_examples=50, deadline=None)
def test_insert_then_delete_equivalence(ins_batch, del_batch):
    s1, d1, w1 = unpack(ins_batch)
    s2, d2, _ = unpack(del_batch)

    fast = DynamicGraph(num_vertices=N, hash_seed=3)
    fast.insert_edges(s1, d1, w1)
    removed_fast = fast.delete_edges(s2, d2)

    ref = DynamicGraph(num_vertices=N, hash_seed=3)
    insert_edges_reference(ref, s1, d1, w1)
    removed_ref = delete_edges_reference(ref, s2, d2)

    # Duplicate (s, d) pairs inside a delete batch: the vectorized kernel
    # collapses them (one success), the lane-serial reference also deletes
    # once — totals agree.
    assert removed_fast == removed_ref
    assert structure_state(fast) == structure_state(ref)
    assert np.array_equal(fast._dict.edge_count, ref._dict.edge_count)


def test_insert_exact_warp_boundary():
    """Batches of exactly 32/64 lanes exercise full-warp scheduling."""
    for n in (32, 64):
        src = np.arange(n, dtype=np.int64) % N
        dst = (np.arange(n, dtype=np.int64) * 7 + 1) % N
        w = np.arange(n, dtype=np.int64)
        fast = DynamicGraph(num_vertices=N, hash_seed=1)
        ref = DynamicGraph(num_vertices=N, hash_seed=1)
        assert fast.insert_edges(src, dst, w) == insert_edges_reference(ref, src, dst, w)
        assert structure_state(fast) == structure_state(ref)


def test_same_source_warp_grouping():
    """A warp full of edges sharing one source is the WCWS coalescing case
    (Algorithm 1 lines 6-8): one grouped call, one popc-credited count."""
    src = np.zeros(32, dtype=np.int64)
    dst = np.arange(1, 33, dtype=np.int64) % N
    dst[dst == 0] = N - 1
    ref = DynamicGraph(num_vertices=N, hash_seed=5)
    added = insert_edges_reference(ref, src, dst, np.zeros(32, np.int64))
    assert added == np.unique(dst).size
    assert int(ref._dict.edge_count[0]) == added


@given(
    edge_batches,
    st.lists(st.integers(0, N - 1), min_size=1, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_vertex_deletion_equivalence(batch, doomed):
    """Algorithm 2 (literal warp engine) vs. the vectorized vertex-deletion
    kernel: identical final states, counts, and removal totals."""
    from repro.gpusim.wcws import delete_vertices_reference

    src, dst, _ = unpack(batch)

    fast = DynamicGraph(num_vertices=N, weighted=False, directed=False, hash_seed=9)
    fast.insert_edges(src, dst)
    removed_fast = fast.delete_vertices(doomed)

    ref = DynamicGraph(num_vertices=N, weighted=False, directed=False, hash_seed=9)
    ref.insert_edges(src, dst)
    removed_ref = delete_vertices_reference(ref, np.array(doomed))

    assert removed_fast == removed_ref
    assert structure_state(fast) == structure_state(ref)
    assert np.array_equal(fast._dict.edge_count, ref._dict.edge_count)
    assert np.array_equal(fast._dict.active, ref._dict.active)
