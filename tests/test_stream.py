"""Streaming scenario engine + delta-aware incremental analytics.

The exactness contract is the headline: after every phase of every quick
scenario, on every registered backend, `IncrementalConnectedComponents`
labels equal a cold `connected_components` on the live snapshot and
`IncrementalPageRank` matches a cold `pagerank` within tol (the
`validate=True` runner re-derives the cold references after each phase).
The rest pins the subscriber wiring (delete → cold re-label, structural →
stale, out-of-band mutation detection, unsubscribe) and the t11 gate.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro.api as api
from repro.analytics import connected_components, pagerank
from repro.api import Graph
from repro.stream import (
    IncrementalConnectedComponents,
    IncrementalPageRank,
    Phase,
    Scenario,
    build_dataset,
    quick_scenarios,
    run_scenario,
)
from repro.util.errors import ValidationError

ALL_BACKENDS = sorted(api.backend_names())


class TestSpecValidation:
    def test_bad_phase_kind(self):
        with pytest.raises(ValidationError):
            Phase("explode", size=4)

    def test_phase_needs_size(self):
        with pytest.raises(ValidationError):
            Phase("insert")
        Phase("compute")  # compute phases are size-free

    def test_bad_batches(self):
        with pytest.raises(ValidationError):
            Phase("insert", size=4, batches=0)

    def test_bad_family(self):
        with pytest.raises(ValidationError):
            Scenario("s", "social", 64, 4.0, (Phase("compute"),))

    def test_empty_phases(self):
        with pytest.raises(ValidationError):
            Scenario("s", "rmat", 64, 4.0, ())

    def test_bad_mode(self):
        scn = quick_scenarios()[0]
        with pytest.raises(ValidationError):
            run_scenario(scn, "slabhash", mode="sideways")

    def test_bad_damping_and_tol_rejected_in_both_modes(self):
        scn = quick_scenarios()[0]
        for mode in ("incremental", "full"):
            with pytest.raises(ValidationError):
                run_scenario(scn, "slabhash", mode=mode, damping=1.5)
            with pytest.raises(ValidationError):
                run_scenario(scn, "slabhash", mode=mode, tol=0.0)

    def test_build_dataset_families(self):
        for scn in quick_scenarios():
            coo = build_dataset(scn)
            assert coo.num_edges > 0

    def test_weighted_scenario_carries_weights(self):
        scn = Scenario(
            "w", "rgg", 128, 6.0, (Phase("insert", size=16), Phase("compute")), weighted=True
        )
        assert build_dataset(scn).weights is not None
        r = run_scenario(scn, "slabhash", mode="incremental", tol=1e-10, validate=True)
        assert r.phases[0].applied > 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_incremental_exact_after_every_phase_every_quick_scenario(name):
    """The acceptance bar: exactness after every phase, all backends."""
    for scn in quick_scenarios():
        result = run_scenario(
            scn, name, mode="incremental", tol=1e-10, max_iters=500, validate=True
        )
        assert len(result.phases) == len(scn.phases)
        assert all(p.model_seconds >= 0 for p in result.phases)


def test_scenario_is_deterministic_for_fixed_seed():
    scn = quick_scenarios()[0]
    a = run_scenario(scn, "slabhash", mode="incremental")
    b = run_scenario(scn, "slabhash", mode="incremental")
    assert [p.counters for p in a.phases] == [p.counters for p in b.phases]
    assert [p.applied for p in a.phases] == [p.applied for p in b.phases]


def test_vertex_churn_skipped_without_capability():
    scn = next(s for s in quick_scenarios() if any(p.kind == "vertex_churn" for p in s.phases))
    result = run_scenario(scn, "gpma", mode="incremental", tol=1e-10, max_iters=500, validate=True)
    churn = [p for p in result.phases if p.kind == "vertex_churn"]
    assert churn and all(p.skipped for p in churn)
    on_slab = run_scenario(
        scn, "slabhash", mode="incremental", tol=1e-10, max_iters=500, validate=True
    )
    assert not any(p.skipped for p in on_slab.phases if p.kind == "vertex_churn")


class TestIncrementalConnectedComponents:
    def make(self, n=64, seed=3):
        rng = np.random.default_rng(seed)
        g = Graph.create("slabhash", num_vertices=n)
        g.insert_edges(rng.integers(0, n, 150), rng.integers(0, n, 150))
        return g, rng

    def test_insert_only_stays_incremental_and_exact(self):
        g, rng = self.make()
        cc = IncrementalConnectedComponents(g)
        for _ in range(4):
            g.insert_edges(rng.integers(0, 64, 20), rng.integers(0, 64, 20))
            labels = cc.labels()
            assert cc.last_mode == "incremental"
            assert np.array_equal(labels, connected_components(g.backend.snapshot()))

    def test_delete_triggers_cold_relabel(self):
        g, _ = self.make()
        cc = IncrementalConnectedComponents(g)
        coo = g.export_coo()
        g.delete_edges(coo.src[:40], coo.dst[:40])
        labels = cc.labels()
        assert cc.last_mode == "cold"
        assert np.array_equal(labels, connected_components(g.backend.snapshot()))
        # The cold pass re-anchors: the next insert window is incremental.
        g.insert_edges([1, 2], [2, 3])
        cc.labels()
        assert cc.last_mode == "incremental"

    def test_vertex_deletion_triggers_cold_relabel(self):
        g, _ = self.make()
        cc = IncrementalConnectedComponents(g)
        g.delete_vertices([5, 6])
        assert np.array_equal(cc.labels(), connected_components(g.backend.snapshot()))
        assert cc.last_mode == "cold"

    def test_out_of_band_backend_mutation_detected(self):
        g, _ = self.make()
        cc = IncrementalConnectedComponents(g)
        g.backend.insert_edges(np.array([0]), np.array([63]))  # bypasses facade
        labels = cc.labels()
        assert cc.last_mode == "cold"
        assert np.array_equal(labels, connected_components(g.backend.snapshot()))

    def test_facade_batch_cannot_mask_out_of_band_mutation(self):
        """A facade insert after an unseen out-of-band mutation must not
        fast-forward the sync point past the missed change."""
        g = Graph.create("slabhash", num_vertices=8)
        g.insert_edges([0], [1])
        cc = IncrementalConnectedComponents(g)
        g.backend.insert_edges(np.array([2]), np.array([3]))  # unseen
        g.insert_edges([4], [5])  # seen — but must not hide the above
        labels = cc.labels()
        assert cc.last_mode == "cold"
        assert np.array_equal(labels, connected_components(g.backend.snapshot()))
        assert labels[3] == 2

    def test_unsubscribed_analytic_sees_nothing(self):
        g, _ = self.make()
        cc = IncrementalConnectedComponents(g)
        cc.close()
        coo = g.export_coo()
        g.delete_edges(coo.src[:40], coo.dst[:40])
        # Detached: no on_edge_batch fired, but the version check still
        # catches the divergence at query time.
        assert np.array_equal(cc.labels(), connected_components(g.backend.snapshot()))

    def test_isolated_vertices_label_themselves(self):
        g = Graph.create("slabhash", num_vertices=8)
        g.insert_edges([0, 1], [1, 2])
        cc = IncrementalConnectedComponents(g)
        assert cc.labels().tolist() == [0, 0, 0, 3, 4, 5, 6, 7]

    def test_requires_facade(self):
        with pytest.raises(ValidationError):
            IncrementalConnectedComponents(api.create("slabhash", num_vertices=8))


class TestIncrementalPageRank:
    def make(self, n=128, seed=9):
        rng = np.random.default_rng(seed)
        g = Graph.create("slabhash", num_vertices=n)
        s, d = rng.integers(0, n, 400), rng.integers(0, n, 400)
        g.insert_edges(np.concatenate([s, d]), np.concatenate([d, s]))
        return g, rng

    def test_matches_cold_within_tol(self):
        g, rng = self.make()
        pr = IncrementalPageRank(g, tol=1e-12, max_iters=1000)
        pr.compute()
        for _ in range(3):
            g.insert_edges(rng.integers(0, 128, 30), rng.integers(0, 128, 30))
            warm = pr.compute()
            cold = pagerank(g, tol=1e-12, max_iters=1000)
            assert pr.last_mode == "warm"
            assert np.allclose(warm, cold, atol=1e-10, rtol=0.0)

    def test_warm_start_needs_fewer_sweeps(self):
        g, rng = self.make(n=512, seed=4)
        pr = IncrementalPageRank(g, tol=1e-10, max_iters=1000)
        pr.compute()
        cold_sweeps = pr.last_sweeps
        assert pr.last_mode == "cold"
        g.insert_edges(rng.integers(0, 512, 16), rng.integers(0, 512, 16))
        pr.compute()
        assert pr.last_mode == "warm"
        assert 0 < pr.last_sweeps < cold_sweeps

    def test_unchanged_graph_served_from_cache(self):
        g, _ = self.make()
        pr = IncrementalPageRank(g)
        first = pr.compute()
        again = pr.compute()
        assert pr.last_mode == "cached"
        assert pr.last_sweeps == 0
        assert np.array_equal(first, again)

    def test_touched_count_tracks_delta_locality(self):
        g, _ = self.make()
        pr = IncrementalPageRank(g)
        pr.compute()
        assert pr.touched_count == 0
        g.insert_edges([3, 4], [5, 6])
        assert pr.touched_count == 4

    def test_structural_event_recomputes_but_stays_correct(self):
        g, _ = self.make()
        pr = IncrementalPageRank(g, tol=1e-12, max_iters=1000)
        pr.compute()
        g.delete_vertices([7])
        warm = pr.compute()
        assert np.allclose(warm, pagerank(g, tol=1e-12, max_iters=1000), atol=1e-10)

    def test_bulk_build_growth_does_not_crash_touched_mask(self):
        from repro.coo import COO

        g = Graph.create("slabhash", num_vertices=4)
        pr = IncrementalPageRank(g)
        pr.compute()  # allocates the touched mask at size 4
        g.bulk_build(COO([0, 1], [1, 2], 100))  # grows the vertex space
        g.insert_edges([50], [60])  # must not IndexError on the stale mask
        ranks = pr.compute()
        assert ranks.shape[0] == g.num_vertices

    def test_bad_damping(self):
        g, _ = self.make(n=8)
        with pytest.raises(ValidationError):
            IncrementalPageRank(g, damping=1.5)


class TestFacadeSubscriberHook:
    class Probe:
        def __init__(self):
            self.events = []

        def on_edge_batch(self, is_insert, src, dst, weights, before_version):
            self.events.append(("edges", bool(is_insert), src.copy(), dst.copy()))

        def on_structural(self, reason):
            self.events.append(("structural", reason))

    def test_edge_batches_and_structural_events_delivered(self):
        g = Graph.create("slabhash", num_vertices=16)
        probe = self.Probe()
        g.subscribe_deltas(probe)
        g.insert_edges([0, 1, 2], [1, 2, 2])  # self-loop (2,2) normalized away
        g.delete_edges([0], [1])
        g.delete_vertices([3])
        kinds = [e[0] for e in probe.events]
        assert kinds == ["edges", "edges", "structural"]
        assert probe.events[0][1] is True
        assert probe.events[0][2].tolist() == [0, 1]  # normalized batch
        assert probe.events[1][1] is False
        assert probe.events[2][1] == "delete_vertices"

    def test_empty_batches_not_delivered(self):
        g = Graph.create("slabhash", num_vertices=16)
        probe = self.Probe()
        g.subscribe_deltas(probe)
        g.insert_edges([], [])
        g.insert_edges([5], [5])  # pure self-loop batch drops to empty
        assert probe.events == []

    def test_unsubscribe(self):
        g = Graph.create("slabhash", num_vertices=16)
        probe = self.Probe()
        g.subscribe_deltas(probe)
        g.subscribe_deltas(probe)  # double-subscribe is idempotent
        g.unsubscribe_deltas(probe)
        g.insert_edges([0], [1])
        assert probe.events == []
        g.unsubscribe_deltas(probe)  # removing twice is a no-op


class TestCompositeKeyGuard:
    class HugeStub:
        """A backend stand-in too large for (src << 32) | dst packing."""

        def __init__(self, num_vertices):
            self.num_vertices = num_vertices
            self.mutation_version = 0

    def test_construction_rejects_unpackable_vertex_space(self):
        with pytest.raises(ValidationError, match="composite-key"):
            Graph(self.HugeStub((1 << 31) + 1))
        with pytest.raises(ValidationError, match="composite-key"):
            Graph(self.HugeStub(1 << 32))

    def test_boundary_accepted(self):
        Graph(self.HugeStub(1 << 31))  # ids fit in 31 bits: packable

    def test_bulk_build_growth_rechecks_guard(self):
        from repro.coo import COO

        g = Graph.create("slabhash", num_vertices=64)
        huge = COO(np.array([0]), np.array([1]), (1 << 31) + 10)
        with pytest.raises(ValidationError, match="composite-key"):
            g.bulk_build(huge)  # would grow the backend past the bound


def test_committed_quick_baseline_gates_insert_heavy_speedup():
    """The t11 quick gate: ≥ 3x incremental speedup at |E| = 2^18 — for
    the aggregate compute phase and for every family member's slice
    (tc/bfs/kcore on the unweighted scenario, sssp on the weighted one)."""
    from repro.bench.stream_bench import QUICK_STREAM_BACKENDS

    path = Path(__file__).resolve().parent.parent / "benchmarks/baselines/BENCH_baseline_quick.json"
    doc = json.loads(path.read_text())
    metrics = {r["metric"]: r["value"] for a in doc["artifacts"] for r in a.get("results", [])}
    gate = [
        k for k in metrics if k.startswith("t11/insert-heavy-2^18/") and k.endswith("/speedup")
    ]
    for name in QUICK_STREAM_BACKENDS:
        for analytic in ("tc", "bfs", "kcore"):
            gate.append(f"t11/insert-heavy-2^18/{name}/{analytic}_speedup")
        gate.append(f"t11/insert-heavy-w-2^18/{name}/sssp_speedup")
    assert gate, "t11 insert-heavy speedup metrics missing from the quick baseline"
    for key in gate:
        assert key in metrics, f"{key} missing from the quick baseline"
        assert metrics[key] >= 3.0, (key, metrics[key])


def test_stream_artifact_quick_structure():
    from repro.bench.stream_bench import stream_artifact
    import repro.bench.stream_bench as SB

    art = stream_artifact(seed=0, quick=True)
    keys = {r.metric for r in art.results}
    assert any(k.startswith("t11/insert-heavy-2^18/slabhash/") for k in keys)
    for name in SB.MIXED_BACKENDS:
        assert f"t11/mixed-2^9/{name}/speedup" in keys
    for name in SB.QUICK_STREAM_BACKENDS:
        for analytic in SB.FAMILY_ANALYTICS:
            assert f"t11/insert-heavy-2^18/{name}/{analytic}_speedup" in keys
        assert f"t11/insert-heavy-w-2^18/{name}/sssp_speedup" in keys
