"""Property-based tests: the slab arena against a dict reference model.

Hypothesis drives random operation sequences (insert / delete / search /
flush) against both the vectorized arena and a plain Python dict model; at
every step the live key/value sets, the success masks, and the structural
tail invariant must agree.  This is the broadest correctness net over the
paper's core data structure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slabhash.arena import SlabArena
from tests.test_slabhash_arena import check_tail_invariant

NUM_TABLES = 4
KEY_SPACE = 60  # small => heavy collisions and chains

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "search", "flush"]),
        st.lists(
            st.tuples(
                st.integers(0, NUM_TABLES - 1),
                st.integers(0, KEY_SPACE - 1),
                st.integers(0, 100),
            ),
            max_size=40,
        ),
    ),
    max_size=12,
)


def apply_reference(model, op, items):
    results = []
    if op == "insert":
        seen_last = {}
        for i, (t, k, v) in enumerate(items):
            seen_last[(t, k)] = i
        for i, (t, k, v) in enumerate(items):
            if seen_last[(t, k)] == i and (t, k) not in model:
                results.append(True)
            else:
                results.append(False)
            if seen_last[(t, k)] == i:
                model[(t, k)] = v
    elif op == "delete":
        for t, k, _ in items:
            results.append((t, k) in model)
            model.pop((t, k), None)
    elif op == "search":
        for t, k, _ in items:
            results.append((t, k) in model)
    return results


@given(ops)
@settings(max_examples=60, deadline=None)
def test_arena_matches_dict_model(op_list):
    arena = SlabArena(NUM_TABLES, weighted=True)
    arena.create_tables(np.arange(NUM_TABLES), np.ones(NUM_TABLES, dtype=np.int64))
    model: dict[tuple[int, int], int] = {}

    for op, items in op_list:
        if op == "flush":
            arena.flush_tombstones(np.arange(NUM_TABLES))
        elif items:
            t = np.array([i[0] for i in items])
            k = np.array([i[1] for i in items])
            v = np.array([i[2] for i in items])
            expected = apply_reference(model, op, items)
            if op == "insert":
                added = arena.insert(t, k, v)
                assert int(added.sum()) == sum(expected)
            elif op == "delete":
                removed = arena.delete(t, k)
                # Duplicate (t, k) within a delete batch: exactly one
                # occurrence succeeds; totals must match the model.
                assert int(removed.sum()) == len(
                    {(tt, kk) for (tt, kk, _), e in zip(items, expected) if e}
                )
            elif op == "search":
                found, vals = arena.search(t, k)
                assert found.tolist() == expected
                for f, (tt, kk, _), got in zip(found, items, vals.tolist()):
                    if f:
                        assert got == model[(tt, kk)]

        # Full-state comparison + structural invariant after every op.
        owners, keys, vals = arena.iterate(np.arange(NUM_TABLES))
        got = {
            (int(o), int(k2)): int(v2)
            for o, k2, v2 in zip(owners.tolist(), keys.tolist(), vals.tolist())
        }
        assert got == model
        check_tail_invariant(arena, np.arange(NUM_TABLES))


@given(
    st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=300),
    st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_set_arena_unique_and_complete(keys, buckets):
    """Any key multiset inserts to exactly its distinct set."""
    arena = SlabArena(1, weighted=False)
    arena.create_tables(np.array([0]), np.array([buckets]))
    arr = np.array(keys, dtype=np.int64)
    added = arena.insert(np.zeros(arr.size, np.int64), arr)
    assert int(added.sum()) == len(set(keys))
    _, got, _ = arena.iterate(np.array([0]))
    assert sorted(got.tolist()) == sorted(set(keys))
    found, _ = arena.search(np.zeros(arr.size, np.int64), arr)
    assert found.all()


@given(st.lists(st.integers(0, 40), min_size=1, max_size=120))
@settings(max_examples=40, deadline=None)
def test_reference_scalar_ops_agree_with_kernels(keys):
    """The scalar reference implementation (the executable spec) and the
    vectorized kernels produce identical tables."""
    arr = np.array(keys, dtype=np.int64)

    fast = SlabArena(1, weighted=True, hash_seed=99)
    fast.create_tables(np.array([0]), np.array([1]))
    fast.insert(np.zeros(arr.size, np.int64), arr, arr * 3)

    slow = SlabArena(1, weighted=True, hash_seed=99)
    slow.create_tables(np.array([0]), np.array([1]))
    for k in keys:
        slow.reference_insert_one(0, int(k), int(k) * 3)

    for arena in (fast, slow):
        check_tail_invariant(arena, np.array([0]))
    _, fk, fv = fast.iterate(np.array([0]))
    _, sk, sv = slow.iterate(np.array([0]))
    assert dict(zip(fk.tolist(), fv.tolist())) == dict(zip(sk.tolist(), sv.tolist()))
