"""Tests for the paper's future-work extensions: vertex-id recycling,
SSSP, and k-core."""

import networkx as nx
import numpy as np
import pytest

from repro import DynamicGraph
from repro.analytics import core_numbers, kcore, sssp
from repro.core.id_reuse import VertexIdRecycler
from repro.datasets import rgg_graph
from repro.util.errors import ValidationError


class TestVertexIdRecycling:
    def test_requires_opt_in(self):
        g = DynamicGraph(8, weighted=False)
        with pytest.raises(ValidationError):
            g.allocate_vertex_ids(1)

    def test_deleted_ids_recycled(self):
        g = DynamicGraph(32, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([1, 2, 3], [4, 5, 6])
        g.delete_vertices([2, 3])
        ids = g.allocate_vertex_ids(2)
        assert set(ids.tolist()) == {2, 3}

    def test_lifo_order(self):
        g = DynamicGraph(32, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([1, 2], [5, 6])
        g.delete_vertices([1])
        g.delete_vertices([2])
        assert g.allocate_vertex_ids(1).tolist() == [2]  # most recent first

    def test_never_active_ids_not_recycled(self):
        """Deleting an id that never participated must not feed the queue."""
        g = DynamicGraph(32, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([1], [2])
        g.delete_vertices([7, 9])  # 7 and 9 were never active
        assert len(g._recycler) == 0
        ids = g.allocate_vertex_ids(1)
        assert ids.tolist() != [9] and ids.tolist() != [7]

    def test_double_delete_queues_id_once(self):
        g = DynamicGraph(32, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([1, 2], [5, 6])
        g.delete_vertices([1])
        g.delete_vertices([1])  # second delete of a dead id is a no-op
        assert len(g._recycler) == 1
        g.delete_vertices([1, 1, 2])  # intra-batch duplicate of a dead id
        assert len(g._recycler) == 2

    def test_mixed_batch_queues_only_deactivated(self):
        g = DynamicGraph(32, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([1, 2], [5, 6])
        g.delete_vertices([1, 20])  # 1 active, 20 never active
        assert len(g._recycler) == 1
        assert g.allocate_vertex_ids(1).tolist() == [1]

    def test_fresh_ids_when_queue_empty(self):
        g = DynamicGraph(4, weighted=False, reuse_vertex_ids=True)
        g.insert_edges([0, 1], [1, 2])
        ids = g.allocate_vertex_ids(2)
        assert len(set(ids.tolist())) == 2
        assert not any(i in (0, 1, 2) for i in ids.tolist())

    def test_capacity_grows_when_exhausted(self):
        g = DynamicGraph(2, weighted=False, reuse_vertex_ids=True)
        g.insert_edges([0], [1])
        ids = g.allocate_vertex_ids(5)
        assert len(set(ids.tolist())) == 5
        assert g.vertex_capacity >= int(ids.max()) + 1

    def test_reactivated_id_not_vended(self):
        g = DynamicGraph(16, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([3], [4])
        g.delete_vertices([3])
        # Id 3 comes back into use directly before allocation.
        g.insert_edges([3], [5])
        ids = g.allocate_vertex_ids(1)
        assert 3 not in ids.tolist()

    def test_recycled_id_memory_reused(self):
        """Reusing an id reuses its retained base slabs: allocator traffic
        stays flat (faimGraph's memory-efficiency argument)."""
        g = DynamicGraph(16, weighted=False, directed=False, reuse_vertex_ids=True)
        g.insert_edges([2], [3])
        slabs_before = g._dict.arena.pool.num_allocated
        g.delete_vertices([2])
        vid = int(g.allocate_vertex_ids(1)[0])
        assert vid == 2
        # Reconnect the recycled id to an existing vertex: both tables'
        # base slabs already exist, so no new allocation happens.
        g.insert_edges([vid], [3])
        assert g._dict.arena.pool.num_allocated == slabs_before

    def test_recycler_unit(self):
        r = VertexIdRecycler()
        assert r.push(np.array([1, 2, 2])) == 2  # duplicate ignored
        assert len(r) == 2
        assert r.pop(5).size == 2
        assert r.pop(1).size == 0
        r.push(np.array([7]))
        r.discard(np.array([7]))
        assert len(r) == 0


@pytest.fixture
def weighted_case():
    coo = rgg_graph(200, 8.0, seed=5)
    rng = np.random.default_rng(1)
    w = rng.integers(1, 20, coo.num_edges)
    g = DynamicGraph(coo.num_vertices, weighted=True)
    g.insert_edges(coo.src, coo.dst, w)
    G = nx.DiGraph()
    G.add_nodes_from(range(coo.num_vertices))
    for s, d, ww in zip(coo.src.tolist(), coo.dst.tolist(), w.tolist()):
        G.add_edge(s, d, weight=int(ww))
    return g, G


class TestSSSP:
    def test_matches_networkx(self, weighted_case):
        g, G = weighted_case
        dist = sssp(g, 0)
        ref = nx.single_source_dijkstra_path_length(G, 0, weight="weight")
        for v in range(g.vertex_capacity):
            assert dist[v] == ref.get(v, -1), v

    def test_source_distance_zero(self, weighted_case):
        g, _ = weighted_case
        assert sssp(g, 5)[5] == 0

    def test_requires_weighted(self):
        g = DynamicGraph(4, weighted=False)
        with pytest.raises(ValidationError):
            sssp(g, 0)

    def test_source_out_of_range(self, weighted_case):
        g, _ = weighted_case
        with pytest.raises(ValidationError):
            sssp(g, 10**6)

    def test_isolated_source(self):
        g = DynamicGraph(4, weighted=True)
        g.insert_edges([0], [1], [5])
        dist = sssp(g, 3)
        assert dist[3] == 0 and dist[0] == -1

    @staticmethod
    def negative_weight_graph(n, src, dst, w):
        # The slab-hash value lanes are 32-bit (negative weights wrap);
        # Hornet stores plain int64 weights, and sssp is backend-agnostic.
        import repro.api as api

        g = api.create("hornet", num_vertices=n, weighted=True)
        g.insert_edges(np.array(src), np.array(dst), np.array(w))
        return g

    def test_negative_weights_without_cycle(self):
        g = self.negative_weight_graph(4, [0, 1, 0], [1, 2, 2], [5, -3, 9])
        assert sssp(g, 0).tolist() == [0, 5, 2, -1]

    def test_negative_cycle_raises(self):
        # 1 <-> 2 with net gain -4; reachable from 0.
        g = self.negative_weight_graph(4, [0, 1, 2], [1, 2, 1], [1, -2, -2])
        with pytest.raises(ValidationError, match="negative cycle"):
            sssp(g, 0)

    def test_negative_cycle_unreachable_is_fine(self):
        g = self.negative_weight_graph(5, [0, 2, 3], [1, 3, 2], [7, -2, -2])
        assert sssp(g, 0).tolist() == [0, 7, -1, -1, -1]

    def test_max_rounds_truncation_does_not_raise(self):
        g = self.negative_weight_graph(4, [0, 1, 2], [1, 2, 1], [1, -2, -2])
        dist = sssp(g, 0, max_rounds=2)
        assert dist[0] == 0  # truncated lower bounds, no cycle check


class TestKCore:
    def build(self, seed=6):
        coo = rgg_graph(200, 7.0, seed=seed)
        g = DynamicGraph(coo.num_vertices, weighted=False, directed=False)
        keep = coo.src < coo.dst
        g.insert_edges(coo.src[keep], coo.dst[keep])
        G = nx.Graph()
        G.add_nodes_from(range(coo.num_vertices))
        G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
        return g, G

    def test_matches_networkx(self):
        g, G = self.build()
        k = 4
        kcore(g, k)
        out = g.export_coo()
        mine = {(min(a, b), max(a, b)) for a, b in zip(out.src.tolist(), out.dst.tolist())}
        theirs = {(min(a, b), max(a, b)) for a, b in nx.k_core(G, k).edges()}
        assert mine == theirs

    def test_core_numbers_match_networkx(self):
        g, G = self.build(seed=7)
        mine = core_numbers(g)
        theirs = nx.core_number(G)
        for v in range(g.vertex_capacity):
            assert int(mine[v]) == theirs.get(v, 0), v

    def test_bad_k(self):
        g, _ = self.build()
        with pytest.raises(ValidationError):
            kcore(g, 0)

    def test_k1_removes_isolated_only(self):
        g = DynamicGraph(5, weighted=False, directed=False)
        g.insert_edges([0], [1])
        deleted = kcore(g, 1)
        assert deleted == 0  # no isolated *active* vertices
        assert g.num_edges() == 2
