"""Tests for the simulated-GPU substrate: warp primitives, counters,
growable memory, and the device cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.counters import counting, get_counters, reset_counters
from repro.gpusim.device import default_device
from repro.gpusim.memory import GrowableArray
from repro.gpusim.model import DeviceCostModel, simulated_seconds
from repro.gpusim.warp import (
    WARP_SIZE,
    ballot,
    find_first_set,
    lane_ids,
    popc,
    shuffle_idx,
)
from repro.util.errors import CapacityError

lane_bools = st.lists(st.booleans(), min_size=WARP_SIZE, max_size=WARP_SIZE)


class TestWarpPrimitives:
    def test_lane_ids(self):
        assert lane_ids().tolist() == list(range(32))

    def test_ballot_empty_and_full(self):
        assert ballot(np.zeros(32, dtype=bool)) == 0
        assert ballot(np.ones(32, dtype=bool)) == (1 << 32) - 1

    def test_ballot_single_lane(self):
        for lane in (0, 5, 31):
            pred = np.zeros(32, dtype=bool)
            pred[lane] = True
            assert ballot(pred) == 1 << lane

    def test_ballot_wrong_shape(self):
        with pytest.raises(ValueError):
            ballot(np.zeros(16, dtype=bool))

    @given(lane_bools)
    @settings(max_examples=50, deadline=None)
    def test_popc_of_ballot_counts_lanes(self, bits):
        pred = np.array(bits)
        assert popc(ballot(pred)) == int(pred.sum())

    @given(lane_bools)
    @settings(max_examples=50, deadline=None)
    def test_ffs_finds_lowest_lane(self, bits):
        pred = np.array(bits)
        mask = ballot(pred)
        if not pred.any():
            assert find_first_set(mask) == -1
        else:
            assert find_first_set(mask) == int(np.flatnonzero(pred)[0])

    def test_shuffle_broadcasts(self):
        vals = np.arange(32) * 10
        out = shuffle_idx(vals, 7)
        assert np.all(out == 70)

    def test_shuffle_wrong_shape(self):
        with pytest.raises(ValueError):
            shuffle_idx(np.arange(8), 0)

    def test_device_slab_geometry(self):
        dev = default_device()
        assert dev.warp_size == 32
        assert dev.slab_bytes == 128
        assert dev.words_per_slab == 32


class TestCounters:
    def test_reset(self):
        c = get_counters()
        c.slab_reads += 5
        c.add("custom", 2)
        reset_counters()
        snap = get_counters().snapshot()
        assert snap["slab_reads"] == 0
        assert "custom" not in snap

    def test_diff(self):
        c = reset_counters()
        before = c.snapshot()
        c.slab_writes += 3
        c.add("x", 1)
        delta = c.diff(before)
        assert delta["slab_writes"] == 3
        assert delta["x"] == 1

    def test_counting_context(self):
        with counting() as delta:
            get_counters().atomics += 7
        assert delta["atomics"] == 7


class TestGrowableArray:
    def test_basic_growth_preserves_prefix(self):
        buf = GrowableArray(4, np.int64, fill_value=-1)
        buf.data[:4] = [1, 2, 3, 4]
        buf.ensure(9)
        assert buf.capacity >= 9
        assert buf.data[:4].tolist() == [1, 2, 3, 4]
        assert np.all(buf.data[4:] == -1)

    def test_2d_growth(self):
        buf = GrowableArray(2, np.int32, width=3, fill_value=7)
        buf.data[0] = [1, 2, 3]
        buf.ensure(5)
        assert buf.data.shape[1] == 3
        assert buf.data[0].tolist() == [1, 2, 3]
        assert np.all(buf.data[2:] == 7)

    def test_no_growth_needed(self):
        buf = GrowableArray(8, np.int64)
        data_id = id(buf.data)
        buf.ensure(8)
        assert id(buf.data) == data_id

    def test_growth_disallowed(self):
        buf = GrowableArray(2, np.int64, allow_growth=False)
        with pytest.raises(CapacityError):
            buf.ensure(3)

    def test_growth_charges_copy_bytes(self):
        buf = GrowableArray(4, np.int64)
        with counting() as delta:
            buf.ensure(100)
        assert delta["bytes_copied"] >= 4 * 8


class TestCostModel:
    def test_zero_delta_zero_time(self):
        assert simulated_seconds({}) == 0.0

    def test_linear_in_counts(self):
        one = simulated_seconds({"slab_reads": 1})
        many = simulated_seconds({"slab_reads": 1000})
        assert many == pytest.approx(1000 * one)

    def test_additive_across_counters(self):
        a = simulated_seconds({"slab_reads": 10})
        b = simulated_seconds({"sorted_elements": 10})
        ab = simulated_seconds({"slab_reads": 10, "sorted_elements": 10})
        assert ab == pytest.approx(a + b)

    def test_calibration_table8_road_usa(self):
        """Paper Table VIII: road_usa CUB segmented sort ≈ 10.9 s for 23.9M
        rows — the calibration anchor for SORT_SEGMENT."""
        model = DeviceCostModel()
        sec = model.seconds({"sort_segments": 23_900_000, "sorted_elements": 57_710_000})
        assert 8.0 < sec < 14.0  # paper: 10.875 s

    def test_calibration_table5_germany(self):
        """Paper Table V: our bulk build of germany_osm ≈ 12.4 ms for
        2 x 24.7M slab transactions."""
        model = DeviceCostModel()
        sec = model.seconds({"slab_reads": 24_700_000, "slab_writes": 24_700_000})
        assert 0.008 < sec < 0.020  # paper: 12.4 ms

    def test_unknown_counters_ignored(self):
        assert simulated_seconds({"nonexistent_counter": 10**9}) == 0.0
