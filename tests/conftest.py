"""Shared fixtures and reference models for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.counters import reset_counters


def pytest_configure(config):
    """Register the repo's custom markers (no pytest.ini to hold them)."""
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection / failover tests (CI runs them as their own "
        "lane via `pytest -m chaos`; they also run in the default suite)",
    )


@pytest.fixture(autouse=True)
def _fresh_counters():
    """Isolate the global kernel counters per test."""
    reset_counters()
    yield
    reset_counters()


@pytest.fixture
def rng():
    return np.random.default_rng(0xD1CE)


class DictGraph:
    """Plain dict-of-dicts reference model for any directed edge structure.

    Implements the paper's semantics exactly: no self loops, replace
    semantics (last weight wins), exact counts.
    """

    def __init__(self):
        self.adj: dict[int, dict[int, int]] = {}

    def insert(self, src, dst, weights=None):
        added = 0
        ws = weights if weights is not None else [0] * len(src)
        srcs, dsts = np.asarray(src).tolist(), np.asarray(dst).tolist()
        for s, d, w in zip(srcs, dsts, np.asarray(ws).tolist()):
            if s == d:
                continue
            row = self.adj.setdefault(s, {})
            if d not in row:
                added += 1
            row[d] = w
        return added

    def delete(self, src, dst):
        removed = 0
        for s, d in zip(np.asarray(src).tolist(), np.asarray(dst).tolist()):
            row = self.adj.get(s)
            if row is not None and d in row:
                del row[d]
                removed += 1
        return removed

    def delete_vertex_undirected(self, vids):
        vids = set(np.asarray(vids).tolist())
        removed = 0
        for v in vids:
            removed += len(self.adj.pop(v, {}))
        for row in self.adj.values():
            for v in vids:
                if v in row:
                    del row[v]
                    removed += 1
        return removed

    def edges(self):
        return {(s, d): w for s, row in self.adj.items() for d, w in row.items()}

    def edge_set(self):
        return set(self.edges().keys())

    def num_edges(self):
        return sum(len(r) for r in self.adj.values())

    def degree(self, v):
        return len(self.adj.get(v, {}))


@pytest.fixture
def dict_graph():
    return DictGraph()


def structure_state(g) -> dict[tuple[int, int], int]:
    """Extract {(src, dst): weight} from any structure with export_coo."""
    coo = g.export_coo()
    ws = coo.weights if coo.weights is not None else np.zeros(coo.num_edges, np.int64)
    return {
        (int(s), int(d)): int(w)
        for s, d, w in zip(coo.src.tolist(), coo.dst.tolist(), ws.tolist())
    }


def structure_edges(g) -> set[tuple[int, int]]:
    return set(structure_state(g).keys())
