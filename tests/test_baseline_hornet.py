"""Tests for the Hornet-like baseline."""

import numpy as np
import pytest

from repro.baselines.hornet import HornetGraph, _next_pow2
from repro.coo import COO
from repro.gpusim.counters import counting
from repro.util.errors import ValidationError
from tests.conftest import structure_state


def test_next_pow2():
    out = _next_pow2(np.array([1, 2, 3, 4, 5, 17, 1024]))
    assert out.tolist() == [1, 2, 4, 4, 8, 32, 1024]


class TestBulkBuild:
    def test_dedup_and_self_loops(self):
        coo = COO([0, 0, 0, 1], [1, 1, 0, 1], num_vertices=3, weights=[5, 7, 9, 1])
        g = HornetGraph(3)
        assert g.bulk_build(coo) == 1  # (0,1) once; self loops dropped
        assert structure_state(g) == {(0, 1): 7}  # last weight wins

    def test_block_capacity_is_pow2(self, rng):
        coo = COO(rng.integers(0, 20, 300), rng.integers(0, 20, 300), 20)
        g = HornetGraph(20)
        g.bulk_build(coo)
        caps = g.block_cap[g.block_cap > 0]
        assert np.all((caps & (caps - 1)) == 0)
        assert np.all(g.degree <= g.block_cap)

    def test_requires_empty(self, rng):
        g = HornetGraph(4)
        g.insert_edges([0], [1])
        with pytest.raises(ValidationError):
            g.bulk_build(COO([0], [1], 4))


class TestUpdates:
    def test_insert_dedup_within_and_across(self):
        g = HornetGraph(4)
        assert g.insert_edges([0, 0], [1, 1], weights=[3, 4]) == 1
        assert g.insert_edges([0], [1], weights=[9]) == 0
        assert structure_state(g) == {(0, 1): 9}

    def test_insert_charges_sort(self):
        g = HornetGraph(16)
        with counting() as delta:
            g.insert_edges(np.arange(8), (np.arange(8) + 1) % 16)
        assert delta["sorted_elements"] > 0  # sort-based dedup

    def test_block_growth_copies(self):
        g = HornetGraph(4)
        g.insert_edges([0], [1])
        with counting() as delta:
            g.insert_edges([0, 0], [2, 3])  # 1 -> cap 4? grows past pow2(1)
        # Growing from capacity 1 to 4 copies the old adjacency.
        assert delta["bytes_copied"] > 0
        assert g.degree[0] == 3

    def test_block_reuse_after_growth(self):
        g = HornetGraph(4)
        g.insert_edges([0], [1])
        g.insert_edges([0], [2])  # grow: frees the 1-block
        g.insert_edges([1], [0])  # should reuse the freed 1-block
        assert g.block_off[1] != -1

    def test_delete_compacts(self, rng):
        g = HornetGraph(10)
        g.insert_edges(np.zeros(6, np.int64), np.arange(1, 7), weights=np.arange(6))
        assert g.delete_edges([0, 0], [3, 9]) == 1
        assert g.degree[0] == 5
        d, w = g.neighbors(0)
        assert sorted(d.tolist()) == [1, 2, 4, 5, 6]
        # Weight association preserved through compaction.
        got = dict(zip(d.tolist(), w.tolist()))
        assert got[1] == 0 and got[6] == 5

    def test_edge_exists_scans(self, rng):
        g = HornetGraph(10)
        g.insert_edges([2, 2], [3, 5])
        with counting() as delta:
            ex = g.edge_exists([2, 2, 4], [3, 4, 2])
        assert ex.tolist() == [True, False, False]
        assert delta["scanned_elements"] > 0

    def test_vertex_deletion_unsupported(self):
        g = HornetGraph(4)
        with pytest.raises(NotImplementedError):
            g.delete_vertices([0])

    def test_randomized_vs_model(self, rng, dict_graph):
        n = 100
        g = HornetGraph(n)
        for _ in range(10):
            m = int(rng.integers(20, 300))
            src, dst = rng.integers(0, n, m), rng.integers(0, n, m)
            w = rng.integers(0, 50, m)
            assert g.insert_edges(src, dst, w) == dict_graph.insert(src, dst, w)
            k = int(rng.integers(10, 150))
            ds, dd = rng.integers(0, n, k), rng.integers(0, n, k)
            assert g.delete_edges(ds, dd) == dict_graph.delete(ds, dd)
        assert structure_state(g) == dict_graph.edges()
        assert g.num_edges() == dict_graph.num_edges()

    def test_sorted_adjacency(self, rng):
        n = 30
        g = HornetGraph(n)
        g.insert_edges(rng.integers(0, n, 200), rng.integers(0, n, 200))
        row_ptr, col = g.sorted_adjacency()
        for v in range(n):
            seg = col[row_ptr[v] : row_ptr[v + 1]]
            assert np.all(np.diff(seg) > 0)  # strictly sorted (unique)
        assert row_ptr[-1] == g.num_edges()
