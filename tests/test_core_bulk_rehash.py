"""Tests for bulk/incremental build equivalence and rehashing."""

import numpy as np
import pytest

from repro import COO, DynamicGraph
from repro.util.errors import ValidationError
from tests.conftest import structure_state


def random_coo(rng, n=100, m=1500, weighted=True):
    return COO(
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        n,
        weights=rng.integers(0, 100, m) if weighted else None,
    )


class TestBulkBuild:
    def test_requires_empty_graph(self, rng):
        g = DynamicGraph(num_vertices=10)
        g.insert_edges([0], [1])
        with pytest.raises(ValidationError):
            g.bulk_build(random_coo(rng, 10, 5))

    def test_grows_capacity_if_needed(self, rng):
        coo = random_coo(rng, 100, 200)
        g = DynamicGraph(num_vertices=4)
        g.bulk_build(coo)
        assert g.vertex_capacity >= 100

    def test_equals_streamed_inserts(self, rng):
        coo = random_coo(rng)
        bulk = DynamicGraph(num_vertices=coo.num_vertices)
        bulk.bulk_build(coo)

        streamed = DynamicGraph(num_vertices=coo.num_vertices)
        for batch in coo.batches(137):
            streamed.insert_edges(batch.src, batch.dst, batch.weights)
        assert structure_state(bulk) == structure_state(streamed)
        assert bulk.num_edges() == streamed.num_edges()

    def test_equals_incremental_build(self, rng):
        coo = random_coo(rng)
        bulk = DynamicGraph(num_vertices=coo.num_vertices)
        bulk.bulk_build(coo)
        inc = DynamicGraph(num_vertices=coo.num_vertices)
        inc.incremental_build(coo, batch_size=100)
        assert structure_state(bulk) == structure_state(inc)

    def test_undirected_bulk(self, rng):
        coo = random_coo(rng, 40, 300, weighted=False)
        g = DynamicGraph(num_vertices=40, directed=False, weighted=False)
        g.bulk_build(coo)
        ex_fwd = g.edge_exists(coo.src, coo.dst)
        ex_rev = g.edge_exists(coo.dst, coo.src)
        keep = coo.src != coo.dst
        assert ex_fwd[keep].all() and ex_rev[keep].all()

    def test_bucket_sizing_from_degrees(self, rng):
        """Bulk build sizes buckets a priori: no overflow chains at the
        default load factor."""
        coo = random_coo(rng, 50, 3000, weighted=False)
        g = DynamicGraph(num_vertices=50, weighted=False)
        g.bulk_build(coo)
        st = g.stats()
        assert st.mean_chain_length == pytest.approx(1.0, abs=0.1)

    def test_incremental_single_bucket_tables(self, rng):
        """Incremental build has no connectivity info: single buckets and
        multi-slab chains (the paper's worst case)."""
        # Few sources, many destinations => long per-table chains.
        src = rng.integers(0, 10, 3000)
        dst = rng.integers(0, 500, 3000)
        coo = COO(src, dst, 500)
        g = DynamicGraph(num_vertices=500, weighted=False)
        g.incremental_build(coo, batch_size=500)
        arena = g._dict.arena
        created = arena.table_buckets[arena.table_base != -1]
        assert (created == 1).all()
        assert g.stats().mean_chain_length > 1.5

    def test_on_batch_callback(self, rng):
        coo = random_coo(rng, 30, 450)
        calls = []
        g = DynamicGraph(num_vertices=30)
        g.incremental_build(coo, 100, on_batch=lambda i, n, a: calls.append((i, n)))
        assert [c[0] for c in calls] == list(range(5))
        assert sum(c[1] for c in calls) == 450


class TestRehash:
    def build_overloaded(self):
        """One vertex with a long chain in a single-bucket table."""
        g = DynamicGraph(num_vertices=8, weighted=False)
        g.insert_edges(np.zeros(400, np.int64), np.arange(1, 401) % 500 + 8)
        return g

    def test_candidates_detects_overload(self):
        g = DynamicGraph(num_vertices=600, weighted=False)
        g.insert_edges(np.zeros(400, np.int64), np.arange(1, 401))
        cands = g.rehash_candidates(max_chain_slabs=2.0)
        assert 0 in cands.tolist()

    def test_rehash_preserves_state(self):
        g = DynamicGraph(num_vertices=600, weighted=False)
        g.insert_edges(np.zeros(400, np.int64), np.arange(1, 401))
        before = structure_state(g)
        count_before = g.num_edges()
        g.rehash([0])
        assert structure_state(g) == before
        assert g.num_edges() == count_before

    def test_rehash_shortens_chains(self):
        g = DynamicGraph(num_vertices=600, weighted=False)
        g.insert_edges(np.zeros(400, np.int64), np.arange(1, 401))
        chains_before = g.stats().mean_chain_length
        g.rehash([0])
        assert g.stats().mean_chain_length < chains_before
        assert g.rehash_candidates(2.0).size == 0

    def test_rehash_auto_selects_candidates(self):
        g = DynamicGraph(num_vertices=600, weighted=False)
        g.insert_edges(np.zeros(400, np.int64), np.arange(1, 401))
        rebuilt = g.rehash()
        assert rebuilt >= 1

    def test_rehash_weighted_preserves_weights(self, rng):
        g = DynamicGraph(num_vertices=600)
        dst = np.arange(1, 301)
        w = rng.integers(0, 99, 300)
        g.insert_edges(np.zeros(300, np.int64), dst, w)
        g.rehash([0])
        found, got = g.edge_weights(np.zeros(300, np.int64), dst)
        assert found.all() and np.array_equal(got, w)

    def test_flush_tombstones_graph_level(self, rng):
        g = DynamicGraph(num_vertices=50, weighted=False)
        src = rng.integers(0, 50, 800)
        dst = rng.integers(0, 50, 800)
        g.insert_edges(src, dst)
        g.delete_edges(src[:400], dst[:400])
        before = structure_state(g)
        g.flush_tombstones()
        assert structure_state(g) == before
        assert g.stats().tombstones == 0
