"""Kernel-tier dispatch, counter parity, and the hoisted-sort regression.

Pins the contracts the ``repro.kernels`` refactor introduced:

- tier selection (``REPRO_JIT`` override, auto-detection, forced fallback);
- the jit tier is **bit-identical** to the reference tier — outputs, pool
  mutations, device-model counters, and the t2-family bench metrics built
  from them — even when it runs as the uncompiled Python fallback;
- the hoisted insert group ordering matches the legacy per-round re-sort
  bit-for-bit (satellite fix for the old ``np.argsort`` per probe round);
- the committed quick baseline carries the ``t15`` parity proofs.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api import create
from repro.api.snapshot import CSRSnapshot, merge_csr_delta, merge_event_window
from repro.bench.kernel_bench import OPS, kernel_artifact, op_parity
from repro.bench.results import environment_fingerprint
from repro.bench.tables import table2_edge_insertion
from repro.coo import COO
from repro.eventlog.events import EdgeBatch
from repro.gpusim.counters import get_counters
from repro.kernels import (
    KERNEL_TIERS,
    _resolve_initial_tier,
    available_tiers,
    current_tier,
    jit_available,
    kernel_tier,
    set_tier,
    use_tier,
)
from repro.slabhash.arena import SlabArena
from repro.slabhash.insert import insert_batch
from repro.util.errors import ValidationError

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks/baselines/BENCH_baseline_quick.json"


def counters_dict():
    c = get_counters()
    return {k: v for k, v in vars(c).items() if k != "_extra"}


class TestTierSelection:
    def test_tier_registry(self):
        assert KERNEL_TIERS == ("reference", "jit")
        assert current_tier() in available_tiers()
        assert kernel_tier() == current_tier()
        assert "reference" in available_tiers()

    def test_env_off_forces_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "0")
        assert _resolve_initial_tier() == "reference"
        monkeypatch.setenv("REPRO_JIT", "off")
        assert _resolve_initial_tier() == "reference"

    def test_env_on_requests_jit(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        if jit_available():
            assert _resolve_initial_tier() == "jit"
        else:
            with pytest.warns(RuntimeWarning, match="numba is not installed"):
                assert _resolve_initial_tier() == "reference"

    def test_env_unset_autodetects(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        expected = "jit" if jit_available() else "reference"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _resolve_initial_tier() == expected

    def test_env_garbage_warns_and_autodetects(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "maybe")
        with pytest.warns(RuntimeWarning, match="unrecognised REPRO_JIT"):
            tier = _resolve_initial_tier()
        assert tier == ("jit" if jit_available() else "reference")

    def test_set_tier_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown kernel tier"):
            set_tier("cuda")

    @pytest.mark.skipif(jit_available(), reason="numba installed; jit is selectable")
    def test_set_tier_jit_without_numba_requires_force(self):
        with pytest.raises(ValidationError, match="requires numba"):
            set_tier("jit")

    def test_use_tier_restores_previous(self):
        before = current_tier()
        with use_tier("jit", force=True):
            assert current_tier() == "jit"
            with use_tier("reference"):
                assert current_tier() == "reference"
            assert current_tier() == "jit"
        assert current_tier() == before

    def test_fingerprint_records_tier(self):
        assert environment_fingerprint()["kernel_tier"] == current_tier()


def facade_workload(weighted):
    """A mixed insert/delete/search/snapshot/compaction run on the facade."""
    rng = np.random.default_rng(1234)
    g = create("slabhash", num_vertices=48, weighted=weighted)
    src = rng.integers(0, 48, 400)
    dst = rng.integers(0, 48, 400)
    w = rng.integers(1, 100, 400) if weighted else None
    if weighted:
        g.insert_edges(src, dst, w)
    else:
        g.insert_edges(src, dst)
    g.delete_edges(src[:120], dst[:120])
    exists = np.asarray(g.edge_exists(src, dst))
    snap = g.snapshot()
    g.flush_tombstones()
    s, d = g.sorted_adjacency()
    return (
        exists,
        snap.row_ptr,
        snap.col_idx,
        snap.weights,
        np.asarray(s),
        np.asarray(d),
        counters_dict(),
    )


def assert_state_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, dict):
            assert x == y
        elif x is None:
            assert y is None
        else:
            assert np.array_equal(x, y)


class TestCounterParity:
    @pytest.mark.parametrize("weighted", [True, False])
    def test_facade_workload_bit_identical(self, weighted):
        get_counters().reset()
        ref = facade_workload(weighted)
        get_counters().reset()
        with use_tier("jit", force=True):
            jit = facade_workload(weighted)
        assert_state_equal(ref, jit)

    def test_merge_event_window_bit_identical(self):
        rng = np.random.default_rng(7)
        comp = np.unique(
            (rng.integers(0, 32, 300).astype(np.int64) << 32)
            | rng.integers(0, 32, 300)
        )
        base = CSRSnapshot.from_coo(
            COO(comp >> 32, comp & 0xFFFFFFFF, 32,
                weights=np.arange(comp.size, dtype=np.int64))
        )
        events = [
            EdgeBatch(
                seq=i,
                before_version=i,
                after_version=i + 1,
                is_insert=bool(i % 2 == 0),
                src=rng.integers(0, 32, 50),
                dst=rng.integers(0, 32, 50),
                weights=rng.integers(1, 9, 50),
                rows=50,
            )
            for i in range(4)
        ]

        def run():
            get_counters().reset()
            out = merge_event_window(base, events)
            return out.row_ptr, out.col_idx, out.weights, counters_dict()

        ref = run()
        with use_tier("jit", force=True):
            jit = run()
        assert_state_equal(ref, jit)

    def test_merge_duplicate_base_raises_in_both_tiers(self):
        bad = CSRSnapshot(
            row_ptr=np.array([0, 2], dtype=np.int64),
            col_idx=np.array([5, 5], dtype=np.int64),
            weights=None,
            num_vertices=1,
        )
        empty = np.empty(0, dtype=np.int64)
        for tier in ("reference", "jit"):
            with use_tier(tier, force=True):
                with pytest.raises(ValidationError, match="duplicate"):
                    merge_csr_delta(bad, empty, None, empty)

    def test_t2_metrics_bit_identical(self):
        """The t2 bench values derive from modeled counters, so the whole
        table must be bit-identical with the jit tier on."""
        rng = np.random.default_rng(5)
        comp = np.unique(
            (rng.integers(0, 64, 500).astype(np.int64) << 32)
            | rng.integers(0, 64, 500)
        )
        datasets = {"tiny": COO(comp >> 32, comp & 0xFFFFFFFF, 64)}

        def metrics():
            art = table2_edge_insertion(seed=3, datasets=datasets, quick=True)
            return {r.metric: r.value for r in art.results}

        ref = metrics()
        with use_tier("jit", force=True):
            jit = metrics()
        assert ref == jit
        assert ref  # sanity: the table actually produced metrics


class TestHoistedSortRegression:
    """Satellite fix: one up-front stable sort instead of one per round."""

    @pytest.mark.parametrize("weighted", [True, False])
    def test_hoisted_matches_legacy_resort(self, weighted):
        def run(resort):
            rng = np.random.default_rng(99)
            arena = SlabArena(num_tables=32, weighted=weighted)
            arena.create_tables(np.arange(32), np.full(32, 2))
            t = rng.integers(0, 32, 3000)
            k = rng.integers(0, 800, 3000)
            v = rng.integers(1, 50, 3000) if weighted else None
            get_counters().reset()
            added = insert_batch(arena, t, k, v, _resort_every_round=resort)
            return (
                added,
                arena.pool.keys.copy(),
                arena.pool.values.copy() if weighted else None,
                arena.pool.next_slab.copy(),
                counters_dict(),
            )

        assert_state_equal(run(False), run(True))


class TestKernelBenchArtifact:
    def test_op_parity_all_ops(self):
        for op in OPS:
            assert op_parity(op, seed=11) == 1.0, op

    def test_artifact_shape(self):
        art = kernel_artifact(seed=0, quick=True)
        keys = {r.metric for r in art.results}
        for op in OPS:
            assert f"t15/{op}/reference_wall_ms" in keys
            assert f"t15/{op}/jit_parity" in keys
        assert "t15/insert/resort_wall_ms" in keys
        assert "t15/insert/resort_parity" in keys
        parities = [r.value for r in art.results if r.metric.endswith("_parity")]
        assert parities and all(v == 1.0 for v in parities)


class TestBaselineGates:
    """The committed quick baseline must carry the tier-parity proofs."""

    def baseline_metrics(self):
        doc = json.loads(BASELINE.read_text())
        return doc, {
            r["metric"]: r["value"]
            for art in doc["artifacts"]
            for r in art["results"]
        }

    def test_baseline_carries_t15_parity(self):
        doc, metrics = self.baseline_metrics()
        for op in OPS:
            assert metrics.get(f"t15/{op}/jit_parity") == 1.0
        assert metrics.get("t15/insert/resort_parity") == 1.0
        assert doc["environment"].get("kernel_tier") in KERNEL_TIERS

    def test_baseline_jit_speedup_gate_when_present(self):
        """On jit-enabled hosts the baseline must show the compiled tier
        actually paying off (≥3x on insert per the acceptance bar)."""
        _, metrics = self.baseline_metrics()
        speedups = {k: v for k, v in metrics.items() if k.endswith("/jit_speedup")}
        if not speedups:
            pytest.skip("baseline generated without numba; no jit wall metrics")
        assert speedups.get("t15/insert/jit_speedup", 0.0) >= 3.0
