"""Tests for the GPMA and CSR baselines and the sorting cost models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.csr import CSRGraph
from repro.baselines.gpma import GPMAGraph
from repro.baselines.sorting import segmented_sort_csr
from repro.coo import COO
from repro.gpusim.counters import counting
from tests.conftest import structure_edges


class TestGPMA:
    def test_insert_search_delete(self):
        g = GPMAGraph(16)
        assert g.insert_edges([0, 0, 1], [1, 2, 0]) == 3
        assert g.edge_exists([0, 0, 1, 2], [1, 2, 0, 0]).tolist() == [
            True,
            True,
            True,
            False,
        ]
        assert g.delete_edges([0], [1]) == 1
        assert g.num_edges() == 2

    def test_pma_stays_sorted(self, rng):
        g = GPMAGraph(64)
        for _ in range(10):
            g.insert_edges(rng.integers(0, 64, 200), rng.integers(0, 64, 200))
            g.delete_edges(rng.integers(0, 64, 80), rng.integers(0, 64, 80))
            live = g._live()
            assert np.all(np.diff(live) > 0)  # strictly sorted, unique

    def test_density_bounds(self, rng):
        g = GPMAGraph(64)
        for _ in range(15):
            g.insert_edges(rng.integers(0, 64, 300), rng.integers(0, 64, 300))
        assert g.density() <= 0.92
        # Heavy deletion shrinks the array.
        coo = g.export_coo()
        g.delete_edges(coo.src[:-5], coo.dst[:-5])
        assert g.density() > 0.05

    def test_capacity_doubles_on_overflow(self):
        g = GPMAGraph(4096, segment_size=32)
        cap0 = g.capacity
        g.insert_edges(np.repeat(np.arange(200), 10), np.tile(np.arange(10) + 300, 200) % 4096)
        assert g.capacity > cap0

    def test_randomized_vs_model(self, rng, dict_graph):
        n = 80
        g = GPMAGraph(n)
        for _ in range(10):
            m = int(rng.integers(20, 300))
            src, dst = rng.integers(0, n, m), rng.integers(0, n, m)
            assert g.insert_edges(src, dst) == dict_graph.insert(src, dst)
            k = int(rng.integers(10, 150))
            ds, dd = rng.integers(0, n, k), rng.integers(0, n, k)
            assert g.delete_edges(ds, dd) == dict_graph.delete(ds, dd)
        assert structure_edges(g) == dict_graph.edge_set()
        assert g.num_edges() == dict_graph.num_edges()

    def test_degrees_tracked(self, rng):
        g = GPMAGraph(32)
        g.insert_edges([3, 3, 3, 5], [1, 2, 4, 3])
        assert g.degree[3] == 3 and g.degree[5] == 1
        g.delete_edges([3], [2])
        assert g.degree[3] == 2

    def test_neighbors_sorted(self):
        g = GPMAGraph(16)
        g.insert_edges([2, 2, 2], [9, 1, 5])
        d, _ = g.neighbors(2)
        assert d.tolist() == [1, 5, 9]

    def test_sorted_adjacency_free(self):
        g = GPMAGraph(16)
        g.insert_edges([0, 1, 0], [1, 2, 3])
        row_ptr, col = g.sorted_adjacency()
        assert row_ptr.tolist()[:3] == [0, 2, 3]
        assert col[:2].tolist() == [1, 3]

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_vs_set(self, pairs):
        g = GPMAGraph(31)
        ref = set()
        if pairs:
            src = np.array([p[0] for p in pairs])
            dst = np.array([p[1] for p in pairs])
            g.insert_edges(src, dst)
            ref = {(s, d) for s, d in pairs if s != d}
        assert structure_edges(g) == ref


class TestCSR:
    def test_build_sorted_dedup(self):
        coo = COO([1, 0, 0, 0], [0, 2, 1, 1], num_vertices=3, weights=[4, 3, 1, 2])
        g = CSRGraph(coo)
        assert g.num_edges == 3
        d, w = g.neighbors(0)
        assert d.tolist() == [1, 2]
        assert w.tolist() == [2, 3]  # last weight won

    def test_edge_exists_binary_search(self):
        coo = COO([0, 0, 1], [5, 2, 3], num_vertices=6)
        g = CSRGraph(coo)
        assert g.edge_exists([0, 0, 1, 2], [2, 3, 3, 0]).tolist() == [
            True,
            False,
            True,
            False,
        ]

    def test_degree(self):
        g = CSRGraph(COO([0, 0, 2], [1, 2, 0], num_vertices=3))
        assert g.degree([0, 1, 2]).tolist() == [2, 0, 1]

    def test_rebuild_with_edges(self):
        g = CSRGraph(COO([0], [1], num_vertices=4))
        g2 = g.rebuild_with_edges([1, 2], [2, 3])
        assert structure_edges(g2) == {(0, 1), (1, 2), (2, 3)}
        assert structure_edges(g) == {(0, 1)}  # original untouched

    def test_export_roundtrip(self, rng):
        coo = COO(rng.integers(0, 20, 100), rng.integers(0, 20, 100), 20)
        g = CSRGraph(coo)
        again = CSRGraph(g.export_coo())
        assert structure_edges(g) == structure_edges(again)

    def test_self_loops_dropped_by_default(self):
        g = CSRGraph(COO([0, 1], [0, 0], num_vertices=2))
        assert structure_edges(g) == {(1, 0)}


class TestSegmentedSort:
    def test_sorts_each_row(self, rng):
        row_ptr = np.array([0, 3, 3, 7])
        col = np.array([5, 1, 3, 9, 2, 8, 0])
        out = segmented_sort_csr(row_ptr, col)
        assert out.tolist() == [1, 3, 5, 0, 2, 8, 9]
        assert col.tolist() == [5, 1, 3, 9, 2, 8, 0]  # input untouched

    def test_charges_per_segment(self):
        row_ptr = np.arange(0, 101)  # 100 rows of one element
        col = np.arange(100)
        with counting() as delta:
            segmented_sort_csr(row_ptr, col)
        assert delta["sort_segments"] == 100
