"""End-to-end integration: a streaming graph scenario across the full stack.

Simulates the real-world usage the paper motivates: a graph ingests a
stream of edge batches and vertex churn while an analytics pipeline
(triangle counts, BFS, PageRank) runs between update phases, with
periodic maintenance (rehash + tombstone flush).  Validated against the
dict model and networkx at checkpoints.
"""

import networkx as nx
import numpy as np

from repro import DynamicGraph
from repro.analytics import bfs, connected_components, triangle_count_hash
from repro.datasets import powerlaw_graph
from tests.conftest import structure_edges


def test_streaming_scenario():
    rng = np.random.default_rng(2024)
    n = 300
    base = powerlaw_graph(n, 6.0, seed=1)

    g = DynamicGraph(num_vertices=n, weighted=False, directed=False)
    keep = base.src < base.dst
    g.insert_edges(base.src[keep], base.dst[keep])

    ref = nx.Graph()
    ref.add_nodes_from(range(n))
    ref.add_edges_from(zip(base.src.tolist(), base.dst.tolist()))

    for epoch in range(6):
        # Phase 1: edge stream (inserts + deletes).
        ins_s = rng.integers(0, n, 250)
        ins_d = rng.integers(0, n, 250)
        g.insert_edges(ins_s, ins_d)
        ref.add_edges_from((int(s), int(d)) for s, d in zip(ins_s, ins_d) if s != d)
        del_s = rng.integers(0, n, 100)
        del_d = rng.integers(0, n, 100)
        g.delete_edges(del_s, del_d)
        ref.remove_edges_from(zip(del_s.tolist(), del_d.tolist()))

        # Phase 2: vertex churn.
        doomed = rng.choice(n, size=3, replace=False)
        g.delete_vertices(doomed)
        for v in doomed.tolist():
            ref.remove_edges_from(list(ref.edges(v)))

        # Phase 3: maintenance every other epoch.
        if epoch % 2 == 1:
            g.rehash()
            g.flush_tombstones()

        # Checkpoint: structure equals reference.
        expected = {(s, d) for a, b in ref.edges() for s, d in ((a, b), (b, a))}
        assert structure_edges(g) == expected
        assert g.num_edges() == 2 * ref.number_of_edges()

        # Phase 4: analytics between update phases (read-only).
        tri = triangle_count_hash(g)
        assert tri == sum(nx.triangles(ref).values()) // 3

        src_v = int(rng.integers(0, n))
        dist = bfs(g, src_v)
        ref_dist = nx.single_source_shortest_path_length(ref, src_v)
        assert all(dist[v] == ref_dist.get(v, -1) for v in range(n))

        labels = connected_components(g)
        comps = {frozenset(c) for c in nx.connected_components(ref)}
        mine = {}
        for v, l in enumerate(labels.tolist()):
            mine.setdefault(l, set()).add(v)
        assert {frozenset(s) for s in mine.values()} == comps


def test_capacity_growth_under_stream():
    """Vertex ids beyond the initial capacity arrive mid-stream."""
    g = DynamicGraph(num_vertices=8, weighted=True)
    rng = np.random.default_rng(5)
    ref = {}
    hi = 8
    for _ in range(5):
        hi *= 2
        g.insert_vertices([hi - 1])
        src = rng.integers(0, hi, 50)
        dst = rng.integers(0, hi, 50)
        w = rng.integers(0, 9, 50)
        g.insert_edges(src, dst, w)
        for s, d, ww in zip(src.tolist(), dst.tolist(), w.tolist()):
            if s != d:
                ref[(s, d)] = ww
    assert g.vertex_capacity >= hi
    got = {
        (int(s), int(d)): int(w)
        for s, d, w in zip(*(lambda c: (c.src, c.dst, c.weights))(g.export_coo()))
    }
    assert got == ref
