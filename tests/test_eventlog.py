"""Tests for the first-class event log: cursors, retention, subscribers."""

import numpy as np
import pytest

from repro.api import Graph
from repro.eventlog import (
    EdgeBatch,
    EventLog,
    StructuralEvent,
    version_chain_intact,
)
from repro.stream.incremental import IncrementalConnectedComponents


def batch(log, is_insert, pairs, before, after):
    src = np.array([p[0] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs], dtype=np.int64)
    return log.publish_edge_batch(
        is_insert, src, dst, None, before_version=before, after_version=after
    )


class TestCursorsAndRetention:
    def test_cursor_pulls_only_new_events(self):
        log = EventLog()
        batch(log, True, [(0, 1)], 0, 1)
        cur = log.cursor()  # positioned at the tail
        assert cur.peek() == ([], False)
        e = batch(log, True, [(1, 2)], 1, 2)
        events, gapped = cur.poll()
        assert not gapped and [ev.seq for ev in events] == [e.seq]
        assert cur.poll() == ([], False)

    def test_readers_are_decoupled(self):
        log = EventLog()
        a, b = log.cursor(), log.cursor()
        batch(log, True, [(0, 1), (1, 2)], 0, 1)
        assert len(a.poll()[0]) == 1
        # a draining did not move b
        assert b.lag == 1
        assert len(b.poll()[0]) == 1

    def test_cursor_past_retention_horizon_reports_gap(self):
        log = EventLog(retention_rows=4)
        cur = log.cursor()
        batch(log, True, [(0, 1), (1, 2), (2, 3)], 0, 1)  # 3 rows retained
        batch(log, True, [(3, 4), (4, 5)], 1, 2)  # 5 rows -> first trimmed
        assert log.horizon > 0
        events, gapped = cur.poll()
        assert gapped  # incomplete history: the reader must rebuild cold
        assert [type(e) for e in events] == [EdgeBatch]  # surviving suffix
        # polling re-anchored at the tail: complete again
        assert cur.peek() == ([], False)

    def test_gapped_pending_rows_counts_only_retained(self):
        log = EventLog(retention_rows=2)
        cur = log.cursor()
        batch(log, True, [(0, 1), (1, 2), (2, 3)], 0, 1)  # trimmed instantly
        assert cur.pending_rows() == 0
        assert cur.peek()[1] is True

    def test_structural_events_cost_no_retention(self):
        log = EventLog(retention_rows=2)
        cur = log.cursor()
        for i in range(10):
            log.publish_structural("rehash", before_version=i, after_version=i + 1)
        events, gapped = cur.poll()
        assert not gapped and len(events) == 10

    def test_gap_forces_cold_relabel_downstream(self):
        """A consumer lagging past the horizon rebuilds cold (exactly)."""
        g = Graph.create("slabhash", num_vertices=32, snapshot_delta_limit=4)
        cc = IncrementalConnectedComponents(g)
        # One batch bigger than the retention bound: trimmed immediately,
        # so the analytic's cursor observes a gap, not the events.
        g.insert_edges([0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
        labels = cc.labels()
        assert cc.last_mode == "cold"
        assert labels[:6].tolist() == [0] * 6
        # After the cold pass the cursor is re-anchored: small batches
        # stream incrementally again.
        g.insert_edges([10], [11])
        cc.labels()
        assert cc.last_mode == "incremental"


class TestSubscribers:
    def test_unsubscribe_during_notification_does_not_skip_peers(self):
        """Regression: a subscriber removing itself (or a peer) from
        inside its callback must not starve the next subscriber."""
        log = EventLog()
        seen = []

        def self_removing(event):
            seen.append("first")
            log.unsubscribe(self_removing)

        log.subscribe(self_removing)
        log.subscribe(lambda event: seen.append("second"))
        batch(log, True, [(0, 1)], 0, 1)
        assert seen == ["first", "second"]
        seen.clear()
        batch(log, True, [(1, 2)], 1, 2)
        assert seen == ["second"]  # first really is gone

    def test_peer_unsubscribing_another_defers_to_next_event(self):
        log = EventLog()
        seen = []

        def second(event):
            seen.append("second")

        def first(event):
            seen.append("first")
            log.unsubscribe(second)

        log.subscribe(first)
        log.subscribe(second)
        batch(log, True, [(0, 1)], 0, 1)
        # the snapshot taken at notification time still includes second
        assert seen == ["first", "second"]
        seen.clear()
        batch(log, True, [(1, 2)], 1, 2)
        assert seen == ["first"]

    def test_raising_subscriber_does_not_corrupt_log_or_starve_peers(self):
        log = EventLog()
        seen = []

        def bad(event):
            raise RuntimeError("subscriber bug")

        log.subscribe(bad)
        log.subscribe(lambda event: seen.append(event.seq))
        with pytest.raises(RuntimeError, match="subscriber bug"):
            batch(log, True, [(0, 1)], 0, 1)
        # peer was still notified, and the event is durably in the log
        assert seen == [0]
        assert len(log) == 1 and log.next_seq == 1
        events, gapped = log.events_since(0)
        assert not gapped and events[0].rows == 1

    def test_subscribe_is_idempotent(self):
        log = EventLog()
        seen = []
        sub = seen.append
        log.subscribe(sub)
        log.subscribe(sub)
        batch(log, True, [(0, 1)], 0, 1)
        assert len(seen) == 1
        log.unsubscribe(sub)
        log.unsubscribe(sub)  # no-op


class TestOrderingAndChain:
    def test_interleaved_events_preserve_order(self):
        """Inserts, deletes, and structural events replay in publication
        order with contiguous sequence numbers."""
        log = EventLog()
        cur = log.cursor()
        batch(log, True, [(0, 1)], 0, 1)
        batch(log, False, [(0, 1)], 1, 2)
        log.publish_structural("delete_vertices", before_version=2, after_version=3)
        batch(log, True, [(2, 3)], 3, 4)
        events, gapped = cur.poll()
        assert not gapped
        assert [e.seq for e in events] == [0, 1, 2, 3]
        kinds = [
            (type(e).__name__, getattr(e, "is_insert", getattr(e, "reason", None)))
            for e in events
        ]
        assert kinds == [
            ("EdgeBatch", True),
            ("EdgeBatch", False),
            ("StructuralEvent", "delete_vertices"),
            ("EdgeBatch", True),
        ]
        assert version_chain_intact(events, 0, 4)

    def test_facade_interleaving_matches_mutation_order(self):
        g = Graph.create("slabhash", num_vertices=16)
        cur = g.events.cursor()
        g.insert_edges([0, 1], [1, 2])
        g.delete_edges([0], [1])
        g.delete_vertices([2])
        g.insert_edges([3], [4])
        events, gapped = cur.poll()
        assert not gapped
        shapes = [
            (e.is_insert, e.rows) if isinstance(e, EdgeBatch) else e.reason
            for e in events
        ]
        assert shapes == [(True, 2), (False, 1), "delete_vertices", (True, 1)]
        assert version_chain_intact(events, events[0].before_version, g.mutation_version)

    def test_chain_rejects_gaps_and_versionless_backends(self):
        log = EventLog()
        e1 = batch(log, True, [(0, 1)], 0, 1)
        e3 = batch(log, True, [(1, 2)], 2, 3)  # skips version 1 -> 2
        assert not version_chain_intact([e1, e3], 0, 3)
        assert version_chain_intact([e1], 0, 1)
        assert not version_chain_intact([e1], 0, 2)  # live moved past window
        e_none = batch(log, True, [(2, 3)], None, None)
        assert not version_chain_intact([e_none], None, None)

    def test_published_arrays_are_copies(self):
        log = EventLog()
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 2], dtype=np.int64)
        event = log.publish_edge_batch(
            True, src, dst, None, before_version=0, after_version=1
        )
        src[0] = 99  # caller refills its buffer
        assert event.src[0] == 0


class TestSeqValidation:
    """Out-of-range positions raise instead of silently clamping — a
    caller holding such a seq has confused logs, and a clamped read would
    mask that as an empty or complete history."""

    def _log(self):
        log = EventLog()
        batch(log, True, [(0, 1), (1, 2)], 0, 1)
        batch(log, False, [(0, 1)], 1, 2)
        return log

    def test_cursor_rejects_out_of_range_seqs(self):
        from repro.util.errors import ValidationError

        log = self._log()
        with pytest.raises(ValidationError, match="outside this log's published range"):
            log.cursor(-1)
        with pytest.raises(ValidationError, match="outside this log's published range"):
            log.cursor(log.next_seq + 1)

    def test_events_since_rejects_out_of_range_seqs(self):
        from repro.util.errors import ValidationError

        log = self._log()
        with pytest.raises(ValidationError, match="outside this log's published range"):
            log.events_since(-1)
        with pytest.raises(ValidationError, match="outside this log's published range"):
            log.events_since(log.next_seq + 1)

    def test_boundary_seqs_accepted(self):
        log = self._log()
        events, gapped = log.events_since(0)
        assert len(events) == 2 and not gapped
        # The tail itself is a valid (empty-history) position.
        events, gapped = log.events_since(log.next_seq)
        assert events == [] and not gapped
        assert log.cursor(log.next_seq).peek() == ([], False)
