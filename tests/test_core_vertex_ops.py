"""Tests for vertex insertion and deletion (Section IV-D, Algorithm 2)."""

import numpy as np
import pytest

from repro import DynamicGraph
from repro.gpusim.counters import counting
from repro.util.errors import ValidationError
from tests.conftest import structure_edges


class TestVertexInsertion:
    def test_grows_dictionary(self):
        g = DynamicGraph(num_vertices=4)
        g.insert_vertices([10, 11])
        assert g.vertex_capacity >= 12
        g.insert_edges([10], [11], weights=[1])
        assert g.edge_exists([10], [11])[0]

    def test_growth_preserves_existing_edges(self):
        g = DynamicGraph(num_vertices=4)
        g.insert_edges([0, 1], [1, 2], weights=[5, 6])
        before = structure_edges(g)
        g.insert_vertices([100])
        assert structure_edges(g) == before
        found, w = g.edge_weights([0], [1])
        assert found[0] and w[0] == 5

    def test_expected_degree_sizes_buckets(self):
        g = DynamicGraph(num_vertices=64, weighted=False)
        g.insert_vertices([1], expected_degree=[300])
        g.insert_vertices([2])  # no connectivity info: one bucket
        arena = g._dict.arena
        assert int(arena.table_buckets[1]) > 1
        assert int(arena.table_buckets[2]) == 1

    def test_negative_vertex_rejected(self):
        """Must be ValidationError, consistent with every other mutation API."""
        g = DynamicGraph(num_vertices=4)
        with pytest.raises(ValidationError):
            g.insert_vertices([-1])
        with pytest.raises(ValidationError):
            g.insert_vertices([3, -7, 2])

    def test_empty_ok(self):
        g = DynamicGraph(num_vertices=4)
        g.insert_vertices([])


class TestVertexDeletionUndirected:
    def build(self, rng, n=80):
        g = DynamicGraph(num_vertices=n, directed=False, weighted=False)
        src = rng.integers(0, n, 600)
        dst = rng.integers(0, n, 600)
        g.insert_edges(src, dst)
        return g

    def test_deleted_vertex_has_no_edges(self, rng):
        g = self.build(rng)
        g.delete_vertices([3, 7])
        assert g.degree([3, 7]).tolist() == [0, 0]
        dst, _ = g.neighbors(3)
        assert dst.size == 0

    def test_no_false_positives_after_delete(self, rng):
        """Paper requirement: 'no edge query involving u may have a false
        positive result'."""
        g = self.build(rng)
        g.delete_vertices([5])
        n = g.vertex_capacity
        qs = np.concatenate([np.full(n, 5), np.arange(n)])
        qd = np.concatenate([np.arange(n), np.full(n, 5)])
        assert not g.edge_exists(qs, qd).any()

    def test_matches_reference_model(self, rng, dict_graph):
        n = 80
        g = DynamicGraph(num_vertices=n, directed=False, weighted=False)
        src = rng.integers(0, n, 600)
        dst = rng.integers(0, n, 600)
        g.insert_edges(src, dst)
        both_s = np.concatenate([src, dst])
        both_d = np.concatenate([dst, src])
        dict_graph.insert(both_s, both_d)
        doomed = [0, 13, 42, 79]
        removed = g.delete_vertices(doomed)
        expected_removed = dict_graph.delete_vertex_undirected(doomed)
        assert removed == expected_removed
        assert structure_edges(g) == dict_graph.edge_set()
        assert g.num_edges() == dict_graph.num_edges()

    def test_overflow_slabs_freed(self, rng):
        g = DynamicGraph(num_vertices=200, directed=False, weighted=False)
        # A hub with >30 neighbors overflows its single base slab.
        others = np.arange(1, 120, dtype=np.int64)
        g.insert_edges(np.zeros(others.size, np.int64), others)
        with counting() as delta:
            g.delete_vertices([0])
        assert delta["slabs_freed"] > 0

    def test_reinsert_after_delete(self, rng):
        g = self.build(rng)
        g.delete_vertices([2])
        assert g.insert_edges([2], [3]) == 2  # undirected: both directions
        assert g.edge_exists([2], [3])[0] and g.edge_exists([3], [2])[0]


class TestVertexDeletionDirected:
    def test_incoming_edges_also_removed(self, rng, dict_graph):
        n = 60
        g = DynamicGraph(num_vertices=n, weighted=False)
        src = rng.integers(0, n, 500)
        dst = rng.integers(0, n, 500)
        g.insert_edges(src, dst)
        dict_graph.insert(src, dst)
        doomed = [1, 30]
        g.delete_vertices(doomed)
        # Reference: drop rows and all references.
        for v in doomed:
            dict_graph.adj.pop(v, None)
        for row in dict_graph.adj.values():
            for v in doomed:
                row.pop(v, None)
        assert structure_edges(g) == dict_graph.edge_set()

    def test_out_of_range_rejected(self):
        g = DynamicGraph(num_vertices=4)
        with pytest.raises(ValidationError):
            g.delete_vertices([9])

    def test_empty_ok(self):
        g = DynamicGraph(num_vertices=4)
        assert g.delete_vertices([]) == 0

    def test_active_vertex_tracking(self, rng):
        g = DynamicGraph(num_vertices=10, weighted=False)
        g.insert_edges([0, 2], [1, 3])
        assert g.num_active_vertices() == 4
        g.delete_vertices([0])
        assert g.num_active_vertices() == 3
