"""Durability tests: WAL framing, checkpoints, crash recovery, replicas.

The acceptance bar for :mod:`repro.persist` is *bit-identity*: after any
combination of checkpoint, crash (torn WAL tail, corrupt record, deleted
checkpoint), and replay, the recovered graph's sorted-CSR snapshot must
equal the lost live instance's exactly — for every registered backend,
weighted and unweighted.
"""

import json

import numpy as np
import pytest

import repro.api as api
from repro.api import Graph
from repro.coo import COO
from repro.eventlog.events import EdgeBatch, StructuralEvent
from repro.persist import (
    LogFollower,
    WalWriter,
    apply_event,
    latest_valid_checkpoint,
    list_segments,
    load_checkpoint,
    open_graph,
    repair_wal,
    scan_wal,
    write_checkpoint,
)
from repro.persist.wal import RECORD_HEADER, SEGMENT_HEADER
from repro.stream import mixed_scenario, run_scenario_durable
from repro.stream.incremental import IncrementalConnectedComponents
from repro.util.errors import ValidationError

ALL_BACKENDS = sorted(api.backend_names())


def assert_snaps_identical(got, want, ctx=""):
    assert got.num_vertices == want.num_vertices, ctx
    assert np.array_equal(got.row_ptr, want.row_ptr), ctx
    assert np.array_equal(got.col_idx, want.col_idx), ctx
    if want.weights is None:
        assert got.weights is None, ctx
    else:
        assert np.array_equal(got.weights, want.weights), ctx


def mutate(g, rng, *, weighted, rounds=4, batch=48):
    """A deterministic mixed workload (inserts + deletes + vertex ops)."""
    n = g.num_vertices
    for _ in range(rounds):
        src = rng.integers(0, n, batch, dtype=np.int64)
        dst = rng.integers(0, n, batch, dtype=np.int64)
        w = rng.integers(1, 100, batch, dtype=np.int64) if weighted else None
        g.insert_edges(src, dst, w)
        g.delete_edges(src[: batch // 4], dst[: batch // 4])
    if g.capabilities.vertex_dynamic:
        g.delete_vertices(rng.choice(n, size=3, replace=False).astype(np.int64))


# ---------------------------------------------------------------------------
# WAL framing
# ---------------------------------------------------------------------------


class TestWalFraming:
    def _events_roundtrip(self, tmp_path, events):
        with WalWriter(tmp_path / "wal", fsync="never") as w:
            for e in events:
                w.append(e)
        scan = scan_wal(tmp_path / "wal")
        assert not scan.torn
        assert scan.next_seq == len(events)
        return scan.events

    def test_edge_batches_roundtrip(self, tmp_path):
        src = np.array([3, 1, 4], dtype=np.int64)
        dst = np.array([1, 5, 9], dtype=np.int64)
        w = np.array([10, 20, 30], dtype=np.int64)
        events = [
            EdgeBatch(0, 0, 1, True, src, dst, w, rows=3),
            EdgeBatch(1, 1, 2, False, dst, src, None, rows=6),
            EdgeBatch(2, None, None, True, src, src, None, rows=3),
        ]
        got = self._events_roundtrip(tmp_path, events)
        for orig, back in zip(events, got):
            assert isinstance(back, EdgeBatch)
            assert back.seq == orig.seq
            assert back.is_insert == orig.is_insert
            assert back.rows == orig.rows
            assert back.before_version == orig.before_version
            assert back.after_version == orig.after_version
            assert np.array_equal(back.src, orig.src)
            assert np.array_equal(back.dst, orig.dst)
            if orig.weights is None:
                assert back.weights is None
            else:
                assert np.array_equal(back.weights, orig.weights)

    def test_structural_payloads_roundtrip(self, tmp_path):
        vids = np.array([7, 2, 5], dtype=np.int64)
        coo = COO([0, 1], [1, 2], 8, weights=[5, 6])
        events = [
            StructuralEvent(0, 0, 1, "rehash", None),
            StructuralEvent(1, 1, 2, "delete_vertices", vids),
            StructuralEvent(2, 2, 3, "bulk_build", coo),
            StructuralEvent(3, 3, 4, "bulk_build", COO([0], [1], 4)),
        ]
        got = self._events_roundtrip(tmp_path, events)
        assert got[0].reason == "rehash" and got[0].payload is None
        assert np.array_equal(got[1].payload, vids)
        back = got[2].payload
        assert isinstance(back, COO) and back.num_vertices == 8
        assert np.array_equal(back.src, coo.src) and np.array_equal(back.weights, coo.weights)
        assert got[3].payload.weights is None

    def test_rotation_produces_contiguous_segments(self, tmp_path):
        wal_dir = tmp_path / "wal"
        batch = EdgeBatch(0, 0, 1, True, np.arange(64), np.arange(64), None, rows=64)
        with WalWriter(wal_dir, fsync="never", segment_bytes=2048) as w:
            for _ in range(10):
                w.append(batch)
        segments = list_segments(wal_dir)
        assert len(segments) > 1
        # Each segment is named by its first record's seq.
        scan = scan_wal(wal_dir)
        assert not scan.torn and len(scan.events) == 10
        assert [e.seq for e in scan.events] == list(range(10))

    def test_writer_resumes_into_existing_tail(self, tmp_path):
        wal_dir = tmp_path / "wal"
        batch = EdgeBatch(0, 0, 1, True, np.array([1]), np.array([2]), None, rows=1)
        with WalWriter(wal_dir, fsync="never") as w:
            w.append(batch)
            w.append(batch)
        scan = scan_wal(wal_dir)
        with WalWriter(wal_dir, start_seq=scan.next_seq, fsync="never") as w:
            w.append(batch)
        scan = scan_wal(wal_dir)
        assert not scan.torn
        assert [e.seq for e in scan.events] == [0, 1, 2]
        assert len(list_segments(wal_dir)) == 1

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValidationError, match="fsync"):
            WalWriter(tmp_path / "wal", fsync="sometimes")

    def test_fsync_always_is_immediately_scannable(self, tmp_path):
        batch = EdgeBatch(0, 0, 1, True, np.array([1]), np.array([2]), None, rows=1)
        w = WalWriter(tmp_path / "wal", fsync="always")
        w.append(batch)
        # No flush/close: the record must already be durable on disk.
        assert len(scan_wal(tmp_path / "wal").events) == 1
        w.close()


# ---------------------------------------------------------------------------
# Scan + repair of torn and corrupt logs
# ---------------------------------------------------------------------------


def _write_batches(wal_dir, count, *, rows=8, segment_bytes=1 << 20):
    rng = np.random.default_rng(0)
    with WalWriter(wal_dir, fsync="never", segment_bytes=segment_bytes) as w:
        for _ in range(count):
            w.append(
                EdgeBatch(
                    0,
                    0,
                    1,
                    True,
                    rng.integers(0, 32, rows),
                    rng.integers(0, 32, rows),
                    None,
                    rows=rows,
                )
            )


class TestScanAndRepair:
    def test_truncation_mid_record_header(self, tmp_path):
        wal_dir = tmp_path / "wal"
        _write_batches(wal_dir, 5)
        seg = list_segments(wal_dir)[-1]
        size = seg.stat().st_size
        with open(seg, "r+b") as fh:
            fh.truncate(size - 1)  # cut inside the final record's payload
        scan = scan_wal(wal_dir)
        assert scan.torn and len(scan.events) == 4
        assert repair_wal(scan)
        rescan = scan_wal(wal_dir)
        assert not rescan.torn and len(rescan.events) == 4

    def test_truncation_mid_batch_arrays(self, tmp_path):
        wal_dir = tmp_path / "wal"
        _write_batches(wal_dir, 5, rows=32)
        seg = list_segments(wal_dir)[-1]
        # Cut deep inside the last record's src/dst array bytes.
        with open(seg, "r+b") as fh:
            fh.truncate(seg.stat().st_size - 100)
        scan = scan_wal(wal_dir)
        assert scan.torn and len(scan.events) == 4
        repair_wal(scan)
        assert len(scan_wal(wal_dir).events) == 4

    def test_crc_corruption_stops_scan_and_drops_suffix(self, tmp_path):
        wal_dir = tmp_path / "wal"
        _write_batches(wal_dir, 12, rows=32, segment_bytes=1024)
        segments = list_segments(wal_dir)
        assert len(segments) >= 3
        # Flip one payload byte in the *first* record of the second segment.
        target = segments[1]
        data = bytearray(target.read_bytes())
        data[SEGMENT_HEADER.size + RECORD_HEADER.size + 10] ^= 0xFF
        target.write_bytes(bytes(data))
        scan = scan_wal(wal_dir)
        assert scan.torn
        assert "CRC" in scan.torn_detail
        # Valid history = exactly segment 1's records; all later segments drop.
        assert scan.dropped == segments[2:]
        assert scan.tail_path == target
        max_seq = scan.events[-1].seq
        assert max_seq < 11
        repair_wal(scan)
        rescan = scan_wal(wal_dir)
        assert not rescan.torn
        assert [e.seq for e in rescan.events] == list(range(max_seq + 1))

    def test_garbage_segment_header(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        (wal_dir / "seg-00000000000000000000.wal").write_bytes(b"not a wal segment")
        scan = scan_wal(wal_dir)
        assert scan.torn and not scan.events
        repair_wal(scan)
        assert not list_segments(wal_dir)

    def test_empty_directory(self, tmp_path):
        scan = scan_wal(tmp_path / "missing")
        assert not scan.torn and scan.next_seq == 0 and not scan.events


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


class TestCheckpoints:
    def _snap(self, weighted):
        g = Graph.create("slabhash", 32, weighted=weighted)
        rng = np.random.default_rng(1)
        w = rng.integers(1, 50, 40) if weighted else None
        g.insert_edges(rng.integers(0, 32, 40), rng.integers(0, 32, 40), w)
        return g.snapshot()

    @pytest.mark.parametrize("weighted", [False, True])
    def test_roundtrip(self, tmp_path, weighted):
        snap = self._snap(weighted)
        manifest = write_checkpoint(
            tmp_path, snap, seq=17, backend="slabhash", weighted=weighted, mutation_version=5
        )
        assert manifest.seq == 17 and manifest.mutation_version == 5
        back, loaded = load_checkpoint(manifest.path)
        assert_snaps_identical(back, snap)
        assert loaded.backend == "slabhash"

    def test_crc_mismatch_rejected_and_skipped(self, tmp_path):
        snap = self._snap(False)
        m = write_checkpoint(tmp_path, snap, seq=3, backend="slabhash", weighted=False)
        write_checkpoint(tmp_path, snap, seq=9, backend="slabhash", weighted=False)
        newest = tmp_path / "ckpt-00000000000000000009.npz"
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        with pytest.raises(ValidationError, match="CRC32"):
            load_checkpoint(tmp_path / "ckpt-00000000000000000009.json")
        found = latest_valid_checkpoint(tmp_path)
        assert found is not None and found[1].seq == m.seq  # fell back to seq 3

    def test_deleted_npz_skipped(self, tmp_path):
        snap = self._snap(False)
        write_checkpoint(tmp_path, snap, seq=3, backend="slabhash", weighted=False)
        write_checkpoint(tmp_path, snap, seq=9, backend="slabhash", weighted=False)
        (tmp_path / "ckpt-00000000000000000009.npz").unlink()
        assert latest_valid_checkpoint(tmp_path)[1].seq == 3

    def test_min_seq_excludes_unreplayable(self, tmp_path):
        snap = self._snap(False)
        write_checkpoint(tmp_path, snap, seq=3, backend="slabhash", weighted=False)
        write_checkpoint(tmp_path, snap, seq=9, backend="slabhash", weighted=False)
        assert latest_valid_checkpoint(tmp_path, min_seq=5)[1].seq == 9
        assert latest_valid_checkpoint(tmp_path, min_seq=10) is None

    def test_empty_directory(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path / "none") is None


# ---------------------------------------------------------------------------
# Crash recovery, cross-backend (the acceptance criterion)
# ---------------------------------------------------------------------------


def _build_store(tmp_path, name, weighted, *, checkpoint=True, seed=0):
    """Create a store, run the mixed workload with a mid-way checkpoint,
    and return ``(store_dir, live_snapshot)`` with the writer abandoned
    (crash-style: synced but never closed)."""
    store = tmp_path / "store"
    rng = np.random.default_rng(seed)
    dg = open_graph(store, name, num_vertices=32, weighted=weighted, fsync="never")
    mutate(dg.graph, rng, weighted=weighted)
    if checkpoint:
        dg.checkpoint()
    mutate(dg.graph, rng, weighted=weighted, rounds=2)
    live = dg.graph.snapshot()
    dg.wal.close()  # flush buffers only — no unsubscribe, no clean close
    return store, live


class TestCrashRecovery:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    @pytest.mark.parametrize("weighted", [False, True])
    def test_recovered_snapshot_bit_identical(self, tmp_path, name, weighted):
        if weighted and not api.capabilities(name).weighted:
            pytest.skip(f"{name} does not support weights")
        store, live = _build_store(tmp_path, name, weighted)
        rec = open_graph(store, fsync="never")
        assert rec.recovered_checkpoint is not None
        assert rec.replayed_events > 0
        assert_snaps_identical(rec.graph.snapshot(), live, f"{name} weighted={weighted}")
        rec.close()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_full_replay_without_any_checkpoint(self, tmp_path, name):
        store, live = _build_store(tmp_path, name, False, checkpoint=False)
        rec = open_graph(store, fsync="never")
        assert rec.recovered_checkpoint is None
        assert_snaps_identical(rec.graph.snapshot(), live, name)
        rec.close()

    def test_deleting_all_checkpoints_still_recovers(self, tmp_path):
        store, live = _build_store(tmp_path, "slabhash", True)
        for p in (store / "checkpoints").iterdir():
            p.unlink()
        rec = open_graph(store, fsync="never")
        assert rec.recovered_checkpoint is None
        assert_snaps_identical(rec.graph.snapshot(), live)
        rec.close()

    def test_deleting_newest_checkpoint_falls_back(self, tmp_path):
        store = tmp_path / "store"
        rng = np.random.default_rng(3)
        dg = open_graph(store, "slabhash", num_vertices=32, weighted=True, fsync="never")
        mutate(dg.graph, rng, weighted=True)
        first = dg.checkpoint()
        mutate(dg.graph, rng, weighted=True, rounds=2)
        second = dg.checkpoint()
        mutate(dg.graph, rng, weighted=True, rounds=1)
        live = dg.graph.snapshot()
        dg.wal.close()
        second.path.unlink()
        second.npz_path.unlink()
        rec = open_graph(store, fsync="never")
        assert rec.recovered_checkpoint.seq == first.seq
        assert_snaps_identical(rec.graph.snapshot(), live)
        rec.close()

    def test_torn_tail_truncated_and_appends_continue(self, tmp_path):
        store, _live = _build_store(tmp_path, "slabhash", False)
        seg = list_segments(store / "wal")[-1]
        with open(seg, "r+b") as fh:
            fh.truncate(seg.stat().st_size - 9)  # tear the final record
        before = scan_wal(store / "wal")
        rec = open_graph(store, fsync="never")
        assert rec.repaired_torn_tail
        # The recovered graph equals a replay of the surviving prefix.
        reference = Graph.create("slabhash", 32)
        for e in before.events:
            apply_event(reference, e)
        assert_snaps_identical(rec.graph.snapshot(), reference.snapshot())
        # The store keeps working: append, crash again, recover again.
        rec.graph.insert_edges([0, 1], [2, 3])
        live = rec.graph.snapshot()
        rec.wal.close()
        rec2 = open_graph(store, fsync="never")
        assert_snaps_identical(rec2.graph.snapshot(), live)
        rec2.close()

    def test_corrupt_mid_log_record_recovers_prefix(self, tmp_path):
        # No checkpoint: a corrupt record truncates history at that point
        # and recovery replays only the surviving prefix.  (With a later
        # checkpoint the store would anchor there instead — see above.)
        store, _ = _build_store(tmp_path, "slabhash", False, checkpoint=False)
        seg = list_segments(store / "wal")[0]
        data = bytearray(seg.read_bytes())
        data[len(data) // 2] ^= 0x01  # lands inside some mid-log record
        seg.write_bytes(bytes(data))
        scan = scan_wal(store / "wal")
        assert scan.torn and scan.events
        rec = open_graph(store, fsync="never")  # recovers whatever survived
        assert rec.repaired_torn_tail
        reference = Graph.create("slabhash", 32)
        for e in scan.events:
            apply_event(reference, e)
        assert_snaps_identical(rec.graph.snapshot(), reference.snapshot())
        rec.close()

    def test_bulk_build_and_maintenance_replay(self, tmp_path):
        store = tmp_path / "store"
        coo = COO([0, 1, 2], [1, 2, 3], 16, weights=[5, 6, 7])
        dg = open_graph(store, "slabhash", num_vertices=16, weighted=True, fsync="never")
        dg.graph.bulk_build(coo)
        dg.graph.rehash()  # maintenance: logged but skipped on replay
        dg.graph.insert_edges([3], [0], [9])
        live = dg.graph.snapshot()
        dg.wal.close()
        rec = open_graph(store, fsync="never")
        assert_snaps_identical(rec.graph.snapshot(), live)
        rec.close()


# ---------------------------------------------------------------------------
# Store identity + DurableGraph behavior
# ---------------------------------------------------------------------------


class TestStoreBehavior:
    def test_fresh_store_requires_num_vertices(self, tmp_path):
        with pytest.raises(ValidationError, match="num_vertices"):
            open_graph(tmp_path / "store")

    def test_read_only_requires_existing_store(self, tmp_path):
        with pytest.raises(ValidationError, match="read replica"):
            open_graph(tmp_path / "store", read_only=True)

    def test_identity_mismatch_raises(self, tmp_path):
        store = tmp_path / "store"
        open_graph(store, "slabhash", num_vertices=32, fsync="never").close()
        with pytest.raises(ValidationError, match="backend"):
            open_graph(store, "hornet")
        with pytest.raises(ValidationError, match="num_vertices"):
            open_graph(store, num_vertices=64)
        with pytest.raises(ValidationError, match="weighted"):
            open_graph(store, weighted=True)
        # Omitting the identity accepts the stored one.
        open_graph(store, fsync="never").close()

    def test_auto_checkpoint_cadence(self, tmp_path):
        store = tmp_path / "store"
        dg = open_graph(
            store, "slabhash", num_vertices=64, fsync="never", checkpoint_every_rows=100
        )
        rng = np.random.default_rng(0)
        for _ in range(6):
            dg.graph.insert_edges(rng.integers(0, 64, 40), rng.integers(0, 64, 40))
        manifests = list((store / "checkpoints").glob("*.json"))
        assert len(manifests) >= 2  # 240 rows at a 100-row cadence
        dg.close()
        rec = open_graph(store, fsync="never")
        assert rec.recovered_checkpoint is not None
        rec.close()

    def test_replica_is_read_only_and_tails(self, tmp_path):
        store = tmp_path / "store"
        writer = open_graph(store, "slabhash", num_vertices=32, fsync="never")
        writer.graph.insert_edges([0, 1], [1, 2])
        writer.checkpoint()
        writer.sync()

        replica = open_graph(store, read_only=True)
        with pytest.raises(ValidationError, match="read-only"):
            replica.checkpoint()
        files_before = {p: p.stat().st_size for p in (store / "wal").iterdir()}
        assert replica.tail() == 0  # nothing new yet
        inc = IncrementalConnectedComponents(replica.graph)

        writer.graph.insert_edges([2, 3], [3, 4])
        writer.graph.delete_edges([0], [1])
        writer.sync()
        assert replica.tail() == 2
        assert_snaps_identical(replica.graph.snapshot(), writer.graph.snapshot())
        # Cursor-based incremental analytics ride the replica's event log.
        from repro.analytics.connected_components import connected_components

        assert np.array_equal(inc.labels(), connected_components(replica.graph.snapshot()))
        # The replica never modified the writer's files.
        files_after = {p: p.stat().st_size for p in (store / "wal").iterdir()}
        assert files_before.keys() <= files_after.keys()
        for p, size in files_before.items():
            assert files_after[p] >= size
        with pytest.raises(ValidationError, match="tail"):
            writer.tail()
        writer.close()

    def test_follower_sees_rotation(self, tmp_path):
        wal_dir = tmp_path / "wal"
        batch = EdgeBatch(0, 0, 1, True, np.arange(64), np.arange(64), None, rows=64)
        writer = WalWriter(wal_dir, fsync="never", segment_bytes=2048)
        follower = LogFollower(wal_dir)
        total = 0
        for _ in range(5):
            writer.append(batch)
            writer.flush()
            total += len(follower.poll())
        writer.append(batch)
        writer.flush()
        total += len(follower.poll())
        assert total == 6
        assert len(list_segments(wal_dir)) > 1
        writer.close()

    def test_context_manager_closes(self, tmp_path):
        with open_graph(tmp_path / "store", "slabhash", num_vertices=8, fsync="never") as dg:
            dg.graph.insert_edges([0, 2], [1, 3])
            live = dg.graph.snapshot()
        assert dg.read_only  # wal detached by close()
        rec = open_graph(tmp_path / "store", fsync="never")
        assert_snaps_identical(rec.graph.snapshot(), live)
        rec.close()


# ---------------------------------------------------------------------------
# Durable scenario runs: pause / crash / resume
# ---------------------------------------------------------------------------


class TestDurableScenarios:
    def _final_snapshot(self, directory):
        dg = open_graph(directory, fsync="never")
        try:
            return dg.graph.snapshot()
        finally:
            dg.close()

    def test_pause_resume_bit_identical(self, tmp_path):
        sc = mixed_scenario(1 << 8, batch=48)
        part = run_scenario_durable(
            sc, "slabhash", tmp_path / "a", fsync="never", stop_after_phase=2
        )
        assert len(part.phases) == 3
        done = run_scenario_durable(sc, "slabhash", tmp_path / "a", fsync="never")
        assert len(done.phases) == len(sc.phases)
        full = run_scenario_durable(sc, "slabhash", tmp_path / "b", fsync="never")
        assert len(full.phases) == len(sc.phases)
        assert_snaps_identical(
            self._final_snapshot(tmp_path / "a"), self._final_snapshot(tmp_path / "b")
        )
        # The resumed run applied the same batches the uninterrupted one did.
        assert [p.applied for p in done.phases] == [p.applied for p in full.phases]

    def test_crash_mid_phase_converges(self, tmp_path):
        sc = mixed_scenario(1 << 8, batch=48)
        run_scenario_durable(sc, "slabhash", tmp_path / "a", fsync="never", stop_after_phase=1)
        # Simulate a crash partway into the next phase: duplicate records
        # land in the WAL (re-inserts of existing edges, exactly what a
        # replayed partial phase produces) without a progress update.
        dg = open_graph(tmp_path / "a", fsync="never")
        snap = dg.graph.snapshot()
        src = np.repeat(np.arange(snap.num_vertices), np.diff(snap.row_ptr))[:3]
        dg.graph.insert_edges(src, snap.col_idx[:3])
        dg.wal.close()
        done = run_scenario_durable(sc, "slabhash", tmp_path / "a", fsync="never")
        assert len(done.phases) == len(sc.phases)
        full = run_scenario_durable(sc, "slabhash", tmp_path / "b", fsync="never")
        assert_snaps_identical(
            self._final_snapshot(tmp_path / "a"), self._final_snapshot(tmp_path / "b")
        )
        assert [p.index for p in done.phases] == [p.index for p in full.phases]

    def test_resuming_different_scenario_raises(self, tmp_path):
        sc = mixed_scenario(1 << 8, batch=48)
        run_scenario_durable(sc, "slabhash", tmp_path / "a", fsync="never", stop_after_phase=0)
        other = mixed_scenario(1 << 8, batch=48, seed=9)
        with pytest.raises(ValidationError, match="seed"):
            run_scenario_durable(other, "slabhash", tmp_path / "a", fsync="never")


# ---------------------------------------------------------------------------
# The t13 bench artifact + its committed CI gate
# ---------------------------------------------------------------------------


def test_committed_quick_baseline_gates_recovery_speedup():
    """The t13 quick gate: checkpoint+tail recovery ≥ 3x cheaper than a
    cold full-WAL replay at |E| = 2^18 with a 2^12-row tail."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "benchmarks/baselines/BENCH_baseline_quick.json"
    doc = json.loads(path.read_text())
    metrics = {r["metric"]: r["value"] for a in doc["artifacts"] for r in a.get("results", [])}
    gate = [
        k
        for k in metrics
        if k.startswith("t13/E=2^18/tail=2^12/") and k.endswith("/recovery_speedup")
    ]
    assert gate, "t13 recovery-speedup metrics missing from the quick baseline"
    for key in gate:
        assert metrics[key] >= 3.0, (key, metrics[key])


def test_persist_artifact_quick_structure():
    from repro.bench.persist_bench import persist_artifact

    art = persist_artifact(seed=0, quick=True)
    keys = {r.metric for r in art.results}
    prefix = "t13/E=2^18/tail=2^12/slabhash/"
    for suffix in (
        "recover",
        "cold_replay",
        "recovery_speedup",
        "wal_bytes_per_row",
        "ckpt_size",
        "wal_append_wall",
        "ckpt_wall",
        "recover_wall",
    ):
        assert prefix + suffix in keys
    assert len(art.rows) == 1
