"""Cross-structure equivalence: all four dynamic structures, one op stream.

The bench harness compares structures on identical inputs, which is only
meaningful if they implement identical *semantics*.  This property test
runs a random insert/delete stream through ours, Hornet, faimGraph, and
GPMA and requires identical final edge sets and edge counts at every step.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import STRUCTURES, make_structure
from tests.conftest import structure_edges

N = 40

op_stream = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.lists(st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=60),
    ),
    max_size=8,
)


@given(op_stream)
@settings(max_examples=30, deadline=None)
def test_all_structures_agree(op_list):
    graphs = {name: make_structure(name, N, weighted=False) for name in STRUCTURES}
    ref: set[tuple[int, int]] = set()
    for op, pairs in op_list:
        if not pairs:
            continue
        src = np.array([p[0] for p in pairs])
        dst = np.array([p[1] for p in pairs])
        if op == "insert":
            expected_delta = {(s, d) for s, d in pairs if s != d} - ref
            ref |= {(s, d) for s, d in pairs if s != d}
        else:
            expected_delta = {(s, d) for s, d in pairs} & ref
            ref -= set(pairs)
        for name, g in graphs.items():
            if op == "insert":
                added = g.insert_edges(src, dst)
                assert added == len(expected_delta), (name, op)
            else:
                removed = g.delete_edges(src, dst)
                assert removed == len(expected_delta), (name, op)
            assert structure_edges(g) == ref, (name, op)
            assert g.num_edges() == len(ref), name


@given(op_stream)
@settings(max_examples=20, deadline=None)
def test_edge_exists_agrees(op_list):
    graphs = {name: make_structure(name, N, weighted=False) for name in STRUCTURES}
    rng = np.random.default_rng(0)
    for op, pairs in op_list:
        if not pairs:
            continue
        src = np.array([p[0] for p in pairs])
        dst = np.array([p[1] for p in pairs])
        for g in graphs.values():
            (g.insert_edges if op == "insert" else g.delete_edges)(src, dst)
    qs = rng.integers(0, N, 100)
    qd = rng.integers(0, N, 100)
    answers = [graphs[name].edge_exists(qs, qd).tolist() for name in STRUCTURES]
    assert all(a == answers[0] for a in answers)
