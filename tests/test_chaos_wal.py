"""The durable log under injected disk faults.

Satellites 2 and 3 of the robustness PR: torn and failed writes keep the
on-disk log ``scan_wal``-clean (the writer truncates the partial record
and surfaces a typed PersistError), ``repair_wal`` is idempotent,
``LogFollower.poll`` stays exact across segment rotation while appends
are faulting, teardown (``close``/``flush``) is safe after any fault,
and the sharded stores count durability gaps, refuse unsafe rebuilds,
and recover exactly once a checkpoint heals the gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ShardedGraph
from repro.chaos import FaultPlan, FaultSpec, FaultyFile, FaultyStore
from repro.eventlog.events import EdgeBatch
from repro.persist import (
    LogFollower,
    WalWriter,
    encode_record,
    list_segments,
    repair_wal,
    scan_wal,
)
from repro.util.errors import PersistError

pytestmark = pytest.mark.chaos


def batch(seq, rows=8, seed=0):
    rng = np.random.default_rng(seed + seq)
    return EdgeBatch(
        seq, seq, seq + 1, True,
        rng.integers(0, 64, rows), rng.integers(0, 64, rows), None, rows=rows,
    )


def faulty_writer(wal_dir, plan, **kwargs):
    store = FaultyStore(plan, prefix="wal")
    kwargs.setdefault("fsync", "never")
    return WalWriter(wal_dir, opener=store.opener, **kwargs)


class TestTornAndFailedWrites:
    def test_failed_append_is_typed_and_log_stays_clean(self, tmp_path):
        plan = FaultPlan(0, (FaultSpec("wal.write", kind="oserror", after=3),))
        w = faulty_writer(tmp_path / "wal", plan)
        w.append(batch(0))
        w.append(batch(1))
        # Arrival 3 is the next record's frame (arrivals 0-2: segment
        # header + two records) — the append fails, the log does not.
        with pytest.raises(PersistError) as exc:
            w.append(batch(2))
        assert exc.value.op == "write"
        w.close()
        scan = scan_wal(tmp_path / "wal")
        assert not scan.torn
        assert [e.seq for e in scan.events] == [0, 1]

    def test_torn_append_truncated_away(self, tmp_path):
        plan = FaultPlan(
            0, (FaultSpec("wal.write", kind="torn", after=3, torn_fraction=0.5),)
        )
        w = faulty_writer(tmp_path / "wal", plan)
        w.append(batch(0))
        w.append(batch(1))
        with pytest.raises(PersistError):
            w.append(batch(2))
        # The half-written record was rewound: the scan sees clean history
        # and a writer resumed at the next seq appends contiguously.
        scan = scan_wal(tmp_path / "wal")
        assert not scan.torn and [e.seq for e in scan.events] == [0, 1]
        if not w.broken:
            w.append(batch(2))
            w.close()
            scan = scan_wal(tmp_path / "wal")
            assert [e.seq for e in scan.events] == [0, 1, 2]

    def test_teardown_safe_after_fault(self, tmp_path):
        plan = FaultPlan(0, (FaultSpec("wal.write", kind="oserror", after=2),))
        w = faulty_writer(tmp_path / "wal", plan)
        w.append(batch(0))
        with pytest.raises(PersistError):
            w.append(batch(1))
        # Idempotent, non-raising teardown regardless of fault state.
        w.flush()
        w.close()
        w.close()
        w.flush()

    def test_injected_close_fault_does_not_leak(self, tmp_path):
        plan = FaultPlan(0, (FaultSpec("wal.close", kind="oserror"),))
        w = faulty_writer(tmp_path / "wal", plan)
        w.append(batch(0))
        w.close()  # the injected close failure is absorbed, not raised
        assert scan_wal(tmp_path / "wal").events


class TestRepairIdempotency:
    def _tear_tail(self, wal_dir, plan=None):
        """Append a half-record to the live segment via a FaultyFile."""
        seg = list_segments(wal_dir)[-1]
        record = encode_record(batch(99), 99)
        plan = plan or FaultPlan(0, (FaultSpec("raw.write", kind="torn"),))
        fh = FaultyFile(open(seg, "ab"), plan, "raw")
        with pytest.raises(OSError):
            fh.write(record)
        fh._fh.close()

    def test_repair_wal_is_idempotent(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WalWriter(wal_dir, fsync="never") as w:
            for i in range(4):
                w.append(batch(i))
        self._tear_tail(wal_dir)
        scan = scan_wal(wal_dir)
        assert scan.torn
        assert repair_wal(scan) is True
        clean = scan_wal(wal_dir)
        assert not clean.torn and [e.seq for e in clean.events] == [0, 1, 2, 3]
        # Repairing an already-clean scan changes nothing.
        assert repair_wal(clean) is False
        again = scan_wal(wal_dir)
        assert not again.torn and len(again.events) == 4

    def test_repair_then_tear_then_repair(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WalWriter(wal_dir, fsync="never") as w:
            for i in range(3):
                w.append(batch(i))
        for _ in range(2):  # tear, repair, tear again, repair again
            self._tear_tail(wal_dir)
            scan = scan_wal(wal_dir)
            assert scan.torn
            repair_wal(scan)
            assert not scan_wal(wal_dir).torn
        assert [e.seq for e in scan_wal(wal_dir).events] == [0, 1, 2]


class TestFollowerUnderFaults:
    def test_poll_across_rotation_while_appends_fault(self, tmp_path):
        """The follower sees exactly the records that survived, in order,
        across segment boundaries, while every third append is faulting."""
        wal_dir = tmp_path / "wal"
        plan = FaultPlan(
            3, (FaultSpec("wal.write", kind="oserror", after=4, max_fires=None, rate=0.3),)
        )
        # Small segments force rotation mid-stream.
        w = faulty_writer(wal_dir, plan, segment_bytes=2048)
        follower = LogFollower(wal_dir)
        appended, seen = [], []
        seq = 0
        for i in range(40):
            if w.broken:
                w.close()
                seq = scan_wal(wal_dir).next_seq
                w = faulty_writer(wal_dir, plan, segment_bytes=2048, start_seq=seq)
            try:
                w.append(batch(seq, rows=16))
                appended.append(seq)
                seq += 1
            except PersistError:
                pass  # truncated away; the same seq retries next round
            if i % 7 == 0:
                w.flush()
                seen.extend(e.seq for e in follower.poll())
        w.flush()
        w.close()
        seen.extend(e.seq for e in follower.poll())
        assert len(list_segments(wal_dir)) > 1
        scan = scan_wal(wal_dir)
        assert not scan.torn
        assert [e.seq for e in scan.events] == appended == seen
        assert plan.fires_at("wal.write") > 0


class TestShardStoresUnderFaults:
    def _service(self, tmp_path, plan):
        svc = ShardedGraph.create("slabhash", 64, num_shards=2, partial_dispatch="record")
        store = FaultyStore(plan, prefix="wal")
        svc.attach_durability(tmp_path / "stores", fsync="never", opener=store.opener)
        return svc

    def test_gap_refuses_rebuild_until_checkpoint_heals(self, tmp_path):
        plan = FaultPlan(0)
        svc = self._service(tmp_path, plan)
        rng = np.random.default_rng(5)
        svc.insert_edges(
            rng.integers(0, 64, 40, dtype=np.int64), rng.integers(0, 64, 40, dtype=np.int64)
        )
        # Fail the next WAL append on every shard's log: applied in
        # memory, lost to disk — a durability gap, not a dead shard.
        plan.arm("wal.write", kind="oserror", max_fires=2)
        src = rng.integers(0, 64, 30, dtype=np.int64)
        dst = rng.integers(0, 64, 30, dtype=np.int64)
        svc.insert_edges(src, dst)
        assert svc.stores.durability_gap >= 1
        gapped = next(s for s in range(2) if svc.stores.gaps[s])
        with pytest.raises(PersistError, match="durability gap"):
            svc.stores.rebuild(gapped, None)
        # Healing: a checkpoint captures the full live state.
        svc.stores.checkpoint()
        assert svc.stores.durability_gap == 0
        live = svc.snapshot()
        svc.kill_shard(gapped)
        svc.rebuild_shard(gapped)
        assert svc.redrive_pending() == 0
        got = svc.snapshot()
        assert np.array_equal(got.row_ptr, live.row_ptr)
        assert np.array_equal(got.col_idx, live.col_idx)

    def test_partial_dispatch_recorded_on_wal_fault(self, tmp_path):
        plan = FaultPlan(0)
        svc = self._service(tmp_path, plan)
        plan.arm("wal.write", kind="oserror", max_fires=1)
        rng = np.random.default_rng(6)
        svc.insert_edges(
            rng.integers(0, 64, 30, dtype=np.int64), rng.integers(0, 64, 30, dtype=np.int64)
        )
        assert len(svc.pending) == 1
        assert svc.fault_stats["partial_dispatches"] == 1
