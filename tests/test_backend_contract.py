"""Cross-backend contract suite: every registered backend, one scenario.

The :mod:`repro.api` registry promises that any backend constructed by
name implements the :class:`repro.api.GraphBackend` surface with identical
semantics (self-loop drop, replace-on-duplicate, exact counts) and that
its :class:`repro.api.Capabilities` flags match actual behavior — a flag
is a lie if the operation it advertises raises, or if a disabled flag's
operation silently succeeds.  This suite runs the same
insert/delete/query/export scenario over **all** registered backends so a
new backend (or a regression in an old one) fails loudly here rather than
deep inside the bench harness.
"""

import numpy as np
import pytest

import repro.api as api
from repro.analytics import (
    bfs,
    connected_components,
    core_numbers,
    pagerank,
    triangle_count_csr,
)
from repro.api import CSRSnapshot, Graph, GraphBackend, as_snapshot, cached_snapshot
from repro.coo import COO
from repro.gpusim.counters import counting
from repro.util.errors import ValidationError

ALL_BACKENDS = sorted(api.backend_names())
N = 32

#: A fixed scenario batch: duplicates (0,1), one self-loop (2,2).
SRC = [0, 0, 1, 2, 2, 3]
DST = [1, 1, 2, 2, 0, 4]
UNIQUE_EDGES = {(0, 1), (1, 2), (2, 0), (3, 4)}


def make(name, weighted=False):
    return api.create(name, num_vertices=N, weighted=weighted)


def edge_set(g):
    coo = g.export_coo()
    return set(zip(coo.src.tolist(), coo.dst.tolist()))


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestProtocolSurface:
    def test_is_graph_backend(self, name):
        g = make(name)
        assert isinstance(g, GraphBackend)
        assert g.num_vertices == N

    def test_insert_semantics(self, name):
        g = make(name)
        added = g.insert_edges(SRC, DST)
        assert added == len(UNIQUE_EDGES)  # self-loop dropped, dup collapsed
        assert g.num_edges() == len(UNIQUE_EDGES)
        assert edge_set(g) == UNIQUE_EDGES
        # Re-inserting is idempotent (replace semantics).
        assert g.insert_edges(SRC, DST) == 0
        assert g.num_edges() == len(UNIQUE_EDGES)

    def test_queries(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        assert g.edge_exists([0, 1, 0, 9], [1, 2, 9, 0]).tolist() == [
            True,
            True,
            False,
            False,
        ]
        assert g.degree([0, 1, 2, 3, 9]).tolist() == [1, 1, 1, 1, 0]
        dsts, _ = g.neighbors(2)
        assert sorted(dsts.tolist()) == [0]
        owner, dsts, _ = g.adjacencies(np.array([0, 1, 9]))
        got = sorted(zip(owner.tolist(), dsts.tolist()))
        assert got == [(0, 1), (1, 2)]

    def test_delete_semantics(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        removed = g.delete_edges([0, 0, 7], [1, 1, 8])  # dup + absent
        assert removed == 1
        assert g.num_edges() == len(UNIQUE_EDGES) - 1
        assert not g.edge_exists([0], [1])[0]

    def test_export_and_sorted_adjacency_agree(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        row_ptr, col = g.sorted_adjacency()
        assert row_ptr.shape[0] == N + 1
        assert int(row_ptr[-1]) == g.num_edges()
        rebuilt = set()
        for v in range(N):
            for d in col[row_ptr[v] : row_ptr[v + 1]].tolist():
                rebuilt.add((v, d))
        assert rebuilt == edge_set(g)
        # Rows must be ascending.
        for v in range(N):
            row = col[row_ptr[v] : row_ptr[v + 1]]
            assert np.all(np.diff(row) > 0)

    def test_bulk_build_matches_incremental(self, name):
        rng = np.random.default_rng(7)
        src = rng.integers(0, N, 100)
        dst = rng.integers(0, N, 100)
        from repro.coo import COO

        g_bulk = make(name)
        g_bulk.bulk_build(COO(src, dst, N))
        g_inc = make(name)
        g_inc.insert_edges(src, dst)
        assert edge_set(g_bulk) == edge_set(g_inc)
        assert g_bulk.num_edges() == g_inc.num_edges()

    def test_memory_bytes_reported(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        assert isinstance(g.memory_bytes(), int)
        assert g.memory_bytes() > 0

    def test_snapshot_view(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        snap = g.snapshot()
        assert snap.num_vertices == N
        assert snap.num_edges == g.num_edges()
        assert set(zip(snap.sources().tolist(), snap.col_idx.tolist())) == edge_set(g)


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestCapabilityFlagsMatchBehavior:
    def test_weighted_flag(self, name):
        caps = api.capabilities(name)
        if caps.weighted:
            g = make(name, weighted=True)
            g.insert_edges([0, 1], [1, 2], weights=[11, 22])
            found, w = g.edge_weights([0, 1, 5], [1, 2, 6])
            assert found.tolist() == [True, True, False]
            assert w[:2].tolist() == [11, 22]
            # Replace semantics: the most recent weight wins.
            g.insert_edges([0], [1], weights=[99])
            _, w = g.edge_weights([0], [1])
            assert w.tolist() == [99]
        else:
            with pytest.raises(ValidationError):
                make(name, weighted=True)
        # Every backend, configured unweighted, must reject weights loudly.
        g = make(name, weighted=False)
        with pytest.raises(ValidationError):
            g.insert_edges([0], [1], weights=[5])

    def test_vertex_dynamic_flag(self, name):
        caps = api.capabilities(name)
        g = make(name)
        # Symmetric edge set so undirected-semantics deletion is well-posed.
        g.insert_edges([0, 1, 1, 2], [1, 0, 2, 1])
        if caps.vertex_dynamic:
            g.delete_vertices([1])
            assert not g.edge_exists([0, 2, 1, 1], [1, 1, 0, 2]).any()
        else:
            with pytest.raises(NotImplementedError):
                g.delete_vertices([1])

    def test_sorted_neighbors_flag(self, name):
        if not api.capabilities(name).sorted_neighbors:
            pytest.skip("order not guaranteed for this backend")
        g = make(name)
        rng = np.random.default_rng(3)
        dsts = rng.permutation(np.arange(1, 20))
        g.insert_edges(np.zeros(dsts.size, np.int64), dsts)
        got, _ = g.neighbors(0)
        assert got.tolist() == sorted(got.tolist())

    def test_range_queries_flag(self, name):
        caps = api.capabilities(name)
        g = make(name)
        assert hasattr(g, "neighbor_range") == caps.range_queries

    def test_maintenance_flags(self, name):
        caps = api.capabilities(name)
        g = make(name)
        assert hasattr(g, "rehash") == caps.rehash
        assert hasattr(g, "flush_tombstones") == caps.tombstone_flush

    def test_instance_capabilities_narrow_weighted(self, name):
        g = make(name, weighted=False)
        assert not g.instance_capabilities().weighted


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestFacade:
    def test_create_and_roundtrip(self, name):
        g = Graph.create(name, num_vertices=N)
        assert g.insert_edges(SRC, DST) == len(UNIQUE_EDGES)
        assert g.num_edges() == len(UNIQUE_EDGES)
        assert g.edge_exists([0], [1])[0]
        assert g.degree([0]).tolist() == [1]
        assert g.memory_bytes() > 0

    def test_self_loop_error_policy(self, name):
        g = Graph.create(name, num_vertices=N, self_loops="error")
        with pytest.raises(ValidationError):
            g.insert_edges([2], [2])

    def test_unweighted_rejects_weights(self, name):
        g = Graph.create(name, num_vertices=N, weighted=False)
        with pytest.raises(ValidationError):
            g.insert_edges([0], [1], weights=[3])

    def test_weight_defaulting(self, name):
        caps = api.capabilities(name)
        if not caps.weighted:
            pytest.skip("unweighted backend")
        g = Graph.create(name, num_vertices=N, weighted=True, default_weight=7)
        g.insert_edges([0], [1])  # no weights given -> default fills
        _, w = g.edge_weights([0], [1])
        assert w.tolist() == [7]

    def test_bounds_validated_once(self, name):
        g = Graph.create(name, num_vertices=N)
        with pytest.raises(ValidationError):
            g.insert_edges([0], [N + 5])
        with pytest.raises(ValidationError):
            g.delete_edges([-1], [0])
        with pytest.raises(ValidationError):
            g.edge_exists([N], [0])
        with pytest.raises(ValidationError):
            g.degree([N])
        with pytest.raises(ValidationError):
            g.degree([-1])

    def test_capability_gated_maintenance(self, name):
        g = Graph.create(name, num_vertices=N)
        caps = g.capabilities
        if not caps.rehash:
            with pytest.raises(ValidationError):
                g.rehash()
        if not caps.tombstone_flush:
            with pytest.raises(ValidationError):
                g.flush_tombstones()
        if not caps.vertex_dynamic:
            with pytest.raises(ValidationError):
                g.delete_vertices([0])


def _cold_snapshot(backend) -> CSRSnapshot:
    """Reference rebuild bypassing every cache layer."""
    return CSRSnapshot.from_coo(backend.export_coo())


def _assert_snapshots_identical(got: CSRSnapshot, want: CSRSnapshot, ctx):
    assert got.num_vertices == want.num_vertices, ctx
    assert np.array_equal(got.row_ptr, want.row_ptr), ctx
    assert np.array_equal(got.col_idx, want.col_idx), ctx
    if want.weights is None:
        assert got.weights is None, ctx
    else:
        assert np.array_equal(got.weights, want.weights), ctx


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestSnapshotCache:
    """The versioned snapshot cache: invalidation, identity, delta-merge."""

    def test_every_mutating_op_bumps_version(self, name):
        caps = api.capabilities(name)
        g = make(name)
        versions = [g.mutation_version]

        def bumped(label):
            versions.append(g.mutation_version)
            assert versions[-1] > versions[-2], (name, label)

        g.insert_edges(SRC, DST)
        bumped("insert_edges")
        g.delete_edges([0], [1])
        bumped("delete_edges")
        if caps.vertex_dynamic:
            g.delete_vertices([3])
            bumped("delete_vertices")
        if hasattr(g, "insert_vertices"):
            g.insert_vertices([5])
            bumped("insert_vertices")
        if caps.rehash:
            g.rehash([1])
            bumped("rehash")
        if caps.tombstone_flush:
            g.flush_tombstones()
            bumped("flush_tombstones")
        g2 = make(name)
        before = g2.mutation_version
        g2.bulk_build(COO([0, 1], [1, 2], N))
        assert g2.mutation_version > before, (name, "bulk_build")

    def test_empty_batches_do_not_bump_version(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        version = g.mutation_version
        empty = np.empty(0, dtype=np.int64)
        g.insert_edges(empty, empty.copy())
        g.delete_edges(empty, empty.copy())
        assert g.mutation_version == version, name

    def test_queries_do_not_bump_version(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        version = g.mutation_version
        g.edge_exists([0], [1])
        g.edge_weights([0], [1])
        g.neighbors(0)
        g.adjacencies(np.array([0, 1]))
        g.degree([0, 1])
        g.num_edges()
        g.memory_bytes()
        g.export_coo()
        g.sorted_adjacency()
        g.snapshot()
        assert g.mutation_version == version, name

    def test_unchanged_graph_returns_cached_object_with_zero_work(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        with counting() as cold:
            snap = g.snapshot()
        assert cold["sorted_elements"] > 0, name  # the cold sort is priced
        with counting() as hit:
            again = g.snapshot()
        assert again is snap, name
        # The acceptance bar: a cache hit performs zero slab reads and
        # zero sorts — in fact, zero counted device work of any kind.
        assert hit["slab_reads"] == 0, name
        assert hit["sorted_elements"] == 0, name
        assert all(v == 0 for v in hit.values()), (name, hit)
        assert cached_snapshot(g) is snap, name

    def test_mutation_invalidates_cache(self, name):
        g = make(name)
        g.insert_edges(SRC, DST)
        snap = g.snapshot()
        g.insert_edges([5], [6])
        assert cached_snapshot(g) is None, name
        fresh = g.snapshot()
        assert fresh is not snap, name
        _assert_snapshots_identical(fresh, _cold_snapshot(g), name)

    @pytest.mark.parametrize("weighted", [False, True])
    def test_incremental_merge_is_bit_identical_to_cold(self, name, weighted):
        if weighted and not api.capabilities(name).weighted:
            pytest.skip("unweighted backend")
        rng = np.random.default_rng(23)
        g = Graph.create(name, num_vertices=N, weighted=weighted)
        s = rng.integers(0, N, 300)
        d = rng.integers(0, N, 300)
        g.insert_edges(s, d, rng.integers(0, 99, 300) if weighted else None)
        g.snapshot()  # prime the cache

        # Inserts with duplicates (replace semantics), then deletes of a
        # mix of present and absent edges.
        s2 = rng.integers(0, N, 60)
        d2 = rng.integers(0, N, 60)
        g.insert_edges(s2, d2, rng.integers(100, 199, 60) if weighted else None)
        g.delete_edges(np.concatenate([s[:25], [30]]), np.concatenate([d[:25], [31]]))
        logged = g._delta_rows
        assert logged > 0, name
        with counting() as delta:
            merged = g.snapshot()
        # The merge sorts only the logged delta rows, never the edge set.
        assert delta["sorted_elements"] == logged, (name, delta)
        _assert_snapshots_identical(merged, _cold_snapshot(g.backend), name)
        # And the merged snapshot is now the cache for everyone.
        assert g.backend.snapshot() is merged, name

    def test_repeated_merges_stay_identical(self, name):
        rng = np.random.default_rng(5)
        g = Graph.create(name, num_vertices=N)
        g.insert_edges(rng.integers(0, N, 200), rng.integers(0, N, 200))
        g.snapshot()
        for round_ in range(4):
            g.insert_edges(rng.integers(0, N, 30), rng.integers(0, N, 30))
            g.delete_edges(rng.integers(0, N, 10), rng.integers(0, N, 10))
            merged = g.snapshot()
            _assert_snapshots_identical(merged, _cold_snapshot(g.backend), (name, round_))

    def test_structural_ops_fall_back_to_cold_rebuild(self, name):
        caps = api.capabilities(name)
        g = Graph.create(name, num_vertices=N)
        g.insert_edges([0, 1, 1, 2], [1, 0, 2, 1])
        g.snapshot()
        if caps.vertex_dynamic:
            g.delete_vertices([1])
        elif caps.rehash:
            g.rehash()
        else:
            pytest.skip("no structural op beyond bulk_build for this backend")
        _assert_snapshots_identical(g.snapshot(), _cold_snapshot(g.backend), name)

    def test_out_of_band_backend_mutation_detected(self, name):
        g = Graph.create(name, num_vertices=N)
        g.insert_edges(SRC, DST)
        g.snapshot()
        g.insert_edges([7], [8])  # logged
        g.backend.insert_edges([9], [10])  # bypasses the facade log
        snap = g.snapshot()  # must not merge a stale log
        _assert_snapshots_identical(snap, _cold_snapshot(g.backend), name)
        assert g.edge_exists([9], [10])[0], name

    def test_delta_overflow_falls_back(self, name):
        g = Graph.create(name, num_vertices=N, snapshot_delta_limit=4)
        g.insert_edges(SRC, DST)
        g.snapshot()
        g.insert_edges([1, 2, 3, 4, 5], [2, 3, 4, 5, 6])  # 5 rows > limit 4
        _assert_snapshots_identical(g.snapshot(), _cold_snapshot(g.backend), name)

    def test_facade_weighted_merge_replaces_weights(self, name):
        if not api.capabilities(name).weighted:
            pytest.skip("unweighted backend")
        g = Graph.create(name, num_vertices=N, weighted=True)
        g.insert_edges([0, 1], [1, 2], weights=[10, 20])
        g.snapshot()
        g.insert_edges([0], [1], weights=[99])  # replace via merge
        snap = g.snapshot()
        lo, hi = int(snap.row_ptr[0]), int(snap.row_ptr[1])
        row = dict(zip(snap.col_idx[lo:hi].tolist(), snap.weights[lo:hi].tolist()))
        assert row[1] == 99, name

    def test_delete_only_batch_merges_incrementally(self, name):
        """A delete-only window must merge, not fall back to a rebuild."""
        g = Graph.create(name, num_vertices=N)
        g.insert_edges(SRC, DST)
        g.snapshot()
        g.delete_edges([0, 3, 7], [1, 4, 8])  # two present, one absent
        logged = g._delta_rows
        assert logged > 0, name
        with counting() as delta:
            merged = g.snapshot()
        assert delta["sorted_elements"] == logged, (name, delta)
        _assert_snapshots_identical(merged, _cold_snapshot(g.backend), name)
        assert merged.num_edges == len(UNIQUE_EDGES) - 2, name

    def test_dedup_batches_interplay_with_delta_log(self, name):
        """dedup_batches pre-collapses the batch before it is logged."""
        g = Graph.create(name, num_vertices=N, dedup_batches=True)
        g.insert_edges([0, 1], [1, 2])
        g.snapshot()
        g.insert_edges([5, 5, 5, 6], [6, 7, 6, 7])  # collapses to 3 rows
        mirror = 1 if g.directed else 2
        assert g._delta_rows == 3 * mirror, name
        _assert_snapshots_identical(g.snapshot(), _cold_snapshot(g.backend), name)

    def test_delete_then_reinsert_same_key_in_one_window(self, name):
        """Last op per key wins across the whole logged window."""
        weighted = api.capabilities(name).weighted
        g = Graph.create(name, num_vertices=N, weighted=weighted)
        g.insert_edges([0, 1], [1, 2], weights=[10, 20] if weighted else None)
        g.snapshot()
        g.delete_edges([0], [1])
        g.insert_edges([0], [1], weights=[77] if weighted else None)
        snap = g.snapshot()
        _assert_snapshots_identical(snap, _cold_snapshot(g.backend), name)
        assert g.edge_exists([0], [1])[0], name
        if weighted:
            lo, hi = int(snap.row_ptr[0]), int(snap.row_ptr[1])
            row = dict(zip(snap.col_idx[lo:hi].tolist(), snap.weights[lo:hi].tolist()))
            assert row[1] == 77, name

    def test_insert_then_delete_same_key_in_one_window(self, name):
        g = Graph.create(name, num_vertices=N)
        g.insert_edges(SRC, DST)
        g.snapshot()
        g.insert_edges([9], [10])
        g.delete_edges([9], [10])
        snap = g.snapshot()
        _assert_snapshots_identical(snap, _cold_snapshot(g.backend), name)
        assert not g.edge_exists([9], [10])[0], name


class TestAnalyticsAcrossBackends:
    """The same analytics answers from every backend's snapshot."""

    @pytest.fixture(scope="class")
    def symmetric_batch(self):
        rng = np.random.default_rng(11)
        s = rng.integers(0, N, 120)
        d = rng.integers(0, N, 120)
        keep = s != d
        s, d = s[keep], d[keep]
        return np.concatenate([s, d]), np.concatenate([d, s])

    @pytest.fixture(scope="class")
    def graphs(self, symmetric_batch):
        out = {}
        for name in ALL_BACKENDS:
            g = Graph.create(name, num_vertices=N)
            g.insert_edges(*symmetric_batch)
            out[name] = g
        return out

    def test_snapshots_identical(self, graphs):
        snaps = {n: g.snapshot() for n, g in graphs.items()}
        ref = snaps[ALL_BACKENDS[0]]
        for name, snap in snaps.items():
            assert np.array_equal(snap.row_ptr, ref.row_ptr), name
            assert np.array_equal(snap.col_idx, ref.col_idx), name

    def test_pagerank_agrees(self, graphs):
        ranks = [pagerank(g) for g in graphs.values()]
        for r in ranks[1:]:
            assert np.allclose(r, ranks[0])

    def test_connected_components_agree(self, graphs):
        labels = [connected_components(g) for g in graphs.values()]
        for lab in labels[1:]:
            assert np.array_equal(lab, labels[0])

    def test_core_numbers_agree(self, graphs):
        cores = [core_numbers(g) for g in graphs.values()]
        for c in cores[1:]:
            assert np.array_equal(c, cores[0])

    def test_triangle_count_agrees(self, graphs):
        counts = {n: triangle_count_csr(g) for n, g in graphs.items()}
        assert len(set(counts.values())) == 1, counts

    def test_bfs_agrees(self, graphs):
        dists = [bfs(g, 0) for g in graphs.values()]
        for d in dists[1:]:
            assert np.array_equal(d, dists[0])

    def test_kcore_counts_agree(self, symmetric_batch):
        from repro.analytics import kcore

        results = {}
        for name in ALL_BACKENDS:
            if not api.capabilities(name).vertex_dynamic:
                continue
            g = Graph.create(name, num_vertices=N)
            g.insert_edges(*symmetric_batch)
            results[name] = (kcore(g.backend, 3), g.num_edges())
        assert len(results) >= 3  # slabhash, btree, faimgraph
        assert len(set(results.values())) == 1, results

    def test_as_snapshot_accepts_all_forms(self, graphs):
        g = graphs[ALL_BACKENDS[0]]
        snap = g.snapshot()
        assert as_snapshot(snap) is snap
        assert as_snapshot(g).num_edges == snap.num_edges
        assert as_snapshot(g.backend).num_edges == snap.num_edges


class TestRegistry:
    def test_aliases_resolve(self):
        assert api.get_spec("ours").name == "slabhash"
        assert api.get_spec("faim").name == "faimgraph"
        assert api.get_spec("SLABHASH").name == "slabhash"

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            api.create("no-such-structure", num_vertices=4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError):
            api.register("slabhash", lambda: None)

    def test_alias_cannot_hijack_existing_name(self):
        # A new registration must not shadow an existing backend via aliases.
        with pytest.raises(ValidationError):
            api.register("evil", lambda: None, aliases=("slabhash",))
        assert api.get_spec("slabhash").name == "slabhash"
        with pytest.raises(ValidationError):
            api.register("evil2", lambda: None, aliases=("ours",))

    def test_overwrite_reclaims_alias(self):
        # Overwriting a name that was an alias must purge the stale alias
        # entry, or get_spec would silently keep resolving to the old spec.
        slab_cls = api.get_spec("slabhash").cls()
        try:
            api.register("ours", slab_cls, overwrite=True, description="reclaimed")
            assert api.get_spec("ours").description == "reclaimed"
        finally:
            api.registry._REGISTRY.pop("ours", None)
            api.registry._ALIASES["ours"] = "slabhash"
        assert api.get_spec("ours").name == "slabhash"

    def test_register_custom_backend(self):
        class Toy(api.create("slabhash", num_vertices=1).__class__):
            pass

        api.register("toy-backend", Toy, overwrite=True)
        try:
            g = api.create("toy-backend", num_vertices=8)
            assert isinstance(g, Toy)
            assert "toy-backend" in api.backend_names()
        finally:
            api.registry._REGISTRY.pop("toy-backend", None)

    def test_legacy_import_shim(self):
        with pytest.warns(DeprecationWarning):
            from repro import DynamicGraph  # noqa: F401