"""The delta-aware analytics family: incremental TC, BFS/SSSP, k-core.

Mirrors the CC/PageRank contract suites: on every registered backend,
every new incremental analytic's answer is bit-identical to the cold
kernel on the live snapshot after insert-heavy, delete, churn, and
out-of-band-mutation windows — the incremental path is an optimization,
never an approximation.  The shared-kernel regression pins the Table IX
dynamic TC and the streaming TC to one wedge-closure kernel.
"""

import numpy as np
import pytest

import repro.api as api
from repro.analytics import (
    bfs,
    connected_components,
    dynamic_triangle_count,
    kcore_membership,
    sssp,
    undirected_triangles,
)
from repro.api import Graph
from repro.api.snapshot import CSRSnapshot
from repro.gpusim.counters import counting
from repro.stream import (
    IncrementalBFS,
    IncrementalKCore,
    IncrementalSSSP,
    IncrementalTriangleCount,
    insert_heavy_scenario,
    quick_scenarios,
    run_scenario,
)
from repro.util.errors import ValidationError

ALL_BACKENDS = sorted(api.backend_names())

#: The family members the unweighted scenario gate prices.
UNWEIGHTED_FAMILY = ("cc", "pagerank", "tc", "bfs", "kcore")


def cold_snapshot(g) -> CSRSnapshot:
    """The cold reference view: a from-scratch sort of the live edge set."""
    return CSRSnapshot.from_coo(g.backend.export_coo())


def make_family(g, source=0, k=3):
    """All four new analytics attached to one facade (sssp iff weighted)."""
    fam = {
        "tc": IncrementalTriangleCount(g),
        "bfs": IncrementalBFS(g, source=source),
        "kcore": IncrementalKCore(g, k=k),
    }
    if g.weighted:
        fam["sssp"] = IncrementalSSSP(g, source=source)
    return fam


def assert_family_exact(g, fam, expect_modes=None):
    """Every member equals its cold kernel on the live snapshot."""
    snap = cold_snapshot(g)
    answers = {
        "tc": (fam["tc"].count(), undirected_triangles(snap)),
        "bfs": (fam["bfs"].distances(), bfs(snap, fam["bfs"].source)),
        "kcore": (fam["kcore"].members(), kcore_membership(snap, fam["kcore"].k)),
    }
    if "sssp" in fam:
        answers["sssp"] = (fam["sssp"].distances(), sssp(snap, fam["sssp"].source))
    for name, (got, cold) in answers.items():
        if name == "tc":
            assert got == cold, (name, got, cold)
        else:
            assert np.array_equal(got, cold), name
    if expect_modes is not None:
        for name, inc in fam.items():
            assert inc.last_mode in expect_modes, (name, inc.last_mode)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_family_exact_through_all_window_kinds(name):
    """The acceptance bar: exactness through insert-heavy, delete, churn,
    and out-of-band windows, on every backend."""
    n = 128
    rng = np.random.default_rng(11)
    weighted = api.capabilities(name).weighted
    g = Graph.create(name, num_vertices=n, weighted=weighted)

    def weights(size):
        return rng.integers(1, 50, size) if weighted else None

    g.insert_edges(rng.integers(0, n, 300), rng.integers(0, n, 300), weights(300))
    fam = make_family(g)
    assert_family_exact(g, fam)  # initial cold build

    for _ in range(3):  # insert-heavy windows fold incrementally
        g.insert_edges(rng.integers(0, n, 40), rng.integers(0, n, 40), weights(40))
        assert_family_exact(g, fam, expect_modes=("incremental", "cold"))

    assert_family_exact(g, fam, expect_modes=("cached",))  # no new events

    coo = g.export_coo()  # delete window: every member re-runs cold
    g.delete_edges(coo.src[:60], coo.dst[:60])
    assert_family_exact(g, fam, expect_modes=("cold",))

    g.insert_edges([1, 2], [2, 3], weights(2))  # cold pass re-anchored the cursor
    assert_family_exact(g, fam, expect_modes=("incremental", "cold"))

    if g.capabilities.vertex_dynamic:  # churn window: structural → cold
        g.delete_vertices([5, 6, 7])
        assert_family_exact(g, fam, expect_modes=("cold",))

    # Out-of-band mutation bypassing the facade: the version check must
    # catch it even though no event was published.
    if weighted:
        g.backend.insert_edges(np.array([0]), np.array([100]), np.array([7]))
    else:
        g.backend.insert_edges(np.array([0]), np.array([100]))
    assert_family_exact(g, fam, expect_modes=("cold",))


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_family_exact_after_every_phase_every_quick_scenario(name):
    """Scenario-level contract: validate=True re-derives the cold
    references after every phase with the whole family subscribed."""
    for scn in quick_scenarios():
        run_scenario(
            scn,
            name,
            mode="incremental",
            tol=1e-10,
            max_iters=500,
            validate=True,
            analytics=UNWEIGHTED_FAMILY,
        )
    if api.capabilities(name).weighted:
        wscn = insert_heavy_scenario(1 << 10, batch=64, rounds=2, weighted=True)
        run_scenario(
            wscn,
            name,
            mode="incremental",
            tol=1e-10,
            max_iters=500,
            validate=True,
            analytics=("cc", "pagerank", "tc", "bfs", "sssp", "kcore"),
        )


class TestIncrementalTriangleCount:
    def make(self, n=96, seed=5, directed=True):
        rng = np.random.default_rng(seed)
        g = Graph.create("slabhash", num_vertices=n, directed=directed)
        g.insert_edges(rng.integers(0, n, 250), rng.integers(0, n, 250))
        return g, rng

    def test_insert_only_stays_incremental_and_exact(self):
        g, rng = self.make()
        tc = IncrementalTriangleCount(g)
        for _ in range(4):
            g.insert_edges(rng.integers(0, 96, 25), rng.integers(0, 96, 25))
            got = tc.count()
            assert tc.last_mode == "incremental"
            assert got == undirected_triangles(cold_snapshot(g))

    def test_duplicate_and_reversed_inserts_change_nothing(self):
        g, _ = self.make()
        tc = IncrementalTriangleCount(g)
        before = tc.count()
        coo = g.export_coo()
        # Re-insert existing edges and their reversals: the undirected
        # view is unchanged, so the count must not move.
        g.insert_edges(coo.src[:30], coo.dst[:30])
        g.insert_edges(coo.dst[:30], coo.src[:30])
        assert tc.count() == before == undirected_triangles(cold_snapshot(g))
        assert tc.last_mode == "incremental"

    def test_batch_closing_its_own_triangle_counted_once(self):
        g = Graph.create("slabhash", num_vertices=8)
        g.insert_edges([6], [7])
        tc = IncrementalTriangleCount(g)
        assert tc.count() == 0
        # All three edges of a triangle arrive in one batch (plus a
        # duplicate orientation): exactly one new triangle.
        g.insert_edges([0, 1, 2, 1], [1, 2, 0, 0], None)
        assert tc.count() == 1
        assert tc.last_mode == "incremental"
        # Two batches each closing wedges against the other's edges:
        # {0,1,3}, {0,2,3}, {1,2,3} join the original {0,1,2}.
        g.insert_edges([0, 1], [3, 3])
        g.insert_edges([2, 3], [3, 4])
        assert tc.count() == undirected_triangles(cold_snapshot(g)) == 4

    def test_delete_goes_cold_then_reanchors(self):
        g, rng = self.make()
        tc = IncrementalTriangleCount(g)
        coo = g.export_coo()
        g.delete_edges(coo.src[:40], coo.dst[:40])
        assert tc.count() == undirected_triangles(cold_snapshot(g))
        assert tc.last_mode == "cold"
        g.insert_edges(rng.integers(0, 96, 10), rng.integers(0, 96, 10))
        assert tc.count() == undirected_triangles(cold_snapshot(g))
        assert tc.last_mode == "incremental"

    def test_undirected_facade(self):
        g, rng = self.make(directed=False)
        tc = IncrementalTriangleCount(g)
        for _ in range(3):
            g.insert_edges(rng.integers(0, 96, 20), rng.integers(0, 96, 20))
            assert tc.count() == undirected_triangles(cold_snapshot(g))
            assert tc.last_mode == "incremental"

    def test_retention_gap_forces_cold(self):
        g = Graph.create("slabhash", num_vertices=32, snapshot_delta_limit=4)
        g.insert_edges([0, 1], [1, 2])
        tc = IncrementalTriangleCount(g)
        tc.count()
        # One batch larger than retention: trimmed immediately, the
        # cursor observes a gap instead of the events.
        rng = np.random.default_rng(0)
        g.insert_edges(rng.integers(0, 32, 12), rng.integers(0, 32, 12))
        assert tc.count() == undirected_triangles(cold_snapshot(g))
        assert tc.last_mode == "cold"


class TestIncrementalDistances:
    def make(self, n=96, seed=7, weighted=True):
        rng = np.random.default_rng(seed)
        g = Graph.create("slabhash", num_vertices=n, weighted=weighted)
        w = rng.integers(1, 60, 260) if weighted else None
        g.insert_edges(rng.integers(0, n, 260), rng.integers(0, n, 260), w)
        return g, rng

    def test_bfs_insert_only_stays_incremental_and_exact(self):
        g, rng = self.make(weighted=False)
        inc = IncrementalBFS(g, source=3)
        inc.distances()  # one-off cold init (the scenario runner's prime)
        for _ in range(4):
            g.insert_edges(rng.integers(0, 96, 25), rng.integers(0, 96, 25))
            got = inc.distances()
            assert inc.last_mode == "incremental"
            assert np.array_equal(got, bfs(cold_snapshot(g), 3))

    def test_bfs_newly_reachable_region(self):
        g = Graph.create("slabhash", num_vertices=8)
        g.insert_edges([0, 4, 5], [1, 5, 6])  # 4-5-6 unreachable from 0
        inc = IncrementalBFS(g)
        assert inc.distances().tolist() == [0, 1, -1, -1, -1, -1, -1, -1]
        g.insert_edges([1], [4])  # bridges the far component
        assert inc.distances().tolist() == [0, 1, -1, -1, 2, 3, 4, -1]
        assert inc.last_mode == "incremental"

    def test_sssp_insert_only_stays_incremental_and_exact(self):
        g, rng = self.make()
        inc = IncrementalSSSP(g, source=3)
        inc.distances()  # one-off cold init
        for _ in range(4):
            # Fresh vertex pairs mostly; grown upserts on duplicate keys
            # legitimately force cold, asserted separately below.
            got_mode_exact = None
            g.insert_edges(
                rng.integers(0, 96, 25), rng.integers(0, 96, 25), rng.integers(1, 60, 25)
            )
            got = inc.distances()
            got_mode_exact = inc.last_mode
            assert got_mode_exact in ("incremental", "cold")
            assert np.array_equal(got, sssp(cold_snapshot(g), 3))

    def test_sssp_shrinking_upsert_repairs_incrementally(self):
        g = Graph.create("slabhash", num_vertices=6, weighted=True)
        g.insert_edges([0, 1, 0], [1, 2, 2], [4, 4, 20])
        inc = IncrementalSSSP(g)
        assert inc.distances().tolist() == [0, 4, 8, -1, -1, -1]
        g.insert_edges([0], [2], [5])  # weight 20 → 5: distances only drop
        assert inc.distances().tolist() == [0, 4, 5, -1, -1, -1]
        assert inc.last_mode == "incremental"

    def test_sssp_growing_upsert_falls_back_cold(self):
        g = Graph.create("slabhash", num_vertices=6, weighted=True)
        g.insert_edges([0, 1, 0], [1, 2, 2], [4, 4, 5])
        inc = IncrementalSSSP(g)
        assert inc.distances().tolist() == [0, 4, 5, -1, -1, -1]
        g.insert_edges([0], [2], [20])  # weight 5 → 20: paths can lengthen
        assert inc.distances().tolist() == [0, 4, 8, -1, -1, -1]
        assert inc.last_mode == "cold"

    def test_delete_goes_cold(self):
        g, _ = self.make()
        inc = IncrementalSSSP(g, source=3)
        coo = g.export_coo()
        g.delete_edges(coo.src[:50], coo.dst[:50])
        assert np.array_equal(inc.distances(), sssp(cold_snapshot(g), 3))
        assert inc.last_mode == "cold"

    def test_sssp_requires_weighted_graph(self):
        g, _ = self.make(weighted=False)
        with pytest.raises(ValidationError):
            IncrementalSSSP(g)

    def test_source_out_of_range_rejected(self):
        g, _ = self.make(n=16)
        with pytest.raises(ValidationError):
            IncrementalBFS(g, source=16)
        with pytest.raises(ValidationError):
            IncrementalBFS(g, source=-1)

    def test_undirected_window_mirrors_pending_edges(self):
        g = Graph.create("slabhash", num_vertices=6, weighted=True, directed=False)
        g.insert_edges([0], [1], [3])
        inc = IncrementalSSSP(g)
        inc.distances()  # one-off cold init
        # The event carries (2, 0) once; the repair must also relax the
        # mirrored (0, 2) orientation the undirected backend stored.
        g.insert_edges([2], [0], [7])
        assert inc.distances().tolist() == [0, 3, 7, -1, -1, -1]
        assert inc.last_mode == "incremental"


class TestIncrementalKCore:
    def make(self, n=96, seed=13):
        rng = np.random.default_rng(seed)
        g = Graph.create("slabhash", num_vertices=n)
        g.insert_edges(rng.integers(0, n, 300), rng.integers(0, n, 300))
        return g, rng

    def test_insert_only_stays_incremental_and_exact(self):
        g, rng = self.make()
        kc = IncrementalKCore(g, k=3)
        kc.members()  # one-off cold init
        for _ in range(4):
            g.insert_edges(rng.integers(0, 96, 30), rng.integers(0, 96, 30))
            got = kc.members()
            assert kc.last_mode == "incremental"
            assert np.array_equal(got, kcore_membership(cold_snapshot(g), 3))

    def test_promotion_cascade_through_new_edges(self):
        # A directed 3-cycle with k=2: each vertex needs out-degree 2
        # within the core, reached only once the chords arrive.
        g = Graph.create("slabhash", num_vertices=6)
        g.insert_edges([0, 1, 2], [1, 2, 0])
        kc = IncrementalKCore(g, k=2)
        assert not kc.members().any()
        g.insert_edges([0, 1, 2], [2, 0, 1])  # now a complete digraph on 3
        got = kc.members()
        assert kc.last_mode == "incremental"
        assert got.tolist() == [True, True, True, False, False, False]
        assert np.array_equal(got, kcore_membership(cold_snapshot(g), 2))

    def test_delete_goes_cold_then_reanchors(self):
        g, rng = self.make()
        kc = IncrementalKCore(g, k=3)
        coo = g.export_coo()
        g.delete_edges(coo.src[:60], coo.dst[:60])
        assert np.array_equal(kc.members(), kcore_membership(cold_snapshot(g), 3))
        assert kc.last_mode == "cold"
        g.insert_edges(rng.integers(0, 96, 15), rng.integers(0, 96, 15))
        assert np.array_equal(kc.members(), kcore_membership(cold_snapshot(g), 3))
        assert kc.last_mode == "incremental"

    def test_bad_k_rejected(self):
        g, _ = self.make(n=8)
        with pytest.raises(ValidationError):
            IncrementalKCore(g, k=0)


class TestSharedWedgeKernel:
    """dynamic_triangle_count and IncrementalTriangleCount drive one
    wedge-closure kernel: identical counts, same counter kinds."""

    def rounds(self, seed=21, n=64, per=40, count=4):
        rng = np.random.default_rng(seed)
        return [
            (rng.integers(0, n, per).astype(np.int64), rng.integers(0, n, per).astype(np.int64))
            for _ in range(count)
        ]

    def test_identical_counts_per_round(self):
        batches = self.rounds()
        snap_graph = Graph.create("slabhash", num_vertices=64)
        steps = dynamic_triangle_count(snap_graph, batches, mode="snapshot")

        stream_graph = Graph.create("slabhash", num_vertices=64, directed=False)
        tc = IncrementalTriangleCount(stream_graph)
        for (bs, bd), step in zip(batches, steps):
            stream_graph.insert_edges(bs, bd)
            assert tc.count() == step.triangles, step.iteration

    def test_both_paths_charge_sorted_probes(self):
        batches = self.rounds(count=2)
        snap_graph = Graph.create("slabhash", num_vertices=64)
        with counting() as dyn_counters:
            dynamic_triangle_count(snap_graph, batches, mode="snapshot")
        stream_graph = Graph.create("slabhash", num_vertices=64, directed=False)
        tc = IncrementalTriangleCount(stream_graph)
        for bs, bd in batches:
            stream_graph.insert_edges(bs, bd)
        with counting() as inc_counters:
            tc.count()
        assert dyn_counters.get("sorted_probes", 0) > 0
        assert inc_counters.get("sorted_probes", 0) > 0


class TestScenarioAnalyticsSelection:
    def test_unknown_analytic_rejected(self):
        scn = quick_scenarios()[0]
        with pytest.raises(ValidationError):
            run_scenario(scn, "slabhash", analytics=("cc", "centrality"))

    def test_sssp_needs_weighted_scenario(self):
        scn = quick_scenarios()[0]
        assert not scn.weighted
        with pytest.raises(ValidationError):
            run_scenario(scn, "slabhash", analytics=("sssp",))

    def test_compute_detail_carries_per_analytic_slices(self):
        scn = insert_heavy_scenario(1 << 10, batch=64, rounds=2)
        for mode in ("incremental", "full"):
            r = run_scenario(scn, "slabhash", mode=mode, analytics=UNWEIGHTED_FAMILY)
            for p in r.phases:
                if p.kind != "compute":
                    continue
                assert set(p.detail["analytic_model"]) == set(UNWEIGHTED_FAMILY)
                assert set(p.detail["modes"]) == set(UNWEIGHTED_FAMILY)
                assert p.detail["snapshot_model"] >= 0
                # Legacy keys survive for cc/pagerank consumers.
                assert p.detail["cc_mode"] == p.detail["modes"]["cc"]
                assert "pr_sweeps" in p.detail
