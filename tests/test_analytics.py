"""Analytics validated against networkx on random graphs."""

import networkx as nx
import numpy as np
import pytest

from repro import DynamicGraph
from repro.analytics import (
    advance,
    bfs,
    connected_components,
    dynamic_triangle_count,
    filter_frontier,
    ktruss,
    pagerank,
    triangle_count_hash,
    triangle_count_sorted,
)
from repro.baselines import HornetGraph
from repro.datasets import powerlaw_graph, rgg_graph
from repro.util.errors import ValidationError


@pytest.fixture(params=["rgg", "powerlaw"])
def undirected_case(request):
    if request.param == "rgg":
        coo = rgg_graph(300, 9.0, seed=4)
    else:
        coo = powerlaw_graph(250, 7.0, seed=4)
    G = nx.Graph()
    G.add_nodes_from(range(coo.num_vertices))
    G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
    g = DynamicGraph(coo.num_vertices, weighted=False)
    g.bulk_build(coo)
    return coo, G, g


class TestTriangleCounting:
    def test_hash_matches_networkx(self, undirected_case):
        _, G, g = undirected_case
        expected = sum(nx.triangles(G).values()) // 3
        assert triangle_count_hash(g) == expected

    def test_sorted_matches_networkx(self, undirected_case):
        _, G, g = undirected_case
        expected = sum(nx.triangles(G).values()) // 3
        row_ptr, col = g.sorted_adjacency()
        assert triangle_count_sorted(row_ptr, col) == expected

    def test_small_chunks_same_answer(self, undirected_case):
        _, G, g = undirected_case
        expected = sum(nx.triangles(G).values()) // 3
        assert triangle_count_hash(g, chunk_size=64) == expected

    def test_known_triangle(self):
        g = DynamicGraph(4, weighted=False, directed=False)
        g.insert_edges([0, 1, 2], [1, 2, 0])
        assert triangle_count_hash(g) == 1

    def test_empty_graph(self):
        g = DynamicGraph(4, weighted=False)
        assert triangle_count_hash(g) == 0
        assert triangle_count_sorted(np.zeros(5, np.int64), np.empty(0, np.int64)) == 0

    def test_dynamic_tc_counts_monotone(self, rng):
        n = 150
        g = DynamicGraph(n, weighted=False)
        batches = [
            (rng.integers(0, n, 200), rng.integers(0, n, 200)) for _ in range(3)
        ]
        steps = dynamic_triangle_count(g, batches, mode="hash")
        assert len(steps) == 3
        assert all(s.triangles >= p.triangles for p, s in zip(steps, steps[1:]))

    def test_dynamic_tc_modes_agree(self, rng):
        n = 120
        batches = [
            (rng.integers(0, n, 150), rng.integers(0, n, 150)) for _ in range(3)
        ]
        g1 = DynamicGraph(n, weighted=False)
        hash_steps = dynamic_triangle_count(g1, batches, mode="hash")
        g2 = HornetGraph(n, weighted=False)
        sorted_steps = dynamic_triangle_count(g2, batches, mode="sorted")
        assert [s.triangles for s in hash_steps] == [s.triangles for s in sorted_steps]
        assert all(s.sort_model > 0 for s in sorted_steps)

    def test_dynamic_tc_bad_mode(self):
        with pytest.raises(ValidationError):
            dynamic_triangle_count(DynamicGraph(4, weighted=False), [], mode="nope")


class TestTraversal:
    def test_bfs_matches_networkx(self, undirected_case):
        coo, G, g = undirected_case
        src = int(coo.src[0]) if coo.num_edges else 0
        dist = bfs(g, src)
        ref = nx.single_source_shortest_path_length(G, src)
        for v in range(coo.num_vertices):
            assert dist[v] == ref.get(v, -1)

    def test_bfs_max_depth(self, undirected_case):
        coo, _, g = undirected_case
        src = int(coo.src[0])
        dist = bfs(g, src, max_depth=2)
        assert dist.max() <= 2

    def test_bfs_source_out_of_range(self):
        with pytest.raises(ValidationError):
            bfs(DynamicGraph(4, weighted=False), 9)

    def test_bfs_on_baseline_structure(self, rng):
        """BFS works through the neighbors() fallback too."""
        n = 40
        coo = rgg_graph(n, 6.0, seed=1)
        h = HornetGraph(n, weighted=False)
        h.bulk_build(coo)
        g = DynamicGraph(n, weighted=False)
        g.bulk_build(coo)
        assert np.array_equal(bfs(h, 0), bfs(g, 0))

    def test_advance_and_filter(self):
        g = DynamicGraph(6, weighted=False)
        g.insert_edges([0, 0, 1], [1, 2, 3])
        srcs, dsts = advance(g, np.array([0, 1]))
        assert sorted(zip(srcs.tolist(), dsts.tolist())) == [(0, 1), (0, 2), (1, 3)]
        visited = np.zeros(6, dtype=bool)
        visited[2] = True
        out = filter_frontier(dsts, visited)
        assert sorted(out.tolist()) == [1, 3]

    def test_filter_frontier_dedups_sorted_without_sort(self):
        visited = np.zeros(8, dtype=bool)
        visited[5] = True
        candidates = np.array([7, 3, 3, 5, 1, 7, 1], dtype=np.int64)
        out = filter_frontier(candidates, visited)
        assert out.tolist() == [1, 3, 7]  # unique, ascending, unvisited
        assert filter_frontier(np.empty(0, dtype=np.int64), visited).size == 0

    def test_filter_frontier_rejects_negative_ids_mask_path(self):
        """id -1 must not wrap to visited[n-1] and corrupt the frontier."""
        visited = np.zeros(8, dtype=bool)
        with pytest.raises(ValidationError, match="candidates"):
            filter_frontier(np.array([-1, 2, 3], dtype=np.int64), visited)

    def test_filter_frontier_rejects_negative_ids_sort_path(self):
        # Few candidates on a large mask take the np.unique path.
        visited = np.zeros(10_000, dtype=bool)
        with pytest.raises(ValidationError, match="candidates"):
            filter_frontier(np.array([-1, 2], dtype=np.int64), visited)

    def test_filter_frontier_rejects_out_of_range_ids_both_paths(self):
        small = np.zeros(4, dtype=bool)  # mask path
        with pytest.raises(ValidationError, match="candidates"):
            filter_frontier(np.array([0, 4], dtype=np.int64), small)
        large = np.zeros(10_000, dtype=bool)  # sort path
        with pytest.raises(ValidationError, match="candidates"):
            filter_frontier(np.array([10_000], dtype=np.int64), large)

    def test_cc_matches_networkx(self, undirected_case):
        coo, G, g = undirected_case
        labels = connected_components(g)
        mine = {}
        for v, l in enumerate(labels.tolist()):
            mine.setdefault(l, set()).add(v)
        theirs = {frozenset(c) for c in nx.connected_components(G)}
        assert {frozenset(s) for s in mine.values()} == theirs

    def test_pagerank_matches_networkx(self, undirected_case):
        coo, G, g = undirected_case
        pr = pagerank(g, tol=1e-12)
        ref = nx.pagerank(G.to_directed(), alpha=0.85, tol=1e-12)
        assert max(abs(pr[v] - ref[v]) for v in range(coo.num_vertices)) < 1e-6

    def test_pagerank_sums_to_one(self, undirected_case):
        _, _, g = undirected_case
        assert pagerank(g).sum() == pytest.approx(1.0)

    def test_pagerank_bad_damping(self):
        with pytest.raises(ValidationError):
            pagerank(DynamicGraph(4, weighted=False), damping=1.5)


class TestKTruss:
    def test_matches_networkx(self, undirected_case):
        coo, G, g = undirected_case
        ktruss(g, 4)
        out = g.export_coo()
        mine = {(min(a, b), max(a, b)) for a, b in zip(out.src.tolist(), out.dst.tolist())}
        theirs = {(min(a, b), max(a, b)) for a, b in nx.k_truss(G, 4).edges()}
        assert mine == theirs

    def test_k2_keeps_everything(self):
        g = DynamicGraph(5, weighted=False, directed=False)
        g.insert_edges([0, 1], [1, 2])
        before = g.num_edges()
        assert ktruss(g, 2) == 0
        assert g.num_edges() == before

    def test_triangle_free_graph_empties_at_k3(self):
        g = DynamicGraph(6, weighted=False, directed=False)
        g.insert_edges([0, 1, 2, 3], [1, 2, 3, 4])  # a path
        ktruss(g, 3)
        assert g.num_edges() == 0

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            ktruss(DynamicGraph(4, weighted=False), 1)

    def test_exercises_dynamic_deletion(self, rng):
        """k-truss performs real batched deletions on the structure —
        the in-algorithm mutation pattern from the paper's introduction."""
        coo = rgg_graph(200, 8.0, seed=2)
        g = DynamicGraph(coo.num_vertices, weighted=False)
        g.bulk_build(coo)
        before = g.num_edges()
        deleted = ktruss(g, 5)
        assert 0 < deleted
        assert g.num_edges() < before
