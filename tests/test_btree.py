"""Tests for the B-tree adjacency backend (Section VII future work)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTreeArena, BTreeGraph
from repro.btree.tree import NODE_KEYS
from tests.conftest import structure_edges, structure_state


def check_tree_invariants(arena, tree):
    """Sorted leaves, node occupancy bounds, consistent count."""
    keys, _ = arena.items_sorted(tree)
    assert np.all(np.diff(keys) > 0)  # strictly ascending, unique
    assert keys.size == arena.count(tree)
    root = int(arena.root[tree])
    if root == -1:
        return
    stack = [root]
    while stack:
        node = stack.pop()
        nk = int(arena._num_keys.data[node])
        assert 0 <= nk <= NODE_KEYS
        row = arena._keys.data[node, :nk]
        assert np.all(np.diff(row) > 0)
        if not arena._is_leaf.data[node]:
            assert nk >= 1
            stack.extend(int(c) for c in arena._children.data[node, : nk + 1])


class TestBPlusTreeArena:
    def test_insert_search(self):
        arena = BPlusTreeArena(2)
        assert arena.insert_one(0, 5, 50)
        assert not arena.insert_one(0, 5, 51)  # replace
        found, val = arena.search_one(0, 5)
        assert found and val == 51
        assert not arena.search_one(0, 6)[0]
        assert not arena.search_one(1, 5)[0]  # separate trees

    def test_split_chain(self):
        """Enough keys to force multi-level splits."""
        arena = BPlusTreeArena(1)
        keys = np.arange(500)
        for k in keys.tolist():
            assert arena.insert_one(0, k, k * 2)
        check_tree_invariants(arena, 0)
        got, vals = arena.items_sorted(0)
        assert np.array_equal(got, keys)
        assert np.array_equal(vals, keys * 2)

    def test_random_order_insertion(self, rng):
        arena = BPlusTreeArena(1)
        keys = rng.permutation(300)
        for k in keys.tolist():
            arena.insert_one(0, int(k), int(k))
        check_tree_invariants(arena, 0)
        got, _ = arena.items_sorted(0)
        assert np.array_equal(got, np.arange(300))

    def test_delete(self):
        arena = BPlusTreeArena(1)
        for k in range(100):
            arena.insert_one(0, k, k)
        assert arena.delete_one(0, 50)
        assert not arena.delete_one(0, 50)
        assert not arena.search_one(0, 50)[0]
        assert arena.count(0) == 99
        check_tree_invariants(arena, 0)

    def test_range_query(self, rng):
        arena = BPlusTreeArena(1)
        keys = rng.choice(1000, size=200, replace=False)
        for k in keys.tolist():
            arena.insert_one(0, int(k), int(k) + 1)
        lo, hi = 100, 700
        got, vals = arena.range_query(0, lo, hi)
        expected = np.sort(keys[(keys >= lo) & (keys < hi)])
        assert np.array_equal(got, expected)
        assert np.array_equal(vals, expected + 1)

    def test_range_query_empty(self):
        arena = BPlusTreeArena(1)
        got, _ = arena.range_query(0, 0, 10)
        assert got.size == 0
        arena.insert_one(0, 5, 0)
        got, _ = arena.range_query(0, 10, 5)  # inverted bounds
        assert got.size == 0

    def test_destroy_tree_frees_nodes(self):
        arena = BPlusTreeArena(1)
        for k in range(200):
            arena.insert_one(0, k, k)
        before = arena.num_allocated_nodes
        assert before > 1
        arena.destroy_tree(0)
        assert arena.num_allocated_nodes == 0
        assert arena.count(0) == 0
        # Nodes are recycled.
        arena.insert_one(0, 1, 1)
        assert arena.num_allocated_nodes == 1

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 200)), max_size=250))
    @settings(max_examples=40, deadline=None)
    def test_property_vs_dict(self, ops):
        arena = BPlusTreeArena(1)
        ref = {}
        for is_insert, key in ops:
            if is_insert:
                assert arena.insert_one(0, key, key % 7) == (key not in ref)
                ref[key] = key % 7
            else:
                assert arena.delete_one(0, key) == (key in ref)
                ref.pop(key, None)
        got, vals = arena.items_sorted(0)
        assert dict(zip(got.tolist(), vals.tolist())) == ref
        check_tree_invariants(arena, 0)


class TestBTreeGraph:
    def test_basic_semantics(self):
        g = BTreeGraph(8)
        assert g.insert_edges([0, 0, 1], [1, 1, 0], weights=[3, 4, 5]) == 2
        assert structure_state(g) == {(0, 1): 4, (1, 0): 5}
        assert g.delete_edges([0], [1]) == 1
        assert g.num_edges() == 1

    def test_self_loops_dropped(self):
        g = BTreeGraph(4)
        assert g.insert_edges([2], [2]) == 0

    def test_sorted_neighbors_free(self, rng):
        g = BTreeGraph(50)
        dst = rng.choice(50, size=30, replace=False)
        dst = dst[dst != 7]
        g.insert_edges(np.full(dst.size, 7), dst)
        got, _ = g.neighbors_sorted(7)
        assert np.array_equal(got, np.sort(dst))

    def test_neighbor_range(self, rng):
        g = BTreeGraph(100)
        dst = np.arange(1, 90, 3)
        g.insert_edges(np.zeros(dst.size, np.int64), dst)
        got = g.neighbor_range(0, 10, 40)
        assert np.array_equal(got, dst[(dst >= 10) & (dst < 40)])

    def test_randomized_vs_model(self, rng, dict_graph):
        n = 60
        g = BTreeGraph(n)
        for _ in range(8):
            m = int(rng.integers(20, 200))
            src, dst = rng.integers(0, n, m), rng.integers(0, n, m)
            w = rng.integers(0, 50, m)
            assert g.insert_edges(src, dst, w) == dict_graph.insert(src, dst, w)
            k = int(rng.integers(5, 100))
            ds, dd = rng.integers(0, n, k), rng.integers(0, n, k)
            assert g.delete_edges(ds, dd) == dict_graph.delete(ds, dd)
        assert structure_state(g) == dict_graph.edges()
        qs, qd = rng.integers(0, n, 200), rng.integers(0, n, 200)
        got = g.edge_exists(qs, qd)
        ref = np.array([s in dict_graph.adj and d in dict_graph.adj[s] for s, d in zip(qs, qd)])
        assert np.array_equal(got, ref)

    def test_vertex_deletion(self, rng, dict_graph):
        n = 40
        g = BTreeGraph(n)
        src = rng.integers(0, n, 300)
        dst = rng.integers(0, n, 300)
        both_s = np.concatenate([src, dst])
        both_d = np.concatenate([dst, src])
        g.insert_edges(both_s, both_d)
        dict_graph.insert(both_s, both_d)
        g.delete_vertices([3, 9])
        dict_graph.delete_vertex_undirected([3, 9])
        assert structure_edges(g) == dict_graph.edge_set()

    def test_sorted_adjacency_is_sorted(self, rng):
        g = BTreeGraph(30)
        g.insert_edges(rng.integers(0, 30, 400), rng.integers(0, 30, 400))
        row_ptr, col = g.sorted_adjacency()
        for v in range(30):
            seg = col[row_ptr[v] : row_ptr[v + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_triangle_count_without_resort(self, rng):
        """The B-tree's sorted view feeds sorted-intersection TC with no
        Table VIII sort pass."""
        import networkx as nx

        from repro.analytics import triangle_count_sorted
        from repro.datasets import rgg_graph

        coo = rgg_graph(150, 8.0, seed=3)
        g = BTreeGraph(coo.num_vertices)
        g.bulk_build(coo)
        G = nx.Graph()
        G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
        row_ptr, col = g.sorted_adjacency()
        assert triangle_count_sorted(row_ptr, col) == sum(nx.triangles(G).values()) // 3

    def test_degree_and_memory(self):
        g = BTreeGraph(8)
        g.insert_edges([0, 0, 1], [1, 2, 2])
        assert g.degree([0, 1, 2]).tolist() == [2, 1, 0]
        assert g.allocated_bytes >= 128
