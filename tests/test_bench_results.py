"""Schema round-trip and validation tests for repro.bench.results."""

import json

import numpy as np
import pytest

from repro.bench.harness import BenchRecord
from repro.bench.results import (
    SCHEMA_VERSION,
    SUITE_KIND,
    ArtifactBuilder,
    ArtifactResult,
    BenchResult,
    SchemaError,
    SuiteResult,
    environment_fingerprint,
    metric_key,
    validate_suite,
)


def make_suite() -> SuiteResult:
    """A small synthetic suite exercising every field."""
    b = ArtifactBuilder("t5", "Table V — demo", ["Dataset", "Hornet", "Ours"])
    b.add_row(["road", np.float64(1.5), 0.5])
    b.metric(
        np.float64(1.5),
        "ms",
        "road",
        "hornet",
        dataset="road",
        backend="hornet",
        record=BenchRecord("x", 0.01, items=100, counters={"slab_reads": np.int64(7)}),
    )
    b.metric(0.5, "ms", "road", "ours", dataset="road", backend="ours")
    art = b.build(elapsed_seconds=0.25)
    return SuiteResult(environment=environment_fingerprint(seed=3, quick=True), artifacts=[art])


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        suite = make_suite()
        restored = SuiteResult.from_json(suite.to_json())
        assert restored.to_dict() == suite.to_dict()
        assert restored.schema_version == SCHEMA_VERSION
        assert restored.environment["seed"] == 3
        assert restored.environment["quick"] is True

    def test_save_load(self, tmp_path):
        suite = make_suite()
        path = tmp_path / "out.json"
        suite.save(path)
        assert SuiteResult.load(path).to_dict() == suite.to_dict()

    def test_numpy_scalars_become_plain_json(self):
        text = make_suite().to_json()
        doc = json.loads(text)  # would raise if np types leaked into dumps
        cell = doc["artifacts"][0]["rows"][0][1]
        assert type(cell) is float
        counters = doc["artifacts"][0]["results"][0]["counters"]
        assert type(counters["slab_reads"]) is int

    def test_metrics_view_is_keyed_and_complete(self):
        metrics = make_suite().metrics()
        assert set(metrics) == {"t5/road/hornet", "t5/road/ours"}
        assert metrics["t5/road/hornet"].unit == "ms"
        assert metrics["t5/road/hornet"].backend == "hornet"

    def test_from_dict_ignores_unknown_keys(self):
        # Forward compatibility: older code reads newer same-major files.
        doc = BenchResult("a/b", 1.0, "ms", "a").to_dict()
        doc["added_in_the_future"] = 42
        assert BenchResult.from_dict(doc).value == 1.0

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint(seed=7, quick=False)
        for key in ("git_sha", "python", "numpy", "platform", "seed", "quick"):
            assert key in env
        assert env["numpy"] == np.__version__
        assert env["seed"] == 7


class TestBuilder:
    def test_metric_key_join(self):
        assert metric_key("t2", "batch=2^10", "ours") == "t2/batch=2^10/ours"

    def test_aggregate_records_sum_measurements(self):
        b = ArtifactBuilder("t2", "T", ["h"])
        recs = [
            BenchRecord("a", 0.5, items=10, counters={"probe_rounds": 2}),
            BenchRecord("b", 0.25, items=30, counters={"probe_rounds": 3, "atomics": 1}),
        ]
        res = b.metric(4.2, "MEdge/s", "batch=2^10", "ours", records=recs)
        assert res.wall_seconds == pytest.approx(0.75)
        assert res.items == 40
        assert res.counters == {"probe_rounds": 5, "atomics": 1}

    def test_single_record_measurement(self):
        b = ArtifactBuilder("t5", "T", ["h"])
        res = b.metric(1.0, "ms", "d", "ours", record=BenchRecord("x", 0.125, items=5))
        assert res.wall_seconds == pytest.approx(0.125)
        assert res.items == 5


class TestValidation:
    def test_accepts_own_output(self):
        validate_suite(make_suite().to_dict())

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError, match="object"):
            validate_suite([1, 2])

    def test_rejects_wrong_kind(self):
        doc = make_suite().to_dict()
        doc["kind"] = "something-else"
        with pytest.raises(SchemaError, match="kind"):
            validate_suite(doc)

    def test_rejects_newer_schema(self):
        doc = make_suite().to_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="newer"):
            validate_suite(doc)

    def test_rejects_missing_artifact_keys(self):
        doc = make_suite().to_dict()
        del doc["artifacts"][0]["headers"]
        with pytest.raises(SchemaError, match="headers"):
            validate_suite(doc)

    def test_rejects_duplicate_metric_keys(self):
        doc = make_suite().to_dict()
        doc["artifacts"][0]["results"][1]["metric"] = "t5/road/hornet"
        with pytest.raises(SchemaError, match="duplicate"):
            validate_suite(doc)

    def test_rejects_non_numeric_value(self):
        doc = make_suite().to_dict()
        doc["artifacts"][0]["results"][0]["value"] = "fast"
        with pytest.raises(SchemaError, match="number"):
            validate_suite(doc)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SchemaError, match="JSON"):
            SuiteResult.from_json("{not json")

    def test_kind_discriminator_present(self):
        assert make_suite().to_dict()["kind"] == SUITE_KIND

    def test_artifact_round_trip_defaults(self):
        art = ArtifactResult("x", "T", ["h"], [[1]], [])
        assert ArtifactResult.from_dict(art.to_dict()).elapsed_seconds == 0.0
