"""Tests for the COO edge-list container."""

import numpy as np
import pytest

from repro.coo import COO
from repro.util.errors import ValidationError


class TestConstruction:
    def test_infer_num_vertices(self):
        coo = COO([0, 5], [3, 1])
        assert coo.num_vertices == 6

    def test_explicit_num_vertices(self):
        coo = COO([0], [1], num_vertices=10)
        assert coo.num_vertices == 10

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            COO([0, 5], [3, 1], num_vertices=4)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            COO([-1], [0], num_vertices=4)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            COO([0, 1], [0])

    def test_weights_length_mismatch(self):
        with pytest.raises(ValidationError):
            COO([0, 1], [1, 0], weights=[1])

    def test_empty(self):
        coo = COO([], [], num_vertices=0)
        assert coo.num_edges == 0 and coo.num_vertices == 0


class TestTransforms:
    def test_without_self_loops(self):
        coo = COO([0, 1, 2], [0, 2, 2]).without_self_loops()
        assert list(zip(coo.src.tolist(), coo.dst.tolist())) == [(1, 2)]

    def test_deduplicated_keeps_last_weight(self):
        coo = COO([0, 0, 0], [1, 1, 2], weights=[10, 20, 30]).deduplicated()
        pairs = dict(zip(zip(coo.src.tolist(), coo.dst.tolist()), coo.weights.tolist()))
        assert pairs == {(0, 1): 20, (0, 2): 30}

    def test_symmetrized_doubles(self):
        coo = COO([0], [1]).symmetrized()
        assert coo.num_edges == 2
        assert set(zip(coo.src.tolist(), coo.dst.tolist())) == {(0, 1), (1, 0)}

    def test_permuted_preserves_multiset(self):
        coo = COO([0, 1, 2, 3], [1, 2, 3, 0], weights=[5, 6, 7, 8])
        perm = coo.permuted(seed=3)
        orig = sorted(zip(coo.src.tolist(), coo.dst.tolist(), coo.weights.tolist()))
        got = sorted(zip(perm.src.tolist(), perm.dst.tolist(), perm.weights.tolist()))
        assert orig == got

    def test_batches(self):
        coo = COO(np.arange(10), np.roll(np.arange(10), 1))
        chunks = list(coo.batches(4))
        assert [c.num_edges for c in chunks] == [4, 4, 2]
        assert np.concatenate([c.src for c in chunks]).tolist() == coo.src.tolist()

    def test_batches_bad_size(self):
        with pytest.raises(ValidationError):
            list(COO([0], [1]).batches(0))

    def test_batches_are_views_not_copies(self):
        coo = COO(np.arange(10), np.roll(np.arange(10), 1), weights=np.arange(10))
        for i, chunk in enumerate(coo.batches(4)):
            assert np.shares_memory(chunk.src, coo.src), i
            assert np.shares_memory(chunk.dst, coo.dst), i
            assert np.shares_memory(chunk.weights, coo.weights), i


class TestConversions:
    def test_to_csr_sorted(self):
        coo = COO([2, 0, 0, 1], [1, 5, 3, 0], num_vertices=6, weights=[9, 8, 7, 6])
        row_ptr, col, w = coo.to_csr()
        assert row_ptr.tolist() == [0, 2, 3, 4, 4, 4, 4]
        assert col[:2].tolist() == [3, 5]  # row 0 sorted
        assert w[:2].tolist() == [7, 8]

    def test_to_csr_rejects_mutated_out_of_range_src(self):
        coo = COO([0, 1], [1, 0], num_vertices=2)
        coo.src = np.array([0, 5], dtype=np.int64)  # mutate behind the back
        with pytest.raises(ValidationError):
            coo.to_csr()
        coo.src = np.array([0, -1], dtype=np.int64)
        with pytest.raises(ValidationError):
            coo.to_csr()
        coo = COO([0, 1], [1, 0], num_vertices=2)
        coo.dst = np.array([1, 99], dtype=np.int64)
        with pytest.raises(ValidationError):
            coo.to_csr()

    def test_out_degrees(self):
        coo = COO([0, 0, 2], [1, 2, 0], num_vertices=4)
        assert coo.out_degrees().tolist() == [2, 0, 1, 0]

    def test_degree_stats(self):
        coo = COO([0, 0, 1], [1, 2, 2], num_vertices=3)
        st = coo.degree_stats()
        assert st["min"] == 0 and st["max"] == 2
        assert st["mean"] == pytest.approx(1.0)

    def test_degree_stats_empty(self):
        st = COO([], [], num_vertices=0).degree_stats()
        assert st["mean"] == 0.0

    def test_weights_or_zeros(self):
        assert COO([0], [1]).weights_or_zeros().tolist() == [0]
        assert COO([0], [1], weights=[9]).weights_or_zeros().tolist() == [9]
