"""Smoke tests: every example script runs, and the bench runner works.

Examples are the public face of the library; a refactor that breaks one
should fail CI, not a user.  The slower examples run with reduced work via
monkeypatched dataset sizes where needed; the quick ones run as-is.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "inserted 4 unique edges" in out
    assert "exported snapshot" in out


def test_checkpointing_example_runs(capsys):
    run_example("checkpointing_and_backends.py")
    out = capsys.readouterr().out
    assert "restored checkpoint reproduces SSSP exactly" in out
    assert "range query" in out


def test_streaming_incremental_example_runs(capsys):
    run_example("streaming_incremental_analytics.py")
    out = capsys.readouterr().out
    assert "incremental analytics verified exact after every phase" in out
    assert "speedup" in out


def test_incremental_family_example_runs(capsys):
    run_example("incremental_analytics_family.py")
    out = capsys.readouterr().out
    assert "all six incremental analytics verified exact after every phase" in out
    assert "family speedup" in out
    # The deletion window forces every analytic cold; inserts fold warm.
    assert "(cold)" in out
    assert "(incremental)" in out


def test_kernel_tiers_example_runs(capsys):
    run_example("kernel_tiers.py")
    out = capsys.readouterr().out
    assert "results identical across tiers" in out
    assert "modeled device counters identical across tiers" in out
    assert "reference:" in out


def test_sharded_service_example_runs(capsys):
    run_example("sharded_service.py")
    out = capsys.readouterr().out
    assert "sharded service verified exact against a single graph" in out
    assert "modeled update speedup" in out


def test_durable_service_example_runs(capsys):
    run_example("durable_service.py")
    out = capsys.readouterr().out
    assert "recovered graph is bit-identical to the lost instance" in out
    assert "torn record discarded" in out
    assert "replica tailed" in out


@pytest.mark.chaos
def test_chaos_failover_example_runs(capsys):
    run_example("chaos_failover.py")
    out = capsys.readouterr().out
    assert "transient faults absorbed: 2" in out
    assert "typed query failure: shard=1 op=degree" in out
    assert "degraded read" in out
    assert "recovered service verified bit-identical to a never-faulted run" in out
    assert "strict mode: PartialDispatchError" in out


@pytest.mark.slow
def test_streaming_example_runs(capsys):
    run_example("streaming_social_network.py")
    out = capsys.readouterr().out
    assert "cumulative speedup" in out


@pytest.mark.slow
def test_road_example_runs(capsys):
    run_example("road_network_maintenance.py")
    out = capsys.readouterr().out
    assert "after tombstone flush: 0 tombstones remain" in out


@pytest.mark.slow
def test_load_factor_example_runs(capsys):
    run_example("load_factor_tuning.py")
    out = capsys.readouterr().out
    assert "best query performance" in out


class TestRunner:
    def test_single_artifact(self, capsys):
        from repro.bench.runner import main

        assert main(["t8"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "luxembourg_osm" in out

    def test_quick_figure(self, capsys):
        from repro.bench.runner import main

        # Shrink the sweep for CI speed.
        import repro.bench.figures as F

        old = F.EDGE_FACTORS, F.LOAD_FACTORS
        F.EDGE_FACTORS, F.LOAD_FACTORS = [16], [0.7, 3.0]
        try:
            assert main(["f2", "--quick"]) == 0
        finally:
            F.EDGE_FACTORS, F.LOAD_FACTORS = old
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_unknown_artifact(self, capsys):
        from repro.bench.runner import main

        assert main(["t99"]) == 2
