"""Fault injection, shard failover, and degraded-mode serving.

The contract under test (docs/robustness.md): a seeded FaultPlan makes
fault schedules a pure function of (seed, operation sequence); wrappers
fault on entry so a faulted op never touched the backend; the sharded
service absorbs transients with retries, marks permanent failures dead,
accounts partial dispatches so they can be re-driven, serves degraded
reads from cached shard snapshots, and rebuilds a dead shard from its
durable WAL bit-identical to a never-faulted run — pinned here across
all five backends.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    SHARD_DEAD,
    SHARD_DEGRADED,
    SHARD_HEALTHY,
    Graph,
    PartialDispatchError,
    RetryPolicy,
    ShardedGraph,
    ShardError,
    backend_names,
)
from repro.chaos import FaultPlan, FaultSpec, FaultyBackend
from repro.stream.chaos import (
    disk_fault_scenario,
    kill_rebuild_scenario,
    run_chaos_scenario,
    thrash_fault_specs,
    thrash_scenario,
)
from repro.stream.scenario import Phase, Scenario, run_scenario
from repro.util.errors import (
    PermanentFault,
    TransientFault,
    ValidationError,
)

pytestmark = pytest.mark.chaos

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks/baselines/BENCH_baseline_quick.json"


def schedule(plan):
    """A plan's fired faults as comparable tuples."""
    return [(r.point, r.kind, r.arrival, r.spec_index) for r in plan.fired]


def assert_snaps_identical(got, want):
    assert np.array_equal(got.row_ptr, want.row_ptr)
    assert np.array_equal(got.col_idx, want.col_idx)
    if want.weights is not None:
        assert np.array_equal(got.weights, want.weights)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        specs = (FaultSpec("p.*", kind="transient", rate=0.4, max_fires=None),)
        runs = []
        for _ in range(2):
            plan = FaultPlan(7, specs)
            for i in range(200):
                try:
                    plan.arrive(f"p.{i % 3}")
                except TransientFault:
                    pass
            runs.append(schedule(plan))
        assert runs[0] == runs[1]
        assert runs[0]  # rate 0.4 over 200 arrivals certainly fires

    def test_different_seed_different_schedule(self):
        def run(seed):
            plan = FaultPlan(seed, (FaultSpec("x", rate=0.5, max_fires=None),))
            fired = []
            for i in range(64):
                try:
                    plan.arrive("x")
                except TransientFault:
                    fired.append(i)
            return fired

        assert run(1) != run(2)

    def test_spec_streams_are_independent(self):
        """Arrivals at a point only one rule matches never perturb
        another rule's draw stream."""
        spec_a = FaultSpec("a", rate=0.5, max_fires=None)
        spec_b = FaultSpec("b", rate=0.5, max_fires=None)

        def b_schedule(extra_a_arrivals):
            plan = FaultPlan(3, (spec_a, spec_b))
            for _ in range(extra_a_arrivals):
                try:
                    plan.arrive("a")
                except TransientFault:
                    pass
            fired = []
            for i in range(64):
                try:
                    plan.arrive("b")
                except TransientFault:
                    fired.append(i)
            return fired

        assert b_schedule(0) == b_schedule(17)

    def test_after_and_max_fires(self):
        plan = FaultPlan(0, (FaultSpec("w", kind="transient", after=2, max_fires=2),))
        outcomes = []
        for _ in range(6):
            try:
                plan.arrive("w")
                outcomes.append("ok")
            except TransientFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]

    def test_permanent_kind_raises_permanent(self):
        plan = FaultPlan(0, (FaultSpec("gone", kind="permanent"),))
        with pytest.raises(PermanentFault):
            plan.arrive("gone")

    def test_slow_kind_charges_model_without_raising(self):
        from repro.gpusim.counters import get_counters

        plan = FaultPlan(0, (FaultSpec("s", kind="slow", slow_launches=9),))
        before = get_counters().kernel_launches
        spec = plan.arrive("s")
        assert spec is not None and spec.kind == "slow"
        assert get_counters().kernel_launches - before == 9

    def test_drain_events_windows(self):
        plan = FaultPlan(0, (FaultSpec("p", max_fires=None),))
        for _ in range(2):
            with pytest.raises(TransientFault):
                plan.arrive("p")
        first = plan.drain_events()
        assert len(first) == 2
        assert plan.drain_events() == []
        with pytest.raises(TransientFault):
            plan.arrive("p")
        assert len(plan.drain_events()) == 1
        assert len(plan.fired) == 3  # the full journal is preserved

    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultSpec("p", kind="nope")
        with pytest.raises(ValidationError):
            FaultSpec("p", rate=1.5)
        with pytest.raises(ValidationError):
            FaultSpec("p", after=-1)
        with pytest.raises(ValidationError):
            FaultSpec("p", torn_fraction=1.0)


class TestFaultyBackend:
    def test_fault_on_entry_leaves_backend_untouched(self):
        g = Graph.create("slabhash", num_vertices=32)
        plan = FaultPlan(0, (FaultSpec("b.insert_edges", kind="transient"),))
        g.backend = FaultyBackend(g.backend, plan, prefix="b")
        with pytest.raises(TransientFault):
            g.insert_edges([1], [2])
        assert g.num_edges() == 0  # the wrapped backend never ran
        assert len(g.events) == 0  # and nothing was published
        assert g.insert_edges([1], [2]) == 1  # one-shot spec exhausted

    def test_transparent_without_matching_specs(self):
        g = Graph.create("hornet", num_vertices=32)
        plan = FaultPlan(0)
        g.backend = FaultyBackend(g.backend, plan, prefix="b")
        g.insert_edges([0, 1], [1, 2])
        assert g.num_edges() == 2
        assert bool(g.edge_exists([0], [1])[0])
        assert plan.total_arrivals > 0


def service_with_plan(plan, *, n=64, shards=3, partial="raise", retry=None, weighted=False):
    svc = ShardedGraph.create(
        "slabhash", n, num_shards=shards, weighted=weighted,
        partial_dispatch=partial, retry=retry,
    )
    for s, shard in enumerate(svc.shards):
        shard.backend = FaultyBackend(shard.backend, plan, prefix=f"shard{s}")
    return svc


class TestHealthAndRetry:
    def test_transient_fault_absorbed_by_retry(self):
        plan = FaultPlan(0, (FaultSpec("shard1.insert_edges", kind="transient"),))
        svc = service_with_plan(plan)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, 40, dtype=np.int64)
        dst = rng.integers(0, 64, 40, dtype=np.int64)
        applied = svc.insert_edges(src, dst)
        assert applied > 0
        assert svc.health == [SHARD_HEALTHY] * 3
        assert svc.fault_stats["transient_faults"] == 1
        assert svc.fault_stats["retries"] == 1
        assert svc.fault_stats["backoff_seconds"] > 0

    def test_retry_exhaustion_marks_degraded(self):
        plan = FaultPlan(
            0, (FaultSpec("shard0.insert_edges", kind="transient", max_fires=None),)
        )
        svc = service_with_plan(plan, retry=RetryPolicy(max_attempts=2))
        with pytest.raises(PartialDispatchError) as exc:
            svc.insert_edges(np.arange(12, dtype=np.int64), np.arange(12, dtype=np.int64) + 13)
        assert svc.shard_health(0) == SHARD_DEGRADED
        assert 0 in exc.value.report.failed_shards
        # A later fault-free batch restores the shard to healthy.
        svc2 = service_with_plan(
            FaultPlan(0, (FaultSpec("shard0.insert_edges", kind="transient", max_fires=2),)),
            retry=RetryPolicy(max_attempts=2),
            partial="record",
        )
        svc2.insert_edges(np.arange(12, dtype=np.int64), np.arange(12, dtype=np.int64) + 13)
        assert svc2.shard_health(0) == SHARD_DEGRADED
        svc2.insert_edges(np.arange(12, dtype=np.int64), np.arange(12, dtype=np.int64) + 25)
        assert svc2.shard_health(0) == SHARD_HEALTHY

    def test_permanent_fault_marks_dead_and_partial_raises(self):
        plan = FaultPlan(0, (FaultSpec("shard2.insert_edges", kind="permanent"),))
        svc = service_with_plan(plan)
        rng = np.random.default_rng(1)
        src = rng.integers(0, 64, 60, dtype=np.int64)
        dst = rng.integers(0, 64, 60, dtype=np.int64)
        with pytest.raises(PartialDispatchError) as exc:
            svc.insert_edges(src, dst)
        assert svc.shard_health(2) == SHARD_DEAD
        report = exc.value.report
        assert report.failed_shards == (2,)
        assert set(report.applied) <= {0, 1}
        assert svc.fault_stats["permanent_faults"] == 1

    def test_dead_shard_not_reattempted(self):
        plan = FaultPlan(0, (FaultSpec("shard1.insert_edges", kind="permanent"),))
        svc = service_with_plan(plan, partial="record")
        rng = np.random.default_rng(2)
        for _ in range(3):
            src = rng.integers(0, 64, 30, dtype=np.int64)
            dst = rng.integers(0, 64, 30, dtype=np.int64)
            svc.insert_edges(src, dst)
        # One permanent fire; later batches skip the dead shard outright.
        assert svc.fault_stats["permanent_faults"] == 1
        assert len(svc.pending) >= 2
        assert all("dead" in reason for _, reason in svc.pending[-1].failed)

    def test_retry_policy_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValidationError):
            ShardedGraph.create("slabhash", 16, num_shards=2, partial_dispatch="bogus")


class TestDegradedReads:
    def build(self):
        plan = FaultPlan(0)
        svc = service_with_plan(plan, n=96, shards=3, partial="record")
        rng = np.random.default_rng(3)
        src = rng.integers(0, 96, 200, dtype=np.int64)
        dst = rng.integers(0, 96, 200, dtype=np.int64)
        svc.insert_edges(src, dst)
        return svc, rng

    def test_snapshot_refuses_with_dead_shard(self):
        svc, _ = self.build()
        svc.snapshot()
        svc.kill_shard(1)
        with pytest.raises(ShardError) as exc:
            svc.snapshot()
        assert exc.value.shard == 1
        assert "degraded_snapshot" in str(exc.value)

    def test_degraded_read_serves_cached_shard_with_staleness(self):
        svc, rng = self.build()
        live = svc.snapshot()  # populates the per-shard cache
        svc.kill_shard(1)
        degraded = svc.degraded_snapshot()
        assert degraded.stale_shards == (1,)
        assert degraded.missing_shards == ()
        assert not degraded.fresh
        # Nothing changed since the cache was cut: the view is still exact.
        assert_snaps_identical(degraded.snapshot, live)
        # Mutations to live shards show up; the dead shard stays pinned.
        src = rng.integers(0, 96, 50, dtype=np.int64)
        dst = rng.integers(0, 96, 50, dtype=np.int64)
        svc.insert_edges(src, dst)
        after = svc.degraded_snapshot()
        assert after.snapshot.num_edges > live.num_edges
        (tag,) = after.staleness
        assert tag[0] == 1 and tag[1] >= 0
        assert svc.fault_stats["degraded_reads"] == 2

    def test_degraded_read_without_cache_serves_empty_shard(self):
        svc, _ = self.build()
        svc.kill_shard(2)  # killed before any snapshot was ever cut
        degraded = svc.degraded_snapshot()
        assert degraded.missing_shards == (2,)
        # Served view holds only the live shards' edges.
        assert degraded.snapshot.num_edges < svc.num_edges() + 1


class TestQueryShardErrors:
    def test_queries_raise_typed_shard_error(self):
        svc, _ = TestDegradedReads().build()
        svc.kill_shard(0)
        dead_src = np.flatnonzero(svc.partitioner.shard_of(np.arange(96)) == 0)[:4]
        probes = dead_src.astype(np.int64)
        for op, call in [
            ("degree", lambda: svc.degree(probes)),
            ("edge_exists", lambda: svc.edge_exists(probes, probes + 1)),
            ("adjacencies", lambda: svc.adjacencies(probes)),
            ("neighbors", lambda: svc.neighbors(int(probes[0]))),
        ]:
            with pytest.raises(ShardError) as exc:
                call()
            assert exc.value.shard == 0
            assert exc.value.op == op


class TestKillRebuildPin:
    @pytest.mark.parametrize("name", sorted(backend_names()))
    def test_rebuild_bit_identical_across_backends(self, name, tmp_path):
        """Fixed seeds: kill → rebuild → redrive converges every backend
        to the exact snapshot of a never-faulted run."""
        from repro.api import capabilities

        n, rounds = 96, 4
        weighted = capabilities(name).weighted

        def workload(svc):
            rng = np.random.default_rng(11)
            for r in range(rounds):
                src = rng.integers(0, n, 50, dtype=np.int64)
                dst = rng.integers(0, n, 50, dtype=np.int64)
                w = rng.integers(1, 9, 50, dtype=np.int64) if weighted else None
                svc.insert_edges(src, dst, w)
                if r == 1:
                    yield svc  # mid-workload hook
                pick_s = rng.integers(0, n, 10, dtype=np.int64)
                pick_d = rng.integers(0, n, 10, dtype=np.int64)
                svc.delete_edges(pick_s, pick_d)

        def build(directory, chaos):
            svc = ShardedGraph.create(
                name, n, num_shards=3, weighted=weighted, partial_dispatch="record"
            )
            svc.attach_durability(directory, fsync="never")
            it = workload(svc)
            next(it)  # run to the mid-workload hook
            if chaos:
                svc.kill_shard(1)
            for _ in it:
                pass
            if chaos:
                assert svc.pending  # the dead shard's rows were recorded
                svc.rebuild_shard(1)
                assert svc.redrive_pending() == 0
            svc.stores.close()
            return svc

        clean = build(tmp_path / "clean", chaos=False)
        faulted = build(tmp_path / "faulted", chaos=True)
        assert faulted.health == [SHARD_HEALTHY] * 3
        assert_snaps_identical(faulted.snapshot(), clean.snapshot())


class TestChaosScenarios:
    def test_plain_runner_rejects_chaos_phases(self):
        sc = Scenario(
            name="x", family="rmat", num_vertices=64, avg_degree=2.0,
            phases=(Phase("kill_shard", target=0),),
        )
        with pytest.raises(ValidationError, match="run_chaos_scenario"):
            run_scenario(sc, "slabhash")

    def test_phase_validation(self):
        with pytest.raises(ValidationError):
            Phase("kill_shard")  # no target
        with pytest.raises(ValidationError):
            Phase("disk_fault")  # no size
        sc = kill_rebuild_scenario(64, batch=8, shard=9)
        with pytest.raises(ValidationError, match="targets shard 9"):
            run_chaos_scenario(sc, "slabhash", num_shards=4)

    def test_kill_rebuild_scenario_end_to_end(self):
        sc = kill_rebuild_scenario(1 << 8, batch=64)
        with run_chaos_scenario(sc, "slabhash", fault_seed=5) as res:
            kinds = [p.kind for p in res.phases]
            assert kinds == [p.kind for p in sc.phases]
            computes = [p for p in res.phases if p.kind == "compute"]
            assert [p.detail["degraded"] for p in computes] == [False, True, False]
            assert computes[1].detail["stale_shards"] == [1]
            rebuild = next(p for p in res.phases if p.kind == "rebuild_shard")
            assert rebuild.detail["pending_after_redrive"] == 0
            assert rebuild.detail["replayed_events"] > 0
            assert all("health" in p.detail and "faults" in p.detail for p in res.phases)
            assert res.service.health == [SHARD_HEALTHY] * res.num_shards

    def test_disk_fault_scenario_heals_and_recovers(self):
        sc = disk_fault_scenario(1 << 8, batch=64, fires=2)
        with run_chaos_scenario(sc, "slabhash", fault_seed=5) as res:
            faulted_insert = res.phases[2]
            assert len(faulted_insert.detail["faults"]) == 2
            checkpoint = next(p for p in res.phases if p.kind == "checkpoint")
            assert checkpoint.detail["healed_gaps"] == 2
            assert res.service.stores.durability_gap == 0
            res.service.snapshot()  # healthy again after rebuild

    def test_thrash_scenario_deterministic_and_transparent(self):
        sc = thrash_scenario(1 << 8, batch=48)

        def run():
            with run_chaos_scenario(
                sc, "slabhash", fault_seed=11, faults=thrash_fault_specs(0.3)
            ) as res:
                return schedule(res.plan), res.service.snapshot(), dict(res.service.fault_stats)

        (sched_a, snap_a, stats_a), (sched_b, snap_b, _) = run(), run()
        assert sched_a == sched_b and sched_a  # faults fired, identically
        assert_snaps_identical(snap_a, snap_b)
        assert stats_a["retries"] == stats_a["transient_faults"]  # all absorbed

    def test_chaos_run_matches_plain_data_schedule(self):
        """Chaos phases consume no workload RNG: the kill/rebuild run's
        final state equals a run of the same schedule without them."""
        sc = kill_rebuild_scenario(1 << 8, batch=64)
        plain = Scenario(
            name="plain", family=sc.family, num_vertices=sc.num_vertices,
            avg_degree=sc.avg_degree, seed=sc.seed,
            phases=tuple(p for p in sc.phases if p.kind in ("insert", "compute")),
        )
        with run_chaos_scenario(sc, "slabhash", fault_seed=1) as chaotic:
            with run_chaos_scenario(plain, "slabhash", fault_seed=1) as clean:
                assert_snaps_identical(chaotic.service.snapshot(), clean.service.snapshot())


class TestT14Gates:
    def test_committed_quick_baseline_gates_chaos(self):
        """The t14 quick gates: WAL-replay rebuild ≥ 2x cheaper than cold
        re-ingest, and degraded reads within 2x of a healthy assemble."""
        doc = json.loads(BASELINE.read_text())
        metrics = {
            r["metric"]: r["value"] for a in doc["artifacts"] for r in a.get("results", [])
        }
        speedups = [
            k
            for k in metrics
            if k.startswith("t14/E=2^18/shards=4/") and k.endswith("/recovery_speedup")
        ]
        assert speedups, "t14 recovery-speedup metrics missing from the quick baseline"
        for key in speedups:
            assert metrics[key] >= 2.0, (key, metrics[key])
        overheads = [
            k
            for k in metrics
            if k.startswith("t14/E=2^18/shards=4/") and k.endswith("/degraded_read_overhead")
        ]
        assert overheads, "t14 degraded-read metrics missing from the quick baseline"
        for key in overheads:
            assert metrics[key] <= 2.0, (key, metrics[key])

    def test_chaos_artifact_quick_structure(self):
        from repro.bench.chaos_bench import chaos_artifact

        art = chaos_artifact(seed=0, quick=True)
        keys = {r.metric for r in art.results}
        prefix = "t14/E=2^18/shards=4/slabhash/"
        for suffix in (
            "fresh_read",
            "degraded_read",
            "degraded_read_overhead",
            "rebuild",
            "cold_reingest",
            "recovery_speedup",
            "rebuild_wall",
            "scenario_model",
            "scenario_wall",
        ):
            assert prefix + suffix in keys
        assert len(art.rows) == 1
