"""Tests for the multi-table slab arena: lifecycle, kernels, memory."""

import numpy as np
import pytest

from repro.gpusim.counters import counting
from repro.slabhash.arena import SlabArena
from repro.slabhash.constants import (
    EMPTY_KEY,
    NULL_SLAB,
    SLAB_KEY_CAPACITY,
    TOMBSTONE_KEY,
)
from repro.slabhash.stats import chain_lengths, compute_stats, live_counts
from repro.util.errors import ValidationError


def make_arena(num_tables=8, weighted=True, buckets=2):
    arena = SlabArena(num_tables, weighted=weighted)
    ids = np.arange(num_tables)
    arena.create_tables(ids, np.full(num_tables, buckets))
    return arena


class TestLifecycle:
    def test_create_tables_contiguous_bases(self):
        arena = SlabArena(3, weighted=False)
        arena.create_tables(np.array([0, 1, 2]), np.array([2, 3, 1]))
        bases = arena.table_base
        # Buckets are carved from one contiguous reservation.
        assert bases[1] == bases[0] + 2
        assert bases[2] == bases[1] + 3

    def test_create_existing_rejected(self):
        arena = make_arena()
        with pytest.raises(ValidationError):
            arena.create_tables(np.array([0]), np.array([1]))

    def test_zero_buckets_rejected(self):
        arena = SlabArena(2, weighted=True)
        with pytest.raises(ValidationError):
            arena.create_tables(np.array([0]), np.array([0]))

    def test_grow_tables(self):
        arena = make_arena(4)
        arena.insert(np.array([1]), np.array([77]), np.array([5]))
        arena.grow_tables(16)
        assert arena.num_tables == 16
        found, vals = arena.search(np.array([1]), np.array([77]))
        assert found[0] and vals[0] == 5
        assert not arena.has_table(np.array([12]))[0]

    def test_buckets_for(self):
        out = SlabArena.buckets_for([0, 1, 15, 16, 150], 0.7, 15)
        # ceil(d / 10.5), minimum 1
        assert out.tolist() == [1, 1, 2, 2, 15]


class TestKernels:
    def test_insert_search_roundtrip_across_tables(self):
        arena = make_arena(10)
        t = np.repeat(np.arange(10), 20)
        k = np.tile(np.arange(20), 10)
        v = np.arange(200)
        added = arena.insert(t, k, v)
        assert added.sum() == 200  # same key in different tables is distinct
        found, vals = arena.search(t, k)
        assert found.all() and np.array_equal(vals, v)

    def test_search_missing_table(self):
        arena = SlabArena(4, weighted=True)
        arena.create_tables(np.array([0]), np.array([1]))
        found, _ = arena.search(np.array([3]), np.array([1]))
        assert not found[0]

    def test_insert_missing_table_rejected(self):
        arena = SlabArena(4, weighted=True)
        with pytest.raises(ValidationError):
            arena.insert(np.array([2]), np.array([1]), np.array([0]))

    def test_delete_missing_table_is_noop(self):
        arena = SlabArena(4, weighted=True)
        removed = arena.delete(np.array([2]), np.array([1]))
        assert not removed[0]

    def test_batch_dedup_last_wins(self):
        arena = make_arena(2)
        added = arena.insert(np.array([0, 0, 0]), np.array([5, 5, 5]), np.array([1, 2, 3]))
        assert added.sum() == 1
        _, vals = arena.search(np.array([0]), np.array([5]))
        assert vals[0] == 3

    def test_duplicate_deletes_count_once(self):
        arena = make_arena(2)
        arena.insert(np.array([0]), np.array([5]), np.array([1]))
        removed = arena.delete(np.array([0, 0]), np.array([5, 5]))
        assert removed.sum() == 1

    def test_iterate(self):
        arena = make_arena(3)
        arena.insert(np.array([0, 0, 2]), np.array([1, 2, 9]), np.array([5, 6, 7]))
        owners, keys, vals = arena.iterate(np.array([0, 2]))
        got = sorted(zip(owners.tolist(), keys.tolist(), vals.tolist()))
        assert got == [(0, 1, 5), (0, 2, 6), (1, 9, 7)]

    def test_empty_batches(self):
        arena = make_arena(2)
        assert arena.insert([], [], []).size == 0
        assert arena.delete([], []).size == 0
        found, vals = arena.search([], [])
        assert found.size == 0 and vals.size == 0

    def test_key_range_checked(self):
        arena = make_arena(2)
        with pytest.raises(ValidationError):
            arena.insert(np.array([0]), np.array([EMPTY_KEY]), np.array([0]))
        with pytest.raises(ValidationError):
            arena.insert(np.array([0]), np.array([TOMBSTONE_KEY]), np.array([0]))

    def test_set_arena_has_no_values(self):
        arena = SlabArena(2, weighted=False)
        arena.create_tables(np.array([0]), np.array([1]))
        arena.insert(np.array([0]), np.array([3]))
        with pytest.raises(ValidationError):
            _ = arena.pool.values


class TestMemory:
    def test_overflow_allocates_slabs(self):
        arena = SlabArena(1, weighted=False)
        arena.create_tables(np.array([0]), np.array([1]))
        base_allocated = arena.pool.num_allocated
        arena.insert(np.zeros(100, np.int64), np.arange(100))
        assert arena.pool.num_allocated > base_allocated

    def test_clear_tables_frees_overflow_keeps_base(self):
        arena = SlabArena(1, weighted=False)
        arena.create_tables(np.array([0]), np.array([2]))
        arena.insert(np.zeros(200, np.int64), np.arange(200))
        with counting() as delta:
            arena.clear_tables(np.array([0]))
        assert delta["slabs_freed"] > 0
        assert arena.pool.num_allocated == 2  # just the base slabs
        owners, keys, _ = arena.iterate(np.array([0]))
        assert keys.size == 0
        # Table is reusable after clearing.
        arena.insert(np.array([0]), np.array([9]))
        found, _ = arena.search(np.array([0]), np.array([9]))
        assert found[0]

    def test_freed_slabs_recycled(self):
        arena = SlabArena(1, weighted=False)
        arena.create_tables(np.array([0]), np.array([1]))
        arena.insert(np.zeros(200, np.int64), np.arange(200))
        bump_after_fill = arena.pool._bump
        arena.clear_tables(np.array([0]))
        arena.insert(np.zeros(200, np.int64), np.arange(200))
        # Refilling reuses recycled slabs instead of fresh bump space.
        assert arena.pool._bump == bump_after_fill

    def test_allocated_bytes(self):
        arena = make_arena(2, buckets=3)
        assert arena.pool.allocated_bytes == 2 * 3 * 128


class TestStats:
    def test_live_counts_and_chains(self):
        arena = SlabArena(3, weighted=False)
        arena.create_tables(np.arange(3), np.array([1, 1, 1]))
        arena.insert(np.zeros(45, np.int64), np.arange(45))  # 45 keys: 2 slabs
        arena.insert(np.full(5, 2, np.int64), np.arange(5))
        ids = np.arange(3)
        assert live_counts(arena, ids).tolist() == [45, 0, 5]
        chains = chain_lengths(arena, ids)
        assert chains[0] == 2 and chains[2] == 1

    def test_compute_stats_utilization(self):
        arena = SlabArena(1, weighted=False)
        arena.create_tables(np.array([0]), np.array([1]))
        arena.insert(np.zeros(SLAB_KEY_CAPACITY, np.int64), np.arange(SLAB_KEY_CAPACITY))
        st = compute_stats(arena, np.array([0]))
        assert st.memory_utilization == pytest.approx(1.0)
        assert st.live_entries == SLAB_KEY_CAPACITY
        assert st.num_slabs == 1
        assert st.mean_bucket_load == pytest.approx(1.0)

    def test_tombstones_counted(self):
        arena = make_arena(1, buckets=1)
        arena.insert(np.zeros(10, np.int64), np.arange(10), np.arange(10))
        arena.delete(np.zeros(4, np.int64), np.arange(4))
        st = compute_stats(arena, np.array([0]))
        assert st.tombstones == 4
        assert st.live_entries == 6


class TestTombstoneSemantics:
    def test_tombstones_not_overwritten(self):
        """Inserts append past tombstones; lanes are reclaimed only by an
        explicit flush (Section IV-C2)."""
        arena = SlabArena(1, weighted=False)
        arena.create_tables(np.array([0]), np.array([1]))
        arena.insert(np.zeros(10, np.int64), np.arange(10))
        arena.delete(np.zeros(5, np.int64), np.arange(5))
        arena.insert(np.zeros(5, np.int64), np.arange(100, 105))
        base = int(arena.table_base[0])
        row = arena.pool.keys[base]
        # The first five lanes are tombstones, not the new keys.
        assert (row[:5] == np.uint32(TOMBSTONE_KEY)).all()
        owners, keys, _ = arena.iterate(np.array([0]))
        assert sorted(keys.tolist()) == [5, 6, 7, 8, 9, 100, 101, 102, 103, 104]

    def test_flush_restores_density(self):
        arena = SlabArena(1, weighted=True)
        arena.create_tables(np.array([0]), np.array([1]))
        arena.insert(np.zeros(30, np.int64), np.arange(30), np.arange(30) * 2)
        arena.delete(np.zeros(15, np.int64), np.arange(15))
        arena.flush_tombstones(np.array([0]))
        st = compute_stats(arena, np.array([0]))
        assert st.tombstones == 0
        assert st.live_entries == 15
        owners, keys, vals = arena.iterate(np.array([0]))
        assert dict(zip(keys.tolist(), vals.tolist())) == {k: 2 * k for k in range(15, 30)}


def check_tail_invariant(arena, table_ids):
    """Assert 'empties only at chain tails': a slab containing an EMPTY lane
    terminates its chain's data, and empty lanes form a suffix of it."""
    slab_ids, _, _ = arena.table_slabs(np.asarray(table_ids))
    for slab in slab_ids.tolist():
        row = arena.pool.keys[slab]
        empty = row == np.uint32(EMPTY_KEY)
        if empty.any():
            first = int(np.argmax(empty))
            assert empty[first:].all(), f"slab {slab}: EMPTY lane not a suffix"
            nxt = int(arena.pool.next_slab[slab])
            if nxt != NULL_SLAB:
                nrow = arena.pool.keys[nxt]
                assert (nrow == np.uint32(EMPTY_KEY)).all(), (
                    f"slab {slab}: live data beyond an EMPTY lane"
                )


class TestTailInvariant:
    def test_after_mixed_workload(self):
        rng = np.random.default_rng(11)
        arena = SlabArena(6, weighted=True)
        arena.create_tables(np.arange(6), np.array([1, 1, 2, 2, 3, 3]))
        for _ in range(10):
            t = rng.integers(0, 6, 300)
            k = rng.integers(0, 200, 300)
            arena.insert(t, k, rng.integers(0, 50, 300))
            td = rng.integers(0, 6, 150)
            kd = rng.integers(0, 200, 150)
            arena.delete(td, kd)
            check_tail_invariant(arena, np.arange(6))
