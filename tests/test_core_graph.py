"""Semantic tests for the public DynamicGraph API."""

import numpy as np
import pytest

from repro import COO, DynamicGraph
from repro.util.errors import ValidationError
from tests.conftest import structure_edges, structure_state


class TestBasics:
    def test_insert_and_query(self):
        g = DynamicGraph(num_vertices=10)
        assert g.insert_edges([0, 1], [1, 2], weights=[10, 20]) == 2
        assert g.edge_exists([0, 1, 2], [1, 2, 0]).tolist() == [True, True, False]
        found, w = g.edge_weights([0], [1])
        assert found[0] and w[0] == 10

    def test_self_loops_dropped(self):
        g = DynamicGraph(num_vertices=4)
        assert g.insert_edges([1, 2], [1, 3]) == 1
        assert g.num_edges() == 1
        assert not g.edge_exists([1], [1])[0]

    def test_replace_updates_weight_not_count(self):
        g = DynamicGraph(num_vertices=4)
        g.insert_edges([0], [1], weights=[5])
        assert g.insert_edges([0], [1], weights=[9]) == 0
        assert g.num_edges() == 1
        _, w = g.edge_weights([0], [1])
        assert w[0] == 9

    def test_delete(self):
        g = DynamicGraph(num_vertices=4)
        g.insert_edges([0, 0], [1, 2])
        assert g.delete_edges([0, 0], [1, 3]) == 1
        assert g.num_edges() == 1
        assert not g.edge_exists([0], [1])[0]

    def test_degree_counters_exact(self):
        g = DynamicGraph(num_vertices=6)
        g.insert_edges([0, 0, 0, 1], [1, 2, 2, 0], weights=[1, 2, 3, 4])
        assert g.degree([0, 1, 2]).tolist() == [2, 1, 0]
        g.delete_edges([0], [2])
        assert g.degree([0]).tolist() == [1]

    def test_degree_negative_id_rejected(self):
        """-1 must raise, not silently wrap to the last dictionary slot."""
        g = DynamicGraph(num_vertices=6)
        g.insert_edges([5], [0], weights=[1])
        with pytest.raises(ValidationError):
            g.degree([-1])

    def test_degree_out_of_range_rejected(self):
        g = DynamicGraph(num_vertices=6)
        with pytest.raises(ValidationError):
            g.degree([6])
        with pytest.raises(ValidationError):
            g.degree(np.array([0, 2, 99]))

    def test_neighbors(self):
        g = DynamicGraph(num_vertices=5)
        g.insert_edges([2, 2, 2], [0, 1, 4], weights=[7, 8, 9])
        dst, w = g.neighbors(2)
        assert dict(zip(dst.tolist(), w.tolist())) == {0: 7, 1: 8, 4: 9}

    def test_adjacencies_batched(self):
        g = DynamicGraph(num_vertices=5, weighted=False)
        g.insert_edges([0, 0, 3], [1, 2, 4])
        owners, dst, _ = g.adjacencies([0, 3])
        got = sorted(zip(owners.tolist(), dst.tolist()))
        assert got == [(0, 1), (0, 2), (1, 4)]

    def test_export_coo_roundtrip(self):
        g = DynamicGraph(num_vertices=8)
        g.insert_edges([0, 1, 5], [3, 2, 7], weights=[1, 2, 3])
        coo = g.export_coo()
        g2 = DynamicGraph(num_vertices=8)
        g2.bulk_build(coo)
        assert structure_state(g2) == structure_state(g)

    def test_repr(self):
        g = DynamicGraph(num_vertices=3)
        assert "DynamicGraph" in repr(g)


class TestUndirected:
    def test_mirrored_insert(self):
        g = DynamicGraph(num_vertices=4, directed=False)
        assert g.insert_edges([0], [1], weights=[5]) == 2
        assert g.edge_exists([0, 1], [1, 0]).tolist() == [True, True]

    def test_mirrored_delete(self):
        g = DynamicGraph(num_vertices=4, directed=False)
        g.insert_edges([0], [1])
        assert g.delete_edges([1], [0]) == 2
        assert g.num_edges() == 0


class TestValidation:
    def test_out_of_range_src(self):
        g = DynamicGraph(num_vertices=4)
        with pytest.raises(ValidationError):
            g.insert_edges([4], [0])

    def test_out_of_range_dst(self):
        g = DynamicGraph(num_vertices=4)
        with pytest.raises(ValidationError):
            g.insert_edges([0], [9])

    def test_bad_load_factor(self):
        with pytest.raises(ValidationError):
            DynamicGraph(num_vertices=4, load_factor=0.0)
        with pytest.raises(ValidationError):
            DynamicGraph(num_vertices=4, load_factor=100.0)

    def test_empty_batches_ok(self):
        g = DynamicGraph(num_vertices=4)
        assert g.insert_edges([], []) == 0
        assert g.delete_edges([], []) == 0
        assert g.edge_exists([], []).size == 0


class TestRandomizedVsModel:
    def test_mixed_workload(self, rng, dict_graph):
        n = 120
        g = DynamicGraph(num_vertices=n)
        for _ in range(12):
            m = int(rng.integers(10, 400))
            src = rng.integers(0, n, m)
            dst = rng.integers(0, n, m)
            w = rng.integers(0, 1000, m)
            added = g.insert_edges(src, dst, w)
            assert added == dict_graph.insert(src, dst, w)
            k = int(rng.integers(5, 200))
            ds = rng.integers(0, n, k)
            dd = rng.integers(0, n, k)
            removed = g.delete_edges(ds, dd)
            assert removed == dict_graph.delete(ds, dd)
            assert g.num_edges() == dict_graph.num_edges()
        assert structure_state(g) == dict_graph.edges()
        # Degree counters agree everywhere.
        for v in range(n):
            assert int(g.degree([v])[0]) == dict_graph.degree(v)

    def test_query_only_phase_does_not_mutate(self, rng):
        g = DynamicGraph(num_vertices=50, weighted=False)
        src = rng.integers(0, 50, 500)
        dst = rng.integers(0, 50, 500)
        g.insert_edges(src, dst)
        before = structure_edges(g)
        g.edge_exists(rng.integers(0, 50, 1000), rng.integers(0, 50, 1000))
        g.adjacencies(np.arange(50))
        _ = g.stats()
        assert structure_edges(g) == before


class TestStats:
    def test_stats_reflect_load_factor(self):
        coo = COO(np.zeros(90, np.int64), np.arange(1, 91), num_vertices=100)
        tight = DynamicGraph(num_vertices=100, weighted=False, load_factor=5.0)
        tight.bulk_build(coo)
        loose = DynamicGraph(num_vertices=100, weighted=False, load_factor=0.3)
        loose.bulk_build(coo)
        assert tight.stats().num_buckets < loose.stats().num_buckets
        assert tight.stats().memory_utilization > loose.stats().memory_utilization
        assert tight.memory_bytes() < loose.memory_bytes()

    def test_memory_bytes_positive_after_build(self):
        g = DynamicGraph(num_vertices=10)
        g.insert_edges([0], [1])
        assert g.memory_bytes() >= 128
