"""Tests for graph I/O (MatrixMarket, edge lists, NPZ snapshots)."""

import io

import numpy as np
import pytest

from repro.coo import COO
from repro.io import (
    load_npz,
    read_edge_list,
    read_matrix_market,
    save_npz,
    write_edge_list,
    write_matrix_market,
)
from repro.util.errors import ValidationError


def pairs(coo):
    return sorted(zip(coo.src.tolist(), coo.dst.tolist()))


class TestMatrixMarket:
    def test_roundtrip_weighted(self, tmp_path):
        coo = COO([0, 1, 4], [2, 0, 3], num_vertices=5, weights=[7, 8, 9])
        path = tmp_path / "g.mtx"
        write_matrix_market(path, coo, comment="test graph")
        back = read_matrix_market(path)
        assert pairs(back) == pairs(coo)
        assert back.weights.tolist() == [7, 8, 9]
        assert back.num_vertices == 5

    def test_roundtrip_pattern(self, tmp_path):
        coo = COO([0, 1], [1, 0], num_vertices=3)
        path = tmp_path / "p.mtx"
        write_matrix_market(path, coo)
        back = read_matrix_market(path)
        assert back.weights is None
        assert pairs(back) == pairs(coo)

    def test_symmetric_mirroring(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% comment\n"
            "3 3 3\n"
            "2 1\n"
            "3 1\n"
            "2 2\n"
        )
        coo = read_matrix_market(io.StringIO(text))
        # Off-diagonal entries mirrored; the diagonal one is not.
        assert pairs(coo) == [(0, 1), (0, 2), (1, 0), (1, 1), (2, 0)]

    def test_real_field_rounded(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.7\n"
        )
        coo = read_matrix_market(io.StringIO(text))
        assert coo.weights.tolist() == [4]

    def test_bad_header(self):
        with pytest.raises(ValidationError):
            read_matrix_market(io.StringIO("not a header\n1 1 0\n"))

    def test_unsupported_symmetry(self):
        with pytest.raises(ValidationError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n")
            )


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        coo = COO([5, 0], [1, 3], num_vertices=6, weights=[2, 4])
        path = tmp_path / "g.txt"
        write_edge_list(path, coo)
        back = read_edge_list(path)
        assert pairs(back) == pairs(coo)
        assert sorted(back.weights.tolist()) == [2, 4]

    def test_comments_and_blank_lines(self):
        text = "# SNAP header\n\n0 1\n% other comment\n2\t3\n"
        coo = read_edge_list(io.StringIO(text))
        assert pairs(coo) == [(0, 1), (2, 3)]
        assert coo.weights is None

    def test_explicit_num_vertices(self):
        coo = read_edge_list(io.StringIO("0 1\n"), num_vertices=10)
        assert coo.num_vertices == 10

    def test_empty_file(self):
        coo = read_edge_list(io.StringIO("# nothing\n"))
        assert coo.num_edges == 0

    def test_malformed_line(self):
        with pytest.raises(ValidationError):
            read_edge_list(io.StringIO("7\n"))


class TestNpz:
    def test_roundtrip_weighted(self, tmp_path, rng):
        coo = COO(
            rng.integers(0, 50, 200),
            rng.integers(0, 50, 200),
            50,
            weights=rng.integers(0, 9, 200),
        )
        path = tmp_path / "snap.npz"
        save_npz(path, coo)
        back = load_npz(path)
        assert np.array_equal(back.src, coo.src)
        assert np.array_equal(back.dst, coo.dst)
        assert np.array_equal(back.weights, coo.weights)
        assert back.num_vertices == 50

    def test_roundtrip_unweighted(self, tmp_path):
        coo = COO([0], [1], num_vertices=4)
        path = tmp_path / "snap.npz"
        save_npz(path, coo)
        assert load_npz(path).weights is None

    def test_graph_checkpoint_cycle(self, tmp_path, rng):
        """Full cycle: dynamic graph -> snapshot -> disk -> rebuild."""
        from repro import DynamicGraph

        g = DynamicGraph(40)
        g.insert_edges(rng.integers(0, 40, 300), rng.integers(0, 40, 300), rng.integers(0, 9, 300))
        path = tmp_path / "ckpt.npz"
        save_npz(path, g.export_coo())
        g2 = DynamicGraph(40)
        g2.bulk_build(load_npz(path))
        a, b = g.export_coo(), g2.export_coo()
        assert sorted(zip(a.src.tolist(), a.dst.tolist(), a.weights.tolist())) == sorted(
            zip(b.src.tolist(), b.dst.tolist(), b.weights.tolist())
        )


class TestGzip:
    """``.gz`` paths are read and written through gzip transparently."""

    def test_edge_list_roundtrip_gz(self, tmp_path, rng):
        coo = COO(
            rng.integers(0, 60, 150),
            rng.integers(0, 60, 150),
            60,
            weights=rng.integers(0, 9, 150),
        )
        path = tmp_path / "edges.txt.gz"
        write_edge_list(path, coo)
        import gzip

        with gzip.open(path, "rb") as fh:  # really compressed, not renamed
            assert fh.read(1) == b"#"
        back = read_edge_list(path, num_vertices=60)
        assert pairs(back) == pairs(coo)
        assert back.weights.tolist() == coo.weights.tolist()

    def test_matrix_market_roundtrip_gz(self, tmp_path):
        coo = COO([0, 1, 4], [2, 0, 3], num_vertices=5, weights=[7, 8, 9])
        path = tmp_path / "g.mtx.gz"
        write_matrix_market(path, coo, comment="gzipped")
        back = read_matrix_market(path)
        assert pairs(back) == pairs(coo)
        assert back.weights.tolist() == [7, 8, 9]

    def test_gz_reads_plain_gzip_file(self, tmp_path):
        """A .gz written by something else (not our writer) also reads."""
        import gzip

        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("# comment\n0 1\n1 2 5\n")
        back = read_edge_list(path)
        assert pairs(back) == [(0, 1), (1, 2)]

    def test_plain_paths_unaffected(self, tmp_path):
        coo = COO([0], [1], num_vertices=2)
        path = tmp_path / "plain.txt"
        write_edge_list(path, coo)
        assert path.read_text().startswith("#")  # not gzipped
        assert pairs(read_edge_list(path)) == [(0, 1)]


class TestAtomicWrite:
    def test_success_leaves_no_tmp_file(self, tmp_path):
        from repro.io import atomic_write

        target = tmp_path / "out.txt"
        with atomic_write(target, "w", fsync=False) as fh:
            fh.write("hello")
        assert target.read_text() == "hello"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_keeps_previous_version_and_removes_tmp(self, tmp_path):
        from repro.io import atomic_write

        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write(target, "w", fsync=False) as fh:
                fh.write("partial garbage")
                raise RuntimeError("boom")
        assert target.read_text() == "previous"  # destination untouched
        assert list(tmp_path.iterdir()) == [target]  # tmp cleaned up

    def test_save_npz_appends_suffix_atomically(self, tmp_path):
        coo = COO([0, 1], [1, 2], 4)
        save_npz(tmp_path / "snap", coo)  # no .npz suffix
        back = load_npz(tmp_path / "snap.npz")
        assert pairs(back) == pairs(coo)
        assert {p.name for p in tmp_path.iterdir()} == {"snap.npz"}
