"""Check intra-repo markdown links in the documentation tree.

Usage:  python tools/check_markdown_links.py [repo_root]

Scans ``README.md``, ``CHANGES.md``, ``ROADMAP.md`` and every ``*.md``
under ``docs/`` for inline markdown links (``[text](target)``) and
verifies that each **relative** target resolves to a file or directory
inside the repository (anchors and ``http(s)://`` / ``mailto:`` targets
are skipped).  A docs tree whose cross-links rot is worse than no docs
tree, so CI runs this via ``tests/test_docs_links.py`` and the docs job.

Stdlib only; exits 0 when every link resolves, 1 otherwise, printing one
``file:line: broken link`` diagnostic per failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["broken_links", "markdown_files", "main"]

#: Inline markdown links; images share the syntax (the leading ``!`` is
#: outside the capture).  Reference-style definitions ``[id]: target``
#: are rare here and intentionally out of scope.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Top-level files checked in addition to the ``docs/`` tree.
TOP_LEVEL = ("README.md", "CHANGES.md", "ROADMAP.md")


def markdown_files(root: Path) -> list[Path]:
    """The markdown files the checker covers, existing ones only."""
    files = [root / name for name in TOP_LEVEL if (root / name).exists()]
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def _iter_links(text: str):
    """Yield ``(line_number, target)`` for every inline link, skipping
    fenced code blocks (targets inside ``` fences are illustrative)."""
    fenced = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def broken_links(root: Path) -> list[tuple[Path, int, str]]:
    """All unresolvable relative links as ``(file, line, target)``."""
    root = root.resolve()
    problems = []
    for md in markdown_files(root):
        for lineno, target in _iter_links(md.read_text(encoding="utf-8")):
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            base = root if path_part.startswith("/") else md.parent
            resolved = (base / path_part.lstrip("/")).resolve()
            if not str(resolved).startswith(str(root)):
                problems.append((md, lineno, target))  # escapes the repo
            elif not resolved.exists():
                problems.append((md, lineno, target))
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print diagnostics, return the exit code."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    for md, lineno, target in problems:
        print(f"{md.relative_to(root.resolve())}:{lineno}: broken link -> {target}")
    checked = len(markdown_files(root))
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} markdown file(s)")
        return 1
    print(f"all intra-repo links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
