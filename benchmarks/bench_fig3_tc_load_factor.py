"""Figure 3 — static triangle counting time vs chain length.

Shape: TC model time is near its minimum around load factor 0.7 and grows
clearly once chains lengthen (paper: "optimal average chain length ...
around 0.7"); the very sparse end (load factor 0.3) is no better than 0.7
because iterating half-empty buckets costs extra slab reads.
"""

import pytest

from repro.analytics.triangle_count import triangle_count_hash
from repro.bench.figures import figure3_sweep
from repro.core import DynamicGraph
from repro.datasets.rmat import rmat_graph


@pytest.mark.parametrize("load_factor", [0.7, 5.0])
def test_tc_wall_clock_by_load_factor(benchmark, load_factor):
    coo = rmat_graph(10, 16, seed=0).symmetrized().deduplicated()
    g = DynamicGraph(coo.num_vertices, weighted=False, load_factor=load_factor)
    g.bulk_build(coo)
    benchmark(triangle_count_hash, g)


@pytest.fixture(scope="module")
def sweep():
    return figure3_sweep(scale=10, seed=0)


def test_fig3_high_load_factor_slow(sweep):
    for ef in {p.edge_factor for p in sweep}:
        series = sorted((p for p in sweep if p.edge_factor == ef), key=lambda p: p.load_factor)
        by_lf = {p.load_factor: p.tc_seconds for p in series}
        assert by_lf[5.0] > by_lf[0.7]


def test_fig3_optimum_near_paper_value(sweep):
    """The best load factor sits in the paper's optimal region (≤ 1.0),
    never in the long-chain regime."""
    for ef in {p.edge_factor for p in sweep}:
        series = [p for p in sweep if p.edge_factor == ef]
        best = min(series, key=lambda p: p.tc_seconds)
        assert best.load_factor <= 1.0
