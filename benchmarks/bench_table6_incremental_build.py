"""Table VI — incremental build rates (MEdge/s).

Starting from an empty graph with single-bucket tables (no connectivity
information — the hash structure's worst case, where it degenerates into
paged linked lists), ours still beats Hornet (paper: ~5x average, 15-25x
on low-variance graphs) because linked slabs append in place while
Hornet's power-of-two blocks repeatedly copy whole adjacencies.
"""

import pytest

from repro.bench.tables import table6_incremental_build
from repro.bench.workloads import make_structure

BATCH = 1 << 13


@pytest.mark.parametrize("structure", ["ours", "hornet"])
def test_incremental_build_wall_clock(benchmark, dataset_cache, structure):
    coo = dataset_cache("delaunay_n20").permuted(1)

    def setup():
        return (make_structure(structure, coo.num_vertices),), {}

    def op(g):
        if structure == "ours":
            g.incremental_build(coo, BATCH)
        else:
            for piece in coo.batches(BATCH):
                g.insert_edges(piece.src, piece.dst)

    benchmark.pedantic(op, setup=setup, rounds=2)


def test_table6_shape():
    art = table6_incremental_build()
    headers, rows = art.headers, art.rows
    assert headers == ["Batch size", "Hornet", "Ours"]
    for label, hornet, ours in rows:
        assert ours > 2 * hornet, label
