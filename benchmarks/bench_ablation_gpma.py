"""Ablation — GPMA (packed memory array) versus the hash structure.

GPMA appears in the paper's related work (Section II-B) but not its
measured tables.  This bench completes the landscape: PMA updates pay
sorted-batch routing plus window rebalancing, while queries are binary
searches over one sorted array.  Expected shape: ours wins updates; GPMA
is competitive on point queries.
"""

import pytest

from repro.bench.workloads import bulk_built_structure, random_edge_batch
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds

BATCH = 1 << 12


@pytest.mark.parametrize("structure", ["ours", "gpma"])
def test_update_throughput(benchmark, dataset_cache, structure):
    coo = dataset_cache("rgg_n_2_20_s0")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=6)

    def setup():
        return (bulk_built_structure(structure, coo),), {}

    def op(g):
        g.insert_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


@pytest.mark.parametrize("structure", ["ours", "gpma"])
def test_query_throughput(benchmark, dataset_cache, structure):
    coo = dataset_cache("rgg_n_2_20_s0")
    g = bulk_built_structure(structure, coo)
    qs, qd, _ = random_edge_batch(coo.num_vertices, BATCH, seed=7)
    benchmark(g.edge_exists, qs, qd)


def test_gpma_update_cost_higher(dataset_cache):
    coo = dataset_cache("rgg_n_2_20_s0")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=6)
    costs = {}
    for structure in ("ours", "gpma"):
        g = bulk_built_structure(structure, coo)
        with counting() as delta:
            g.insert_edges(src, dst)
        costs[structure] = simulated_seconds(delta)
    assert costs["ours"] < costs["gpma"]
