"""O(batch) scaling guard — per-batch update cost must not scale with |V|.

Locks in the asymptotic win of the hot-path rework: with a fixed batch of
512 edges, insert throughput at |V| = 1e6 must stay within 2x of the
throughput at |V| = 1e3 (Section IV-C's "cost proportional to the batch"
claim, the regime of Tables VI and IX).  The timed loop also polls
``num_edges()`` / ``num_active_vertices()`` each batch, so any O(|V|)
aggregate scan re-entering those reads trips the guard too.

Marked ``slow`` (the suite-wide marker) so constrained machines can skip it
with ``-m 'not slow'``.
"""

import pytest

from repro.bench.regression import (
    BATCH_SIZE,
    DEFAULT_CAPACITIES,
    measure_update_scaling,
    throughput_ratio,
)

MAX_RATIO = 2.0


@pytest.mark.slow
def test_update_throughput_independent_of_capacity():
    points = measure_update_scaling()
    ratio = throughput_ratio(points)
    detail = ", ".join(
        f"|V|={p.capacity:,}: {p.updates_per_sec / 1e6:.2f} M/s" for p in points
    )
    assert ratio <= MAX_RATIO, (
        f"small/large throughput ratio {ratio:.2f} exceeds {MAX_RATIO} ({detail}); "
        "an O(|V|) term has re-entered the per-batch update path"
    )


@pytest.mark.slow
def test_streaming_updates_wall_clock(benchmark):
    """Wall-clock anchor for the largest capacity (pytest-benchmark entry)."""
    largest = DEFAULT_CAPACITIES[-1]

    def op():
        measure_update_scaling(
            capacities=(largest,), batch_size=BATCH_SIZE, num_batches=4, repeats=1
        )

    benchmark.pedantic(op, rounds=2)
