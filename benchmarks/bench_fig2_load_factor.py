"""Figure 2 — load-factor sweep on RMAT graphs.

Shape assertions against the device model, per the paper's three panels:
(a) insertion throughput falls as chains lengthen (paper: ~2.5x by chain
length 5); (b) memory utilization rises toward 1; (c) memory usage falls
as fewer buckets are allocated.
"""

import pytest

from repro.bench.figures import figure2_sweep
from repro.core import DynamicGraph
from repro.datasets.rmat import rmat_graph


@pytest.mark.parametrize("load_factor", [0.3, 0.7, 5.0])
def test_build_wall_clock_by_load_factor(benchmark, load_factor):
    coo = rmat_graph(11, 32, seed=0)

    def setup():
        return (DynamicGraph(coo.num_vertices, weighted=True, load_factor=load_factor),), {}

    def op(g):
        g.bulk_build(coo)

    benchmark.pedantic(op, setup=setup, rounds=3)


@pytest.fixture(scope="module")
def sweep():
    return figure2_sweep(scale=11, seed=0)


def _series(points, ef):
    return sorted((p for p in points if p.edge_factor == ef), key=lambda p: p.load_factor)


def test_fig2a_insertion_rate_falls(sweep):
    for ef in {p.edge_factor for p in sweep}:
        series = _series(sweep, ef)
        assert series[-1].insertion_rate_medges < series[0].insertion_rate_medges
        # Paper: ~2.5x drop by chain length 5; require at least 1.2x.
        assert series[0].insertion_rate_medges / series[-1].insertion_rate_medges > 1.2


def test_fig2b_memory_utilization_rises(sweep):
    for ef in {p.edge_factor for p in sweep}:
        series = _series(sweep, ef)
        utils = [p.memory_utilization for p in series]
        assert utils[-1] > utils[0]
        assert all(b >= a - 0.02 for a, b in zip(utils, utils[1:]))  # ~monotone


def test_fig2c_memory_usage_falls(sweep):
    for ef in {p.edge_factor for p in sweep}:
        series = _series(sweep, ef)
        mems = [p.memory_mb for p in series]
        assert mems[-1] < mems[0]


def test_fig2_chain_length_spans_paper_range(sweep):
    """The sweep covers both the sparse (<0.5) and the chained (>1.5)
    regimes.  (The paper reaches ~5 at TITAN V scale; at the scaled RMAT
    sizes the single-bucket minimum for low-degree vertices dilutes the
    aggregate, capping it near 2.)"""
    chains = [p.mean_chain_length for p in sweep]
    assert min(chains) < 0.5
    assert max(chains) > 1.5
