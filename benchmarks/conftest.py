"""Shared fixtures for the pytest-benchmark harness.

Each ``bench_*`` file regenerates one paper artifact.  Wall-clock numbers
come from pytest-benchmark; the qualitative *shape* assertions (who wins,
where crossovers fall) are made on the calibrated device-model times, which
is what EXPERIMENTS.md records against the paper.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import DATASETS
from repro.gpusim.counters import reset_counters


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_counters()
    yield
    reset_counters()


@pytest.fixture(scope="session")
def dataset_cache():
    """Generate each dataset once per benchmark session."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = DATASETS[name].generate(0)
        return cache[name]

    return get


#: A representative subset (one per family) used by per-op benchmarks so a
#: full --benchmark-only run stays in the minutes range; the runner module
#: covers all twelve datasets.
REPRESENTATIVE = ["germany_osm", "delaunay_n20", "rgg_n_2_20_s0", "hollywood-2009"]


def subset(get, names=None):
    return {name: get(name) for name in (names or REPRESENTATIVE)}
