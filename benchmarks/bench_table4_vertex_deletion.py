"""Table IV — batched vertex deletion throughput (MVertex/s).

Shape: the hash structure beats faimGraph at every batch size (paper:
8.9-12.2x) because erasing a deleted vertex from each neighbour's
adjacency is a hash probe for us and a full list scan for faimGraph; both
throughputs rise with batch size.
"""

import pytest

from repro.bench.tables import table4_vertex_deletion
from repro.bench.workloads import bulk_built_structure, random_vertex_batch
from repro.core import DynamicGraph

BATCH = 1 << 8


def _ours_undirected(coo):
    keep = coo.src < coo.dst
    from repro.coo import COO

    g = DynamicGraph(coo.num_vertices, weighted=False, directed=False)
    g.bulk_build(COO(coo.src[keep], coo.dst[keep], coo.num_vertices))
    return g


@pytest.mark.parametrize("structure", ["ours", "faimgraph"])
def test_vertex_deletion_throughput(benchmark, dataset_cache, structure):
    coo = dataset_cache("delaunay_n20")
    vids = random_vertex_batch(coo.num_vertices, BATCH, seed=3)

    def setup():
        if structure == "ours":
            return (_ours_undirected(coo),), {}
        return (bulk_built_structure(structure, coo),), {}

    def op(g):
        g.delete_vertices(vids)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_table4_shape():
    art = table4_vertex_deletion()
    headers, rows = art.headers, art.rows
    assert headers == ["Batch size", "faimGraph", "Ours"]
    for label, faim, ours in rows:
        assert ours > faim, label
    # Throughput grows with batch size for both structures.
    ours_col = [r[2] for r in rows]
    faim_col = [r[1] for r in rows]
    assert ours_col[-1] > ours_col[0]
    assert faim_col[-1] > faim_col[0]
