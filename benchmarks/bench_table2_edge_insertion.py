"""Table II — batched edge insertion rates (MEdge/s).

Wall-clock: pytest-benchmark times each structure's insert kernel on a
fresh prebuilt graph per round.  Shape: the device-model table must show
ours > faimGraph > Hornet at every batch size, with the ours/Hornet ratio
shrinking as batches grow (paper: 14.8x at 2^16 down to 5.8x at 2^22).
"""

import pytest

from repro.bench.tables import table2_edge_insertion
from repro.bench.workloads import bulk_built_structure, random_edge_batch

from conftest import REPRESENTATIVE, subset

BATCH = 1 << 13


@pytest.mark.parametrize("structure", ["ours", "hornet", "faimgraph"])
def test_edge_insertion_throughput(benchmark, dataset_cache, structure):
    coo = dataset_cache("rgg_n_2_20_s0")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=1)

    def setup():
        return (bulk_built_structure(structure, coo),), {}

    def op(g):
        g.insert_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_table2_shape(dataset_cache):
    art = table2_edge_insertion(datasets=subset(dataset_cache, REPRESENTATIVE))
    headers, rows = art.headers, art.rows
    assert headers[1:] == ["Hornet", "faimGraph", "Ours"]
    ratios = []
    for batch_label, hornet, faim, ours in rows:
        assert ours > hornet, batch_label
        if faim is not None:
            assert ours > faim > hornet, batch_label
        ratios.append(ours / hornet)
    # The ours/Hornet advantage shrinks as batches grow (Table II trend).
    assert ratios[-1] < ratios[0]
