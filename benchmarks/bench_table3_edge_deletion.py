"""Table III — batched edge deletion rates (MEdge/s).

Shape: ours leads small batches by ~7x over Hornet (paper: 640 vs 92 at
2^16) but Hornet's simple scan-and-compact closes the gap and reaches
parity at the largest batches (paper: 1,025 vs 1,015 at 2^22).
"""

import pytest

from repro.bench.tables import table3_edge_deletion
from repro.bench.workloads import bulk_built_structure, random_edge_batch

from conftest import REPRESENTATIVE, subset

BATCH = 1 << 13


@pytest.mark.parametrize("structure", ["ours", "hornet", "faimgraph"])
def test_edge_deletion_throughput(benchmark, dataset_cache, structure):
    coo = dataset_cache("rgg_n_2_20_s0")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=2)

    def setup():
        return (bulk_built_structure(structure, coo),), {}

    def op(g):
        g.delete_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_table3_shape(dataset_cache):
    art = table3_edge_deletion(datasets=subset(dataset_cache, REPRESENTATIVE))
    headers, rows = art.headers, art.rows
    first, last = rows[0], rows[-1]
    # Small batches: ours clearly ahead of both list structures.
    assert first[3] > 3 * first[1]
    assert first[3] > 3 * first[2]
    # Largest batch: Hornet catches up to within ~2x (paper: parity).
    assert last[1] > 0.5 * last[3]
    # faimGraph never catches up within its supported range.
    for row in rows:
        if row[2] is not None:
            assert row[3] > row[2]
