"""Ablation — the cost of uniqueness enforcement, in isolation.

The paper's central claim is that hash-table *replace* gives uniqueness
nearly for free, while list structures pay a sort (Hornet) or a full scan
(faimGraph) per batch.  This bench inserts the same duplicate-heavy batch
into all three structures and compares both wall-clock and the modeled
dedup work (sorted vs scanned vs probed elements).
"""

import numpy as np
import pytest

from repro.bench.workloads import bulk_built_structure
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds

BATCH = 1 << 13


def _dup_heavy_batch(num_vertices, rng):
    """50% of the batch duplicates existing edges, 25% repeats itself."""
    src = rng.integers(0, num_vertices, BATCH)
    dst = rng.integers(0, num_vertices, BATCH)
    src[BATCH // 2 :] = src[: BATCH // 2]
    dst[BATCH // 2 :] = dst[: BATCH // 2]
    return src, dst


@pytest.mark.parametrize("structure", ["ours", "hornet", "faimgraph"])
def test_duplicate_heavy_insert(benchmark, dataset_cache, structure):
    coo = dataset_cache("rgg_n_2_20_s0")
    rng = np.random.default_rng(4)
    src, dst = _dup_heavy_batch(coo.num_vertices, rng)

    def setup():
        return (bulk_built_structure(structure, coo),), {}

    def op(g):
        g.insert_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_dedup_cost_attribution(dataset_cache):
    """Model check: Hornet's dedup work is sort-dominated, faimGraph's is
    scan-dominated, and ours needs neither."""
    coo = dataset_cache("rgg_n_2_20_s0")
    rng = np.random.default_rng(4)
    src, dst = _dup_heavy_batch(coo.num_vertices, rng)

    costs = {}
    deltas = {}
    for structure in ("ours", "hornet", "faimgraph"):
        g = bulk_built_structure(structure, coo)
        with counting() as delta:
            g.insert_edges(src, dst)
        costs[structure] = simulated_seconds(delta)
        deltas[structure] = delta

    assert deltas["ours"].get("sorted_elements", 0) == 0
    assert deltas["hornet"]["sorted_elements"] > BATCH
    assert deltas["faimgraph"]["scanned_elements"] > 0
    assert costs["ours"] < costs["hornet"]
    assert costs["ours"] < costs["faimgraph"]
