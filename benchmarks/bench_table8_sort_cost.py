"""Table VIII — sorted-adjacency maintenance cost (ms).

Shape: the crossover by maximum degree.  CUB-style segmented sort pays a
per-segment dispatch, so it loses badly on road networks (paper: 58 ms vs
0.07 ms on luxembourg) while faimGraph's paged odd-even sort is quadratic
in pages, so it loses on heavy-tailed graphs (paper: 41.8 s vs 1.4 s on
soc-orkut).
"""

import numpy as np
import pytest

from repro.baselines.sorting import faimgraph_page_sort, segmented_sort_csr
from repro.bench.tables import table8_sort_cost
from repro.bench.workloads import bulk_built_structure

from conftest import subset


@pytest.mark.parametrize("method", ["csr", "faimgraph"])
def test_sort_wall_clock(benchmark, dataset_cache, method):
    coo = dataset_cache("rgg_n_2_20_s0").deduplicated()
    if method == "csr":
        row_ptr, col, _ = coo.to_csr()
        rng = np.random.default_rng(0)
        shuffled = col.copy()
        rng.shuffle(shuffled)  # destroy order globally; rows re-sorted below
        benchmark(segmented_sort_csr, row_ptr, col)
    else:
        g = bulk_built_structure("faimgraph", coo)
        benchmark(faimgraph_page_sort, g)


def test_table8_crossover(dataset_cache):
    names = ["germany_osm", "road_usa", "soc-orkut", "hollywood-2009"]
    art = table8_sort_cost(datasets=subset(dataset_cache, names))
    headers, rows = art.headers, art.rows
    by_name = {r[0]: (r[1], r[2]) for r in rows}
    # Road networks: per-segment dispatch makes CSR sort far slower.
    for road in ("germany_osm", "road_usa"):
        csr, faim = by_name[road]
        assert csr > 5 * faim, road
    # Heavy-tailed graphs: faimGraph's paged sort loses.
    for social in ("soc-orkut", "hollywood-2009"):
        csr, faim = by_name[social]
        assert faim > csr, social
