"""Table V — bulk build elapsed time (ms).

Shape: ours beats Hornet on every dataset (paper: 2-30x) because Hornet
pays a global sort + dedup plus per-vertex CPU block allocation, while the
hash build bulk-reserves base slabs in one allocation and inserts with
replace semantics (no sort at all).
"""

import pytest

from repro.bench.tables import table5_bulk_build
from repro.bench.workloads import make_structure

from conftest import REPRESENTATIVE, subset


@pytest.mark.parametrize("structure", ["ours", "hornet", "faimgraph", "gpma"])
def test_bulk_build_wall_clock(benchmark, dataset_cache, structure):
    coo = dataset_cache("delaunay_n20")

    def setup():
        return (make_structure(structure, coo.num_vertices),), {}

    def op(g):
        g.bulk_build(coo)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_table5_shape(dataset_cache):
    art = table5_bulk_build(datasets=subset(dataset_cache, REPRESENTATIVE))
    headers, rows = art.headers, art.rows
    for name, hornet_ms, ours_ms in rows:
        assert ours_ms < hornet_ms, name
        # Paper speedups are 2-30x; allow a wider band for the scaled run.
        assert hornet_ms / ours_ms > 2, name
