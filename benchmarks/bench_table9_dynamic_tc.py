"""Table IX — dynamic triangle counting (insert batch, re-count, x5).

Shape: on the road-like dataset our faster insertion wins the cumulative
race (paper: 1.8x); on the hollywood-like dataset Hornet's faster sorted
intersections absorb its maintenance cost and it stays ahead (paper:
0.89-0.91x for ours).
"""

import numpy as np
import pytest

from repro.analytics.triangle_count import dynamic_triangle_count
from repro.bench.tables import table9_dynamic_triangle_counting
from repro.bench.workloads import make_structure
from repro.core import DynamicGraph

BATCH = 1 << 11


@pytest.mark.parametrize("mode", ["hash", "sorted"])
def test_dynamic_tc_wall_clock(benchmark, dataset_cache, mode):
    coo = dataset_cache("delaunay_n20")
    rng = np.random.default_rng(7)
    batches = [
        (rng.integers(0, coo.num_vertices, BATCH), rng.integers(0, coo.num_vertices, BATCH))
        for _ in range(2)
    ]

    def setup():
        if mode == "hash":
            g = DynamicGraph(coo.num_vertices, weighted=False)
        else:
            g = make_structure("hornet", coo.num_vertices)
        g.bulk_build(coo)
        return (g,), {}

    def op(g):
        dynamic_triangle_count(g, batches, mode=mode)

    benchmark.pedantic(op, setup=setup, rounds=2)


def test_table9_shape():
    art = table9_dynamic_triangle_counting(num_batches=3)
    headers, rows = art.headers, art.rows
    road = [r for r in rows if r[0] == "road_usa"]
    holly = [r for r in rows if r[0] == "hollywood-2009"]
    # Ours wins cumulative time on the road-like dataset at every iteration.
    for r in road:
        assert r[-1] > 1.0, r
    # Hornet stays ahead on the hollywood-like dataset (speedup < 1).
    for r in holly:
        assert r[-1] < 1.0, r
    # Triangle counts agree between the two implementations (asserted
    # inside the table function); cumulative times are monotone.
    totals = [r[4] for r in road]
    assert totals == sorted(totals)
