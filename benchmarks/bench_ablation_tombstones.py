"""Ablation — tombstone policy (Section IV-C2's design discussion).

The paper chooses append-past-tombstones ("faster insertion rates ... at
the expense of having unused memory locations") over the two-stage
overwrite policy.  This bench measures both sides of the trade-off after a
delete-heavy phase: insertion cost with tombstones left in place versus
after an explicit flush, and the memory each policy holds.
"""

import numpy as np
import pytest

from repro.core import DynamicGraph
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds

N = 4000
CHURN = 6000


def _churned_graph(flush: bool):
    rng = np.random.default_rng(9)
    g = DynamicGraph(N, weighted=False)
    src = rng.integers(0, N, CHURN)
    dst = rng.integers(0, N, CHURN)
    g.insert_edges(src, dst)
    g.delete_edges(src[: CHURN // 2], dst[: CHURN // 2])
    if flush:
        g.flush_tombstones()
    return g, rng


@pytest.mark.parametrize("policy", ["tombstones", "flushed"])
def test_insert_after_churn(benchmark, policy):
    def setup():
        g, rng = _churned_graph(flush=(policy == "flushed"))
        src = rng.integers(0, N, 2048)
        dst = rng.integers(0, N, 2048)
        return (g, src, dst), {}

    def op(g, src, dst):
        g.insert_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_tradeoff_memory_vs_flush_cost():
    """Tombstones hold more memory; flushing reclaims it but costs a full
    rebuild pass — the exact trade the paper describes."""
    g_keep, _ = _churned_graph(flush=False)
    g_flush, _ = _churned_graph(flush=False)
    kept_stats = g_keep.stats()
    assert kept_stats.tombstones > 0

    with counting() as flush_delta:
        g_flush.flush_tombstones()
    flushed_stats = g_flush.stats()
    assert flushed_stats.tombstones == 0
    assert flushed_stats.memory_bytes <= kept_stats.memory_bytes
    # The flush pass is real work, not free.
    assert simulated_seconds(flush_delta) > 0

    # Both policies expose the same live edge set.
    a = g_keep.export_coo()
    b = g_flush.export_coo()
    assert set(zip(a.src.tolist(), a.dst.tolist())) == set(zip(b.src.tolist(), b.dst.tolist()))
