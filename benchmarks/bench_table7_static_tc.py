"""Table VII — static triangle counting time (ms).

Shape: with *pre-sorted* adjacency lists (their sort priced separately in
Table VIII), the list structures' intersections beat our hash probes on
most datasets (paper: ours 1.1-10x slower) — the honest cost the paper
reports for its own structure on static workloads.
"""

import pytest

from repro.analytics.triangle_count import triangle_count_hash, triangle_count_sorted
from repro.bench.tables import table7_static_triangle_counting
from repro.bench.workloads import bulk_built_structure
from repro.core import DynamicGraph

from conftest import REPRESENTATIVE, subset


@pytest.mark.parametrize("method", ["hash", "sorted"])
def test_static_tc_wall_clock(benchmark, dataset_cache, method):
    coo = dataset_cache("rgg_n_2_20_s0")
    if method == "hash":
        g = DynamicGraph(coo.num_vertices, weighted=False)
        g.bulk_build(coo)
        benchmark(triangle_count_hash, g)
    else:
        h = bulk_built_structure("hornet", coo)
        row_ptr, col = h.sorted_adjacency()
        benchmark(triangle_count_sorted, row_ptr, col)


def test_table7_shape(dataset_cache):
    art = table7_static_triangle_counting(datasets=subset(dataset_cache, REPRESENTATIVE))
    headers, rows = art.headers, art.rows
    slower = 0
    for name, hornet_ms, faim_ms, ours_ms, triangles in rows:
        assert triangles >= 0
        if ours_ms > hornet_ms:
            slower += 1
        # Never catastrophically slower (paper max ≈ 10x, ldoor).
        assert ours_ms < 20 * hornet_ms, name
    # Ours loses the static-TC comparison on most datasets, as published.
    assert slower >= len(rows) - 1
