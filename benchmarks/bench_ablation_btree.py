"""Ablation — B-tree adjacency vs hash adjacency (Section VII).

The paper's future work proposes B-trees for adjacency lists: slower point
updates (node splits, pointer chasing) in exchange for natively sorted
adjacency — sorted iteration and range queries for free, and triangle
counting without the Table VIII re-sort.  This bench quantifies both sides
on identical inputs.
"""

import numpy as np
import pytest

from repro.analytics.triangle_count import triangle_count_sorted
from repro.bench.workloads import random_edge_batch
from repro.btree import BTreeGraph
from repro.core import DynamicGraph
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds

BATCH = 1 << 11


def _built(structure, coo):
    if structure == "btree":
        g = BTreeGraph(coo.num_vertices, weighted=False)
    else:
        g = DynamicGraph(coo.num_vertices, weighted=False)
    g.bulk_build(coo)
    return g


@pytest.mark.parametrize("structure", ["ours", "btree"])
def test_update_wall_clock(benchmark, dataset_cache, structure):
    coo = dataset_cache("delaunay_n20")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=8)

    def setup():
        return (_built(structure, coo),), {}

    def op(g):
        g.insert_edges(src, dst)

    benchmark.pedantic(op, setup=setup, rounds=3)


def test_btree_updates_cost_more(dataset_cache):
    """On deep trees (heavy-tailed degrees -> multi-level B-trees) every
    insert pays the root-to-leaf descent; hash probes stay O(1).  Shallow
    trees (road/Delaunay, one leaf per vertex) cost the same as hash —
    the gap is a function of degree, which is the point of the ablation."""
    coo = dataset_cache("hollywood-2009")
    src, dst, _ = random_edge_batch(coo.num_vertices, BATCH, seed=8)
    costs = {}
    for structure in ("ours", "btree"):
        g = _built(structure, coo)
        with counting() as delta:
            g.insert_edges(src, dst)
        costs[structure] = simulated_seconds(delta)
    assert costs["ours"] < costs["btree"]


def test_btree_sorted_view_is_free(dataset_cache):
    """The hash structure pays an export+sort for a sorted view; the
    B-tree walks its leaf chains — no sort volume at all."""
    coo = dataset_cache("delaunay_n20")
    b = _built("btree", coo)
    with counting() as delta:
        row_ptr, col = b.sorted_adjacency()
    assert delta.get("sorted_elements", 0) == 0
    # And the view feeds sorted-intersection TC directly.
    tri = triangle_count_sorted(row_ptr, col)
    assert tri >= 0


def test_range_queries_unavailable_on_hash(dataset_cache):
    """Range queries are the B-tree's unique capability: verify them
    against a brute-force filter of the hash structure's adjacency."""
    coo = dataset_cache("delaunay_n20")
    b = _built("btree", coo)
    h = _built("ours", coo)
    rng = np.random.default_rng(0)
    for v in rng.integers(0, coo.num_vertices, 20).tolist():
        lo, hi = sorted(rng.integers(0, coo.num_vertices, 2).tolist())
        got = b.neighbor_range(v, lo, hi)
        nbrs, _ = h.neighbors(v)
        expected = np.sort(nbrs[(nbrs >= lo) & (nbrs < hi)])
        assert np.array_equal(got, expected)
