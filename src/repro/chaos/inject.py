"""Thin fault-injecting wrappers: :class:`FaultyBackend` and
:class:`FaultyStore`.

Both are transparent proxies that consult a :class:`~repro.chaos.plan.
FaultPlan` *before* delegating, so a fired fault leaves the wrapped
object untouched (the operation never started).  No backend or store
code changes to become injectable:

- :class:`FaultyBackend` wraps any :class:`~repro.api.backend.
  GraphBackend` and arrives at ``"<prefix>.<op>"`` ahead of every
  protocol call (``shard0.insert_edges``, ``shard0.snapshot``, ...).
  The :class:`~repro.api.Graph` facade wraps it like a real backend.
- :class:`FaultyStore` manufactures an ``opener`` for
  :class:`~repro.persist.wal.WalWriter` whose files arrive at
  ``"<prefix>.open"`` / ``".write"`` / ``".fsync"`` / ``".close"``,
  including torn writes (a prefix of the buffer lands on disk, then
  the write raises :class:`OSError`) — exactly the failure
  ``scan_wal`` / ``repair_wal`` must stay clean under.

The wrappers fault on *entry*.  For backends that matters: the facade
publishes an event only after the backend call returns, so a faulted
mutation is never WAL-appended and never event-published — the durable
log always describes exactly the applied state, which is what makes
kill → :meth:`~repro.api.sharding.ShardedGraph.rebuild_shard` land
bit-identical to a never-faulted run.
"""

from __future__ import annotations

import os

from repro.chaos.plan import FaultPlan

__all__ = ["FaultyBackend", "FaultyFile", "FaultyStore"]

#: GraphBackend operations FaultyBackend guards with a fault point.
_GUARDED_OPS = (
    "insert_edges",
    "delete_edges",
    "delete_vertices",
    "bulk_build",
    "edge_exists",
    "edge_weights",
    "degree",
    "adjacencies",
    "neighbors",
    "num_edges",
    "export_coo",
    "sorted_adjacency",
    "snapshot",
    "rehash",
    "flush_tombstones",
    "neighbor_range",
)


def _make_guard(op: str):
    """Build one delegating method that arrives at the fault point first."""

    def guard(self, *args, **kwargs):
        self.plan.arrive(f"{self.prefix}.{op}")
        return getattr(self.inner, op)(*args, **kwargs)

    guard.__name__ = op
    guard.__doc__ = f"Arrive at ``<prefix>.{op}`` then delegate to the wrapped backend."
    return guard


class FaultyBackend:
    """A fault-injecting proxy around any graph backend.

    Every guarded operation (see ``_GUARDED_OPS``) consults the plan at
    ``"<prefix>.<op>"`` before delegating; everything else — attributes,
    capabilities, the snapshot cache — passes through untouched, so the
    :class:`~repro.api.Graph` facade cannot tell it apart from the real
    backend on the fault-free path.
    """

    def __init__(self, inner, plan: FaultPlan, prefix: str = "backend") -> None:
        self.inner = inner
        self.plan = plan
        self.prefix = str(prefix)

    # The facade reads and *writes* the snapshot cache on its backend;
    # proxy the attribute so the cache always lives on the inner backend
    # (which also maintains it from its own snapshot() path).
    @property
    def _snapshot_cache(self):
        """The wrapped backend's version-keyed snapshot cache."""
        return self.inner._snapshot_cache

    @_snapshot_cache.setter
    def _snapshot_cache(self, value) -> None:
        self.inner._snapshot_cache = value

    def __getattr__(self, name: str):
        """Delegate everything unguarded to the wrapped backend."""
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyBackend({self.inner!r}, prefix={self.prefix!r})"


for _op in _GUARDED_OPS:
    setattr(FaultyBackend, _op, _make_guard(_op))
del _op


class FaultyFile:
    """A binary file proxy whose I/O entry points are fault points.

    Arrives at ``"<prefix>.write"`` / ``".fsync"`` / ``".flush"`` /
    ``".close"``.  An ``"oserror"`` spec raises :class:`OSError` before
    any bytes move; a ``"torn"`` spec writes ``torn_fraction`` of the
    buffer for real, then raises — the partially-written record the WAL
    writer must truncate away.  ``truncate`` is deliberately *not* a
    fault point: it is the writer's recovery path.
    """

    def __init__(self, fh, plan: FaultPlan, prefix: str) -> None:
        self._fh = fh
        self._plan = plan
        self._prefix = prefix

    def write(self, data) -> int:
        """Write ``data`` (possibly torn) or raise an injected OSError."""
        spec = self._plan.arrive(f"{self._prefix}.write")
        if spec is not None and spec.kind == "torn":
            keep = int(len(data) * spec.torn_fraction)
            if keep:
                self._fh.write(data[:keep])
            self._fh.flush()
            raise OSError(f"injected torn write at {self._prefix}.write ({keep}/{len(data)}B)")
        if spec is not None and spec.kind == "oserror":
            raise OSError(f"injected write failure at {self._prefix}.write")
        return self._fh.write(data)

    def flush(self) -> None:
        """Flush buffered bytes (injectable)."""
        spec = self._plan.arrive(f"{self._prefix}.flush")
        if spec is not None and spec.kind in ("oserror", "torn"):
            raise OSError(f"injected flush failure at {self._prefix}.flush")
        self._fh.flush()

    def fsync(self) -> None:
        """Durably sync (injectable — the writer's duck-typed sync seam)."""
        spec = self._plan.arrive(f"{self._prefix}.fsync")
        if spec is not None and spec.kind in ("oserror", "torn"):
            raise OSError(f"injected fsync failure at {self._prefix}.fsync")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate(self, size=None) -> int:
        """Truncate (never injected: this is the recovery path)."""
        return self._fh.truncate(size)

    def tell(self) -> int:
        """Current position in the underlying file."""
        return self._fh.tell()

    def fileno(self) -> int:
        """The underlying OS file descriptor."""
        return self._fh.fileno()

    def close(self) -> None:
        """Close the underlying file (injectable)."""
        spec = self._plan.arrive(f"{self._prefix}.close")
        if spec is not None and spec.kind in ("oserror", "torn"):
            raise OSError(f"injected close failure at {self._prefix}.close")
        self._fh.close()

    @property
    def closed(self) -> bool:
        """Whether the underlying file is closed."""
        return self._fh.closed

    def __getattr__(self, name: str):
        """Delegate any other file-object attribute untouched."""
        return getattr(self._fh, name)


class FaultyStore:
    """Manufactures fault-injecting file openers for the WAL writer.

    Pass :attr:`opener` as ``WalWriter(..., opener=store.opener)``; every
    segment the writer opens arrives at ``"<prefix>.open"`` first (so a
    rotation can fail) and returns a :class:`FaultyFile` carrying the
    same prefix for write/fsync/flush/close points.
    """

    def __init__(self, plan: FaultPlan, prefix: str = "wal") -> None:
        self.plan = plan
        self.prefix = str(prefix)

    def opener(self, path, mode: str = "wb"):
        """Open ``path`` (injectable at ``"<prefix>.open"``), wrapped."""
        spec = self.plan.arrive(f"{self.prefix}.open")
        if spec is not None and spec.kind in ("oserror", "torn"):
            raise OSError(f"injected open failure at {self.prefix}.open ({path})")
        return FaultyFile(open(path, mode), self.plan, self.prefix)
