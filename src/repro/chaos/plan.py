"""Deterministic, seeded fault schedules: :class:`FaultPlan`.

A fault plan is the single source of randomness for a chaos run.  It is
a set of :class:`FaultSpec` rules — each matching one or more named
*fault points* by ``fnmatch`` pattern — plus one seeded RNG per rule.
Code under test calls :meth:`FaultPlan.arrive` every time execution
passes a fault point (``"shard0.insert_edges"``, ``"wal.write"``,
``"wal.fsync"`` ...); the plan decides, deterministically, whether that
arrival fires a fault and of which kind.

Determinism contract: each spec draws from its own RNG, seeded by
``(plan seed, spec index)``, and consumes exactly one draw per matching
arrival.  The fault schedule is therefore a pure function of the plan
seed and the per-point arrival sequence — two runs that issue the same
operations hit the same faults, which is what makes chaos runs
reproducible and recovered state pinnable bit-for-bit in tests.

Fault kinds:

- ``"transient"`` — raise :class:`~repro.util.errors.TransientFault`
  (retryable: the next attempt consults the plan again);
- ``"permanent"`` — raise :class:`~repro.util.errors.PermanentFault`
  (the resource is gone until rebuilt);
- ``"oserror"`` — raise a plain :class:`OSError` (what a disk returns;
  the WAL wraps it into :class:`~repro.util.errors.PersistError`);
- ``"torn"`` — for file fault points: write only a prefix of the buffer,
  then raise :class:`OSError` (a torn write);
- ``"slow"`` — do not raise; charge the device model extra work
  (``slow_launches`` kernel launches + ``slow_bytes`` copied bytes), so
  a slow shard stretches modeled latency without breaking determinism.

Every fired fault is journaled (:meth:`FaultPlan.drain_events`), so
scenario phase records can report exactly which faults a phase absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

import numpy as np

from repro.gpusim.counters import get_counters
from repro.util.errors import PermanentFault, TransientFault, ValidationError

__all__ = ["FaultKinds", "FaultSpec", "FaultPlan", "FireRecord"]

#: Every fault kind a spec may inject.
FaultKinds = ("transient", "permanent", "oserror", "torn", "slow")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where it applies, when it fires, and what it does.

    ``point`` is an ``fnmatch`` pattern over fault-point names.  The rule
    skips its first ``after`` matching arrivals, then fires each arrival
    with probability ``rate`` (1.0 = always) until it has fired
    ``max_fires`` times (None = unlimited).
    """

    point: str
    kind: str = "transient"
    rate: float = 1.0
    after: int = 0
    max_fires: int | None = 1
    #: Extra modeled work charged by a ``"slow"`` fire.
    slow_launches: int = 64
    slow_bytes: int = 1 << 20
    #: Fraction of the buffer a ``"torn"`` fire lets through.
    torn_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FaultKinds:
            raise ValidationError(f"fault kind must be one of {FaultKinds}, got {self.kind!r}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValidationError("fault rate must be in [0, 1]")
        if self.after < 0:
            raise ValidationError("after must be non-negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValidationError("max_fires must be non-negative or None")
        if not (0.0 <= self.torn_fraction < 1.0):
            raise ValidationError("torn_fraction must be in [0, 1)")


@dataclass(frozen=True)
class FireRecord:
    """One journaled fault firing (see :meth:`FaultPlan.drain_events`)."""

    point: str
    kind: str
    arrival: int
    spec_index: int


class _SpecState:
    """Mutable per-spec counters + the spec's own seeded RNG."""

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        self.index = index
        # Seeding on (plan seed, spec index) keeps every rule's draw
        # stream independent: arming a new rule, or arrivals at points
        # only one rule matches, never perturbs another rule's schedule.
        self.rng = np.random.default_rng([int(seed), int(index)])
        self.arrivals = 0
        self.fires = 0

    def consider(self) -> bool:
        """Consume one arrival (and exactly one draw when eligible)."""
        arrival = self.arrivals
        self.arrivals += 1
        if arrival < self.spec.after:
            return False
        if self.spec.max_fires is not None and self.fires >= self.spec.max_fires:
            return False
        if self.spec.rate < 1.0 and self.rng.random() >= self.spec.rate:
            return False
        self.fires += 1
        return True


class FaultPlan:
    """A seeded schedule of injectable faults (see module docstring)."""

    def __init__(self, seed: int = 0, specs=()) -> None:
        self.seed = int(seed)
        self._states: list[_SpecState] = []
        self._journal: list[FireRecord] = []
        self._mark = 0
        self.total_arrivals = 0
        for spec in specs:
            self.add(spec)

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Append one rule; its RNG is seeded by ``(plan seed, index)``."""
        self._states.append(_SpecState(spec, self.seed, len(self._states)))
        return spec

    def arm(self, point: str, **kwargs) -> FaultSpec:
        """Convenience: build and :meth:`add` a :class:`FaultSpec`."""
        return self.add(FaultSpec(point, **kwargs))

    @property
    def specs(self) -> tuple:
        """The armed rules, in arm order."""
        return tuple(s.spec for s in self._states)

    @property
    def fired(self) -> tuple:
        """Every journaled fault fired so far (including drained ones)."""
        return tuple(self._journal)

    def fires_at(self, point: str) -> int:
        """Total faults fired at points matching ``point`` so far."""
        return sum(1 for r in self._journal if fnmatchcase(r.point, point))

    def drain_events(self) -> list:
        """Return and clear the journal of faults fired since last drain.

        The journal of :attr:`fired` is preserved; draining only resets
        the per-window view scenario phases report.
        """
        window = self._journal[self._mark :]
        self._mark = len(self._journal)
        return list(window)

    def arrive(self, point: str):
        """Record one arrival at ``point``; fire at most one rule.

        Returns None (no fault) or the matching :class:`FaultSpec` after
        journaling the fire.  ``"transient"`` / ``"permanent"`` specs
        raise immediately; ``"slow"`` charges the device model and
        returns the spec; ``"oserror"`` / ``"torn"`` return the spec so
        file wrappers can shape the failure themselves.
        """
        self.total_arrivals += 1
        for state in self._states:
            if not fnmatchcase(point, state.spec.point):
                continue
            if not state.consider():
                continue
            spec = state.spec
            self._journal.append(
                FireRecord(
                    point=point,
                    kind=spec.kind,
                    arrival=state.arrivals - 1,
                    spec_index=state.index,
                )
            )
            if spec.kind == "transient":
                raise TransientFault(f"injected transient fault at {point}", point=point)
            if spec.kind == "permanent":
                raise PermanentFault(f"injected permanent fault at {point}", point=point)
            if spec.kind == "slow":
                counters = get_counters()
                counters.kernel_launches += spec.slow_launches
                counters.bytes_copied += spec.slow_bytes
            return spec
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self._states)}, "
            f"fired={len(self._journal)})"
        )
