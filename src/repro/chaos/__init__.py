"""Deterministic, seeded fault injection for the graph service layers.

``repro.chaos`` turns failure behavior into a tested, gated property the
same way ``repro.bench`` did for performance.  A :class:`FaultPlan` is a
seeded schedule of faults over named *fault points*; thin wrappers
(:class:`FaultyBackend` for graph backends, :class:`FaultyStore` for WAL
files) arrive at those points on every operation, so chaos needs no
changes to the code under test.  Because the schedule is a pure function
of the plan seed and the operation sequence, every chaos run is
reproducible: same seed ⇒ same fault sequence ⇒ bit-identical recovered
state, which the test suite pins across all five backends.

See ``docs/robustness.md`` for the fault model, the shard health states
it drives, and the chaos scenario guide.
"""

from repro.chaos.inject import FaultyBackend, FaultyFile, FaultyStore
from repro.chaos.plan import FaultKinds, FaultPlan, FaultSpec, FireRecord
from repro.util.errors import FaultError, PermanentFault, PersistError, TransientFault

__all__ = [
    "FaultKinds",
    "FaultPlan",
    "FaultSpec",
    "FireRecord",
    "FaultyBackend",
    "FaultyFile",
    "FaultyStore",
    "FaultError",
    "TransientFault",
    "PermanentFault",
    "PersistError",
]
