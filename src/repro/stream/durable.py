"""Durable scenario runs: pause, crash, and resume mid-schedule.

:func:`run_scenario_durable` executes the same phase schedule as
:func:`repro.stream.scenario.run_scenario`, but against a
:class:`repro.persist.DurableGraph` — every applied batch is framed into
the store's write-ahead log — and records its progress (next phase index,
RNG state, completed phase results) in an atomically-written
``scenario.json`` beside the store after every phase.

That makes three interruption shapes recoverable:

- **pause** — pass ``stop_after_phase=i`` to stop once phase ``i``
  completes; a later call with the same scenario picks up at phase
  ``i + 1``;
- **crash** — a killed process resumes from the last completed phase:
  the store recovers checkpoint + WAL-tail, and the persisted RNG state
  (``numpy``'s ``bit_generator.state``) makes every subsequent batch
  draw the exact values the uninterrupted run would have drawn, so the
  final graph is bit-identical (pinned by the tests);
- **read replica** — a second process can ``open_graph(dir,
  read_only=True)`` at any point and tail the run's WAL.

Progress is only recorded at phase boundaries: a crash *inside* a phase
re-runs that phase from its start on resume.  Replaying the phase's
batches is idempotent for the graph (replace semantics, same RNG draws)
— but the WAL then holds the partial attempt *and* the re-run, so resume
cuts a checkpoint right before re-entering the schedule, anchoring
recovery past the duplicated records.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.io import atomic_write
from repro.persist import open_graph
from repro.stream.scenario import (
    PhaseResult,
    Scenario,
    ScenarioResult,
    _compute_setup,
    _execute_phase,
    _validate_exactness,
    build_dataset,
)
from repro.util.errors import ValidationError

__all__ = ["run_scenario_durable", "PROGRESS_FILE"]

PROGRESS_FILE = "scenario.json"
_PROGRESS_KIND = "repro-scenario-progress"
_PROGRESS_SCHEMA = 1


def _identity(scenario: Scenario, backend_name: str, mode: str) -> dict:
    return {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "backend": backend_name,
        "mode": mode,
        "num_phases": len(scenario.phases),
    }


def _write_progress(path: Path, identity: dict, next_phase: int, rng, results) -> None:
    doc = {
        "kind": _PROGRESS_KIND,
        "schema_version": _PROGRESS_SCHEMA,
        **identity,
        "next_phase": int(next_phase),
        "complete": next_phase >= identity["num_phases"],
        "rng_state": rng.bit_generator.state,
        "phases": [asdict(r) for r in results],
    }
    with atomic_write(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _load_progress(path: Path, identity: dict) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"unreadable scenario progress file {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("kind") != _PROGRESS_KIND:
        raise ValidationError(f"{path} is not a scenario progress file")
    for key, value in identity.items():
        if doc.get(key) != value:
            raise ValidationError(
                f"progress file records {key}={doc.get(key)!r} but this run "
                f"has {key}={value!r} — resuming a different scenario into "
                "the same directory would corrupt both"
            )
    return doc


def run_scenario_durable(
    scenario: Scenario,
    backend_name: str,
    directory,
    *,
    mode: str = "incremental",
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    prime: bool = True,
    validate: bool = False,
    analytics: tuple = ("cc", "pagerank"),
    source: int = 0,
    kcore_k: int = 3,
    stop_after_phase: int | None = None,
    fsync: str = "batch",
    segment_bytes: int | None = None,
    checkpoint_every_rows: int | None = None,
) -> ScenarioResult:
    """Run (or resume) a scenario against a durable store at ``directory``.

    Same semantics and arguments as
    :func:`~repro.stream.scenario.run_scenario`, plus:

    - ``stop_after_phase`` — pause once that phase index completes (the
      returned result covers only the phases executed so far);
    - ``fsync`` / ``segment_bytes`` / ``checkpoint_every_rows`` — passed
      through to :func:`repro.persist.open_graph`.

    The returned :class:`ScenarioResult` includes phases completed by
    *earlier* calls (reloaded from the progress file), so a finished
    resumed run reports the full schedule.  Note the incremental
    analytics re-initialize cold on each resume: compute-phase *costs*
    can differ from an uninterrupted run's, the graph content never does.
    """
    if mode not in ("incremental", "full"):
        raise ValidationError(f"mode must be 'incremental' or 'full', got {mode!r}")
    directory = Path(directory)
    progress_path = directory / PROGRESS_FILE
    identity = _identity(scenario, backend_name, mode)
    coo = build_dataset(scenario)

    open_kwargs: dict = {
        "fsync": fsync,
        "checkpoint_every_rows": checkpoint_every_rows,
    }
    if segment_bytes is not None:
        open_kwargs["segment_bytes"] = segment_bytes

    prior_results: list = []
    if progress_path.exists():
        doc = _load_progress(progress_path, identity)
        next_phase = int(doc["next_phase"])
        prior_results = [PhaseResult(**r) for r in doc["phases"]]
        dg = open_graph(directory, **open_kwargs)
        rng = np.random.default_rng(scenario.seed + 0x51AB)
        rng.bit_generator.state = doc["rng_state"]
        resumed = True
    else:
        next_phase = 0
        dg = open_graph(
            directory,
            backend_name,
            num_vertices=coo.num_vertices,
            weighted=scenario.weighted,
            **open_kwargs,
        )
        dg.graph.bulk_build(coo)
        rng = np.random.default_rng(scenario.seed + 0x51AB)
        resumed = False

    try:
        g = dg.graph
        compute_once, incs = _compute_setup(
            g, mode, damping, tol, max_iters, prime,
            analytics=analytics, source=source, kcore_k=kcore_k,
        )
        if resumed and next_phase < len(scenario.phases):
            # The WAL may hold a partial phase the crash interrupted; the
            # re-run about to happen duplicates those records, which is
            # graph-idempotent but would double-apply under replay.  A
            # checkpoint here anchors recovery past them.
            dg.checkpoint()
        results = list(prior_results)
        for index in range(next_phase, len(scenario.phases)):
            phase = scenario.phases[index]
            results.append(_execute_phase(index, phase, g, coo, rng, scenario, compute_once))
            if validate and mode == "incremental":
                _validate_exactness(g, incs, damping, tol, max_iters, (scenario.name, index))
            dg.sync()  # the phase's WAL records must be durable ...
            _write_progress(progress_path, identity, index + 1, rng, results)
            # ... before the progress file claims the phase completed.
            if stop_after_phase is not None and index >= stop_after_phase:
                break
    finally:
        dg.close()
    return ScenarioResult(scenario=scenario, backend=backend_name, mode=mode, phases=results)
