"""Streaming scenario engine + delta-aware incremental analytics.

The paper's workload is phase-concurrent streams: batches of edge
insertions and deletions interleaved with query and compute phases.  This
package makes that workload a first-class object:

- :mod:`repro.stream.scenario` — seeded :class:`Scenario` specs (mixed
  phase schedules over the Table I dataset generators) runnable against
  any registered backend through the :class:`repro.api.Graph` facade,
  with per-phase wall/model/counter records;
- :mod:`repro.stream.incremental` — analytics that subscribe to the
  facade's per-batch edge deltas and update in O(batch) instead of
  recomputing from scratch: :class:`IncrementalConnectedComponents`
  (union-find, cold re-label on deletions/vertex ops),
  :class:`IncrementalPageRank` (warm-start power iteration),
  :class:`IncrementalTriangleCount` (wedge closure of new edges against
  the cached symmetric CSR), :class:`IncrementalBFS` /
  :class:`IncrementalSSSP` (frontier re-relaxation seeded from the
  delta), and :class:`IncrementalKCore` (region-bounded peeling repair).

The ``t11`` bench artifact (:mod:`repro.bench.stream_bench`) prices the
incremental compute phases against the full-recompute baseline the other
structures model.

:mod:`repro.stream.durable` runs the same schedules against a
:class:`repro.persist.DurableGraph`, with phase-boundary progress records
so a paused or crashed run resumes bit-identically.

:mod:`repro.stream.chaos` runs schedules with chaos phases (kill-shard,
disk-fault, rebuild, checkpoint) against a
:class:`repro.api.ShardedGraph` under a seeded
:class:`repro.chaos.FaultPlan` — the fault/failover/degraded-read
workloads ``docs/robustness.md`` describes and the ``t14`` bench prices.
"""

from repro.stream.chaos import (
    ChaosResult,
    disk_fault_scenario,
    kill_rebuild_scenario,
    quick_chaos_scenarios,
    run_chaos_scenario,
    thrash_fault_specs,
    thrash_scenario,
)
from repro.stream.durable import run_scenario_durable
from repro.stream.incremental import (
    IncrementalAnalytic,
    IncrementalBFS,
    IncrementalConnectedComponents,
    IncrementalKCore,
    IncrementalPageRank,
    IncrementalSSSP,
    IncrementalTriangleCount,
)
from repro.stream.scenario import (
    ANALYTICS,
    CHAOS_PHASE_KINDS,
    DATA_PHASE_KINDS,
    FAMILIES,
    PHASE_KINDS,
    Phase,
    PhaseResult,
    Scenario,
    ScenarioResult,
    build_dataset,
    churn_scenario,
    insert_heavy_scenario,
    mixed_scenario,
    quick_scenarios,
    run_scenario,
)

__all__ = [
    "ANALYTICS",
    "CHAOS_PHASE_KINDS",
    "ChaosResult",
    "DATA_PHASE_KINDS",
    "FAMILIES",
    "PHASE_KINDS",
    "IncrementalAnalytic",
    "IncrementalBFS",
    "IncrementalConnectedComponents",
    "IncrementalKCore",
    "IncrementalPageRank",
    "IncrementalSSSP",
    "IncrementalTriangleCount",
    "Phase",
    "PhaseResult",
    "Scenario",
    "ScenarioResult",
    "build_dataset",
    "churn_scenario",
    "disk_fault_scenario",
    "insert_heavy_scenario",
    "kill_rebuild_scenario",
    "mixed_scenario",
    "quick_chaos_scenarios",
    "quick_scenarios",
    "run_chaos_scenario",
    "run_scenario",
    "run_scenario_durable",
    "thrash_fault_specs",
    "thrash_scenario",
]
