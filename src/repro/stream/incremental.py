"""Delta-aware incremental analytics: cursor consumers of the event log.

A compute phase in a streaming workload does not need to recompute a
whole-graph analytic from scratch when only a small batch of edges changed
since the last phase.  The classes here hold an
:class:`repro.eventlog.EventCursor` on a facade's event log
(:attr:`repro.api.Graph.events` — the sharded facade in
:mod:`repro.api.sharding` publishes the same log) and fold the pending
events into their state at query time:

- :class:`IncrementalConnectedComponents` — a union-find forest updated in
  O(batch α) per insert-only batch; deletions and structural events fall
  back to a cold re-label automatically.  Labels are always exactly equal
  to :func:`repro.analytics.connected_components` on the live snapshot.
- :class:`IncrementalPageRank` — warm-start power iteration seeded from
  the previous phase's ranks.  The residual after a small delta is
  localized around the touched vertices and far below the O(1) residual
  of a uniform cold start, so the same ``tol`` is reached in far fewer
  sweeps; results match a cold :func:`repro.analytics.pagerank` within
  ``tol``.  An unchanged graph returns the cached ranks with zero sweeps.

Staleness can never masquerade as freshness: a consumed window must be a
complete history (no retention gap — the cursor detects events trimmed
past the log's bounded retention) whose version chain connects the
consumer's last sync to the live ``mutation_version``.  A mutation
applied to the backend behind the facade's back breaks that chain and is
answered with a cold recompute — one shared log-gap check instead of the
per-consumer version bookkeeping each analytic used to reimplement.

Both charge the device model for their incremental work (union-find
traffic, warm sweeps), so the ``t11`` stream bench prices them against the
full-recompute baseline honestly.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.connected_components import connected_components
from repro.analytics.pagerank import power_iteration
from repro.eventlog import EdgeBatch, EventLog
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError

__all__ = ["IncrementalAnalytic", "IncrementalConnectedComponents", "IncrementalPageRank"]


class IncrementalAnalytic:
    """Base class wiring an analytic onto a facade's event log.

    Subclasses implement :meth:`_fold_event`, called once per pending
    event in sequence order at query time.  The base class owns the
    cursor, the gap/version-chain detection, and the stale flag; a
    subclass marks itself stale from ``_fold_event`` when an event is not
    incrementally absorbable (a delete for union-find, say) and the next
    query rebuilds cold.
    """

    def __init__(self, graph) -> None:
        events = getattr(graph, "events", None)
        if not isinstance(events, EventLog):
            raise ValidationError(
                "incremental analytics consume a facade event log "
                "(repro.api.Graph or ShardedGraph), got "
                f"{type(graph).__name__}"
            )
        self.graph = graph
        self._cursor = events.cursor()
        self._stale = True
        self._synced_version = -1
        #: How the last query was served: "incremental", "warm", "cold",
        #: or "cached".
        self.last_mode: str | None = None

    def close(self) -> None:
        """Detach from the event log (queries then always re-derive the
        live answer via the version check)."""
        self._cursor = None

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        raise NotImplementedError

    def _drain(self) -> None:
        """Fold every pending event; a retention gap marks the state stale
        (trimmed events are an unknowable history)."""
        if self._cursor is None:
            return
        events, gapped = self._cursor.poll()
        if gapped:
            self._stale = True
        for event in events:
            self._fold_event(event)

    # -- plumbing ----------------------------------------------------------------

    def _live_version(self) -> int:
        version = getattr(self.graph, "mutation_version", None)
        return -1 if version is None else int(version)

    def _in_sync(self) -> bool:
        return not self._stale and self._synced_version == self._live_version()


class IncrementalConnectedComponents(IncrementalAnalytic):
    """Connected-component labels maintained from the event log.

    Insert-only windows are folded into a union-find forest (union by
    minimum root, path halving) in O(batch α); each new edge is one union.
    Deletions can split components, so a delete batch — like any
    structural event, retention gap, or version-chain break — marks the
    forest stale and the next :meth:`labels` call re-labels cold from the
    live snapshot.  After the cold pass the forest is rebuilt from the
    labels themselves (every vertex points at its component's minimum id,
    which is a union-find fixpoint), so streaming resumes incrementally.

    :meth:`labels` is always exactly equal to
    :func:`repro.analytics.connected_components` on the live snapshot.
    """

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self._parent: np.ndarray | None = None
        self._relabel()

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if self._stale:
            return  # the pending cold re-label will absorb this event too
        if not isinstance(event, EdgeBatch) or not event.is_insert:
            # Structural changes and deletions may split a component;
            # only a cold pass can tell.
            self._stale = True
            return
        if event.before_version != self._synced_version:
            # The version chain does not connect our last sync to this
            # batch — something mutated the backend out-of-band between
            # them.  Folding the batch anyway would mask the missed
            # change behind a fresh-looking version, so go cold.
            self._stale = True
            return
        parent = self._parent
        counters = get_counters()
        counters.atomics += int(event.src.shape[0])
        counters.bytes_copied += int(event.src.shape[0]) * 16
        for a, b in zip(event.src.tolist(), event.dst.tolist()):
            ra, rb = _find(parent, a), _find(parent, b)
            if ra == rb:
                continue
            # Union by minimum root keeps every root the smallest id of
            # its component — exactly the label connected_components emits.
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
        self._synced_version = event.after_version

    # -- queries ------------------------------------------------------------------

    def labels(self) -> np.ndarray:
        """Component label per vertex (= smallest id in the component)."""
        self._drain()
        if not self._in_sync():
            self._relabel()
            self.last_mode = "cold"
            return self._parent.copy()
        # Vectorized pointer-jump to the (min-id) roots; keep the
        # compressed forest so repeated queries are one pass.
        counters = get_counters()
        p = self._parent
        while True:
            counters.kernel_launches += 1
            counters.bytes_copied += 2 * p.shape[0] * 8
            q = p[p]
            if np.array_equal(q, p):
                break
            p = q
        self._parent = p
        self.last_mode = "incremental"
        return p.copy()

    # -- plumbing ----------------------------------------------------------------

    def _relabel(self) -> None:
        labels = connected_components(self.graph.snapshot())
        # The label array doubles as a valid union-find forest: each
        # vertex points at its component's min id, roots point at
        # themselves.
        self._parent = labels.copy()
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending


def _find(parent: np.ndarray, x: int) -> int:
    """Union-find root of ``x`` with path halving."""
    x = int(x)
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = int(parent[x])
    return x


class IncrementalPageRank(IncrementalAnalytic):
    """PageRank maintained by warm-start power iteration.

    The previous phase's ranks are already within ``tol`` of the old
    fixpoint; after an O(batch) delta the new fixpoint moved by a
    correspondingly small, delta-localized amount (the initial residual
    is concentrated on the touched vertices and their neighborhoods), so
    re-iterating from the previous ranks reaches the same ``tol`` in far
    fewer sweeps than a uniform cold start.  Warm starting is always
    exact-within-``tol``: the sweep operator contracts to the unique
    fixpoint from any start vector, so even structural events only cost
    extra sweeps, never correctness.  An unchanged graph returns the
    cached ranks with zero sweeps.

    ``touched_count`` reports how many distinct vertices the deltas since
    the last compute touched (the locality the warm start exploits).
    """

    def __init__(
        self,
        graph,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
    ) -> None:
        if not (0.0 < damping < 1.0):
            raise ValidationError("damping must be in (0, 1)")
        super().__init__(graph)
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)
        self._ranks: np.ndarray | None = None
        self._touched: np.ndarray | None = None
        #: Sweeps the last compute() needed (0 when served from cache).
        self.last_sweeps = 0

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if isinstance(event, EdgeBatch):
            if self._touched is not None:
                self._touched[event.src] = True
                self._touched[event.dst] = True
        else:
            self._stale = True
            # A structural event may have resized the vertex space (bulk
            # build growth); the mask is re-allocated at the next compute.
            self._touched = None

    # -- queries ------------------------------------------------------------------

    @property
    def touched_count(self) -> int:
        """Distinct vertices touched by deltas since the last compute."""
        self._drain()
        return int(self._touched.sum()) if self._touched is not None else 0

    def compute(self) -> np.ndarray:
        """Current PageRank scores (within ``tol`` of a cold computation)."""
        self._drain()
        if self._ranks is not None and self._in_sync():
            self.last_mode, self.last_sweeps = "cached", 0
            return self._ranks.copy()
        snap = self.graph.snapshot()
        n = snap.num_vertices
        if self._ranks is not None and self._ranks.shape[0] == n:
            # Warm start: renormalize the previous solution (edge churn
            # shifts mass only near the delta-touched vertices).
            rank = self._ranks / self._ranks.sum()
            self.last_mode = "warm"
        else:
            rank = np.full(n, 1.0 / n, dtype=np.float64)
            self.last_mode = "cold"
        rank, sweeps = power_iteration(
            snap, rank, damping=self.damping, tol=self.tol, max_iters=self.max_iters
        )
        self._ranks = rank
        self._touched = np.zeros(n, dtype=bool)
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending
        self.last_sweeps = sweeps
        return rank.copy()
