"""Delta-aware incremental analytics over the facade's edge deltas.

A compute phase in a streaming workload does not need to recompute a
whole-graph analytic from scratch when only a small batch of edges changed
since the last phase.  The classes here subscribe to the
:class:`repro.api.Graph` facade's per-batch delta stream
(:meth:`~repro.api.Graph.subscribe_deltas`) and maintain their state
incrementally:

- :class:`IncrementalConnectedComponents` — a union-find forest updated in
  O(batch α) per insert-only batch; deletions, vertex operations, and
  out-of-band backend mutations automatically fall back to a cold
  re-label.  Labels are always exactly equal to
  :func:`repro.analytics.connected_components` on the live snapshot.
- :class:`IncrementalPageRank` — warm-start power iteration seeded from
  the previous phase's ranks.  The residual after a small delta is
  localized around the touched vertices and far below the O(1) residual
  of a uniform cold start, so the same ``tol`` is reached in far fewer
  sweeps; results match a cold :func:`repro.analytics.pagerank` within
  ``tol``.  An unchanged graph returns the cached ranks with zero sweeps.

Both charge the device model for their incremental work (union-find
traffic, warm sweeps), so the ``t11`` stream bench prices them against the
full-recompute baseline honestly.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.connected_components import connected_components
from repro.analytics.pagerank import power_iteration
from repro.api.facade import Graph
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError

__all__ = ["IncrementalAnalytic", "IncrementalConnectedComponents", "IncrementalPageRank"]


class IncrementalAnalytic:
    """Base class wiring an analytic into a facade's delta stream.

    Subclasses implement ``on_edge_batch``; structural events
    (vertex deletion, bulk build, rehash, tombstone flush) mark the state
    stale, and ``_in_sync`` additionally detects mutations applied to the
    backend behind the facade's back by comparing ``mutation_version``
    against the version last folded in — staleness can therefore never
    masquerade as freshness, mirroring the snapshot cache's contract.
    """

    def __init__(self, graph: Graph) -> None:
        if not isinstance(graph, Graph):
            raise ValidationError(
                "incremental analytics subscribe to a repro.api.Graph facade, "
                f"got {type(graph).__name__}"
            )
        self.graph = graph
        self._stale = True
        self._synced_version = -1
        #: How the last query was served: "incremental", "cold", or "cached".
        self.last_mode: str | None = None
        graph.subscribe_deltas(self)

    def close(self) -> None:
        """Detach from the facade's delta stream."""
        self.graph.unsubscribe_deltas(self)

    # -- subscriber protocol -----------------------------------------------------

    def on_edge_batch(self, is_insert: bool, src, dst, weights, before_version) -> None:
        raise NotImplementedError

    def on_structural(self, reason: str) -> None:
        self._stale = True

    # -- plumbing ----------------------------------------------------------------

    def _backend_version(self) -> int:
        return int(getattr(self.graph.backend, "mutation_version", 0))

    def _in_sync(self) -> bool:
        return not self._stale and self._synced_version == self._backend_version()


class IncrementalConnectedComponents(IncrementalAnalytic):
    """Connected-component labels maintained from the delta stream.

    Insert-only windows are folded into a union-find forest (union by
    minimum root, path halving) in O(batch α); each new edge is one union.
    Deletions can split components, so a delete batch — like any
    structural event — marks the forest stale and the next
    :meth:`labels` call re-labels cold from the live snapshot.  After the
    cold pass the forest is rebuilt from the labels themselves (every
    vertex points at its component's minimum id, which is a union-find
    fixpoint), so streaming resumes incrementally.

    :meth:`labels` is always exactly equal to
    :func:`repro.analytics.connected_components` on the live snapshot.
    """

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._parent: np.ndarray | None = None
        self._relabel()

    # -- subscriber protocol -----------------------------------------------------

    def on_edge_batch(self, is_insert: bool, src, dst, weights, before_version) -> None:
        if before_version != self._synced_version:
            # Something mutated the backend between our last sync and this
            # batch (out-of-band, or an event we missed) — folding the
            # batch in anyway would mask it behind a fresh-looking
            # version, so force the cold re-label instead.
            self._stale = True
            return
        if not is_insert:
            # A deletion may split a component; only a cold pass can tell.
            self._stale = True
            return
        if self._stale:
            return  # the pending cold re-label will absorb this batch too
        parent = self._parent
        counters = get_counters()
        counters.atomics += int(src.shape[0])
        counters.bytes_copied += int(src.shape[0]) * 16
        for a, b in zip(src.tolist(), dst.tolist()):
            ra, rb = _find(parent, a), _find(parent, b)
            if ra == rb:
                continue
            # Union by minimum root keeps every root the smallest id of
            # its component — exactly the label connected_components emits.
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
        self._synced_version = self._backend_version()

    # -- queries ------------------------------------------------------------------

    def labels(self) -> np.ndarray:
        """Component label per vertex (= smallest id in the component)."""
        if not self._in_sync():
            self._relabel()
            self.last_mode = "cold"
            return self._parent.copy()
        # Vectorized pointer-jump to the (min-id) roots; keep the
        # compressed forest so repeated queries are one pass.
        counters = get_counters()
        p = self._parent
        while True:
            counters.kernel_launches += 1
            counters.bytes_copied += 2 * p.shape[0] * 8
            q = p[p]
            if np.array_equal(q, p):
                break
            p = q
        self._parent = p
        self.last_mode = "incremental"
        return p.copy()

    # -- plumbing ----------------------------------------------------------------

    def _relabel(self) -> None:
        labels = connected_components(self.graph.snapshot())
        # The label array doubles as a valid union-find forest: each
        # vertex points at its component's min id, roots point at
        # themselves.
        self._parent = labels.copy()
        self._stale = False
        self._synced_version = self._backend_version()


def _find(parent: np.ndarray, x: int) -> int:
    """Union-find root of ``x`` with path halving."""
    x = int(x)
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = int(parent[x])
    return x


class IncrementalPageRank(IncrementalAnalytic):
    """PageRank maintained by warm-start power iteration.

    The previous phase's ranks are already within ``tol`` of the old
    fixpoint; after an O(batch) delta the new fixpoint moved by a
    correspondingly small, delta-localized amount (the initial residual
    is concentrated on the touched vertices and their neighborhoods), so
    re-iterating from the previous ranks reaches the same ``tol`` in far
    fewer sweeps than a uniform cold start.  Warm starting is always
    exact-within-``tol``: the sweep operator contracts to the unique
    fixpoint from any start vector, so even structural events only cost
    extra sweeps, never correctness.  An unchanged graph returns the
    cached ranks with zero sweeps.

    ``touched_count`` reports how many distinct vertices the deltas since
    the last compute touched (the locality the warm start exploits).
    """

    def __init__(
        self,
        graph: Graph,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
    ) -> None:
        if not (0.0 < damping < 1.0):
            raise ValidationError("damping must be in (0, 1)")
        super().__init__(graph)
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)
        self._ranks: np.ndarray | None = None
        self._touched: np.ndarray | None = None
        #: Sweeps the last compute() needed (0 when served from cache).
        self.last_sweeps = 0

    # -- subscriber protocol -----------------------------------------------------

    def on_edge_batch(self, is_insert: bool, src, dst, weights, before_version) -> None:
        if self._touched is not None:
            self._touched[src] = True
            self._touched[dst] = True

    def on_structural(self, reason: str) -> None:
        super().on_structural(reason)
        # A structural event may have resized the vertex space (bulk
        # build growth); the mask is re-allocated at the next compute.
        self._touched = None

    # -- queries ------------------------------------------------------------------

    @property
    def touched_count(self) -> int:
        """Distinct vertices touched by deltas since the last compute."""
        return int(self._touched.sum()) if self._touched is not None else 0

    def compute(self) -> np.ndarray:
        """Current PageRank scores (within ``tol`` of a cold computation)."""
        if self._ranks is not None and self._in_sync():
            self.last_mode, self.last_sweeps = "cached", 0
            return self._ranks.copy()
        snap = self.graph.snapshot()
        n = snap.num_vertices
        if self._ranks is not None and self._ranks.shape[0] == n:
            # Warm start: renormalize the previous solution (edge churn
            # shifts mass only near the delta-touched vertices).
            rank = self._ranks / self._ranks.sum()
            self.last_mode = "warm"
        else:
            rank = np.full(n, 1.0 / n, dtype=np.float64)
            self.last_mode = "cold"
        rank, sweeps = power_iteration(
            snap, rank, damping=self.damping, tol=self.tol, max_iters=self.max_iters
        )
        self._ranks = rank
        self._touched = np.zeros(n, dtype=bool)
        self._stale = False
        self._synced_version = self._backend_version()
        self.last_sweeps = sweeps
        return rank.copy()
