"""Delta-aware incremental analytics: cursor consumers of the event log.

A compute phase in a streaming workload does not need to recompute a
whole-graph analytic from scratch when only a small batch of edges changed
since the last phase.  The classes here hold an
:class:`repro.eventlog.EventCursor` on a facade's event log
(:attr:`repro.api.Graph.events` — the sharded facade in
:mod:`repro.api.sharding` publishes the same log) and fold the pending
events into their state at query time:

- :class:`IncrementalConnectedComponents` — a union-find forest updated in
  O(batch α) per insert-only batch; deletions and structural events fall
  back to a cold re-label automatically.  Labels are always exactly equal
  to :func:`repro.analytics.connected_components` on the live snapshot.
- :class:`IncrementalPageRank` — warm-start power iteration seeded from
  the previous phase's ranks.  The residual after a small delta is
  localized around the touched vertices and far below the O(1) residual
  of a uniform cold start, so the same ``tol`` is reached in far fewer
  sweeps; results match a cold :func:`repro.analytics.pagerank` within
  ``tol``.  An unchanged graph returns the cached ranks with zero sweeps.
- :class:`IncrementalTriangleCount` — the undirected triangle count
  maintained by per-batch wedge closure: the cached symmetric CSR absorbs
  each insert-only batch through
  :func:`repro.api.snapshot.merge_csr_delta` and the genuinely-new edges
  are closed through the *same*
  :func:`repro.analytics.wedges.closing_wedges` kernel the Table VII/IX
  paths use.  Always exactly equal to
  :func:`repro.analytics.undirected_triangles` on the live snapshot.
- :class:`IncrementalBFS` / :class:`IncrementalSSSP` — distance arrays
  repaired by frontier re-relaxation seeded from the delta-touched
  vertices (insert-only windows can only shorten distances, so relaxing
  outward from the new edges' endpoints converges on the exact new
  fixpoint).  Deletions — and, for SSSP, a replace-semantics upsert that
  *grew* an existing edge's weight — trigger a cold re-run.
- :class:`IncrementalKCore` — fixed-``k`` core membership repaired by
  region-bounded peeling: on insert-only windows the core can only grow,
  and every newly-qualifying vertex must reach a new edge's source
  through the promoted set, so peeling the reverse-reachable candidate
  region (with credits for the old core) is exact.  Always equal to
  :func:`repro.analytics.kcore_membership` on the live snapshot.

Staleness can never masquerade as freshness: a consumed window must be a
complete history (no retention gap — the cursor detects events trimmed
past the log's bounded retention) whose version chain connects the
consumer's last sync to the live ``mutation_version``.  A mutation
applied to the backend behind the facade's back breaks that chain and is
answered with a cold recompute — one shared log-gap check instead of the
per-consumer version bookkeeping each analytic used to reimplement.

Both charge the device model for their incremental work (union-find
traffic, warm sweeps), so the ``t11`` stream bench prices them against the
full-recompute baseline honestly.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.bfs import bfs
from repro.analytics.connected_components import connected_components
from repro.analytics.kcore import kcore_membership
from repro.analytics.pagerank import power_iteration
from repro.analytics.sssp import sssp
from repro.analytics.wedges import canonical_edge_keys, closing_wedges, split_keys, symmetric_csr
from repro.api.snapshot import CSRSnapshot, merge_csr_delta
from repro.eventlog import EdgeBatch, EventLog
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask

__all__ = [
    "IncrementalAnalytic",
    "IncrementalConnectedComponents",
    "IncrementalPageRank",
    "IncrementalTriangleCount",
    "IncrementalBFS",
    "IncrementalSSSP",
    "IncrementalKCore",
]

#: Unreachable sentinel shared with :func:`repro.analytics.sssp` (headroom
#: below int64 max so ``dist + weight`` relaxation cannot overflow).
_INF = np.iinfo(np.int64).max // 4


class IncrementalAnalytic:
    """Base class wiring an analytic onto a facade's event log.

    Subclasses implement :meth:`_fold_event`, called once per pending
    event in sequence order at query time.  The base class owns the
    cursor, the gap/version-chain detection, and the stale flag; a
    subclass marks itself stale from ``_fold_event`` when an event is not
    incrementally absorbable (a delete for union-find, say) and the next
    query rebuilds cold.
    """

    def __init__(self, graph) -> None:
        events = getattr(graph, "events", None)
        if not isinstance(events, EventLog):
            raise ValidationError(
                "incremental analytics consume a facade event log "
                "(repro.api.Graph or ShardedGraph), got "
                f"{type(graph).__name__}"
            )
        self.graph = graph
        self._cursor = events.cursor()
        self._stale = True
        self._synced_version = -1
        #: How the last query was served: "incremental", "warm", "cold",
        #: or "cached".
        self.last_mode: str | None = None

    def close(self) -> None:
        """Detach from the event log (queries then always re-derive the
        live answer via the version check)."""
        self._cursor = None

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        raise NotImplementedError

    def _drain(self) -> None:
        """Fold every pending event; a retention gap marks the state stale
        (trimmed events are an unknowable history)."""
        if self._cursor is None:
            return
        events, gapped = self._cursor.poll()
        if gapped:
            self._stale = True
        for event in events:
            self._fold_event(event)

    # -- plumbing ----------------------------------------------------------------

    def _live_version(self) -> int:
        version = getattr(self.graph, "mutation_version", None)
        return -1 if version is None else int(version)

    def _in_sync(self) -> bool:
        return not self._stale and self._synced_version == self._live_version()


class IncrementalConnectedComponents(IncrementalAnalytic):
    """Connected-component labels maintained from the event log.

    Insert-only windows are folded into a union-find forest (union by
    minimum root, path halving) in O(batch α); each new edge is one union.
    Deletions can split components, so a delete batch — like any
    structural event, retention gap, or version-chain break — marks the
    forest stale and the next :meth:`labels` call re-labels cold from the
    live snapshot.  After the cold pass the forest is rebuilt from the
    labels themselves (every vertex points at its component's minimum id,
    which is a union-find fixpoint), so streaming resumes incrementally.

    :meth:`labels` is always exactly equal to
    :func:`repro.analytics.connected_components` on the live snapshot.
    """

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self._parent: np.ndarray | None = None
        self._relabel()

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if self._stale:
            return  # the pending cold re-label will absorb this event too
        if not isinstance(event, EdgeBatch) or not event.is_insert:
            # Structural changes and deletions may split a component;
            # only a cold pass can tell.
            self._stale = True
            return
        if event.before_version != self._synced_version:
            # The version chain does not connect our last sync to this
            # batch — something mutated the backend out-of-band between
            # them.  Folding the batch anyway would mask the missed
            # change behind a fresh-looking version, so go cold.
            self._stale = True
            return
        parent = self._parent
        counters = get_counters()
        counters.atomics += int(event.src.shape[0])
        counters.bytes_copied += int(event.src.shape[0]) * 16
        for a, b in zip(event.src.tolist(), event.dst.tolist()):
            ra, rb = _find(parent, a), _find(parent, b)
            if ra == rb:
                continue
            # Union by minimum root keeps every root the smallest id of
            # its component — exactly the label connected_components emits.
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
        self._synced_version = event.after_version

    # -- queries ------------------------------------------------------------------

    def labels(self) -> np.ndarray:
        """Component label per vertex (= smallest id in the component)."""
        self._drain()
        if not self._in_sync():
            self._relabel()
            self.last_mode = "cold"
            return self._parent.copy()
        # Vectorized pointer-jump to the (min-id) roots; keep the
        # compressed forest so repeated queries are one pass.
        counters = get_counters()
        p = self._parent
        while True:
            counters.kernel_launches += 1
            counters.bytes_copied += 2 * p.shape[0] * 8
            q = p[p]
            if np.array_equal(q, p):
                break
            p = q
        self._parent = p
        self.last_mode = "incremental"
        return p.copy()

    # -- plumbing ----------------------------------------------------------------

    def _relabel(self) -> None:
        labels = connected_components(self.graph.snapshot())
        # The label array doubles as a valid union-find forest: each
        # vertex points at its component's min id, roots point at
        # themselves.
        self._parent = labels.copy()
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending


def _find(parent: np.ndarray, x: int) -> int:
    """Union-find root of ``x`` with path halving."""
    x = int(x)
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = int(parent[x])
    return x


class IncrementalPageRank(IncrementalAnalytic):
    """PageRank maintained by warm-start power iteration.

    The previous phase's ranks are already within ``tol`` of the old
    fixpoint; after an O(batch) delta the new fixpoint moved by a
    correspondingly small, delta-localized amount (the initial residual
    is concentrated on the touched vertices and their neighborhoods), so
    re-iterating from the previous ranks reaches the same ``tol`` in far
    fewer sweeps than a uniform cold start.  Warm starting is always
    exact-within-``tol``: the sweep operator contracts to the unique
    fixpoint from any start vector, so even structural events only cost
    extra sweeps, never correctness.  An unchanged graph returns the
    cached ranks with zero sweeps.

    ``touched_count`` reports how many distinct vertices the deltas since
    the last compute touched (the locality the warm start exploits).
    """

    def __init__(
        self,
        graph,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
    ) -> None:
        if not (0.0 < damping < 1.0):
            raise ValidationError("damping must be in (0, 1)")
        super().__init__(graph)
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)
        self._ranks: np.ndarray | None = None
        self._touched: np.ndarray | None = None
        #: Sweeps the last compute() needed (0 when served from cache).
        self.last_sweeps = 0

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if isinstance(event, EdgeBatch):
            if self._touched is not None:
                self._touched[event.src] = True
                self._touched[event.dst] = True
        else:
            self._stale = True
            # A structural event may have resized the vertex space (bulk
            # build growth); the mask is re-allocated at the next compute.
            self._touched = None

    # -- queries ------------------------------------------------------------------

    @property
    def touched_count(self) -> int:
        """Distinct vertices touched by deltas since the last compute."""
        self._drain()
        return int(self._touched.sum()) if self._touched is not None else 0

    def compute(self) -> np.ndarray:
        """Current PageRank scores (within ``tol`` of a cold computation)."""
        self._drain()
        if self._ranks is not None and self._in_sync():
            self.last_mode, self.last_sweeps = "cached", 0
            return self._ranks.copy()
        snap = self.graph.snapshot()
        n = snap.num_vertices
        if self._ranks is not None and self._ranks.shape[0] == n:
            # Warm start: renormalize the previous solution (edge churn
            # shifts mass only near the delta-touched vertices).
            rank = self._ranks / self._ranks.sum()
            self.last_mode = "warm"
        else:
            rank = np.full(n, 1.0 / n, dtype=np.float64)
            self.last_mode = "cold"
        rank, sweeps = power_iteration(
            snap, rank, damping=self.damping, tol=self.tol, max_iters=self.max_iters
        )
        self._ranks = rank
        self._touched = np.zeros(n, dtype=bool)
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending
        self.last_sweeps = sweeps
        return rank.copy()


def _sorted_member(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership of ``needles`` in a sorted unique ``haystack`` (charged
    one ``sorted_probes`` per needle — it is a batched binary search)."""
    if haystack.shape[0] == 0 or needles.shape[0] == 0:
        return np.zeros(needles.shape[0], dtype=bool)
    get_counters().add("sorted_probes", int(needles.shape[0]))
    loc = np.searchsorted(haystack, needles)
    safe = np.minimum(loc, haystack.shape[0] - 1)
    return (loc < haystack.shape[0]) & (haystack[safe] == needles)


class IncrementalTriangleCount(IncrementalAnalytic):
    """The undirected triangle count maintained from the event log.

    State is the symmetric sorted CSR of the graph's undirected view (its
    canonical ``u < v`` edges mirrored) plus the current count.  An
    insert-only batch is absorbed in O(E + B log E): the batch reduces to
    canonical keys, membership probes split off the genuinely-new edges,
    :func:`repro.api.snapshot.merge_csr_delta` merges their mirrored
    orientations into the cached symmetric CSR, and the new edges are
    closed through the shared Table VII/IX wedge kernel
    (:func:`repro.analytics.wedges.closing_wedges`).  Each new triangle is
    counted exactly once: a closed wedge is credited to the triangle's
    *largest* new canonical edge key.

    Deletions, structural events, retention gaps, and version-chain
    breaks mark the state stale; the next :meth:`count` rebuilds cold —
    the same symmetrize-and-close pass as
    :func:`repro.analytics.undirected_triangles`, to which the result is
    always exactly equal on the live snapshot.
    """

    def __init__(self, graph) -> None:
        """Attach to ``graph``'s event log and cold-build the initial
        symmetric CSR and count."""
        super().__init__(graph)
        self._sym: CSRSnapshot | None = None
        self._comp: np.ndarray | None = None
        self._count = 0
        self._folded = False
        self._recount()

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if self._stale:
            return
        if not isinstance(event, EdgeBatch) or not event.is_insert:
            # Deleting an edge can destroy triangles; only a cold pass
            # (or a per-edge recount we do not attempt) can tell how many.
            self._stale = True
            return
        if event.before_version != self._synced_version:
            self._stale = True
            return
        self._synced_version = event.after_version
        self._folded = True
        counters = get_counters()
        counters.bytes_copied += int(event.src.shape[0]) * 16
        candidates = canonical_edge_keys(event.src, event.dst)
        # Replace-semantics upserts of already-present undirected edges do
        # not change the topology — drop them via membership probes.
        new = candidates[~_sorted_member(self._comp, candidates)]
        if new.shape[0] == 0:
            return
        nu, nv = split_keys(new)
        both = np.sort(np.concatenate([(nu << np.int64(32)) | nv, (nv << np.int64(32)) | nu]))
        counters.sorted_elements += int(both.shape[0])  # the O(B log B) delta sort
        merged = merge_csr_delta(self._sym, both, None, np.empty(0, dtype=np.int64))
        mcomp = (merged.sources() << np.int64(32)) | merged.col_idx
        counters.bytes_copied += merged.num_edges * 8
        edge_of, w = closing_wedges(
            merged.row_ptr, merged.col_idx, mcomp, nu, nv, return_hits=True
        )
        if edge_of.shape[0]:
            hu, hv = nu[edge_of], nv[edge_of]
            key_uv = (hu << np.int64(32)) | hv
            e1 = (np.minimum(hu, w) << np.int64(32)) | np.maximum(hu, w)
            e2 = (np.minimum(hv, w) << np.int64(32)) | np.maximum(hv, w)
            # A triangle whose corner edges are also new would be found
            # once per new edge; credit it to its largest new key only.
            ok = (~_sorted_member(new, e1) | (e1 < key_uv)) & (
                ~_sorted_member(new, e2) | (e2 < key_uv)
            )
            self._count += int(ok.sum())
        self._sym = merged
        self._comp = mcomp

    # -- queries ------------------------------------------------------------------

    def count(self) -> int:
        """Triangles in the undirected view of the live graph (exactly
        :func:`repro.analytics.undirected_triangles` of the snapshot)."""
        self._drain()
        if not self._in_sync():
            self._recount()
            self.last_mode = "cold"
        elif self._folded:
            self.last_mode = "incremental"
        else:
            self.last_mode = "cached"
        self._folded = False
        return self._count

    # -- plumbing ----------------------------------------------------------------

    def _recount(self) -> None:
        snap = self.graph.snapshot()
        n = snap.num_vertices
        canonical = canonical_edge_keys(snap.sources(), snap.col_idx)
        if canonical.shape[0]:
            row_ptr, col_idx, comp = symmetric_csr(canonical, n)
            self._sym = CSRSnapshot(row_ptr, col_idx, None, n)
            self._comp = comp
            u, v = split_keys(canonical)
            self._count = closing_wedges(row_ptr, col_idx, comp, u, v) // 3
        else:
            self._sym = CSRSnapshot(
                np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64), None, n
            )
            self._comp = np.empty(0, dtype=np.int64)
            self._count = 0
        self._stale = False
        self._folded = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending


class _IncrementalDistances(IncrementalAnalytic):
    """Shared machinery of :class:`IncrementalBFS` / :class:`IncrementalSSSP`.

    Holds the distance array of the last sync (INF-sentinel internally)
    and the pending insert-only window.  Repair is frontier re-relaxation
    over the live snapshot, seeded from the new edges whose relaxation
    improves a distance: inserts only add paths, so distances only
    decrease, and relaxing to a fixpoint from the improved set reaches
    exactly the cold answer (shortest distances are the unique fixpoint).
    """

    #: True → hop distances (every edge weight treated as 1).
    _unit_weights = True

    def __init__(self, graph, source: int = 0) -> None:
        super().__init__(graph)
        n = int(graph.num_vertices)
        source = int(source)
        if not (0 <= source < n):
            raise ValidationError(f"source {source} out of range [0, {n})")
        self.source = source
        self._dist: np.ndarray | None = None
        self._pending: list = []
        self._prev_snap: CSRSnapshot | None = None

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if self._stale:
            return
        if not isinstance(event, EdgeBatch) or not event.is_insert:
            # Deleting an edge can lengthen or disconnect paths.
            self._stale = True
            self._pending.clear()
            return
        if event.before_version != self._synced_version:
            self._stale = True
            self._pending.clear()
            return
        self._pending.append(event)
        self._synced_version = event.after_version

    # -- queries ------------------------------------------------------------------

    def distances(self) -> np.ndarray:
        """Distances from ``source``; unreachable vertices get -1.

        Bit-identical to the cold kernel (:func:`repro.analytics.bfs` /
        :func:`repro.analytics.sssp`) on the live snapshot.
        """
        self._drain()
        if self._dist is None or not self._in_sync():
            self._rebuild()
            self.last_mode = "cold"
        elif self._pending:
            if self._repair():
                self.last_mode = "incremental"
            else:
                self._rebuild()
                self.last_mode = "cold"
        else:
            self.last_mode = "cached"
        return np.where(self._dist >= _INF, np.int64(-1), self._dist)

    # -- plumbing ----------------------------------------------------------------

    def _cold_kernel(self, snap) -> np.ndarray:
        raise NotImplementedError

    def _rebuild(self) -> None:
        snap = self.graph.snapshot()
        raw = self._cold_kernel(snap)
        self._dist = np.where(raw < 0, _INF, raw).astype(np.int64)
        self._after_sync(snap)

    def _after_sync(self, snap) -> None:
        self._prev_snap = snap
        self._pending.clear()
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending

    def _net_pending(self):
        """Reduce the pending window to net per-key (src, dst, weight)
        arrays — last occurrence wins, matching replace semantics — with
        undirected facades' mirroring applied."""
        src = np.concatenate([e.src for e in self._pending])
        dst = np.concatenate([e.dst for e in self._pending])
        weighted = self._pending[0].weights is not None
        w = np.concatenate([e.weights for e in self._pending]) if weighted else None
        if not getattr(self.graph, "directed", True):
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if w is not None:
                w = np.concatenate([w, w])
        comp = (src << np.int64(32)) | dst
        get_counters().sorted_elements += int(comp.shape[0])  # the window reduce
        keep = last_occurrence_mask(comp)
        return src[keep], dst[keep], (w[keep] if w is not None else None)

    def _repair(self) -> bool:
        """Fold the pending window by seeded re-relaxation; False means
        the window is not monotone (a grown upsert) → caller goes cold."""
        snap = self.graph.snapshot()
        src, dst, w = self._net_pending()
        counters = get_counters()
        if self._unit_weights:
            w = np.ones(src.shape[0], dtype=np.int64)
        else:
            if w is None or self._prev_snap is None or self._prev_snap.weights is None:
                return False
            # Replace semantics: an upsert that *grew* an existing edge's
            # weight can lengthen shortest paths — not monotone, go cold.
            prev = self._prev_snap
            counters.bytes_copied += prev.num_edges * 8
            old_comp = (prev.sources() << np.int64(32)) | prev.col_idx
            keys = (src << np.int64(32)) | dst
            hit = _sorted_member(old_comp, keys)
            if hit.any():
                loc = np.searchsorted(old_comp, keys[hit])
                if bool(np.any(w[hit] > prev.weights[loc])):
                    return False
        dist = self._dist.copy()
        n = dist.shape[0]
        # Seed relaxation: only the new edges can have created shorter
        # paths, and only their destinations can improve directly.
        counters.kernel_launches += 1
        counters.bytes_copied += int(src.shape[0]) * 24
        proposed = dist.copy()
        np.minimum.at(proposed, dst, dist[src] + w)
        frontier = np.flatnonzero(proposed < dist)
        dist = proposed
        rounds = 0
        while frontier.size:
            rounds += 1
            if rounds > n:
                raise ValidationError(
                    "negative cycle reachable from source: distances still "
                    f"improving after {n} repair rounds"
                )
            owner_pos, adst, aw = snap.adjacencies(frontier)
            if self._unit_weights:
                aw = np.ones(adst.shape[0], dtype=np.int64)
            proposed = dist.copy()
            np.minimum.at(proposed, adst, dist[frontier[owner_pos]] + aw)
            frontier = np.flatnonzero(proposed < dist)
            dist = proposed
        self._dist = dist
        self._after_sync(snap)
        return True


class IncrementalBFS(_IncrementalDistances):
    """Hop distances from a fixed source, repaired from the event log.

    Insert-only windows are folded by re-relaxation seeded from the new
    edges (unit weights); deletions, structural events, gaps, and
    version-chain breaks trigger a cold :func:`repro.analytics.bfs` over
    the live snapshot.  :meth:`distances` is always bit-identical to the
    cold run.
    """

    _unit_weights = True

    def _cold_kernel(self, snap) -> np.ndarray:
        return bfs(snap, self.source)


class IncrementalSSSP(_IncrementalDistances):
    """Shortest-path distances from a fixed source, repaired from the
    event log (weighted graphs only).

    Insert-only windows fold incrementally unless an upsert grew an
    existing edge's weight (replace semantics make that a non-monotone
    change — shortest paths can lengthen — so the window is answered
    cold, like any deletion or structural event).  :meth:`distances` is
    always bit-identical to :func:`repro.analytics.sssp` on the live
    snapshot.
    """

    _unit_weights = False

    def __init__(self, graph, source: int = 0) -> None:
        """Attach to a *weighted* facade; raises
        :class:`ValidationError` otherwise (SSSP needs edge weights)."""
        if not getattr(graph, "weighted", False):
            raise ValidationError("IncrementalSSSP requires a weighted graph")
        super().__init__(graph, source)

    def _cold_kernel(self, snap) -> np.ndarray:
        return sssp(snap, self.source)


class IncrementalKCore(IncrementalAnalytic):
    """Fixed-``k`` core membership maintained from the event log.

    The k-core (the maximal set whose members keep ≥ k out-neighbors
    within the set — the classical undirected core for symmetric edge
    sets) can only *grow* under insert-only windows, and every vertex the
    window promotes must reach a new edge's source endpoint through the
    promoted set.  Repair therefore peels only the candidate region:
    non-core vertices with live degree ≥ k that reach a seed against the
    edge direction (one reverse-index build + a region-bounded BFS),
    with old-core members credited as permanent neighbors.  Survivors
    join the core; everything else is untouched.

    Deletions, structural events, gaps, and version-chain breaks rebuild
    cold via :func:`repro.analytics.kcore_membership`, to which
    :meth:`members` is always exactly equal on the live snapshot.
    """

    def __init__(self, graph, k: int = 3) -> None:
        """Attach to ``graph``'s event log; ``k`` must be >= 1."""
        if int(k) < 1:
            raise ValidationError("k must be >= 1")
        super().__init__(graph)
        self.k = int(k)
        self._in_core: np.ndarray | None = None
        self._pending: list = []

    # -- event folding -----------------------------------------------------------

    def _fold_event(self, event) -> None:
        if self._stale:
            return
        if not isinstance(event, EdgeBatch) or not event.is_insert:
            # Deleting an edge can demote vertices out of the core.
            self._stale = True
            self._pending.clear()
            return
        if event.before_version != self._synced_version:
            self._stale = True
            self._pending.clear()
            return
        self._pending.append(event)
        self._synced_version = event.after_version

    # -- queries ------------------------------------------------------------------

    def members(self) -> np.ndarray:
        """Boolean k-core membership per vertex (exactly
        :func:`repro.analytics.kcore_membership` on the live snapshot)."""
        self._drain()
        if self._in_core is None or not self._in_sync():
            self._rebuild()
            self.last_mode = "cold"
        elif self._pending:
            self._repair()
            self.last_mode = "incremental"
        else:
            self.last_mode = "cached"
        return self._in_core.copy()

    # -- plumbing ----------------------------------------------------------------

    def _rebuild(self) -> None:
        self._in_core = kcore_membership(self.graph.snapshot(), self.k)
        self._pending.clear()
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()  # the snapshot absorbed everything pending

    def _repair(self) -> None:
        snap = self.graph.snapshot()
        in_core = self._in_core
        seeds = [e.src for e in self._pending]
        if not getattr(self.graph, "directed", True):
            seeds += [e.dst for e in self._pending]
        seeds = np.unique(np.concatenate(seeds))
        self._pending.clear()
        self._stale = False
        self._synced_version = self._live_version()
        if self._cursor is not None:
            self._cursor.poll()
        n = snap.num_vertices
        counters = get_counters()
        counters.bytes_copied += int(seeds.shape[0]) * 8
        # Only a vertex whose out-degree grew can start a promotion
        # cascade, and only vertices outside the core with enough live
        # degree can ever join.
        deg = snap.out_degrees()
        candidate = (~in_core) & (deg >= self.k)
        seeds = seeds[candidate[seeds]]
        if seeds.shape[0] == 0:
            return
        # Reverse index (counting-sort scatter on a device; one pass over
        # the edge stream) so the cascade can walk edges backwards.
        src, dst = snap.sources(), snap.col_idx
        counters.kernel_launches += 2
        counters.bytes_copied += int(src.shape[0]) * 16 + n * 8
        order = np.argsort(dst, kind="stable")
        rev_src = src[order]
        rev_cnt = np.bincount(dst, minlength=n)
        rev_ptr = np.concatenate([[0], np.cumsum(rev_cnt)]).astype(np.int64)
        # Grow the candidate region: a vertex can only be promoted if it
        # reaches a seed through promoted vertices along out-edges, i.e.
        # the seeds' reverse-reachable candidates.
        region = np.zeros(n, dtype=bool)
        region[seeds] = True
        frontier = seeds
        while frontier.size:
            lens = rev_cnt[frontier]
            starts = rev_ptr[frontier]
            m = int(lens.sum())
            counters.kernel_launches += 1
            counters.bytes_copied += int(frontier.shape[0]) * 8 + m * 8
            if m == 0:
                break
            flat = (
                np.arange(m, dtype=np.int64)
                - np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]), lens)
                + np.repeat(starts, lens)
            )
            nbr = rev_src[flat]
            fresh = np.unique(nbr[candidate[nbr] & ~region[nbr]])
            region[fresh] = True
            frontier = fresh
        # Peel inside the region, crediting old-core neighbors as
        # permanent (the old core never shrinks under inserts).
        rvs = np.flatnonzero(region)
        owner_pos, nbrs, _ = snap.adjacencies(rvs)
        tails = rvs[owner_pos]
        alive = region.copy()
        while True:
            counters.kernel_launches += 1
            counters.bytes_copied += int(nbrs.shape[0]) * 16 + int(rvs.shape[0]) * 8
            good = in_core[nbrs] | alive[nbrs]
            deg_eff = np.bincount(tails[good], minlength=n)
            weak = alive & (deg_eff < self.k)
            if not weak.any():
                break
            alive[weak] = False
        self._in_core = in_core | alive
