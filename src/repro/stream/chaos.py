"""Chaos scenarios: seeded fault-injection workloads on a sharded service.

:func:`run_chaos_scenario` executes a :class:`~repro.stream.scenario.Scenario`
whose schedule may include the chaos phase kinds
(:data:`~repro.stream.scenario.CHAOS_PHASE_KINDS`) against a
:class:`~repro.api.sharding.ShardedGraph` with durable per-shard stores
attached and every fault seam wired to one seeded
:class:`~repro.chaos.FaultPlan`:

- each shard's backend is wrapped in a :class:`~repro.chaos.FaultyBackend`
  (fault points ``shard<i>.<op>``), so armed specs can make shards flaky,
  slow, or dead mid-workload;
- each shard's WAL opens files through a :class:`~repro.chaos.FaultyStore`
  (fault points ``wal.open`` / ``wal.write`` / ``wal.fsync`` ...), so disk
  faults strike the durable log;
- the service runs with ``partial_dispatch="record"`` — a batch that
  fails on some shards is accounted (not raised) and re-driven by the
  next ``rebuild_shard`` phase, keeping the schedule's RNG stream
  identical to a fault-free run.

Data phases (insert / delete / query / churn) reuse the plain scenario
engine's executor, so a chaos run draws the *same* random batches as
:func:`~repro.stream.scenario.run_scenario` given the same scenario seed
— which is what lets tests pin a killed-and-rebuilt service bit-identical
to a never-faulted one.  Compute phases serve degraded-mode reads while
shards are dead (:meth:`~repro.api.sharding.ShardedGraph.degraded_snapshot`),
and every phase record carries the faults the plan fired during it plus
the service's health vector — the fault/recovery timeline of the run.

See ``docs/robustness.md`` for the fault model and a scenario guide.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.analytics.connected_components import connected_components
from repro.analytics.pagerank import power_iteration
from repro.api.sharding import ShardedGraph
from repro.chaos import FaultPlan, FaultyBackend, FaultyStore
from repro.gpusim.counters import get_counters
from repro.gpusim.model import simulated_seconds
from repro.stream.scenario import (
    CHAOS_PHASE_KINDS,
    PhaseResult,
    Scenario,
    _execute_phase,
    build_dataset,
)
from repro.util.errors import ValidationError

__all__ = [
    "ChaosResult",
    "run_chaos_scenario",
    "kill_rebuild_scenario",
    "disk_fault_scenario",
    "thrash_scenario",
    "quick_chaos_scenarios",
]


@dataclass
class ChaosResult:
    """A chaos scenario run: phase records plus the live service.

    ``phases`` mirror the plain engine's :class:`PhaseResult` records,
    with chaos extras in ``detail``: ``faults`` (the
    :class:`~repro.chaos.FireRecord`\\ s the plan fired during the
    phase), ``health`` (the post-phase shard health vector), and the
    kind-specific recovery stats (events replayed, reports redriven,
    gaps healed).  Call :meth:`close` when done — it closes the per-shard
    stores and removes the run's scratch directory (when the runner
    created one).
    """

    scenario: Scenario
    backend: str
    num_shards: int
    phases: list
    service: ShardedGraph
    plan: FaultPlan
    _tmp: object = field(default=None, repr=False)

    def model_seconds(self, kind: str | None = None) -> float:
        """Total modeled device seconds, optionally for one phase kind."""
        return sum(p.model_seconds for p in self.phases if kind is None or p.kind == kind)

    def fault_count(self) -> int:
        """Total faults the plan fired across the run."""
        return len(self.plan.fired)

    def close(self) -> None:
        """Close the durable stores and clean the scratch directory."""
        if self.service.stores is not None:
            self.service.stores.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ChaosResult":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _chaos_compute(service, *, damping, tol, max_iters):
    """Compute-phase closure: serve a global snapshot (degraded while
    shards are dead) and run the cold analytics on it."""

    def compute_once() -> dict:
        detail: dict = {}
        counters = get_counters()
        before = counters.snapshot()
        if service.dead_shards:
            degraded = service.degraded_snapshot()
            snap = degraded.snapshot
            detail["degraded"] = True
            detail["stale_shards"] = list(degraded.stale_shards)
            detail["missing_shards"] = list(degraded.missing_shards)
            detail["staleness"] = list(degraded.staleness)
        else:
            snap = service.snapshot()
            detail["degraded"] = False
        detail["snapshot_model"] = simulated_seconds(counters.diff(before))
        connected_components(snap)
        n = snap.num_vertices
        uniform = np.full(n, 1.0 / n, dtype=np.float64)
        _, sweeps = power_iteration(snap, uniform, damping=damping, tol=tol, max_iters=max_iters)
        detail["pr_sweeps"] = sweeps
        return detail

    return compute_once


def _execute_chaos_phase(index, phase, service, plan) -> PhaseResult:
    """Run one chaos phase (kill / rebuild / disk-fault / checkpoint)."""
    detail: dict = {}
    applied = 0
    before = get_counters().snapshot()
    t0 = perf_counter()
    if phase.kind == "kill_shard":
        service.kill_shard(phase.target)
        detail["shard"] = phase.target
        applied = 1
    elif phase.kind == "rebuild_shard":
        info = service.rebuild_shard(phase.target)
        # The factory hands rebuild_shard an unwrapped replacement; put it
        # back behind the fault plan so the rebuilt shard stays injectable.
        shard = service.shards[phase.target]
        shard.backend = FaultyBackend(shard.backend, plan, prefix=f"shard{phase.target}")
        remaining = service.redrive_pending()
        detail["shard"] = phase.target
        detail["replayed_events"] = info.replayed_events
        detail["from_checkpoint"] = info.recovered_checkpoint is not None
        detail["repaired_torn_tail"] = info.repaired_torn_tail
        detail["pending_after_redrive"] = remaining
        applied = info.replayed_events
    elif phase.kind == "checkpoint":
        healed = service.stores.durability_gap
        service.stores.checkpoint()
        detail["healed_gaps"] = healed
        applied = service.num_shards
    else:  # disk_fault: the next `size` WAL appends fail with OSError
        spec = plan.arm("wal.write", kind="oserror", rate=1.0, max_fires=phase.size)
        detail["armed"] = {"point": spec.point, "kind": spec.kind, "max_fires": spec.max_fires}
        applied = phase.size
    wall = perf_counter() - t0
    delta = get_counters().diff(before)
    return PhaseResult(
        index=index,
        kind=phase.kind,
        applied=applied,
        skipped=False,
        wall_seconds=wall,
        model_seconds=simulated_seconds(delta),
        counters={k: v for k, v in delta.items() if v},
        detail=detail,
    )


def run_chaos_scenario(
    scenario: Scenario,
    backend_name: str,
    *,
    num_shards: int = 4,
    fault_seed: int = 0,
    faults=(),
    directory=None,
    fsync: str = "never",
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> ChaosResult:
    """Execute a scenario (chaos phases allowed) on a sharded service.

    The service is built over ``num_shards`` fresh ``backend_name``
    shards with durability attached under ``directory`` (a scratch
    directory is created — and owned by the returned result — when None);
    ``faults`` are :class:`~repro.chaos.FaultSpec` rules pre-armed on the
    run's :class:`~repro.chaos.FaultPlan` seeded with ``fault_seed``.
    The whole run is deterministic in ``(scenario.seed, fault_seed)``.

    A ``rebuild_shard`` phase while the rebuilt shard's WAL has a
    durability gap raises :class:`~repro.util.errors.PersistError` —
    schedule a ``checkpoint`` phase between the disk fault and the
    rebuild, as :func:`disk_fault_scenario` does.
    """
    for phase in scenario.phases:
        if phase.kind in ("kill_shard", "rebuild_shard") and not (
            0 <= phase.target < num_shards
        ):
            raise ValidationError(
                f"phase {phase.kind!r} targets shard {phase.target}, but the "
                f"run has {num_shards} shards"
            )
    coo = build_dataset(scenario)
    service = ShardedGraph.create(
        backend_name,
        coo.num_vertices,
        num_shards=num_shards,
        weighted=scenario.weighted,
        partial_dispatch="record",
    )
    plan = FaultPlan(fault_seed, faults)
    for s, shard in enumerate(service.shards):
        shard.backend = FaultyBackend(shard.backend, plan, prefix=f"shard{s}")
    tmp = None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        directory = Path(tmp.name) / "stores"
    store_faults = FaultyStore(plan, prefix="wal")
    service.attach_durability(directory, fsync=fsync, opener=store_faults.opener)
    service.bulk_build(coo)
    plan.drain_events()  # seeding is setup, not workload
    compute_once = _chaos_compute(service, damping=damping, tol=tol, max_iters=max_iters)
    rng = np.random.default_rng(scenario.seed + 0x51AB)
    results: list = []
    for index, phase in enumerate(scenario.phases):
        if phase.kind in CHAOS_PHASE_KINDS:
            result = _execute_chaos_phase(index, phase, service, plan)
        else:
            result = _execute_phase(index, phase, service, coo, rng, scenario, compute_once)
        result.detail["faults"] = plan.drain_events()
        result.detail["health"] = list(service.health)
        results.append(result)
    return ChaosResult(
        scenario=scenario,
        backend=backend_name,
        num_shards=num_shards,
        phases=results,
        service=service,
        plan=plan,
        _tmp=tmp,
    )


# -- chaos scenario catalog -----------------------------------------------------------


def kill_rebuild_scenario(
    num_vertices: int = 1 << 10,
    *,
    batch: int = 256,
    shard: int = 1,
    seed: int = 0,
) -> Scenario:
    """Kill one shard mid-stream, serve degraded, rebuild, verify.

    Inserts land before and *while* the shard is dead (the dead shard's
    rows are recorded as partial dispatches), a compute phase serves the
    degraded snapshot, then ``rebuild_shard`` replays the WAL and
    re-drives the recorded batches — the final compute runs on an exact
    global view again.
    """
    from repro.stream.scenario import Phase

    phases = (
        Phase("insert", size=batch, batches=2),
        Phase("compute"),
        Phase("kill_shard", target=shard),
        Phase("insert", size=batch),
        Phase("compute"),  # degraded-mode read
        Phase("rebuild_shard", target=shard),
        Phase("compute"),
    )
    return Scenario(
        name=f"chaos-kill-rebuild-2^{int(np.log2(num_vertices))}",
        family="rmat",
        num_vertices=num_vertices,
        avg_degree=4.0,
        phases=phases,
        seed=seed,
    )


def disk_fault_scenario(
    num_vertices: int = 1 << 10,
    *,
    batch: int = 256,
    shard: int = 0,
    fires: int = 2,
    seed: int = 0,
) -> Scenario:
    """WAL appends fail mid-stream; checkpoint heals; rebuild still exact.

    The ``disk_fault`` phase arms ``fires`` one-shot ``OSError`` faults
    on ``wal.write``; the following inserts open durability gaps (applied
    in memory, lost to the log).  The ``checkpoint`` phase heals the gaps
    — making the subsequent kill + rebuild of a shard safe again.
    """
    from repro.stream.scenario import Phase

    phases = (
        Phase("insert", size=batch, batches=2),
        Phase("disk_fault", size=fires),
        Phase("insert", size=batch),
        Phase("checkpoint"),
        Phase("kill_shard", target=shard),
        Phase("rebuild_shard", target=shard),
        Phase("compute"),
    )
    return Scenario(
        name=f"chaos-disk-fault-2^{int(np.log2(num_vertices))}",
        family="powerlaw",
        num_vertices=num_vertices,
        avg_degree=4.0,
        phases=phases,
        seed=seed,
    )


def thrash_scenario(
    num_vertices: int = 1 << 10,
    *,
    batch: int = 192,
    seed: int = 0,
) -> Scenario:
    """Edge churn under flaky shards (pair with rate-based transient
    faults on ``shard*.insert_edges`` / ``shard*.delete_edges`` — see
    :func:`thrash_fault_specs`): the retry policy should absorb every
    fault without changing the final state."""
    from repro.stream.scenario import Phase

    phases = (
        Phase("insert", size=batch, batches=2),
        Phase("delete", size=batch // 2),
        Phase("compute"),
        Phase("insert", size=batch, batches=2),
        Phase("delete", size=batch // 2),
        Phase("query", size=batch),
        Phase("compute"),
    )
    return Scenario(
        name=f"chaos-thrash-2^{int(np.log2(num_vertices))}",
        family="rgg",
        num_vertices=num_vertices,
        avg_degree=6.0,
        phases=phases,
        seed=seed,
    )


def thrash_fault_specs(rate: float = 0.25):
    """Transient-fault rules for :func:`thrash_scenario`: every shard
    mutation point fires with probability ``rate``, unlimited times —
    retries must absorb all of it."""
    from repro.chaos import FaultSpec

    return (
        FaultSpec("shard*.insert_edges", kind="transient", rate=rate, max_fires=None),
        FaultSpec("shard*.delete_edges", kind="transient", rate=rate, max_fires=None),
    )


def quick_chaos_scenarios(seed: int = 0) -> tuple:
    """Small chaos scenarios covering every chaos phase kind (test-sized)."""
    return (
        kill_rebuild_scenario(1 << 8, batch=64, seed=seed),
        disk_fault_scenario(1 << 8, batch=64, seed=seed),
        thrash_scenario(1 << 8, batch=48, seed=seed),
    )
