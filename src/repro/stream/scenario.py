"""Seeded streaming scenarios: mixed phase schedules over any backend.

The paper's workload is *phase-concurrent*: batches of edge insertions and
deletions interleaved with query and compute phases.  A
:class:`Scenario` is a declarative, seeded spec of such a schedule —
which Table I dataset family seeds the graph (rmat / powerlaw / road /
rgg), and which phases run in which order — and :func:`run_scenario`
executes it against any registered backend through the
:class:`repro.api.Graph` facade, recording wall-clock, modeled device
time, and kernel counters per phase.

Compute phases run in one of two modes:

- ``mode="full"`` — the full-recompute baseline (what a Hornet- or
  faimGraph-style pipeline does between update phases): export the live
  edge set, pay the cold O(E log E) snapshot sort, and run connected
  components and PageRank from scratch;
- ``mode="incremental"`` — the facade's delta-merged snapshot plus the
  delta-aware analytics of :mod:`repro.stream.incremental`
  (O(batch α) union-find updates, warm-started PageRank sweeps, wedge
  closure of new edges, seeded distance re-relaxation, region-bounded
  k-core repair).

Which analytics a compute phase runs is the scenario runner's
``analytics`` selection — any subset of :data:`ANALYTICS` — and each
compute phase records a per-analytic modeled-cost slice, so the ``t11``
bench artifact can price and gate every family member separately.  Both
modes are deterministic for a fixed scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.analytics.bfs import bfs
from repro.analytics.connected_components import connected_components
from repro.analytics.kcore import kcore_membership
from repro.analytics.pagerank import power_iteration
from repro.analytics.sssp import sssp
from repro.analytics.triangle_count import undirected_triangles
from repro.api.facade import Graph
from repro.api.snapshot import CSRSnapshot
from repro.coo import COO
from repro.datasets import powerlaw_graph, rgg_graph, rmat_graph, road_graph
from repro.gpusim.counters import get_counters
from repro.gpusim.model import simulated_seconds
from repro.stream.incremental import (
    IncrementalBFS,
    IncrementalConnectedComponents,
    IncrementalKCore,
    IncrementalPageRank,
    IncrementalSSSP,
    IncrementalTriangleCount,
)
from repro.util.errors import ValidationError

__all__ = [
    "ANALYTICS",
    "PHASE_KINDS",
    "DATA_PHASE_KINDS",
    "CHAOS_PHASE_KINDS",
    "FAMILIES",
    "Phase",
    "Scenario",
    "PhaseResult",
    "ScenarioResult",
    "build_dataset",
    "run_scenario",
    "insert_heavy_scenario",
    "mixed_scenario",
    "churn_scenario",
    "quick_scenarios",
]

#: Phase kinds that mutate or probe the graph itself.
DATA_PHASE_KINDS = ("insert", "delete", "vertex_churn", "query", "compute")

#: Chaos phase kinds: fault injection and recovery actions against a
#: sharded service (executed by :func:`repro.stream.chaos.run_chaos_scenario`;
#: the plain :func:`run_scenario` rejects them).
CHAOS_PHASE_KINDS = ("kill_shard", "rebuild_shard", "disk_fault", "checkpoint")

#: Everything a phase can do to the graph.
PHASE_KINDS = DATA_PHASE_KINDS + CHAOS_PHASE_KINDS

#: Every analytic a compute phase can run (the delta-aware family).
ANALYTICS = ("cc", "pagerank", "tc", "bfs", "sssp", "kcore")

#: Dataset families a scenario can seed from (Table I generators).
FAMILIES = ("rmat", "powerlaw", "road", "rgg")


@dataclass(frozen=True)
class Phase:
    """One step of a scenario schedule.

    ``kind`` selects the operation; ``size`` is the per-batch item count
    (edges for insert/delete, vertices for churn, probes for query, WAL
    appends to fail for disk_fault; ignored for compute and the other
    chaos kinds) and ``batches`` how many batches the phase applies back
    to back.  ``target`` names the shard a ``kill_shard`` /
    ``rebuild_shard`` chaos phase acts on.
    """

    kind: str
    size: int = 0
    batches: int = 1
    target: int | None = None

    def __post_init__(self):
        if self.kind not in PHASE_KINDS:
            raise ValidationError(f"phase kind must be one of {PHASE_KINDS}, got {self.kind!r}")
        if self.size < 0:
            raise ValidationError("phase size must be non-negative")
        if self.batches < 1:
            raise ValidationError("phase batches must be >= 1")
        if self.kind in ("insert", "delete", "vertex_churn", "query", "disk_fault"):
            if self.size == 0:
                raise ValidationError(f"{self.kind!r} phases need size > 0")
        if self.kind in ("kill_shard", "rebuild_shard") and self.target is None:
            raise ValidationError(f"{self.kind!r} phases need a target shard")


@dataclass(frozen=True)
class Scenario:
    """A seeded streaming workload: dataset seed + phase schedule.

    ``avg_degree`` shapes the rmat/powerlaw/rgg seed graphs; the road
    family's degree is intrinsic to its grid topology (~2.2), so the
    field is informational there (see :func:`build_dataset`).
    """

    name: str
    family: str
    num_vertices: int
    avg_degree: float
    phases: tuple
    seed: int = 0
    weighted: bool = False

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ValidationError(f"family must be one of {FAMILIES}, got {self.family!r}")
        if self.num_vertices < 2:
            raise ValidationError("scenarios need at least 2 vertices")
        if self.avg_degree <= 0:
            raise ValidationError("avg_degree must be positive")
        if not self.phases:
            raise ValidationError("scenarios need at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))
        for p in self.phases:
            if not isinstance(p, Phase):
                raise ValidationError(f"phases must be Phase instances, got {type(p).__name__}")


def build_dataset(scenario: Scenario) -> COO:
    """Generate the scenario's seed graph (weights attached if requested).

    ``avg_degree`` parameterizes the rmat/powerlaw/rgg generators; road
    networks have an intrinsic mean degree (~2.1-2.5, set by the grid
    topology), so the field is informational for ``family="road"``.
    """
    n, deg, seed = scenario.num_vertices, scenario.avg_degree, scenario.seed
    if scenario.family == "rmat":
        scale = max(1, int(round(np.log2(n))))
        coo = rmat_graph(scale, edge_factor=deg, seed=seed)
    elif scenario.family == "powerlaw":
        coo = powerlaw_graph(n, deg, seed=seed)
    elif scenario.family == "road":
        coo = road_graph(n, seed=seed)
    else:
        coo = rgg_graph(n, deg, seed=seed)
    if scenario.weighted:
        rng = np.random.default_rng(seed ^ 0x3E1647)
        coo = COO(
            coo.src,
            coo.dst,
            coo.num_vertices,
            weights=rng.integers(1, 100, coo.num_edges, dtype=np.int64),
        )
    return coo


@dataclass
class PhaseResult:
    """One executed phase: what it did and what it cost."""

    index: int
    kind: str
    applied: int
    skipped: bool
    wall_seconds: float
    model_seconds: float
    counters: dict = field(default_factory=dict)
    detail: dict = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """A full scenario run against one backend in one compute mode."""

    scenario: Scenario
    backend: str
    mode: str
    phases: list

    def model_seconds(self, kind: str | None = None) -> float:
        """Total modeled device seconds, optionally for one phase kind."""
        return sum(p.model_seconds for p in self.phases if kind is None or p.kind == kind)

    def compute_phases(self) -> list:
        """The compute-phase results, in schedule order."""
        return [p for p in self.phases if p.kind == "compute"]

    def mean_compute_model_seconds(self) -> float:
        """Mean modeled device seconds per compute phase (0.0 if none)."""
        phases = self.compute_phases()
        if not phases:
            return 0.0
        return sum(p.model_seconds for p in phases) / len(phases)


def run_scenario(
    scenario: Scenario,
    backend_name: str,
    *,
    mode: str = "incremental",
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    prime: bool = True,
    validate: bool = False,
    analytics: tuple = ("cc", "pagerank"),
    source: int = 0,
    kcore_k: int = 3,
) -> ScenarioResult:
    """Execute a scenario against one backend; returns per-phase records.

    ``analytics`` selects which family members every compute phase runs
    (any subset of :data:`ANALYTICS`; ``"sssp"`` needs a weighted
    scenario); ``source`` seeds bfs/sssp and ``kcore_k`` sets the k-core
    threshold.  ``prime`` runs one untimed compute before phase 0 so
    per-phase costs measure the steady state (the incremental analytics'
    one-off cold initialization is setup, not workload).  ``validate``
    re-derives the cold reference after *every* phase in incremental
    mode and asserts the incremental answers are exact (everything but
    PageRank) / within ``tol`` per vertex (PageRank) — for tests, not
    benches (validation work is excluded from the phase's timing and
    counters).
    """
    if mode not in ("incremental", "full"):
        raise ValidationError(f"mode must be 'incremental' or 'full', got {mode!r}")
    if not (0.0 < damping < 1.0):
        raise ValidationError("damping must be in (0, 1)")
    if tol <= 0:
        raise ValidationError("tol must be positive")
    coo = build_dataset(scenario)
    n = coo.num_vertices
    g = Graph.create(backend_name, num_vertices=n, weighted=scenario.weighted)
    g.bulk_build(coo)

    compute_once, incs = _compute_setup(
        g, mode, damping, tol, max_iters, prime,
        analytics=analytics, source=source, kcore_k=kcore_k,
    )
    rng = np.random.default_rng(scenario.seed + 0x51AB)

    results: list = []
    for index, phase in enumerate(scenario.phases):
        results.append(_execute_phase(index, phase, g, coo, rng, scenario, compute_once))
        if validate and mode == "incremental":
            _validate_exactness(g, incs, damping, tol, max_iters, (scenario.name, index))
    return ScenarioResult(scenario=scenario, backend=backend_name, mode=mode, phases=results)


def _query_analytic(name, obj):
    """Run one incremental analytic's query method; returns its answer."""
    if name == "cc":
        return obj.labels()
    if name == "pagerank":
        return obj.compute()
    if name == "tc":
        return obj.count()
    if name in ("bfs", "sssp"):
        return obj.distances()
    return obj.members()  # kcore


def _compute_setup(
    g, mode, damping, tol, max_iters, prime,
    *, analytics=("cc", "pagerank"), source=0, kcore_k=3,
):
    """``(compute_once, incs)`` for one run: the compute-phase closure
    plus the incremental analytics it drives, keyed by analytic name
    (empty in full mode).  Shared with :mod:`repro.stream.durable`.

    ``compute_once`` details carry ``modes`` (per-analytic last_mode),
    ``analytic_model`` (per-analytic modeled seconds), and
    ``snapshot_model`` (the shared snapshot build/merge slice), plus the
    legacy ``cc_mode`` / ``pr_mode`` / ``pr_sweeps`` keys when those
    analytics are selected.
    """
    analytics = tuple(analytics)
    for name in analytics:
        if name not in ANALYTICS:
            raise ValidationError(f"unknown analytic {name!r}; pick from {ANALYTICS}")
    if "sssp" in analytics and not g.weighted:
        raise ValidationError("the 'sssp' analytic needs a weighted scenario")
    incs: dict = {}
    if mode == "incremental":
        for name in analytics:
            if name == "cc":
                incs[name] = IncrementalConnectedComponents(g)
            elif name == "pagerank":
                incs[name] = IncrementalPageRank(
                    g, damping=damping, tol=tol, max_iters=max_iters
                )
            elif name == "tc":
                incs[name] = IncrementalTriangleCount(g)
            elif name == "bfs":
                incs[name] = IncrementalBFS(g, source=source)
            elif name == "sssp":
                incs[name] = IncrementalSSSP(g, source=source)
            else:
                incs[name] = IncrementalKCore(g, k=kcore_k)
        if prime:
            for name in analytics:
                _query_analytic(name, incs[name])

    def compute_once() -> dict:
        counters = get_counters()
        detail: dict = {"modes": {}, "analytic_model": {}}
        # The shared snapshot slice: the delta merge (incremental) or the
        # cold export + O(E log E) sort (full) every analytic then reads.
        before = counters.snapshot()
        if mode == "incremental":
            snap = g.snapshot()
        else:
            snap = CSRSnapshot.from_coo(g.export_coo())
        detail["snapshot_model"] = simulated_seconds(counters.diff(before))
        for name in analytics:
            before = counters.snapshot()
            if mode == "incremental":
                obj = incs[name]
                _query_analytic(name, obj)
                detail["modes"][name] = obj.last_mode
                if name == "pagerank":
                    detail["pr_sweeps"] = obj.last_sweeps
            else:
                if name == "cc":
                    connected_components(snap)
                elif name == "pagerank":
                    n = g.num_vertices
                    uniform = np.full(n, 1.0 / n, dtype=np.float64)
                    _, sweeps = power_iteration(
                        snap, uniform, damping=damping, tol=tol, max_iters=max_iters
                    )
                    detail["pr_sweeps"] = sweeps
                elif name == "tc":
                    undirected_triangles(snap)
                elif name == "bfs":
                    bfs(snap, source)
                elif name == "sssp":
                    sssp(snap, source)
                else:
                    kcore_membership(snap, kcore_k)
                detail["modes"][name] = "cold"
            detail["analytic_model"][name] = simulated_seconds(counters.diff(before))
        if "cc" in analytics:
            detail["cc_mode"] = detail["modes"]["cc"]
        if "pagerank" in analytics:
            detail["pr_mode"] = detail["modes"]["pagerank"]
        return detail

    return compute_once, incs


def _execute_phase(index, phase, g, coo, rng, scenario, compute_once) -> PhaseResult:
    """Run one phase against ``g``, drawing from ``rng``; shared by
    :func:`run_scenario` and the durable runner in
    :mod:`repro.stream.durable` (identical RNG consumption is what makes
    a paused-then-resumed run bit-identical to an uninterrupted one)."""
    if phase.kind in CHAOS_PHASE_KINDS:
        raise ValidationError(
            f"chaos phase {phase.kind!r} needs a sharded service — run it "
            "through repro.stream.chaos.run_chaos_scenario"
        )
    n = coo.num_vertices
    applied = 0
    skipped = False
    detail: dict = {}
    before = get_counters().snapshot()
    t0 = perf_counter()
    if phase.kind == "insert":
        for _ in range(phase.batches):
            src = rng.integers(0, n, phase.size, dtype=np.int64)
            dst = rng.integers(0, n, phase.size, dtype=np.int64)
            w = (
                rng.integers(1, 100, phase.size, dtype=np.int64)
                if scenario.weighted
                else None
            )
            applied += g.insert_edges(src, dst, w)
    elif phase.kind == "delete":
        for _ in range(phase.batches):
            # Sample from the seed edge list: mostly-live targets, the
            # occasional already-deleted duplicate (allowed, a no-op).
            pick = rng.integers(0, coo.num_edges, phase.size)
            applied += g.delete_edges(coo.src[pick], coo.dst[pick])
    elif phase.kind == "vertex_churn":
        if not g.capabilities.vertex_dynamic:
            skipped = True
        else:
            for _ in range(phase.batches):
                vids = rng.choice(n, size=min(phase.size, n), replace=False)
                applied += g.delete_vertices(vids.astype(np.int64))
    elif phase.kind == "query":
        for _ in range(phase.batches):
            qs = rng.integers(0, n, phase.size, dtype=np.int64)
            qd = rng.integers(0, n, phase.size, dtype=np.int64)
            hits = int(g.edge_exists(qs, qd).sum())
            g.degree(qs)
            applied += phase.size
            detail["hits"] = detail.get("hits", 0) + hits
    else:  # compute
        detail = compute_once()
        applied = 1
    wall = perf_counter() - t0
    delta = get_counters().diff(before)
    return PhaseResult(
        index=index,
        kind=phase.kind,
        applied=applied,
        skipped=skipped,
        wall_seconds=wall,
        model_seconds=simulated_seconds(delta),
        counters={k: v for k, v in delta.items() if v},
        detail=detail,
    )


def _validate_exactness(g, incs, damping, tol, max_iters, ctx) -> None:
    """Assert every incremental answer equals cold recomputation right now.

    Exact equality for everything but PageRank (whose contract is within
    ``tol`` per vertex of the cold power iteration).
    """
    snap = CSRSnapshot.from_coo(g.backend.export_coo())
    for name, inc in incs.items():
        got = _query_analytic(name, inc)
        if name == "cc":
            cold = connected_components(snap)
            ok = np.array_equal(got, cold)
        elif name == "pagerank":
            uniform = np.full(snap.num_vertices, 1.0 / snap.num_vertices, dtype=np.float64)
            cold, _ = power_iteration(
                snap, uniform, damping=damping, tol=tol, max_iters=max_iters
            )
            ok = np.allclose(got, cold, atol=tol, rtol=0.0)
        elif name == "tc":
            cold = undirected_triangles(snap)
            ok = got == cold
        elif name == "bfs":
            ok = np.array_equal(got, bfs(snap, inc.source))
        elif name == "sssp":
            ok = np.array_equal(got, sssp(snap, inc.source))
        else:
            ok = np.array_equal(got, kcore_membership(snap, inc.k))
        if not ok:
            raise AssertionError(
                f"incremental {name!r} diverged from cold recompute at {ctx}"
            )


# -- scenario catalog -----------------------------------------------------------------


def insert_heavy_scenario(
    num_edges: int = 1 << 18,
    *,
    batch: int = 1 << 9,
    rounds: int = 3,
    seed: int = 0,
    weighted: bool = False,
) -> Scenario:
    """Insert bursts interleaved with compute probes (rmat seed graph).

    The paper's dominant streaming pattern — and the ``t11`` quick gate's
    scenario at ``num_edges=2**18``: per round, two ``batch``-edge insert
    bursts, a query probe, then a compute phase.  ``weighted=True``
    attaches edge weights (needed for the ``sssp`` analytic) and tags the
    scenario name so both variants can share a bench panel.
    """
    num_vertices = max(num_edges // 4, 64)
    phases = []
    for _ in range(rounds):
        phases += [
            Phase("insert", size=batch, batches=2),
            Phase("query", size=max(batch // 2, 1)),
            Phase("compute"),
        ]
    tag = "-w" if weighted else ""
    return Scenario(
        name=f"insert-heavy{tag}-2^{int(np.log2(num_edges))}",
        family="rmat",
        num_vertices=num_vertices,
        avg_degree=num_edges / num_vertices,
        phases=tuple(phases),
        seed=seed,
        weighted=weighted,
    )


def mixed_scenario(num_vertices: int = 1 << 12, *, batch: int = 256, seed: int = 0) -> Scenario:
    """Inserts, deletions, and queries around compute phases (powerlaw)."""
    phases = (
        Phase("insert", size=batch, batches=2),
        Phase("compute"),
        Phase("query", size=batch),
        Phase("delete", size=batch // 2),
        Phase("compute"),
        Phase("insert", size=batch),
        Phase("compute"),
    )
    return Scenario(
        name=f"mixed-2^{int(np.log2(num_vertices))}",
        family="powerlaw",
        num_vertices=num_vertices,
        avg_degree=8.0,
        phases=phases,
        seed=seed,
    )


def churn_scenario(num_vertices: int = 1 << 11, *, batch: int = 128, seed: int = 0) -> Scenario:
    """Vertex churn plus edge churn on a road network (worst case for the
    incremental paths: every churn phase forces a cold re-label)."""
    phases = (
        Phase("insert", size=batch),
        Phase("compute"),
        Phase("vertex_churn", size=max(batch // 8, 1)),
        Phase("compute"),
        Phase("insert", size=batch),
        Phase("delete", size=batch // 2),
        Phase("compute"),
    )
    return Scenario(
        name=f"churn-2^{int(np.log2(num_vertices))}",
        family="road",
        num_vertices=num_vertices,
        avg_degree=2.2,
        phases=phases,
        seed=seed,
    )


def quick_scenarios(seed: int = 0) -> tuple:
    """Small scenarios covering every family and phase kind (test-sized)."""
    return (
        insert_heavy_scenario(1 << 10, batch=64, rounds=2, seed=seed),
        mixed_scenario(1 << 8, batch=48, seed=seed),
        churn_scenario(1 << 8, batch=32, seed=seed),
        Scenario(
            name="rgg-delete-heavy",
            family="rgg",
            num_vertices=256,
            avg_degree=6.0,
            phases=(
                Phase("delete", size=64, batches=2),
                Phase("compute"),
                Phase("insert", size=64),
                Phase("compute"),
            ),
            seed=seed,
        ),
    )
