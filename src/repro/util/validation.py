"""Argument validation helpers.

Kernels validate once at the public-API boundary and then assume clean
inputs internally, so the hot loops carry no checks.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["as_int_array", "check_equal_length", "check_in_range", "as_float_array"]


def as_int_array(x, name: str = "array", dtype=np.int64) -> np.ndarray:
    """Coerce ``x`` to a contiguous 1-D integer array of ``dtype``.

    Accepts lists, scalars, and arrays; rejects floats with fractional parts
    and anything not 1-D after ``atleast_1d``.

    Already-clean arrays (1-D, contiguous, right dtype) pass through
    untouched, so batches normalized once by the :class:`repro.api.Graph`
    facade cost nothing to re-validate at the backend boundary.
    """
    if (
        isinstance(x, np.ndarray)
        and x.dtype == dtype
        and x.ndim == 1
        and x.flags.c_contiguous
    ):
        return x
    arr = np.atleast_1d(np.asarray(x))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating):
            if not np.all(arr == np.floor(arr)):
                raise ValidationError(f"{name} contains non-integral values")
        else:
            raise ValidationError(f"{name} has non-numeric dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=dtype)


def as_float_array(x, name: str = "array", dtype=np.float64) -> np.ndarray:
    """Coerce ``x`` to a contiguous 1-D float array."""
    arr = np.atleast_1d(np.asarray(x, dtype=dtype))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_equal_length(*named_arrays: tuple[str, np.ndarray]) -> int:
    """Check all arrays share one length; return it."""
    lengths = {name: arr.shape[0] for name, arr in named_arrays}
    unique = set(lengths.values())
    if len(unique) > 1:
        raise ValidationError(f"length mismatch: {lengths}")
    return next(iter(unique)) if unique else 0


def check_in_range(arr: np.ndarray, lo: int, hi: int, name: str = "array") -> None:
    """Check every element is in ``[lo, hi)``; O(n) with no temporaries."""
    if arr.size == 0:
        return
    mn, mx = int(arr.min()), int(arr.max())
    if mn < lo or mx >= hi:
        raise ValidationError(f"{name} values must be in [{lo}, {hi}); observed range [{mn}, {mx}]")
