"""Hash functions used by the slab hash tables.

SlabHash (Ashkiani et al., IPDPS 2018) hashes a key into a bucket with a
universal hash ``h(k) = ((a*k + b) mod p) mod num_buckets`` where ``p`` is a
Mersenne-like prime and ``(a, b)`` are drawn per table.  Our graph keeps one
hash table per vertex, so :class:`UniversalHashFamily` vends *vectors* of
coefficients indexed by vertex id, letting a batched kernel hash a whole
batch of (source, destination) pairs in one NumPy expression.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PRIME", "UniversalHashFamily", "mix32"]

#: A prime larger than any 32-bit key (2**31 - 1, the 8th Mersenne prime).
PRIME: int = (1 << 31) - 1


def mix32(x: np.ndarray | int) -> np.ndarray | int:
    """A cheap 32-bit integer mixer (xorshift-multiply, Murmur3 finalizer).

    Used for deterministic pseudo-random decisions that should not correlate
    with vertex ids (e.g. RMAT noise streams), not for bucket hashing.
    """
    x = np.uint64(x) if np.isscalar(x) else x.astype(np.uint64)
    x = (x ^ (x >> np.uint64(16))) * np.uint64(0x85EBCA6B) & np.uint64(0xFFFFFFFF)
    x = (x ^ (x >> np.uint64(13))) * np.uint64(0xC2B2AE35) & np.uint64(0xFFFFFFFF)
    x = x ^ (x >> np.uint64(16))
    return x


class UniversalHashFamily:
    """Per-table universal hash coefficients, vectorized over table ids.

    Parameters
    ----------
    num_tables:
        Number of tables (vertices) to vend coefficients for.
    seed:
        Seed for the coefficient generator; fixed seeds give reproducible
        bucket layouts, which the tests rely on.
    """

    __slots__ = ("_a", "_b", "num_tables")

    def __init__(self, num_tables: int, seed: int = 0x5AB0) -> None:
        rng = np.random.default_rng(seed)
        self.num_tables = int(num_tables)
        # a must be nonzero mod p for universality.
        self._a = rng.integers(1, PRIME, size=self.num_tables, dtype=np.int64)
        self._b = rng.integers(0, PRIME, size=self.num_tables, dtype=np.int64)

    def grow(self, new_num_tables: int, seed: int = 0xC0FFEE) -> None:
        """Extend the coefficient vectors (used when the vertex dictionary
        grows); existing coefficients are preserved so existing tables keep
        their bucket layout."""
        if new_num_tables <= self.num_tables:
            return
        rng = np.random.default_rng(seed ^ self.num_tables)
        extra = new_num_tables - self.num_tables
        self._a = np.concatenate([self._a, rng.integers(1, PRIME, size=extra, dtype=np.int64)])
        self._b = np.concatenate([self._b, rng.integers(0, PRIME, size=extra, dtype=np.int64)])
        self.num_tables = int(new_num_tables)

    def bucket(
        self,
        table_ids: np.ndarray,
        keys: np.ndarray,
        num_buckets: np.ndarray,
    ) -> np.ndarray:
        """Vectorized bucket index for each (table, key) pair.

        ``num_buckets`` is indexed by ``table_ids`` (i.e. it is the
        per-*table* bucket-count array, not per-item).
        """
        a = self._a[table_ids]
        b = self._b[table_ids]
        h = (a * keys.astype(np.int64) + b) % PRIME
        return h % num_buckets[table_ids]

    def bucket_single(self, table_id: int, key: int, num_buckets: int) -> int:
        """Scalar bucket index (used by the WCWS reference engine)."""
        h = (int(self._a[table_id]) * int(key) + int(self._b[table_id])) % PRIME
        return int(h % num_buckets)
