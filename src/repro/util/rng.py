"""Deterministic RNG plumbing.

All randomized components (dataset generators, workload batch generators,
hash coefficient draws) take integer seeds and derive independent
sub-streams with :func:`substream`, so a single top-level seed reproduces an
entire experiment byte-for-byte.
"""

from __future__ import annotations

import numpy as np

__all__ = ["substream", "spawn_seeds"]

_MASK64 = (1 << 64) - 1


def _fnv1a(text: str) -> int:
    """FNV-1a over the UTF-8 bytes (stable across processes, unlike hash())."""
    h = 0xCBF29CE484222325
    for ch in text.encode():
        h = ((h ^ ch) * 0x100000001B3) & _MASK64
    return h


def substream(seed: int, *tags: int | str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a tag path.

    Tags may be ints or strings; strings are hashed stably (FNV-1a) so the
    derivation does not depend on Python's randomized ``hash()``.
    """
    mixed = seed & _MASK64
    for tag in tags:
        tag_val = _fnv1a(tag) if isinstance(tag, str) else (tag & _MASK64)
        mixed = (mixed * 6364136223846793005 + tag_val + 1) & _MASK64
    return np.random.default_rng(mixed)


def spawn_seeds(seed: int, n: int) -> list[int]:
    """Produce ``n`` independent child seeds from one parent seed."""
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]
