"""Vectorized group-by / segmented primitives.

The batched kernels in :mod:`repro.slabhash` and the baselines all follow the
same pattern a GPU kernel does: sort work items by a key (the slab, page, or
vertex they target), then let each "group" of items cooperate.  These helpers
implement that pattern with NumPy so no per-item Python loop ever runs in a
hot path (see the hpc-parallel guide: vectorize, avoid copies, keep arrays
contiguous).

All functions operate on 1-D integer arrays and are allocation-conscious:
they return views or freshly-computed small arrays, never modify inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "first_occurrence_mask",
    "group_starts",
    "last_occurrence_mask",
    "rank_within_group",
    "segment_lengths_from_starts",
    "segmented_sum",
    "sorted_group_ids",
]


def sorted_group_ids(sorted_keys: np.ndarray) -> np.ndarray:
    """Return a dense 0-based group id for each element of a *sorted* array.

    ``sorted_group_ids([3, 3, 5, 9, 9, 9]) == [0, 0, 1, 2, 2, 2]``.

    The input must already be sorted (ascending); this is not checked for
    speed.  Runs in O(n).
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.cumsum(boundary, dtype=np.int64) - 1


def group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where each group begins in a *sorted* key array.

    ``group_starts([3, 3, 5, 9, 9, 9]) == [0, 2, 3]``.
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)


def segment_lengths_from_starts(starts: np.ndarray, total: int) -> np.ndarray:
    """Lengths of segments given their start offsets and the total length."""
    if starts.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.diff(np.append(starts, total)).astype(np.int64, copy=False)


def rank_within_group(sorted_keys: np.ndarray) -> np.ndarray:
    """0-based rank of each element within its group, for sorted keys.

    ``rank_within_group([3, 3, 5, 9, 9, 9]) == [0, 1, 0, 0, 1, 2]``.

    This is the vectorized analogue of a warp lane computing its position in
    a coalesced same-destination group (Algorithm 1, lines 7-9).
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    starts = group_starts(sorted_keys)
    gids = np.zeros(n, dtype=np.int64)
    gids[starts[1:]] = 1
    gids = np.cumsum(gids)
    return np.arange(n, dtype=np.int64) - starts[gids]


def segmented_sum(values: np.ndarray, group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum ``values`` per dense group id (like a segmented reduction).

    ``group_ids`` need not be sorted.  Equivalent to ``np.bincount`` with
    weights but keeps an integer dtype for integer inputs.
    """
    if np.issubdtype(values.dtype, np.integer) or values.dtype == bool:
        out = np.bincount(group_ids, weights=values.astype(np.float64), minlength=num_groups)
        return out.astype(np.int64)
    return np.bincount(group_ids, weights=values, minlength=num_groups)


def last_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the *last* occurrence of each distinct key.

    Order of first appearance is irrelevant; "last" means highest index.
    Used to realize the paper's replace semantics within a batch: when a
    batch contains the same edge several times with different weights, only
    the most recent one survives (Section IV-C1).

    Implemented with a stable sort so ties preserve input order.
    """
    n = keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    is_last_in_sorted = np.empty(n, dtype=bool)
    is_last_in_sorted[-1] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_last_in_sorted[:-1])
    mask = np.zeros(n, dtype=bool)
    mask[order[is_last_in_sorted]] = True
    return mask


def first_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the *first* occurrence of each distinct key."""
    n = keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    is_first_in_sorted = np.empty(n, dtype=bool)
    is_first_in_sorted[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_first_in_sorted[1:])
    mask = np.zeros(n, dtype=bool)
    mask[order[is_first_in_sorted]] = True
    return mask
