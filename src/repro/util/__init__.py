"""Shared low-level helpers used across the repro package.

This subpackage intentionally contains no graph- or hash-table-specific
logic; it provides the vectorized building blocks (group-by / segmented
operations, hashing, validation) that the simulated-GPU kernels are written
in terms of.
"""

from repro.util.errors import (
    CapacityError,
    ReproError,
    ValidationError,
)
from repro.util.groupby import (
    group_starts,
    last_occurrence_mask,
    first_occurrence_mask,
    rank_within_group,
    segment_lengths_from_starts,
    segmented_sum,
    sorted_group_ids,
)
from repro.util.hashing import UniversalHashFamily, mix32
from repro.util.validation import (
    as_int_array,
    check_equal_length,
    check_in_range,
)

__all__ = [
    "CapacityError",
    "ReproError",
    "ValidationError",
    "UniversalHashFamily",
    "as_int_array",
    "check_equal_length",
    "check_in_range",
    "first_occurrence_mask",
    "group_starts",
    "last_occurrence_mask",
    "mix32",
    "rank_within_group",
    "segment_lengths_from_starts",
    "segmented_sum",
    "sorted_group_ids",
]
