"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Validation problems (bad dtypes, mismatched lengths,
out-of-range vertex ids) raise :class:`ValidationError`; structural resource
exhaustion that the library refuses to fix automatically (e.g. a fixed-size
pool configured with ``allow_growth=False``) raises :class:`CapacityError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, or value range)."""


class CapacityError(ReproError, RuntimeError):
    """A fixed-capacity resource was exhausted and growth was disallowed."""


class FaultError(ReproError, RuntimeError):
    """An environmental (injected or real) fault interrupted an operation.

    The chaos subsystem (:mod:`repro.chaos`) raises the two subclasses at
    its fault points; service layers key their recovery policy on the
    distinction rather than on where the fault came from, so a real
    environmental error classified the same way gets the same handling.
    """

    def __init__(self, message: str, *, point: str | None = None) -> None:
        super().__init__(message)
        #: Name of the fault point that fired (None for real faults).
        self.point = point


class TransientFault(FaultError):
    """A retryable fault: the same operation may succeed if re-attempted."""


class PermanentFault(FaultError):
    """A non-retryable fault: the resource is gone until rebuilt."""


class PersistError(ReproError, OSError):
    """A durability operation (WAL append, fsync, segment open) failed.

    Raised by :mod:`repro.persist` instead of a raw :class:`OSError` so
    callers can tell a broken log apart from unrelated I/O problems; the
    writer guarantees the on-disk log is still scan-clean (any partially
    written record was truncated away) unless :attr:`broken` is True.
    """

    def __init__(self, message: str, *, op: str = "", broken: bool = False) -> None:
        super().__init__(message)
        #: Which durability step failed ("write", "fsync", "open", ...).
        self.op = op
        #: True when the writer could not restore a clean on-disk state.
        self.broken = broken


class PhaseError(ReproError, RuntimeError):
    """An operation was attempted in the wrong phase.

    The paper's data structure is *phase-concurrent*: batched updates and
    batched queries never interleave.  The pure-Python reproduction is
    single-threaded, so the only way to violate phase concurrency is to call
    back into the structure from inside a kernel callback; this error guards
    those entry points.
    """
