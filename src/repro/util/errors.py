"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Validation problems (bad dtypes, mismatched lengths,
out-of-range vertex ids) raise :class:`ValidationError`; structural resource
exhaustion that the library refuses to fix automatically (e.g. a fixed-size
pool configured with ``allow_growth=False``) raises :class:`CapacityError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, or value range)."""


class CapacityError(ReproError, RuntimeError):
    """A fixed-capacity resource was exhausted and growth was disallowed."""


class PhaseError(ReproError, RuntimeError):
    """An operation was attempted in the wrong phase.

    The paper's data structure is *phase-concurrent*: batched updates and
    batched queries never interleave.  The pure-Python reproduction is
    single-threaded, so the only way to violate phase concurrency is to call
    back into the structure from inside a kernel callback; this error guards
    those entry points.
    """
