"""Single-source shortest paths over weighted adjacency (Bellman-Ford).

The frontier-relaxation formulation Gunrock uses: each round relaxes every
edge out of the current frontier (one batched adjacency sweep) and the
vertices whose distance improved form the next frontier.  Terminates after
at most |V| rounds: negative weights are fine as long as no negative cycle
is reachable from the source — shortest simple paths have at most |V|-1
edges, so a frontier that is still improving after |V| full rounds proves
a reachable negative cycle and raises :class:`ValidationError` instead of
silently returning too-small distances.

Unreachable convention: distances are maintained against an ``INF``
sentinel (``np.iinfo(np.int64).max // 4`` — the headroom guards the
``dist + weight`` relaxation against int64 overflow); any vertex still at
or above the sentinel when the frontier drains is reported as ``-1``.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.frontier import adjacencies_of, vertex_space
from repro.util.errors import ValidationError

__all__ = ["sssp"]


def sssp(graph, source: int, max_rounds: int | None = None) -> np.ndarray:
    """Shortest-path distances from ``source``; unreachable = -1.

    Requires a weighted graph (``graph.weighted``); weights are read
    through the batched adjacency iterator.  Works on any weighted
    :class:`repro.api.GraphBackend` or the ``Graph`` facade.

    ``max_rounds`` truncates relaxation early (distances are then lower
    bounds over paths of that edge length).  Left at the default, the
    full |V| rounds run and a still-improving frontier at round |V|
    raises ``ValidationError("negative cycle ...")``.
    """
    if not getattr(graph, "weighted", False):
        raise ValidationError("sssp requires a weighted graph (map variant)")
    n = vertex_space(graph)
    source = int(source)
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range [0, {n})")

    INF = np.iinfo(np.int64).max // 4
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    rounds = max_rounds if max_rounds is not None else n

    for _ in range(rounds):
        if frontier.size == 0:
            break
        owner_pos, dst, w = adjacencies_of(graph, frontier)
        if dst.size == 0:
            frontier = np.empty(0, dtype=np.int64)
            break
        cand = dist[frontier[owner_pos]] + w
        # Per-destination minimum of candidate distances this round.
        proposed = dist.copy()
        np.minimum.at(proposed, dst, cand)
        improved = proposed < dist
        dist = proposed
        frontier = np.flatnonzero(improved)

    if frontier.size and rounds >= n:
        # Shortest simple paths have <= n-1 edges; an improvement during
        # round n can only come from revisiting a vertex at a net gain.
        raise ValidationError(
            "negative cycle reachable from source: distances still "
            f"improving after {n} relaxation rounds"
        )
    out = np.where(dist >= INF, -1, dist)
    return out
