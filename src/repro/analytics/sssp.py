"""Single-source shortest paths over weighted adjacency (Bellman-Ford).

The frontier-relaxation formulation Gunrock uses: each round relaxes every
edge out of the current frontier (one batched adjacency sweep) and the
vertices whose distance improved form the next frontier.  Terminates after
at most |V| rounds (negative weights without negative cycles are fine;
weights come from the map variant's value lanes).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.frontier import adjacencies_of, vertex_space
from repro.util.errors import ValidationError

__all__ = ["sssp"]


def sssp(graph, source: int, max_rounds: int | None = None) -> np.ndarray:
    """Shortest-path distances from ``source``; unreachable = -1.

    Requires a weighted graph (``graph.weighted``); weights are read
    through the batched adjacency iterator.  Works on any weighted
    :class:`repro.api.GraphBackend` or the ``Graph`` facade.
    """
    if not getattr(graph, "weighted", False):
        raise ValidationError("sssp requires a weighted graph (map variant)")
    n = vertex_space(graph)
    source = int(source)
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range [0, {n})")

    INF = np.iinfo(np.int64).max // 4
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    rounds = max_rounds if max_rounds is not None else n

    for _ in range(rounds):
        if frontier.size == 0:
            break
        owner_pos, dst, w = adjacencies_of(graph, frontier)
        if dst.size == 0:
            break
        cand = dist[frontier[owner_pos]] + w
        # Per-destination minimum of candidate distances this round.
        proposed = dist.copy()
        np.minimum.at(proposed, dst, cand)
        improved = proposed < dist
        dist = proposed
        frontier = np.flatnonzero(improved)

    out = np.where(dist >= INF, -1, dist)
    return out
