"""k-truss decomposition — the in-algorithm dynamic-deletion workload.

The paper's introduction names k-truss as the canonical example of an
algorithm that *mutates* the graph while running ("edge deletion in
k-truss"): edges whose triangle support drops below k-2 are repeatedly
deleted until a fixpoint.  This implementation performs those deletions
through the dynamic structure's ``delete_edges`` — each peeling round is a
genuine batched update phase followed by a query phase, exactly the
phase-concurrent pattern the data structure is designed for.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["ktruss"]


def _edge_support(
    row_ptr: np.ndarray, col_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Support (triangles through each edge) for a sorted symmetric CSR.

    Returns (u, v, support) for each undirected edge u < v.
    """
    n = row_ptr.shape[0] - 1
    deg = np.diff(row_ptr)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    comp = (src << np.int64(32)) | col_idx.astype(np.int64)
    keep = src < col_idx
    u, v = src[keep], col_idx[keep].astype(np.int64)
    if u.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    swap = deg[u] > deg[v]
    small = np.where(swap, v, u)
    big = np.where(swap, u, v)
    lens = deg[small]
    starts = row_ptr[small]
    m = int(lens.sum())
    flat = (
        np.arange(m, dtype=np.int64)
        - np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]), lens)
        + np.repeat(starts, lens)
    )
    w = col_idx[flat].astype(np.int64)
    probe = (np.repeat(big, lens).astype(np.int64) << np.int64(32)) | w
    loc = np.searchsorted(comp, probe)
    safe = np.minimum(loc, comp.shape[0] - 1)
    found = (loc < comp.shape[0]) & (comp[safe] == probe)
    support = np.bincount(
        np.repeat(np.arange(u.shape[0], dtype=np.int64), lens)[found],
        minlength=u.shape[0],
    )
    return u, v, support.astype(np.int64)


def ktruss(graph, k: int, max_rounds: int = 10_000) -> int:
    """Peel the graph (in place!) to its k-truss; returns edges deleted.

    The graph must hold a symmetric edge set.  Each round recomputes edge
    supports from a snapshot and issues one batched ``delete_edges`` for
    the sub-threshold edges (both orientations).
    """
    if k < 2:
        raise ValidationError("k must be >= 2")
    threshold = k - 2
    deleted_total = 0
    for _ in range(max_rounds):
        row_ptr, col_idx = graph.sorted_adjacency()
        u, v, support = _edge_support(row_ptr, col_idx)
        weak = support < threshold
        if not weak.any() or u.size == 0:
            break
        du, dv = u[weak], v[weak]
        if getattr(graph, "directed", True):
            # Symmetric set stored in a directed structure: delete both
            # orientations explicitly.
            graph.delete_edges(np.concatenate([du, dv]), np.concatenate([dv, du]))
        else:
            graph.delete_edges(du, dv)  # undirected mode mirrors internally
        deleted_total += int(weak.sum())
        if graph.num_edges() == 0:
            break
    return deleted_total
