"""Gunrock-lite analytics over dynamic graph structures.

The paper integrates its data structure into Gunrock and evaluates triangle
counting; this subpackage provides the equivalent algorithm layer:

- :mod:`repro.analytics.frontier` — bulk advance/filter primitives over any
  structure exposing the batched adjacency iterator;
- :mod:`repro.analytics.triangle_count` — static TC in both flavors
  (hash-probe for our structure, sorted-intersection for list baselines)
  and the dynamic insert-then-count workload of Table IX;
- :mod:`repro.analytics.bfs`, :mod:`repro.analytics.pagerank`,
  :mod:`repro.analytics.connected_components`,
  :mod:`repro.analytics.ktruss` — classic primitives exercising queries,
  iteration, and (for k-truss) in-algorithm dynamic edge deletion, the
  truly-dynamic usage pattern the paper's introduction motivates.

Every algorithm is backend-agnostic: traversal kernels drive the
:class:`repro.api.GraphBackend` adjacency iterator, whole-graph kernels
(PageRank, components, core numbers, sorted TC) read the uniform
:meth:`repro.api.Graph.snapshot` CSR view via :func:`repro.api.as_snapshot`,
so the same code runs over the slab-hash graph, the B-tree, Hornet,
faimGraph, GPMA, or any future registered backend.
"""

from repro.analytics.bfs import bfs
from repro.analytics.connected_components import connected_components
from repro.analytics.frontier import advance, filter_frontier, vertex_space
from repro.analytics.kcore import core_numbers, kcore, kcore_membership
from repro.analytics.ktruss import ktruss
from repro.analytics.pagerank import pagerank, power_iteration
from repro.analytics.sssp import sssp
from repro.analytics.triangle_count import (
    dynamic_triangle_count,
    triangle_count_csr,
    triangle_count_hash,
    triangle_count_sorted,
    undirected_triangles,
)
from repro.analytics.wedges import closing_wedges

__all__ = [
    "advance",
    "bfs",
    "closing_wedges",
    "connected_components",
    "core_numbers",
    "dynamic_triangle_count",
    "filter_frontier",
    "kcore",
    "kcore_membership",
    "ktruss",
    "pagerank",
    "power_iteration",
    "sssp",
    "triangle_count_csr",
    "triangle_count_hash",
    "triangle_count_sorted",
    "undirected_triangles",
    "vertex_space",
]
