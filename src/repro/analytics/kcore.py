"""k-core decomposition by iterative peeling.

Like k-truss (the paper's in-algorithm mutation example), k-core
repeatedly deletes elements below a threshold — here vertices of degree
< k — through the structure's *dynamic* vertex-deletion path, so every
peeling round is a real Algorithm 2 batch.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["kcore", "core_numbers"]


def kcore(graph, k: int, max_rounds: int = 10_000) -> int:
    """Peel the graph (in place) to its k-core; returns vertices deleted.

    The graph must hold a symmetric edge set in *undirected* mode so
    vertex deletion maintains reverse edges.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    deleted = 0
    for _ in range(max_rounds):
        degrees = graph._dict.edge_count if hasattr(graph, "_dict") else None
        if degrees is None:
            raise ValidationError("kcore requires the repro DynamicGraph")
        active = graph._dict.active
        weak = np.flatnonzero(active & (degrees < k))
        if weak.size == 0:
            break
        graph.delete_vertices(weak)
        deleted += int(weak.size)
    return deleted


def core_numbers(graph) -> np.ndarray:
    """Core number per vertex (computed on a snapshot; non-destructive).

    Standard peeling on exported arrays — used to cross-check the
    destructive :func:`kcore` and by the examples.
    """
    coo = graph.export_coo()
    n = coo.num_vertices
    deg = np.bincount(coo.src, minlength=n).astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    alive = deg > 0
    src, dst = coo.src.copy(), coo.dst.copy()
    k = 0
    while alive.any():
        k += 1
        while True:
            weak = np.flatnonzero(alive & (deg < k))
            if weak.size == 0:
                break
            core[weak] = k - 1
            alive[weak] = False
            # Remove their edges.
            doomed = np.isin(src, weak) | np.isin(dst, weak)
            if doomed.any():
                dec = np.bincount(src[doomed], minlength=n)
                deg -= dec
                keep = ~doomed
                src, dst = src[keep], dst[keep]
        core[alive] = k
    return core
