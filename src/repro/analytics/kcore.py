"""k-core decomposition by iterative peeling.

Like k-truss (the paper's in-algorithm mutation example), k-core
repeatedly deletes elements below a threshold — here vertices of degree
< k — through the structure's *dynamic* vertex-deletion path, so every
peeling round is a real Algorithm 2 batch.

:func:`kcore` peels any backend with the ``vertex_dynamic`` capability
(slab-hash, B-tree, faimGraph) or the ``Graph`` facade over one.  The
slab-hash structure takes a fast path through its maintained counters;
other backends recompute degrees from a snapshot per round.
"""

from __future__ import annotations

import numpy as np

from repro.api.snapshot import as_snapshot, cached_snapshot
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError

__all__ = ["kcore", "core_numbers", "kcore_membership"]


def kcore(graph, k: int, max_rounds: int = 10_000) -> int:
    """Peel the graph (in place) to its k-core; returns vertices deleted.

    The graph must hold a symmetric edge set (undirected mode, or both
    orientations inserted) so vertex deletion maintains reverse edges.
    Only vertices that still have edges are peeled (a degree-0 vertex is
    indistinguishable from an absent id in most backends, and deleting it
    is a no-op on the edge set), so the deleted count is identical across
    backends for identical inputs.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    backend = getattr(graph, "backend", graph)  # unwrap a Graph facade
    caps = getattr(backend, "capabilities", None)
    if caps is not None and not caps.vertex_dynamic:
        raise ValidationError(
            f"kcore requires vertex deletion; backend {type(backend).__name__} "
            "declares capability vertex_dynamic=False"
        )
    deleted = 0
    fast = hasattr(backend, "_dict")  # slab-hash: maintained exact counters
    for _ in range(max_rounds):
        if fast:
            degrees = backend._dict.edge_count
            active = backend._dict.active
            weak = np.flatnonzero(active & (degrees > 0) & (degrees < k))
        else:
            # Degrees only.  A fresh cached snapshot serves them without
            # touching the structure; otherwise bincount over the unordered
            # export — building a sorted snapshot here would pay an
            # O(E log E) lexsort per peeling round.
            snap = cached_snapshot(backend)
            if snap is not None:
                degrees = snap.out_degrees()
            else:
                coo = backend.export_coo()
                degrees = np.bincount(coo.src, minlength=int(backend.num_vertices))
            weak = np.flatnonzero((degrees > 0) & (degrees < k))
        if weak.size == 0:
            break
        backend.delete_vertices(weak)
        deleted += int(weak.size)
    return deleted


def kcore_membership(graph, k: int) -> np.ndarray:
    """Boolean k-core membership per vertex (non-destructive peeling).

    The k-core is the maximal vertex set in which every member keeps at
    least ``k`` out-neighbors *within the set* — for the symmetric edge
    sets the facade's undirected mode (or mirrored insertion) stores,
    this is the classical undirected k-core.  The fixpoint is unique
    (removing vertices only lowers the remaining degrees, a monotone
    closure), so peeling order cannot change the answer.

    Unlike :func:`kcore` this never mutates the graph: it peels flat
    snapshot arrays, charging the device model one launch plus the edge/
    vertex stream per round — the cold cost
    :class:`repro.stream.incremental.IncrementalKCore` repairs around.
    Accepts any backend, facade, or snapshot; raises
    :class:`ValidationError` for ``k < 1``.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    snap = as_snapshot(graph)
    n = snap.num_vertices
    alive = snap.out_degrees() >= k
    src, dst = snap.sources(), snap.col_idx
    counters = get_counters()
    while True:
        counters.kernel_launches += 1
        counters.bytes_copied += int(src.shape[0]) * 16 + n * 8
        live = alive[src] & alive[dst]
        deg = np.bincount(src[live], minlength=n)
        weak = alive & (deg < k)
        if not weak.any():
            break
        alive[weak] = False
        # Compact the edge stream so later rounds scan survivors only.
        src, dst = src[live], dst[live]
    return alive


def core_numbers(graph) -> np.ndarray:
    """Core number per vertex (computed on a snapshot; non-destructive).

    Standard peeling on exported arrays — used to cross-check the
    destructive :func:`kcore` and by the examples.  Accepts any backend,
    facade, or snapshot.
    """
    snap = as_snapshot(graph)
    n = snap.num_vertices
    deg = snap.out_degrees()
    core = np.zeros(n, dtype=np.int64)
    alive = deg > 0
    src, dst = snap.sources(), snap.col_idx.copy()
    k = 0
    while alive.any():
        k += 1
        while True:
            weak = np.flatnonzero(alive & (deg < k))
            if weak.size == 0:
                break
            core[weak] = k - 1
            alive[weak] = False
            # Remove their edges.
            doomed = np.isin(src, weak) | np.isin(dst, weak)
            if doomed.any():
                dec = np.bincount(src[doomed], minlength=n)
                deg -= dec
                keep = ~doomed
                src, dst = src[keep], dst[keep]
        core[alive] = k
    return core
