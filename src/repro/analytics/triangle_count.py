"""Triangle counting — the paper's application study (Sections V-C, VI-C).

Two implementations mirror the paper's comparison:

- :func:`triangle_count_hash` — the hash-table path: for every undirected
  edge (u, v), probe ``edgeExist`` for each neighbor of the lower-degree
  endpoint against the other endpoint's table.  No sorted order needed —
  the structural advantage of our graph — but each probe pays a hash-table
  chain walk (Table VII shows list intersections winning on most static
  datasets, which this reproduces).

- :func:`triangle_count_sorted` — the list path Hornet/faimGraph use:
  adjacency lists must first be *sorted* (the cost Table VIII prices
  separately!), after which each probe is a binary search in the sorted
  edge set.

Both count each triangle exactly three times (once per edge) and divide.

:func:`dynamic_triangle_count` is the Table IX workload: insert a batch,
re-count, repeat — the list path must re-sort after every batch while the
hash path counts immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.analytics.frontier import adjacencies_of, vertex_space
from repro.analytics.wedges import canonical_edge_keys, closing_wedges, split_keys, symmetric_csr
from repro.util.errors import ValidationError

__all__ = [
    "triangle_count_hash",
    "triangle_count_sorted",
    "triangle_count_csr",
    "undirected_triangles",
    "dynamic_triangle_count",
    "DynamicTCStep",
]


def _oriented_edges(coo) -> tuple[np.ndarray, np.ndarray]:
    """Unique undirected edges as (u < v) pairs."""
    u = np.minimum(coo.src, coo.dst)
    v = np.maximum(coo.src, coo.dst)
    keep = u != v
    comp = np.unique((u[keep] << np.int64(32)) | v[keep])
    return (comp >> 32).astype(np.int64), (comp & np.int64(0xFFFFFFFF)).astype(np.int64)


def triangle_count_hash(graph, chunk_size: int = 1 << 22) -> int:
    """Static TC by edgeExist probes (the paper's approach for our graph).

    The graph must hold an undirected (symmetric) edge set.  For each edge
    (u, v) the smaller-degree endpoint's adjacency is enumerated and each
    neighbor w is probed as (v_other, w); matches are triangle corners.
    Probes are issued in chunks to bound peak memory.

    The edge enumeration reads a fresh cached snapshot when one exists
    (zero slab traffic); otherwise it exports the unordered COO directly —
    the hash path never *requires* a sorted view.
    """
    from repro.api.snapshot import cached_snapshot

    snap = cached_snapshot(graph)
    coo = snap.to_coo() if snap is not None else graph.export_coo()
    u, v = _oriented_edges(coo)
    if u.size == 0:
        return 0
    deg = np.bincount(coo.src, minlength=vertex_space(graph))
    # Probe from the smaller endpoint into the larger endpoint's table.
    swap = deg[u] > deg[v]
    small = np.where(swap, v, u)
    big = np.where(swap, u, v)

    # Enumerate the smaller endpoints' adjacency lists edge-by-edge.  The
    # batched iterator returns each vertex's list once; edges sharing a
    # "small" vertex replicate that list, which np.repeat reconstructs.
    order = np.argsort(small, kind="stable")
    small_s, big_s = small[order], big[order]
    uniq, counts = np.unique(small_s, return_counts=True)
    owner_pos, nbrs, _ = adjacencies_of(graph, uniq)
    # Sort the iterator output by owner so each vertex's neighbors are a
    # contiguous run, then replicate runs per referencing edge.
    run_order = np.argsort(owner_pos, kind="stable")
    nbrs = nbrs[run_order]
    owner_pos = owner_pos[run_order]
    run_len = np.bincount(owner_pos, minlength=uniq.shape[0])
    run_start = np.concatenate([[0], np.cumsum(run_len)[:-1]])

    # For edge e with small vertex s (the c-th edge of s), its probe block
    # is the whole run of s.  Build flattened (probe_src, probe_dst).
    edge_run_len = run_len[np.searchsorted(uniq, small_s)]
    edge_run_start = run_start[np.searchsorted(uniq, small_s)]
    total = int(edge_run_len.sum())
    triangles = 0
    # Chunk over edges to bound the probe buffer.
    edge_offsets = np.concatenate([[0], np.cumsum(edge_run_len)])
    lo_edge = 0
    while lo_edge < small_s.shape[0]:
        hi_edge = lo_edge
        while (
            hi_edge < small_s.shape[0]
            and edge_offsets[hi_edge + 1] - edge_offsets[lo_edge] <= chunk_size
        ):
            hi_edge += 1
        hi_edge = max(hi_edge, lo_edge + 1)
        sel = slice(lo_edge, hi_edge)
        lens = edge_run_len[sel]
        starts = edge_run_start[sel]
        m = int(lens.sum())
        if m:
            flat = (
                np.arange(m, dtype=np.int64)
                - np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]), lens)
                + np.repeat(starts, lens)
            )
            probe_dst = nbrs[flat]
            probe_src = np.repeat(big_s[sel], lens)
            other = np.repeat(small_s[sel], lens)
            valid = probe_dst != probe_src  # w == v contributes nothing
            found = graph.edge_exists(probe_src[valid], probe_dst[valid])
            triangles += int(found.sum())
            del flat, probe_dst, probe_src, other
        lo_edge = hi_edge
    if total == 0:
        return 0
    # Each triangle is found once per edge => three times total.
    if triangles % 3:
        raise ValidationError(
            f"triangle probe count {triangles} not divisible by 3 — "
            "graph is not a symmetric simple graph"
        )
    return triangles // 3


def triangle_count_sorted(row_ptr: np.ndarray, col_idx: np.ndarray) -> int:
    """Static TC over a *sorted* CSR view (the Hornet/faimGraph path).

    For each undirected edge (u, v) with deg(u) <= deg(v), every neighbor
    of u is binary-searched in the globally sorted edge list — the
    vectorized equivalent of walking two sorted lists.  The probe step is
    the shared :func:`repro.analytics.wedges.closing_wedges` kernel (also
    driven by the incremental stream TC), which charges one
    ``sorted_probes`` per probe.
    """
    n = row_ptr.shape[0] - 1
    deg = np.diff(row_ptr)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    comp = (src << np.int64(32)) | col_idx.astype(np.int64)
    # comp is globally sorted because CSR rows are sorted and row-major.
    u = np.minimum(src, col_idx)
    v = np.maximum(src, col_idx)
    keep = u < v  # each undirected edge twice in a symmetric CSR; keep one
    # Keep only the (u < v) orientation rows (drop duplicates via src side).
    keep &= src == u
    u, v = u[keep], v[keep]
    if u.size == 0:
        return 0
    triangles = closing_wedges(row_ptr, col_idx, comp, u, v)
    return triangles // 3


def undirected_triangles(graph) -> int:
    """Triangle count of the *undirected view* of any graph or snapshot.

    The cold reference kernel for streaming scenarios: directed edge sets
    (the scenario graphs) are first reduced to canonical undirected edges
    and symmetrized — paying the O(2E log 2E) sort the incremental stream
    TC avoids via snapshot delta-merge — then counted through the shared
    wedge-closure kernel.  On an already-symmetric simple graph this
    equals :func:`triangle_count_csr`.
    """
    from repro.api.snapshot import as_snapshot

    snap = as_snapshot(graph)
    canonical = canonical_edge_keys(snap.sources(), snap.col_idx)
    if canonical.size == 0:
        return 0
    row_ptr, col_idx, comp = symmetric_csr(canonical, snap.num_vertices)
    u, v = split_keys(canonical)
    return closing_wedges(row_ptr, col_idx, comp, u, v) // 3


def triangle_count_csr(graph) -> int:
    """Static TC over any backend/facade/snapshot via its sorted-CSR view.

    Convenience wrapper pairing :func:`repro.api.as_snapshot` with
    :func:`triangle_count_sorted`; the graph must hold a symmetric edge
    set.
    """
    from repro.api.snapshot import as_snapshot

    snap = as_snapshot(graph)
    return triangle_count_sorted(snap.row_ptr, snap.col_idx)


@dataclass
class DynamicTCStep:
    """One iteration of the Table IX workload.

    ``*_seconds`` fields are wall-clock; ``*_model`` fields are modeled
    device seconds from the kernel counters (the paper-shaped numbers).
    """

    iteration: int
    insert_seconds: float
    sort_seconds: float
    count_seconds: float
    triangles: int
    insert_model: float = 0.0
    sort_model: float = 0.0
    count_model: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.insert_seconds + self.sort_seconds + self.count_seconds

    @property
    def total_model(self) -> float:
        return self.insert_model + self.sort_model + self.count_model


def _timed(fn, *args):
    from repro.gpusim.counters import get_counters
    from repro.gpusim.model import simulated_seconds

    before = get_counters().snapshot()
    t0 = perf_counter()
    out = fn(*args)
    wall = perf_counter() - t0
    model = simulated_seconds(get_counters().diff(before))
    return out, wall, model


def dynamic_triangle_count(graph, batches, mode: str) -> list[DynamicTCStep]:
    """Insert each batch then re-count triangles (Table IX).

    Parameters
    ----------
    graph:
        A structure holding an undirected edge set.
    batches:
        Iterable of (src, dst) array pairs; each is inserted symmetrically.
    mode:
        ``"hash"`` — count via edgeExist probes (our structure);
        ``"sorted"`` — re-sort adjacency after each insertion and count via
        sorted intersections (the Hornet path; the re-sort is the
        maintenance cost the paper investigates);
        ``"snapshot"`` — count via sorted intersections over
        ``graph.snapshot()``.  Pass a :class:`repro.api.Graph` facade and
        the snapshot is maintained *incrementally*: each round pays an
        O(E + B log B) delta-merge instead of the O(E log E) re-sort, the
        cached-path column of the Table IX comparison.
    """
    if mode not in ("hash", "sorted", "snapshot"):
        raise ValidationError("mode must be 'hash', 'sorted' or 'snapshot'")
    steps: list[DynamicTCStep] = []
    for i, (bs, bd) in enumerate(batches):
        both_s = np.concatenate([bs, bd])
        both_d = np.concatenate([bd, bs])
        _, ins_wall, ins_model = _timed(graph.insert_edges, both_s, both_d)
        if mode == "snapshot":
            # The merge (or the round-1 cold build) is this path's
            # adjacency-maintenance cost, booked like the sorted path's sort.
            snap, sort_wall, sort_model = _timed(graph.snapshot)
            tri, tc_wall, tc_model = _timed(triangle_count_sorted, snap.row_ptr, snap.col_idx)
            steps.append(
                DynamicTCStep(
                    i + 1, ins_wall, sort_wall, tc_wall, tri,
                    ins_model, sort_model, tc_model,
                )
            )
        elif mode == "sorted":
            t0 = perf_counter()
            row_ptr, col_idx = graph.sorted_adjacency()
            sort_wall = perf_counter() - t0
            # Model the *incremental* maintenance a sorted list structure
            # pays per batch: each new edge lands in sorted position by
            # binary search + shift within its row, so the work is the
            # touched rows' elements — not a device-wide segmented re-sort
            # (which would overcharge by the per-segment dispatch cost).
            from repro.gpusim.model import default_model

            affected = np.unique(both_s)
            deg = np.diff(row_ptr)
            mc = default_model()
            sort_model = float(deg[affected].sum()) * mc.SORT_ELEMENT
            tri, tc_wall, tc_model = _timed(triangle_count_sorted, row_ptr, col_idx)
            steps.append(
                DynamicTCStep(
                    i + 1, ins_wall, sort_wall, tc_wall, tri,
                    ins_model, sort_model, tc_model,
                )
            )
        else:
            tri, tc_wall, tc_model = _timed(triangle_count_hash, graph)
            steps.append(
                DynamicTCStep(i + 1, ins_wall, 0.0, tc_wall, tri, ins_model, 0.0, tc_model)
            )
    return steps
