"""The shared wedge-closure kernel behind every sorted triangle count.

Triangle counting — static (Table VII), dynamic (Table IX), and the
delta-aware :class:`repro.stream.incremental.IncrementalTriangleCount` —
reduces to one primitive: for a set of undirected edges (u, v), enumerate
every neighbor w of the smaller-degree endpoint and binary-search the
closing edge (other_endpoint, w) in a globally sorted composite edge
list.  This module is that primitive, factored out of
``triangle_count_sorted`` so the static, dynamic, and incremental paths
charge the device model identically (``sorted_probes``) and can never
fork.

Helpers for the *undirected view* of an arbitrary directed edge set ride
along: :func:`canonical_edge_keys` reduces an edge list to unique
``(min << 32) | max`` keys and :func:`symmetric_csr` expands those keys
into the symmetric CSR the kernel probes.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters

__all__ = ["closing_wedges", "canonical_edge_keys", "symmetric_csr", "split_keys"]

_MASK32 = np.int64(0xFFFFFFFF)


def split_keys(comp: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack composite ``(src << 32) | dst`` keys into (src, dst) arrays."""
    return (comp >> np.int64(32)).astype(np.int64), (comp & _MASK32).astype(np.int64)


def canonical_edge_keys(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Sorted unique canonical keys ``(min(u,v) << 32) | max(u,v)``.

    The undirected view of a directed edge list: self-loops are dropped
    and both orientations collapse onto one key.  No device charge — the
    callers charge the reduction as part of their own sort/merge step.
    """
    u = np.minimum(src, dst)
    v = np.maximum(src, dst)
    keep = u != v
    if not keep.all():
        u, v = u[keep], v[keep]
    return np.unique((u << np.int64(32)) | v)


def symmetric_csr(
    canonical: np.ndarray, num_vertices: int, *, charge_sort: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand canonical undirected keys into a symmetric sorted CSR.

    Returns ``(row_ptr, col_idx, comp)`` where ``comp`` is the globally
    sorted composite edge list (both orientations) the wedge kernel
    probes.  ``charge_sort`` books the O(2E log 2E) symmetrizing sort to
    the device model — the cold-build cost incremental maintenance via
    :func:`repro.api.snapshot.merge_csr_delta` avoids.
    """
    u, v = split_keys(canonical)
    comp = np.sort(np.concatenate([(u << np.int64(32)) | v, (v << np.int64(32)) | u]))
    if charge_sort:
        counters = get_counters()
        counters.kernel_launches += 1
        counters.sorted_elements += int(comp.shape[0])
    counts = np.bincount((comp >> np.int64(32)), minlength=num_vertices)
    row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return row_ptr, (comp & _MASK32).astype(np.int64), comp


def closing_wedges(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    comp: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    *,
    return_hits: bool = False,
):
    """Count (or enumerate) the wedges closing each undirected edge (u, v).

    For every edge ``(u[i], v[i])`` the smaller-degree endpoint's full
    adjacency is enumerated and each neighbor ``w`` is binary-searched as
    ``(other_endpoint, w)`` in the globally sorted composite edge list
    ``comp`` — the vectorized sorted-list intersection of the Hornet/
    faimGraph triangle path.  ``row_ptr``/``col_idx`` must describe a
    *symmetric* simple graph and ``comp`` its composite expansion
    (``symmetric_csr`` produces all three).

    Charges one ``sorted_probes`` kernel counter per probe, identically
    for every caller (static Table VII, dynamic Table IX, incremental
    stream TC).

    Returns the total closed-wedge count, or — with ``return_hits`` —
    ``(edge_index, w)`` arrays naming, for each closed wedge, the input
    edge position it closes and the closing corner vertex.
    """
    deg = np.diff(row_ptr)
    if u.shape[0] == 0:
        if return_hits:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return 0
    swap = deg[u] > deg[v]
    small = np.where(swap, v, u)
    big = np.where(swap, u, v)
    lens = deg[small]
    starts = row_ptr[small]
    m = int(lens.sum())
    if m == 0:
        if return_hits:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return 0
    flat = (
        np.arange(m, dtype=np.int64)
        - np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]), lens)
        + np.repeat(starts, lens)
    )
    w = col_idx[flat].astype(np.int64)
    probe = (np.repeat(big, lens).astype(np.int64) << np.int64(32)) | w
    get_counters().add("sorted_probes", int(probe.size))
    loc = np.searchsorted(comp, probe)
    safe = np.minimum(loc, comp.shape[0] - 1)
    found = (loc < comp.shape[0]) & (comp[safe] == probe)
    if return_hits:
        edge_of = np.repeat(np.arange(u.shape[0], dtype=np.int64), lens)
        return edge_of[found], w[found]
    return int(found.sum())
