"""Frontier primitives (Gunrock's advance / filter, batched).

Gunrock expresses graph algorithms as bulk operations on *frontiers* —
arrays of active vertices.  ``advance`` expands a frontier through the
adjacency iterator of any structure implementing ``adjacencies`` (our
graph) or ``neighbors`` (baselines, adapted per vertex); ``filter_frontier``
deduplicates and masks.  These two are all the traversal algorithms in
this package need.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import as_int_array

__all__ = ["advance", "filter_frontier"]


def advance(graph, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand a frontier one hop.

    Returns ``(sources, destinations)`` — one row per traversed edge, with
    ``sources[i]`` the frontier vertex that generated ``destinations[i]``.
    """
    frontier = as_int_array(frontier, "frontier")
    if frontier.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    if hasattr(graph, "adjacencies"):
        owner_pos, dst, _ = graph.adjacencies(frontier)
        return frontier[owner_pos], dst
    # Baseline fallback: per-vertex neighbor queries.
    src_parts, dst_parts = [], []
    for v in frontier.tolist():
        nbrs, _ = graph.neighbors(int(v))
        if nbrs.size:
            src_parts.append(np.full(nbrs.shape[0], v, dtype=np.int64))
            dst_parts.append(nbrs.astype(np.int64))
    if not src_parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    return np.concatenate(src_parts), np.concatenate(dst_parts)


def filter_frontier(candidates: np.ndarray, visited: np.ndarray) -> np.ndarray:
    """Deduplicate candidates and drop already-visited vertices.

    ``visited`` is a boolean mask indexed by vertex id; the returned
    frontier is unique and unvisited (Gunrock's filter operator).
    """
    candidates = as_int_array(candidates, "candidates")
    if candidates.size == 0:
        return candidates
    fresh = candidates[~visited[candidates]]
    return np.unique(fresh)
