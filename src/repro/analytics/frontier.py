"""Frontier primitives (Gunrock's advance / filter, batched).

Gunrock expresses graph algorithms as bulk operations on *frontiers* —
arrays of active vertices.  ``advance`` expands a frontier through the
adjacency iterator of any structure implementing ``adjacencies`` (our
graph) or ``neighbors`` (baselines, adapted per vertex); ``filter_frontier``
deduplicates and masks.  These two are all the traversal algorithms in
this package need.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_in_range

__all__ = ["advance", "filter_frontier", "vertex_space", "adjacencies_of"]


def vertex_space(graph) -> int:
    """Vertex-id space of any graph-like object.

    Every :class:`repro.api.GraphBackend` (and the ``Graph`` facade)
    exposes ``num_vertices``; the slab-hash structure also calls it
    ``vertex_capacity``.  Raises for objects exposing neither.
    """
    n = getattr(graph, "num_vertices", None)
    if n is None:
        n = getattr(graph, "vertex_capacity", None)
    if n is None:
        raise ValidationError("graph exposes neither num_vertices nor vertex_capacity")
    return int(n)


def adjacencies_of(graph, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched adjacency iterator over any graph-like object.

    Uses the protocol's ``adjacencies`` when available (all registered
    backends inherit one), falling back to per-vertex ``neighbors`` calls
    for foreign objects (e.g. a bare :class:`repro.api.CSRSnapshot`).
    """
    if hasattr(graph, "adjacencies"):
        return graph.adjacencies(vertex_ids)
    from repro.api.backend import gather_adjacencies

    return gather_adjacencies(graph, vertex_ids)


def advance(graph, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand a frontier one hop.

    Returns ``(sources, destinations)`` — one row per traversed edge, with
    ``sources[i]`` the frontier vertex that generated ``destinations[i]``.
    """
    frontier = as_int_array(frontier, "frontier")
    if frontier.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    owner_pos, dst, _ = adjacencies_of(graph, frontier)
    return frontier[owner_pos], dst


def filter_frontier(candidates: np.ndarray, visited: np.ndarray) -> np.ndarray:
    """Deduplicate candidates and drop already-visited vertices.

    ``visited`` is a boolean mask indexed by vertex id; the returned
    frontier is unique, sorted ascending, and unvisited (Gunrock's filter
    operator).  Wide hops dedup by an O(n) scatter into a boolean mask
    over the vertex space instead of an O(c log c) sort of the candidate
    list; tiny frontiers on huge graphs (high-diameter road networks)
    keep the sort, which is cheaper than touching n mask slots per hop.

    Candidates outside ``[0, len(visited))`` raise
    :class:`ValidationError`: a negative id would otherwise wrap around
    the ``visited`` mask (id ``-1`` reads slot ``n-1``) and silently drop
    or emit wrong frontier vertices.
    """
    candidates = as_int_array(candidates, "candidates")
    if candidates.size == 0:
        return candidates
    n = visited.shape[0]
    check_in_range(candidates, 0, n, "candidates")
    if candidates.size * 16 < n:
        return np.unique(candidates[~visited[candidates]])
    fresh = np.zeros(n, dtype=bool)
    fresh[candidates] = True
    fresh &= ~visited
    return np.flatnonzero(fresh)
