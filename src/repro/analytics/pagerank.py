"""PageRank by power iteration over a CSR snapshot.

PageRank is a read-only, whole-graph computation, so the idiomatic pattern
for a phase-concurrent dynamic structure is: snapshot the edge set once
(one bulk iterator sweep), then iterate over the flat arrays — exactly how
a Gunrock app would consume the structure between update phases.  The
snapshot is taken through :func:`repro.api.as_snapshot`, so any registered
backend, the ``Graph`` facade, or a pre-built :class:`CSRSnapshot` works.
"""

from __future__ import annotations

import numpy as np

from repro.api.snapshot import as_snapshot
from repro.util.errors import ValidationError

__all__ = ["pagerank"]


def pagerank(
    graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> np.ndarray:
    """PageRank scores per vertex id (dangling mass redistributed).

    Returns a vector over the full vertex-id space; isolated ids receive
    the teleport mass only.  Accepts any backend, facade, or snapshot.
    """
    if not (0.0 < damping < 1.0):
        raise ValidationError("damping must be in (0, 1)")
    snap = as_snapshot(graph)
    n = snap.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    src, dst = snap.sources(), snap.col_idx
    out_deg = snap.out_degrees().astype(np.float64)
    dangling = out_deg == 0

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    inv_deg = np.zeros(n, dtype=np.float64)
    np.divide(1.0, out_deg, out=inv_deg, where=~dangling)
    for _ in range(max_iters):
        contrib = rank * inv_deg
        incoming = np.bincount(dst, weights=contrib[src], minlength=n)
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank
