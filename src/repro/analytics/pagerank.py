"""PageRank by power iteration over a CSR snapshot.

PageRank is a read-only, whole-graph computation, so the idiomatic pattern
for a phase-concurrent dynamic structure is: snapshot the edge set once
(one bulk iterator sweep), then iterate over the flat arrays — exactly how
a Gunrock app would consume the structure between update phases.  The
snapshot is taken through :func:`repro.api.as_snapshot`, so any registered
backend, the ``Graph`` facade, or a pre-built :class:`CSRSnapshot` works.

The sweep kernel is factored out as :func:`power_iteration` so callers can
seed it with a non-uniform start vector — the warm-start path of
:class:`repro.stream.IncrementalPageRank` reuses the previous phase's
ranks and converges in far fewer sweeps.  Each sweep charges the device
model (one gather over E edges plus the rank/dangling updates over |V|),
which is what lets the ``t11`` stream bench price cold recomputes against
warm restarts honestly.
"""

from __future__ import annotations

import numpy as np

from repro.api.snapshot import as_snapshot
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError

__all__ = ["pagerank", "power_iteration"]


def power_iteration(
    snap,
    rank: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> tuple[np.ndarray, int]:
    """Iterate PageRank sweeps from ``rank`` until the L1 delta < ``tol``.

    Returns ``(ranks, sweeps)``.  ``rank`` is the start vector (must sum
    to 1 over ``snap.num_vertices`` entries); a uniform start reproduces
    the classic cold computation, a previous solution warm-starts.  Each
    sweep charges the device model for the edge gather/scatter and the
    per-vertex rank update.
    """
    n = snap.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64), 0
    counters = get_counters()
    src, dst = snap.sources(), snap.col_idx
    out_deg = snap.out_degrees().astype(np.float64)
    dangling = out_deg == 0

    inv_deg = np.zeros(n, dtype=np.float64)
    np.divide(1.0, out_deg, out=inv_deg, where=~dangling)
    sweeps = 0
    for _ in range(max_iters):
        sweeps += 1
        # One sweep: gather contrib[src] per edge, scatter-add into dst,
        # then the per-vertex teleport/dangling update.
        counters.kernel_launches += 1
        counters.bytes_copied += (2 * dst.shape[0] + 4 * n) * 8
        contrib = rank * inv_deg
        incoming = np.bincount(dst, weights=contrib[src], minlength=n)
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank, sweeps


def pagerank(
    graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> np.ndarray:
    """PageRank scores per vertex id (dangling mass redistributed).

    Returns a vector over the full vertex-id space; isolated ids receive
    the teleport mass only.  Accepts any backend, facade, or snapshot.
    """
    if not (0.0 < damping < 1.0):
        raise ValidationError("damping must be in (0, 1)")
    snap = as_snapshot(graph)
    n = snap.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    rank, _ = power_iteration(snap, rank, damping=damping, tol=tol, max_iters=max_iters)
    return rank
