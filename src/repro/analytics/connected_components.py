"""Connected components by pointer-jumping label propagation.

The classic GPU formulation (hooking + shortcutting over an edge list):
every vertex starts as its own label; each round hooks the larger label to
the smaller across every edge and then compresses label chains by pointer
jumping.  Runs on a CSR snapshot (via :func:`repro.api.as_snapshot`, so any
backend, facade, or pre-built snapshot works); treats edges as undirected.
"""

from __future__ import annotations

import numpy as np

from repro.api.snapshot import as_snapshot

__all__ = ["connected_components"]


def connected_components(graph) -> np.ndarray:
    """Component label per vertex id (label = smallest id in component).

    Isolated ids label themselves.
    """
    snap = as_snapshot(graph)
    n = snap.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if snap.num_edges == 0:
        return labels
    src, dst = snap.sources(), snap.col_idx
    u = np.concatenate([src, dst])
    v = np.concatenate([dst, src])
    while True:
        # Hook: every vertex adopts the minimum neighbor label.
        lu = labels[u]
        lv = labels[v]
        proposed = labels.copy()
        np.minimum.at(proposed, u, lv)
        np.minimum.at(proposed, v, lu)
        # Shortcut: pointer-jump until labels are fixpoints of themselves.
        while True:
            jumped = proposed[proposed]
            if np.array_equal(jumped, proposed):
                break
            proposed = jumped
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed
