"""Connected components by pointer-jumping label propagation.

The classic GPU formulation (hooking + shortcutting over an edge list):
every vertex starts as its own label; each round hooks the larger label to
the smaller across every edge and then compresses label chains by pointer
jumping.  Runs on a CSR snapshot (via :func:`repro.api.as_snapshot`, so any
backend, facade, or pre-built snapshot works); treats edges as undirected.

Each hook round charges the device model for the per-edge label
gather/scatter, and each pointer-jump round for the per-vertex chase, so
the full re-label cost is priced against the O(batch) union-find updates
of :class:`repro.stream.IncrementalConnectedComponents` in the ``t11``
stream bench.
"""

from __future__ import annotations

import numpy as np

from repro.api.snapshot import as_snapshot
from repro.gpusim.counters import get_counters

__all__ = ["connected_components"]


def connected_components(graph) -> np.ndarray:
    """Component label per vertex id (label = smallest id in component).

    Isolated ids label themselves.
    """
    snap = as_snapshot(graph)
    n = snap.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if snap.num_edges == 0:
        return labels
    counters = get_counters()
    src, dst = snap.sources(), snap.col_idx
    u = np.concatenate([src, dst])
    v = np.concatenate([dst, src])
    while True:
        # Hook: every vertex adopts the minimum neighbor label.
        counters.kernel_launches += 1
        counters.bytes_copied += (4 * u.shape[0] + 2 * n) * 8
        lu = labels[u]
        lv = labels[v]
        proposed = labels.copy()
        np.minimum.at(proposed, u, lv)
        np.minimum.at(proposed, v, lu)
        # Shortcut: pointer-jump until labels are fixpoints of themselves.
        while True:
            counters.kernel_launches += 1
            counters.bytes_copied += 2 * n * 8
            jumped = proposed[proposed]
            if np.array_equal(jumped, proposed):
                break
            proposed = jumped
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed
