"""Connected components by pointer-jumping label propagation.

The classic GPU formulation (hooking + shortcutting over an edge list):
every vertex starts as its own label; each round hooks the larger label to
the smaller across every edge and then compresses label chains by pointer
jumping.  Runs on the exported snapshot; treats edges as undirected.
"""

from __future__ import annotations

import numpy as np

__all__ = ["connected_components"]


def connected_components(graph) -> np.ndarray:
    """Component label per vertex id (label = smallest id in component).

    Isolated ids label themselves.
    """
    coo = graph.export_coo()
    n = coo.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if coo.num_edges == 0:
        return labels
    u = np.concatenate([coo.src, coo.dst])
    v = np.concatenate([coo.dst, coo.src])
    while True:
        # Hook: every vertex adopts the minimum neighbor label.
        lu = labels[u]
        lv = labels[v]
        proposed = labels.copy()
        np.minimum.at(proposed, u, lv)
        np.minimum.at(proposed, v, lu)
        # Shortcut: pointer-jump until labels are fixpoints of themselves.
        while True:
            jumped = proposed[proposed]
            if np.array_equal(jumped, proposed):
                break
            proposed = jumped
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed
