"""Breadth-first search over the dynamic graph's adjacency iterator.

A direct Gunrock-style advance/filter loop; exercises the batched iterator
exactly the way a framework algorithm would (read-only phase).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.frontier import advance, filter_frontier, vertex_space
from repro.util.errors import ValidationError

__all__ = ["bfs"]


def bfs(graph, source: int, max_depth: int | None = None) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get -1.

    Works on any :class:`repro.api.GraphBackend`, the ``Graph`` facade, or
    any structure with ``adjacencies``/``neighbors``.
    """
    n = vertex_space(graph)
    source = int(source)
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range [0, {n})")

    dist = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    dist[source] = 0
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        if max_depth is not None and depth >= max_depth:
            break
        _, dsts = advance(graph, frontier)
        frontier = filter_frontier(dsts, visited)
        depth += 1
        if frontier.size:
            visited[frontier] = True
            dist[frontier] = depth
    return dist
