"""Kernel cost counters — the hardware-independent performance model.

Wall-clock timings of the vectorized kernels depend on the host CPU, NumPy
version, and dataset scale.  To make the *algorithmic* costs the paper
argues about visible independently of all that, every kernel in this
reproduction also increments a process-global :class:`KernelCounters`
instance:

- ``slab_reads`` / ``slab_writes`` — 128-byte slab/page transactions, the
  unit of coalesced memory traffic on the simulated device;
- ``probe_rounds`` — chain-walk iterations (one per warp-synchronous step);
- ``atomics`` — simulated atomic operations (allocation tickets, queue
  counters);
- ``slabs_allocated`` / ``slabs_freed`` — dynamic allocator traffic;
- ``sorted_elements`` — elements pushed through a sort, the dominant cost
  of list-based deduplication that the paper's hash approach avoids;
- ``scanned_elements`` — elements touched by linear scans (unsorted-list
  deduplication cost).

Benches report these alongside wall-clock so the "who wins and why" story
survives any absolute-speed differences between a TITAN V and a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["KernelCounters", "get_counters", "reset_counters", "counting"]


@dataclass
class KernelCounters:
    """Mutable bag of simulated-hardware cost counters."""

    slab_reads: int = 0
    slab_writes: int = 0
    probe_rounds: int = 0
    atomics: int = 0
    slabs_allocated: int = 0
    slabs_freed: int = 0
    sorted_elements: int = 0
    scanned_elements: int = 0
    kernel_launches: int = 0
    bytes_copied: int = 0
    _extra: dict = field(default_factory=dict, repr=False)

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            if f.name == "_extra":
                self._extra = {}
            else:
                setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """Immutable snapshot as a plain dict (for bench reports)."""
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "_extra"}
        out.update(self._extra)
        return out

    def add(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter (kept in ``_extra``)."""
        self._extra[name] = self._extra.get(name, 0) + amount

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Delta between the current state and a prior :meth:`snapshot`."""
        now = self.snapshot()
        return {k: now.get(k, 0) - before.get(k, 0) for k in now.keys() | before.keys()}


_GLOBAL = KernelCounters()


def get_counters() -> KernelCounters:
    """Return the process-global counter instance."""
    return _GLOBAL


def reset_counters() -> KernelCounters:
    """Zero and return the process-global counters."""
    _GLOBAL.reset()
    return _GLOBAL


class counting:
    """Context manager yielding the counter delta accumulated inside it.

    >>> with counting() as delta:
    ...     graph.insert_edges(src, dst)
    >>> delta["slab_writes"]
    """

    def __enter__(self) -> dict[str, int]:
        self._before = _GLOBAL.snapshot()
        self._delta: dict[str, int] = {}
        return self._delta

    def __exit__(self, *exc) -> None:
        self._delta.update(_GLOBAL.diff(self._before))
