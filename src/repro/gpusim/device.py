"""Device properties for the simulated GPU.

These constants mirror the hardware assumptions the paper bakes into its
data-structure layout: 32-thread warps and 128-byte memory transactions,
which is why a slab is 128 bytes = 32 x 4-byte words — one coalesced
transaction per warp per slab access.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProperties", "default_device"]


@dataclass(frozen=True)
class DeviceProperties:
    """Static properties of the simulated device.

    Attributes
    ----------
    warp_size:
        Threads per warp; fixed at 32 on all NVIDIA hardware the paper
        targets and assumed by the slab layout.
    slab_bytes:
        Bytes per slab / memory page; 128 matches both SlabHash's slab and
        the faimGraph page size the paper configures for parity.
    word_bytes:
        Bytes per word (keys, values and pointers are 32-bit).
    name:
        Human-readable label for reports.
    """

    warp_size: int = 32
    slab_bytes: int = 128
    word_bytes: int = 4
    name: str = "simulated-titan-v"

    @property
    def words_per_slab(self) -> int:
        """Words in one slab (32 for the default 128B/4B configuration)."""
        return self.slab_bytes // self.word_bytes


_DEFAULT = DeviceProperties()


def default_device() -> DeviceProperties:
    """Return the process-global default device description."""
    return _DEFAULT
