"""Warp-Cooperative Work Sharing (WCWS) reference engine.

This module executes the paper's Algorithm 1 (edge insertion) and its edge
deletion variant *literally*: the batch is cut into 32-task warps, each warp
builds a work queue with ``ballot``, elects the next task with
``find_first_set``, broadcasts the source vertex with ``shuffle``, coalesces
all same-source lanes into one grouped hash-table call, and counts genuine
additions with ``popc`` of a success ballot.

It is deliberately slow (per-lane Python) and exists to be an executable
specification: the vectorized kernels in :mod:`repro.slabhash` and
:mod:`repro.core` must produce identical final states and identical
per-vertex edge-count updates.  Tests cross-check the two on small inputs.

The engine is structure-agnostic: it drives any object implementing the
small :class:`WCWSTarget` protocol, so the same reference can validate both
the slab-hash graph and baseline structures.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.gpusim.warp import WARP_SIZE, ballot, find_first_set, popc, shuffle_idx

__all__ = [
    "WCWSTarget",
    "insert_edges_reference",
    "delete_edges_reference",
    "delete_vertices_reference",
]


class WCWSTarget(Protocol):
    """Minimal scalar interface the WCWS engine drives.

    Implementations perform *one* operation at a time; the engine supplies
    the warp-level scheduling around them.
    """

    def reference_replace(self, src: int, dst: int, weight: int) -> bool:
        """Insert-or-replace ``(src -> dst, weight)``; True iff newly added."""
        ...

    def reference_delete(self, src: int, dst: int) -> bool:
        """Delete ``(src -> dst)``; True iff it existed."""
        ...

    def reference_increment_edge_count(self, src: int, amount: int) -> None:
        """Adjust the exact per-vertex edge counter."""
        ...


def _pad_to_warp(arr: np.ndarray, pad_value) -> np.ndarray:
    """Pad a partial final warp up to 32 lanes with inactive tasks."""
    rem = (-len(arr)) % WARP_SIZE
    if rem == 0:
        return arr
    return np.concatenate([arr, np.full(rem, pad_value, dtype=arr.dtype)])


def insert_edges_reference(
    target: WCWSTarget,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
) -> int:
    """Algorithm 1, executed lane-by-lane.  Returns total edges added.

    Self-loops are skipped (line 3).  Lanes sharing the elected source are
    grouped and executed as one coalesced call (lines 7-8); the group's
    successful additions are counted together and credited to the source's
    edge count in a single increment (lines 9-10), exactly as ``popc`` over
    a success ballot would on hardware.
    """
    n = len(src)
    if weights is None:
        weights = np.zeros(n, dtype=np.int64)
    src = _pad_to_warp(np.asarray(src, dtype=np.int64), 0)
    dst_p = _pad_to_warp(np.asarray(dst, dtype=np.int64), 0)
    w_p = _pad_to_warp(np.asarray(weights, dtype=np.int64), 0)
    valid = _pad_to_warp(np.ones(n, dtype=bool), False)

    total_added = 0
    for base in range(0, len(src), WARP_SIZE):
        ls = src[base : base + WARP_SIZE]
        ld = dst_p[base : base + WARP_SIZE]
        lw = w_p[base : base + WARP_SIZE]
        # Line 3: no self-edges; padding lanes are never to_insert.
        to_insert = valid[base : base + WARP_SIZE] & (ls != ld)
        # Lines 4-14: drain the warp work queue.
        while True:
            work_queue = ballot(to_insert)
            if work_queue == 0:
                break
            current_lane = find_first_set(work_queue)
            current_src = shuffle_idx(ls, current_lane)
            same_src = (ls == current_src) & to_insert
            success = np.zeros(WARP_SIZE, dtype=bool)
            # Line 8: one coalesced replace call for the whole group.  The
            # group executes in lane order, which realizes a definite
            # serialization of intra-warp duplicates (later lane wins).
            for lane in np.flatnonzero(same_src):
                success[lane] = target.reference_replace(
                    int(ls[lane]), int(ld[lane]), int(lw[lane])
                )
            added = popc(ballot(success))
            target.reference_increment_edge_count(int(current_src[0]), added)
            total_added += added
            to_insert &= ~same_src
    return total_added


def delete_edges_reference(target: WCWSTarget, src: np.ndarray, dst: np.ndarray) -> int:
    """Edge deletion with the same WCWS scheduling; returns edges removed.

    Differs from insertion per Section IV-C2: the grouped call is a delete,
    and the success ballot *decrements* the source's edge count.
    """
    n = len(src)
    src = _pad_to_warp(np.asarray(src, dtype=np.int64), 0)
    dst_p = _pad_to_warp(np.asarray(dst, dtype=np.int64), 0)
    valid = _pad_to_warp(np.ones(n, dtype=bool), False)

    total_removed = 0
    for base in range(0, len(src), WARP_SIZE):
        ls = src[base : base + WARP_SIZE]
        ld = dst_p[base : base + WARP_SIZE]
        to_delete = valid[base : base + WARP_SIZE].copy()
        while True:
            work_queue = ballot(to_delete)
            if work_queue == 0:
                break
            current_lane = find_first_set(work_queue)
            current_src = shuffle_idx(ls, current_lane)
            same_src = (ls == current_src) & to_delete
            success = np.zeros(WARP_SIZE, dtype=bool)
            for lane in np.flatnonzero(same_src):
                success[lane] = target.reference_delete(int(ls[lane]), int(ld[lane]))
            removed = popc(ballot(success))
            target.reference_increment_edge_count(int(current_src[0]), -removed)
            total_removed += removed
            to_delete &= ~same_src
    return total_removed


def delete_vertices_reference(graph, vertex_ids: np.ndarray) -> int:
    """Algorithm 2, executed warp-by-warp for an undirected graph.

    Follows the pseudocode line-for-line: a global atomic counter vends
    one doomed vertex per warp acquisition (lines 2-9); the warp reads the
    vertex (line 10), iterates its adjacency slab-by-slab with 32 lanes
    (lines 11-13), and for each lane's destination issues a coalesced
    delete of the doomed vertex from that destination's table (lines
    14-17); non-base slabs are freed (lines 18-20) and the edge count is
    zeroed (line 22).  Returns total edges removed (both directions).

    ``graph`` must be a :class:`repro.core.DynamicGraph`; this reference
    reaches into its arena exactly the way the device kernel reaches into
    raw memory, and exists to certify the vectorized
    :func:`repro.core.vertex_ops.delete_vertices`.
    """
    from repro.gpusim.counters import get_counters

    vertices = np.unique(np.asarray(vertex_ids, dtype=np.int64))
    vd = graph._dict
    arena = vd.arena
    counters = get_counters()

    removed_total = 0
    queue_counter = 0  # the atomicAdd-backed work queue (lines 2-6)
    while True:
        counters.atomics += 1  # laneId == 0 performs atomicAdd(queue, 1)
        queue_id = queue_counter
        queue_counter += 1
        if queue_id >= vertices.shape[0]:  # line 7-9: kernel exit
            break
        warp_vertex = int(vertices[queue_id])  # line 10

        # Lines 11-17: the edge iterator yields up to 32 destinations per
        # step; each lane's destination is broadcast and the doomed vertex
        # is deleted from that destination's adjacency table.
        dsts, _ = graph.neighbors(warp_vertex)
        own_edges = int(dsts.size)
        for base in range(0, own_edges, WARP_SIZE):
            lane_dst = dsts[base : base + WARP_SIZE]
            for lane in range(lane_dst.shape[0]):
                current_dst = int(lane_dst[lane])  # shuffle broadcast
                if arena.reference_delete_one(current_dst, warp_vertex):
                    vd.increment_edge_count(current_dst, -1)
                    removed_total += 1

        # Lines 18-20: free dynamically allocated (non-base) slabs; line
        # 22: zero the count.  clear_tables performs exactly that.
        doomed = np.array([warp_vertex], dtype=np.int64)
        arena.clear_tables(doomed)
        removed_total += vd.zero_edge_counts(doomed)
        vd.deactivate(doomed)
    return removed_total
