"""Simulated-GPU substrate.

The paper's artifact is CUDA on a TITAN V.  This subpackage supplies the
equivalents the rest of the library is written against:

- :mod:`repro.gpusim.device` — device properties (warp size, slab size) and
  a process-global default device;
- :mod:`repro.gpusim.counters` — kernel cost counters (slab reads/writes,
  atomics, allocations, probe rounds, sorted elements) that act as the
  hardware-independent performance model;
- :mod:`repro.gpusim.warp` — 32-lane warp-primitive emulation
  (``ballot``/``ffs``/``shuffle``/``popc``);
- :mod:`repro.gpusim.wcws` — a literal Warp-Cooperative Work Sharing engine
  used as the *reference semantics* for the vectorized kernels;
- :mod:`repro.gpusim.memory` — growable device buffers.
"""

from repro.gpusim.counters import KernelCounters, get_counters, reset_counters
from repro.gpusim.device import DeviceProperties, default_device
from repro.gpusim.memory import GrowableArray
from repro.gpusim.warp import (
    WARP_SIZE,
    ballot,
    find_first_set,
    lane_ids,
    popc,
    shuffle_idx,
)

__all__ = [
    "WARP_SIZE",
    "DeviceProperties",
    "GrowableArray",
    "KernelCounters",
    "ballot",
    "default_device",
    "find_first_set",
    "get_counters",
    "lane_ids",
    "popc",
    "reset_counters",
    "shuffle_idx",
]
