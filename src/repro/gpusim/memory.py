"""Growable device buffers.

GPU-resident structures in the paper grow by bulk reallocation (the vertex
dictionary "copies pointers to a new memory location after increasing its
capacity", Section IV-A1).  :class:`GrowableArray` reproduces exactly that
amortized-doubling behaviour and charges the copy to the global counters so
reallocation costs show up in the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.util.errors import CapacityError

__all__ = ["GrowableArray"]


class GrowableArray:
    """A 1-D or 2-D NumPy array with amortized-doubling growth.

    Only the leading dimension grows.  ``self.data`` exposes the *full*
    capacity; callers track their own logical length (matching how device
    memory pools work — capacity and fill level are separate).
    """

    __slots__ = ("data", "fill_value", "allow_growth")

    def __init__(
        self,
        capacity: int,
        dtype,
        width: int | None = None,
        fill_value=0,
        allow_growth: bool = True,
    ) -> None:
        shape = (max(int(capacity), 1),) if width is None else (max(int(capacity), 1), width)
        self.data = np.full(shape, fill_value, dtype=dtype)
        self.fill_value = fill_value
        self.allow_growth = allow_growth

    @property
    def capacity(self) -> int:
        return self.data.shape[0]

    def ensure(self, needed: int) -> None:
        """Grow (geometrically) until capacity >= ``needed``."""
        if needed <= self.capacity:
            return
        if not self.allow_growth:
            raise CapacityError(
                f"buffer capacity {self.capacity} exceeded (need {needed}) and growth disabled"
            )
        new_cap = self.capacity
        while new_cap < needed:
            new_cap *= 2
        new_shape = (new_cap,) + self.data.shape[1:]
        new_data = np.full(new_shape, self.fill_value, dtype=self.data.dtype)
        new_data[: self.capacity] = self.data
        get_counters().bytes_copied += int(self.data.nbytes)
        self.data = new_data

    def __len__(self) -> int:
        return self.capacity
