"""Warp-level primitive emulation.

These functions mirror the CUDA intrinsics the paper's Algorithms 1 and 2
are written in, operating on *lane vectors*: NumPy arrays of length 32
(``WARP_SIZE``) where element ``i`` is lane ``i``'s private value.

They are used by the :mod:`repro.gpusim.wcws` reference engine, which
executes the paper's pseudocode literally so the fast vectorized kernels
have an executable specification to be tested against.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WARP_SIZE",
    "FULL_MASK",
    "ballot",
    "find_first_set",
    "lane_ids",
    "popc",
    "shuffle_idx",
    "active_mask_from_bool",
]

WARP_SIZE: int = 32
FULL_MASK: int = (1 << WARP_SIZE) - 1


def lane_ids() -> np.ndarray:
    """Lane index vector ``[0, 1, ..., 31]`` (CUDA ``laneid``)."""
    return np.arange(WARP_SIZE, dtype=np.int64)


def ballot(predicate: np.ndarray) -> int:
    """``__ballot_sync``: pack one bit per lane into a 32-bit mask.

    ``predicate`` is a boolean lane vector; bit ``i`` of the result is lane
    ``i``'s predicate.
    """
    pred = np.asarray(predicate, dtype=bool)
    if pred.shape != (WARP_SIZE,):
        raise ValueError(f"predicate must be a lane vector of shape ({WARP_SIZE},)")
    bits = np.left_shift(np.ones(WARP_SIZE, dtype=np.uint64), np.arange(WARP_SIZE, dtype=np.uint64))
    return int(np.sum(bits[pred], dtype=np.uint64))


def popc(mask: int) -> int:
    """``__popc``: population count of a 32-bit mask."""
    return int(bin(mask & FULL_MASK).count("1"))


def find_first_set(mask: int) -> int:
    """``__ffs`` semantics used in the paper: index of the lowest set bit.

    Returns -1 when the mask is empty (CUDA's ``__ffs`` returns 0; the
    pseudocode treats an empty work queue as loop exit, which we express
    with the -1 sentinel).
    """
    mask &= FULL_MASK
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1


def shuffle_idx(values: np.ndarray, src_lane: int) -> np.ndarray:
    """``__shfl_sync``: broadcast lane ``src_lane``'s value to all lanes."""
    vals = np.asarray(values)
    if vals.shape[0] != WARP_SIZE:
        raise ValueError(f"values must be a lane vector of shape ({WARP_SIZE}, ...)")
    return np.broadcast_to(vals[src_lane], vals.shape).copy()


def active_mask_from_bool(active: np.ndarray) -> int:
    """Convenience alias of :func:`ballot` for building work queues."""
    return ballot(active)
