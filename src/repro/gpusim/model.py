"""Calibrated device-time model: counters → simulated TITAN V seconds.

Python wall-clock cannot reproduce the paper's *ratios*: NumPy's compiled
sort is disproportionately cheap relative to interpreted probe-round
kernels, inverting exactly the asymmetry (hash probes vs. sort-based
dedup) the paper measures.  A discrete-cost model fixes this: every kernel
counts hardware-meaningful events (see :mod:`repro.gpusim.counters`), and
this module converts a counter delta into modeled device seconds using
per-event costs **calibrated against the paper's own published numbers**:

- ``SORT_SEGMENT`` (450 ns): Table VIII's CUB segmented-sort column is
  fit almost exactly by 450 ns x |V| across all twelve datasets (e.g.
  road_usa 23.9M rows → 10.8 s predicted vs. 10.875 s published).
- ``HORNET_BLOCK`` (25 ns): Table V's Hornet column is fit by
  25 ns x |V| (CPU-side block manager) + sort traffic (germany_osm
  11.5M vertices → 287 ms + 17 ms sort ≈ 304 ms vs. 330 ms published).
- ``SLAB_TRANSACTION`` (0.25 ns): Table V's "Ours" column — hollywood
  2 x 113M transactions x 0.25 ns ≈ 56 ms vs. 42 ms published; germany
  2 x 24.7M x 0.25 ≈ 12.4 ms vs. 12.4 ms published.
- ``SORT_ELEMENT`` (0.35 ns): residual of Table V/VIII fits (GPU radix
  throughput ≈ 3 Gkey/s).
- ``FAIM_SORT_ELEMENT`` (0.29 ns): Table VIII's faimGraph column under
  the paged odd-even model (soc-orkut 900 passes x 212M ≈ 55 s vs.
  41.8 s published; road_usa 17 ms vs. 12.7 ms).
- The remaining constants (scan, chain step, host sync, launch, atomic,
  copy bandwidth) are set to plausible device values and sanity-checked
  against Tables II-IV as documented in EXPERIMENTS.md.

The model is intentionally linear — it prices *algorithmic* work, which is
what the paper's comparisons vary; occupancy and cache effects are out of
scope (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceCostModel", "default_model", "simulated_seconds"]


@dataclass(frozen=True)
class DeviceCostModel:
    """Per-event costs in seconds (TITAN V calibration)."""

    #: One coalesced 128-byte slab/page transaction.
    SLAB_TRANSACTION: float = 0.25e-9
    #: One element pushed through a device radix/merge sort.
    SORT_ELEMENT: float = 0.35e-9
    #: One element pushed through faimGraph's paged odd-even sort.
    FAIM_SORT_ELEMENT: float = 0.29e-9
    #: Per-segment dispatch overhead of CUB-style segmented sort.
    SORT_SEGMENT: float = 450e-9
    #: One element touched by a bandwidth-bound linear scan.
    SCAN_ELEMENT: float = 0.05e-9
    #: One dependent page-chain hop (latency-bound, partially hidden).
    CHAIN_STEP: float = 5e-9
    #: One CPU-side block (re)allocation in Hornet's manager.
    HORNET_BLOCK: float = 25e-9
    #: One host/device synchronization (Hornet's CPU-managed updates).
    #: Device value ≈ 0.5 ms; scaled by the dataset-size ratio (~1/64) so
    #: fixed:variable cost proportions at the scaled batch sizes match the
    #: paper's at its batch sizes (see EXPERIMENTS.md, "Fixed overheads").
    HOST_SYNC: float = 8e-6
    #: One kernel launch / probe-round dispatch (scaled like HOST_SYNC).
    KERNEL_LAUNCH: float = 0.5e-6
    #: One global atomic operation.
    ATOMIC: float = 3e-9
    #: One byte of device-to-device copy (≈330 GB/s effective).
    COPY_BYTE: float = 0.003e-9
    #: One probe step of a sorted-list intersection walk (sequential).
    SORTED_PROBE: float = 0.1e-9

    def seconds(self, delta: dict[str, int]) -> float:
        """Modeled device time for a counter delta (see ``counting``)."""
        g = delta.get
        return (
            (g("slab_reads", 0) + g("slab_writes", 0)) * self.SLAB_TRANSACTION
            + g("sorted_elements", 0) * self.SORT_ELEMENT
            + g("faim_sort_elements", 0) * self.FAIM_SORT_ELEMENT
            + g("sort_segments", 0) * self.SORT_SEGMENT
            + g("scanned_elements", 0) * self.SCAN_ELEMENT
            + g("chain_steps", 0) * self.CHAIN_STEP
            + g("hornet_blocks", 0) * self.HORNET_BLOCK
            + g("host_syncs", 0) * self.HOST_SYNC
            + (g("kernel_launches", 0) + g("probe_rounds", 0)) * self.KERNEL_LAUNCH
            + g("atomics", 0) * self.ATOMIC
            + g("bytes_copied", 0) * self.COPY_BYTE
            + g("sorted_probes", 0) * self.SORTED_PROBE
        )


_DEFAULT = DeviceCostModel()


def default_model() -> DeviceCostModel:
    return _DEFAULT


def simulated_seconds(delta: dict[str, int]) -> float:
    """Modeled seconds under the default calibration."""
    return _DEFAULT.seconds(delta)
