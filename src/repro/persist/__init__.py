"""Durable graphs: write-ahead log + checkpointed snapshots + recovery.

The in-memory :class:`repro.eventlog.EventLog` already gives every graph
a complete, versioned mutation history; this package makes that history
survive the process.  Three layers:

- :mod:`repro.persist.wal` — segmented append-only log of framed
  (length- and CRC32-checked) event records, with a
  :class:`~repro.persist.wal.WalWriter` that subscribes to
  ``graph.events`` and a :class:`~repro.persist.wal.LogFollower` that
  tails another process's log;
- :mod:`repro.persist.checkpoint` — atomic ``CSRSnapshot`` checkpoints
  (NPZ + JSON manifest commit point) that bound replay length;
- :mod:`repro.persist.store` — :func:`~repro.persist.store.open_graph`,
  which recovers a :class:`~repro.persist.store.DurableGraph` as
  latest-valid-checkpoint + WAL-tail replay and keeps it durable;
- :mod:`repro.persist.sharded` — :class:`~repro.persist.sharded.ShardStores`,
  per-shard WAL + checkpoint stores for a
  :class:`~repro.api.sharding.ShardedGraph`, the recovery source its
  ``rebuild_shard()`` replays (attach via ``attach_durability()``).

See ``examples/durable_service.py`` for the checkpoint → crash →
recover → replica-tail round trip, and the README's "Durability and
recovery" section for the design rationale.
"""

from repro.persist.checkpoint import (
    CheckpointManifest,
    checkpoint_manifests,
    env_fingerprint,
    latest_valid_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.persist.sharded import ShardRecovery, ShardStores
from repro.persist.store import DurableGraph, apply_event, open_graph
from repro.persist.wal import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    LogFollower,
    WalScan,
    WalWriter,
    encode_record,
    list_segments,
    repair_wal,
    scan_wal,
)

__all__ = [
    "CheckpointManifest",
    "DEFAULT_SEGMENT_BYTES",
    "DurableGraph",
    "FSYNC_POLICIES",
    "LogFollower",
    "ShardRecovery",
    "ShardStores",
    "WalScan",
    "WalWriter",
    "apply_event",
    "checkpoint_manifests",
    "encode_record",
    "env_fingerprint",
    "latest_valid_checkpoint",
    "list_segments",
    "load_checkpoint",
    "open_graph",
    "repair_wal",
    "scan_wal",
    "write_checkpoint",
]
