"""Atomic graph checkpoints: an NPZ snapshot + a JSON manifest.

A checkpoint materializes one :class:`repro.api.CSRSnapshot` so recovery
can start from it instead of replaying the whole WAL.  Two files per
checkpoint, both written atomically (tmp file + rename, see
:func:`repro.io.atomic_write`):

- ``ckpt-<seq, 20 digits>.npz`` — the snapshot arrays (``numpy.savez``);
- ``ckpt-<seq, 20 digits>.json`` — the manifest: the WAL seq the
  snapshot covers (recovery replays records at or after it), the
  publisher's ``mutation_version`` as provenance, the backend identity,
  edge/vertex counts, a CRC32 of the NPZ bytes, and an environment
  fingerprint.

The manifest is written *after* the NPZ and is the commit point: a crash
between the two leaves an orphaned NPZ that no manifest references, and
recovery never sees it.  :func:`latest_valid_checkpoint` walks manifests
newest-first and skips any that fail to load — missing or truncated NPZ,
CRC mismatch, unparseable JSON — so deleting or corrupting the newest
checkpoint merely falls back to the previous one (plus a longer WAL
replay).
"""

from __future__ import annotations

import json
import platform
import zlib
from dataclasses import dataclass
from io import BytesIO
from pathlib import Path

import numpy as np

from repro.api.snapshot import CSRSnapshot
from repro.io import atomic_write
from repro.util.errors import ValidationError

__all__ = [
    "CheckpointManifest",
    "write_checkpoint",
    "load_checkpoint",
    "latest_valid_checkpoint",
    "checkpoint_manifests",
    "env_fingerprint",
]

MANIFEST_KIND = "repro-graph-checkpoint"
SCHEMA_VERSION = 1
_PREFIX = "ckpt-"


def env_fingerprint() -> dict:
    """The environment identity stamped into manifests and store files."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


@dataclass(frozen=True)
class CheckpointManifest:
    """Parsed manifest of one checkpoint (see module docstring)."""

    path: Path
    seq: int
    mutation_version: int | None
    backend: str
    weighted: bool
    num_vertices: int
    num_edges: int
    npz: str
    crc32: int
    environment: dict

    @property
    def npz_path(self) -> Path:
        return self.path.with_name(self.npz)


def checkpoint_manifests(directory) -> list:
    """Manifest paths in a checkpoint directory, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir() if p.name.startswith(_PREFIX) and p.name.endswith(".json")
    )


def write_checkpoint(
    directory,
    snap: CSRSnapshot,
    *,
    seq: int,
    backend: str,
    weighted: bool,
    mutation_version: int | None = None,
) -> CheckpointManifest:
    """Persist ``snap`` as the checkpoint covering WAL seqs below ``seq``.

    The NPZ is serialized in memory first so its CRC32 covers exactly the
    bytes on disk; the manifest rename is the commit point.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{_PREFIX}{int(seq):020d}"
    payload = {
        "row_ptr": snap.row_ptr,
        "col_idx": snap.col_idx,
        "num_vertices": np.int64(snap.num_vertices),
    }
    if snap.weights is not None:
        payload["weights"] = snap.weights
    buf = BytesIO()
    np.savez(buf, **payload)
    blob = buf.getvalue()
    with atomic_write(directory / f"{stem}.npz", "wb") as fh:
        fh.write(blob)
    manifest = {
        "kind": MANIFEST_KIND,
        "schema_version": SCHEMA_VERSION,
        "seq": int(seq),
        "mutation_version": None if mutation_version is None else int(mutation_version),
        "backend": str(backend),
        "weighted": bool(weighted),
        "num_vertices": int(snap.num_vertices),
        "num_edges": int(snap.num_edges),
        "npz": f"{stem}.npz",
        "crc32": zlib.crc32(blob),
        "environment": env_fingerprint(),
    }
    path = directory / f"{stem}.json"
    with atomic_write(path, "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return CheckpointManifest(path=path, **{k: manifest[k] for k in _MANIFEST_FIELDS})


_MANIFEST_FIELDS = (
    "seq",
    "mutation_version",
    "backend",
    "weighted",
    "num_vertices",
    "num_edges",
    "npz",
    "crc32",
    "environment",
)


def load_checkpoint(manifest_path) -> tuple:
    """``(CSRSnapshot, CheckpointManifest)`` for one manifest, verifying
    the NPZ's CRC32.  Raises :class:`ValidationError` on any integrity
    failure (callers treat that checkpoint as nonexistent)."""
    manifest_path = Path(manifest_path)
    try:
        data = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"unreadable checkpoint manifest {manifest_path.name}: {exc}")
    if not isinstance(data, dict) or data.get("kind") != MANIFEST_KIND:
        raise ValidationError(f"{manifest_path.name} is not a checkpoint manifest")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValidationError(
            f"{manifest_path.name} has schema {data.get('schema_version')}, "
            f"this reader supports {SCHEMA_VERSION}"
        )
    missing = [k for k in _MANIFEST_FIELDS if k not in data]
    if missing:
        raise ValidationError(f"{manifest_path.name} is missing fields {missing}")
    manifest = CheckpointManifest(
        path=manifest_path, **{k: data[k] for k in _MANIFEST_FIELDS}
    )
    try:
        blob = manifest.npz_path.read_bytes()
    except OSError as exc:
        raise ValidationError(f"checkpoint data {manifest.npz} unreadable: {exc}")
    if zlib.crc32(blob) != manifest.crc32:
        raise ValidationError(
            f"checkpoint data {manifest.npz} fails its CRC32 — corrupt or truncated"
        )
    try:
        with np.load(BytesIO(blob)) as arrays:
            snap = CSRSnapshot(
                row_ptr=arrays["row_ptr"],
                col_idx=arrays["col_idx"],
                weights=arrays["weights"] if "weights" in arrays else None,
                num_vertices=int(arrays["num_vertices"]),
            )
    except (OSError, ValueError, KeyError) as exc:
        raise ValidationError(f"checkpoint data {manifest.npz} undecodable: {exc}")
    if snap.num_edges != manifest.num_edges:
        raise ValidationError(
            f"checkpoint {manifest.npz} holds {snap.num_edges} edges, "
            f"manifest claims {manifest.num_edges}"
        )
    return snap, manifest


def latest_valid_checkpoint(directory, *, min_seq: int = 0):
    """The newest loadable checkpoint with ``seq >= min_seq``, as
    ``(CSRSnapshot, CheckpointManifest)``; None when no checkpoint
    qualifies.  Invalid checkpoints (corrupt, truncated, deleted NPZ) are
    skipped, not fatal — recovery falls back to an older one.

    ``min_seq`` is the WAL's oldest on-disk seq: a checkpoint older than
    that could not have its tail replayed, so it cannot anchor recovery.
    """
    for manifest_path in reversed(checkpoint_manifests(directory)):
        try:
            snap, manifest = load_checkpoint(manifest_path)
        except ValidationError:
            continue
        if manifest.seq < min_seq:
            continue
        return snap, manifest
    return None
