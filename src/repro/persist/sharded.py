"""Durable per-shard stores for :class:`repro.api.sharding.ShardedGraph`.

:class:`ShardStores` gives every shard of a sharded service its own
segmented WAL and checkpoint directory::

    <directory>/
      shards.json              # service identity (shard count, layout)
      shard-0/wal/             # shard 0's segmented event log
      shard-0/checkpoints/
      shard-1/...

Each shard's writer subscribes to that shard's *own* facade event log —
the shard facade publishes only after its backend succeeds, so each
shard's durable order equals its applied order.  The router partitions
edges by source vertex, so per-shard order is the *only* order a
bit-identical rebuild needs: :meth:`ShardStores.rebuild` restores a dead
shard as checkpoint + WAL-tail replay, exactly the single-store recovery
of :func:`repro.persist.store.open_graph`, scoped to one shard.

Durability gaps: a WAL append that fails (disk fault) after the shard
backend already applied the mutation leaves that shard's log missing an
event.  The store counts it (:attr:`ShardStores.gaps`) and *refuses* to
rebuild from a gapped log — a rebuild would silently lose the unlogged
mutations.  :meth:`ShardStores.checkpoint_shard` heals a gap, because a
checkpoint captures the full live shard state.  Re-driving the failed
batch (:meth:`~repro.api.sharding.ShardedGraph.redrive`) is also safe:
edge mutations have replace semantics, so the re-published event both
reaches the WAL and leaves the shard state unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.eventlog.events import EdgeBatch
from repro.persist.checkpoint import (
    CheckpointManifest,
    latest_valid_checkpoint,
    write_checkpoint,
)
from repro.persist.store import CHECKPOINT_DIR, WAL_DIR, apply_event
from repro.persist.wal import (
    DEFAULT_SEGMENT_BYTES,
    WalWriter,
    list_segments,
    repair_wal,
    scan_wal,
)
from repro.io import atomic_write
from repro.util.errors import PersistError, ValidationError

__all__ = ["ShardStores", "ShardRecovery"]

SHARDS_FILE = "shards.json"
SHARDS_KIND = "repro-shard-stores"
SHARDS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ShardRecovery:
    """What one :meth:`ShardStores.rebuild` did to restore a shard."""

    shard: int
    #: WAL records replayed on top of the checkpoint (or from empty).
    replayed_events: int
    #: Checkpoint recovery started from (None → replayed from empty).
    recovered_checkpoint: CheckpointManifest | None
    #: True when recovery truncated a torn tail / dropped segments.
    repaired_torn_tail: bool


class _ShardSubscriber:
    """Event-log subscriber binding one shard's facade to its writer.

    A failed append counts a durability gap before re-raising (the shard
    backend already applied the mutation; the log missed it), mirroring
    :class:`repro.persist.store.DurableGraph.on_event`.
    """

    def __init__(self, stores: "ShardStores", shard: int) -> None:
        self.stores = stores
        self.shard = shard

    def on_event(self, event) -> None:
        stores, s = self.stores, self.shard
        try:
            stores.writers[s].append(event)
        except PersistError:
            stores.gaps[s] += 1
            raise
        if isinstance(event, EdgeBatch):
            stores._rows_since[s] += event.rows
        if (
            stores.checkpoint_every_rows
            and stores._rows_since[s] >= stores.checkpoint_every_rows
        ):
            stores.checkpoint_shard(s)


class ShardStores:
    """Per-shard WAL + checkpoint stores for a sharded service.

    Construct via
    :meth:`repro.api.sharding.ShardedGraph.attach_durability` — attaching
    subscribes a :class:`~repro.persist.wal.WalWriter` to every shard's
    event log, scanning (and repairing) any existing per-shard history
    first.  A shard that already holds edges, or a directory that already
    holds history, is anchored with an initial checkpoint so recovery
    never needs records that predate the attach.
    """

    def __init__(
        self,
        service,
        directory,
        *,
        fsync: str = "batch",
        segment_bytes: int | None = None,
        checkpoint_every_rows: int | None = None,
        opener=None,
    ) -> None:
        self.service = service
        self.directory = Path(directory)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes or DEFAULT_SEGMENT_BYTES)
        self.checkpoint_every_rows = checkpoint_every_rows
        self._opener = opener or open
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_or_write_meta()
        #: One :class:`WalWriter` per shard, index-aligned with
        #: ``service.shards``.
        self.writers: list = []
        #: Durability gaps per shard: events applied in memory but lost
        #: to a failed append.  A gapped shard refuses :meth:`rebuild`
        #: until :meth:`checkpoint_shard` heals it.
        self.gaps: list = [0] * service.num_shards
        self._rows_since: list = [0] * service.num_shards
        self._subs: list = []
        self.closed = False
        for s, shard in enumerate(self.service.shards):
            writer, _scan = self._open_writer(s)
            self.writers.append(writer)
            if shard.num_edges() > 0 or writer.next_seq > 0:
                # Anchor: the WAL from here on is a complete history only
                # relative to the shard's state at attach time.
                self._checkpoint_shard_with(s, writer, shard)
            sub = _ShardSubscriber(self, s)
            shard.events.subscribe(sub)
            self._subs.append(sub)

    # -- layout -------------------------------------------------------------------

    def shard_dir(self, s: int) -> Path:
        """Root directory of shard ``s``'s durable state."""
        return self.directory / f"shard-{s}"

    def wal_dir(self, s: int) -> Path:
        """Shard ``s``'s WAL segment directory."""
        return self.shard_dir(s) / WAL_DIR

    def checkpoint_dir(self, s: int) -> Path:
        """Shard ``s``'s checkpoint directory."""
        return self.shard_dir(s) / CHECKPOINT_DIR

    def _check_or_write_meta(self) -> None:
        path = self.directory / SHARDS_FILE
        identity = {
            "kind": SHARDS_KIND,
            "schema_version": SHARDS_SCHEMA_VERSION,
            "num_shards": self.service.num_shards,
            "num_vertices": self.service.num_vertices,
            "weighted": self.service.weighted,
        }
        if path.exists():
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ValidationError(f"unreadable shard-stores file {path}: {exc}")
            if not isinstance(meta, dict) or meta.get("kind") != SHARDS_KIND:
                raise ValidationError(f"{path} is not a shard-stores directory")
            for key, value in identity.items():
                if meta.get(key) != value:
                    raise ValidationError(
                        f"shard stores at {self.directory} hold "
                        f"{key}={meta.get(key)!r} but the service has "
                        f"{key}={value!r} — per-shard logs cannot be "
                        "reinterpreted under a different layout"
                    )
            return
        with atomic_write(path, "w") as fh:
            json.dump(identity, fh, indent=2)
            fh.write("\n")

    def _open_writer(self, s: int):
        """Scan (and repair) shard ``s``'s on-disk log, then open a
        writer positioned at the end of valid history."""
        wal_dir = self.wal_dir(s)
        scan = scan_wal(wal_dir)
        if scan.torn:
            repair_wal(scan)
        writer = WalWriter(
            wal_dir,
            start_seq=scan.next_seq,
            fsync=self.fsync,
            segment_bytes=self.segment_bytes,
            opener=self._opener,
        )
        return writer, scan

    # -- checkpoints --------------------------------------------------------------

    def _checkpoint_shard_with(self, s: int, writer: WalWriter, shard) -> CheckpointManifest:
        writer.flush()
        manifest = write_checkpoint(
            self.checkpoint_dir(s),
            shard.snapshot(),
            seq=writer.next_seq,
            backend=type(shard.backend).__name__,
            weighted=shard.weighted,
            mutation_version=shard.mutation_version,
        )
        self.gaps[s] = 0
        self._rows_since[s] = 0
        return manifest

    def checkpoint_shard(self, s: int) -> CheckpointManifest:
        """Write an atomic checkpoint of shard ``s``'s live state.

        Bounds the shard's recovery replay and heals any durability gap
        (the snapshot captures events a failed append never logged).
        """
        return self._checkpoint_shard_with(s, self.writers[s], self.service.shards[s])

    def checkpoint(self) -> list:
        """Checkpoint every shard; returns the manifests in shard order."""
        return [self.checkpoint_shard(s) for s in range(self.service.num_shards)]

    def sync(self) -> None:
        """Force every shard's buffered WAL records to disk."""
        for writer in self.writers:
            writer.flush()

    @property
    def durability_gap(self) -> int:
        """Total unlogged-but-applied events across all shards."""
        return sum(self.gaps)

    # -- recovery -----------------------------------------------------------------

    def rebuild(self, s: int, new_shard) -> ShardRecovery:
        """Restore shard ``s``'s durable history into ``new_shard``.

        The empty replacement facade is recovered exactly like a
        single-graph store: latest valid checkpoint restored (when one
        exists), then the WAL tail replayed through the facade — yielding
        a shard bit-identical to the lost one as of its last durable
        event.  The old writer is detached and a fresh one subscribed to
        ``new_shard``'s event log; the caller (the sharded service) swaps
        the facade in afterwards.

        Refuses (:class:`PersistError`) while the shard has a durability
        gap — the log is missing applied events, so a rebuild would
        silently lose them; :meth:`checkpoint_shard` heals the gap first.
        """
        if self.gaps[s] > 0:
            raise PersistError(
                f"shard {s} has {self.gaps[s]} durability gap(s): events "
                "applied in memory never reached its WAL, so a rebuild "
                "would lose them — checkpoint_shard() heals the gap "
                "(while the shard is still alive)",
                op="write",
            )
        old_shard = self.service.shards[s]
        old_shard.events.unsubscribe(self._subs[s])
        self.writers[s].close()
        wal_dir = self.wal_dir(s)
        scan = scan_wal(wal_dir)
        repaired = False
        if scan.torn:
            repaired = repair_wal(scan)
        found = latest_valid_checkpoint(
            self.checkpoint_dir(s),
            min_seq=scan.start_seq if scan.events else 0,
        )
        manifest = None
        replay_from = 0
        if found is not None:
            snap, manifest = found
            replay_from = manifest.seq
            # An all-empty snapshot has nothing to restore, and restoring
            # it would mark the backend built — breaking replay of a
            # logged bulk_build that expects an empty graph.
            if manifest.num_edges:
                new_shard.restore_snapshot(snap)
        elif scan.events and scan.start_seq > 0:
            raise ValidationError(
                f"shard {s}'s WAL history starts at seq {scan.start_seq} but "
                "no valid checkpoint covers the records before it — the "
                "shard cannot be recovered"
            )
        to_replay = [e for e in scan.events if e.seq >= replay_from]
        for event in to_replay:
            apply_event(new_shard, event)
        next_seq = scan.next_seq
        if replay_from > next_seq:
            # The checkpoint post-dates every surviving WAL record; clear
            # them so the new segment's seq range stays contiguous.
            for seg in list_segments(wal_dir):
                seg.unlink()
            next_seq = replay_from
        writer = WalWriter(
            wal_dir,
            start_seq=next_seq,
            fsync=self.fsync,
            segment_bytes=self.segment_bytes,
            opener=self._opener,
        )
        self.writers[s] = writer
        sub = _ShardSubscriber(self, s)
        new_shard.events.subscribe(sub)
        self._subs[s] = sub
        self._rows_since[s] = 0
        return ShardRecovery(
            shard=s,
            replayed_events=len(to_replay),
            recovered_checkpoint=manifest,
            repaired_torn_tail=repaired,
        )

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Detach every subscriber and close every writer (idempotent)."""
        if self.closed:
            return
        for s, shard in enumerate(self.service.shards):
            shard.events.unsubscribe(self._subs[s])
            self.writers[s].close()
        self.closed = True

    def __enter__(self) -> "ShardStores":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardStores({self.service.num_shards} shards, "
            f"dir={str(self.directory)!r}, fsync={self.fsync!r})"
        )
