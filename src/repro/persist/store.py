"""The durable store: a :class:`repro.api.Graph` that survives crashes.

:func:`open_graph` ties the pieces together under one directory::

    store/
      store.json         # graph identity (backend, |V|, weighted, policies)
      wal/seg-*.wal      # the write-ahead event log (repro.persist.wal)
      checkpoints/       # atomic snapshots (repro.persist.checkpoint)

Opening recovers: load the latest valid checkpoint into a fresh backend
(:meth:`repro.api.Graph.restore_snapshot`), replay the WAL records at or
after the checkpoint's seq through the facade (:func:`apply_event`), then
attach a :class:`~repro.persist.wal.WalWriter` as an event-log subscriber
so every subsequent mutation is logged before control returns to the
caller.  A torn final record — the partial write of a crash — is detected
by the scan's CRC/length framing and truncated away (writer mode only).
Replay re-applies the *normalized* batches the backend originally saw,
so the recovered graph's :meth:`~repro.api.Graph.snapshot` is
bit-identical to the lost instance's (pinned by the contract tests).

``read_only=True`` opens the same directory as a **read replica**: no
writer is attached, no file is ever modified, and :meth:`DurableGraph.tail`
applies whatever records another process has appended since the last
call — the replica's ``graph.events`` republishes them, so cursor-based
incremental analytics (:mod:`repro.stream.incremental`) work unchanged.

Single-writer discipline is assumed, not enforced: one process owns a
store directory for writing; any number may follow it read-only.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.facade import Graph
from repro.eventlog.events import EdgeBatch, StructuralEvent
from repro.io import atomic_write
from repro.persist.checkpoint import (
    CheckpointManifest,
    env_fingerprint,
    latest_valid_checkpoint,
    write_checkpoint,
)
from repro.persist.wal import (
    DEFAULT_SEGMENT_BYTES,
    LogFollower,
    WalWriter,
    list_segments,
    repair_wal,
    scan_wal,
)
from repro.util.errors import PersistError, ValidationError

__all__ = ["DurableGraph", "open_graph", "apply_event"]

STORE_FILE = "store.json"
WAL_DIR = "wal"
CHECKPOINT_DIR = "checkpoints"
STORE_KIND = "repro-durable-graph"
STORE_SCHEMA_VERSION = 1

#: Replayable structural reasons → how :func:`apply_event` re-applies
#: them.  Maintenance events (rehash, tombstone flush) do not change the
#: logical edge set, and the router-level fault markers the sharded
#: service publishes (partial dispatch, shard kill/rebuild) describe
#: events *about* the log rather than edge mutations, so replay skips
#: them all.
_SKIPPED_REASONS = ("rehash", "flush_tombstones", "partial_dispatch", "kill_shard", "rebuild_shard")


def apply_event(graph: Graph, event) -> None:
    """Re-apply one logged event through the facade.

    Replay is content-deterministic: batches were normalized before they
    were logged, and edge mutations have replace semantics, so applying
    the same history to the same starting state reproduces the same
    logical edge set (and hence a bit-identical snapshot).
    """
    if isinstance(event, EdgeBatch):
        if event.is_insert:
            graph.insert_edges(event.src, event.dst, event.weights)
        else:
            graph.delete_edges(event.src, event.dst)
        return
    if isinstance(event, StructuralEvent):
        if event.reason in _SKIPPED_REASONS:
            return
        if event.payload is None:
            raise ValidationError(
                f"structural event {event.reason!r} (seq {event.seq}) carries no "
                "payload — this WAL was written before payloads existed and "
                "cannot be replayed"
            )
        if event.reason == "delete_vertices":
            graph.delete_vertices(event.payload)
            return
        if event.reason == "bulk_build":
            graph.bulk_build(event.payload)
            return
        raise ValidationError(f"cannot replay structural event {event.reason!r}")
    raise ValidationError(f"cannot replay event of type {type(event).__name__}")


class DurableGraph:
    """A recovered :class:`~repro.api.Graph` plus its durability plumbing.

    Mutate through :attr:`graph` exactly as usual — the attached WAL
    writer observes the event log, so durability is transparent.  Call
    :meth:`checkpoint` (or set ``checkpoint_every_rows``) to bound
    recovery's replay length, :meth:`sync` to force the WAL to disk, and
    :meth:`close` when done.  Read replicas (``read_only=True``) expose
    :meth:`tail` instead of a writer.
    """

    def __init__(
        self,
        directory: Path,
        graph: Graph,
        *,
        backend_name: str,
        wal: WalWriter | None,
        follower: LogFollower | None,
        checkpoint_every_rows: int | None,
        recovered_checkpoint: CheckpointManifest | None,
        replayed_events: int,
        repaired_torn_tail: bool,
    ) -> None:
        self.directory = Path(directory)
        self.graph = graph
        self.backend_name = backend_name
        self.wal = wal
        self.follower = follower
        self.checkpoint_every_rows = checkpoint_every_rows
        #: Manifest recovery started from (None → replayed from empty).
        self.recovered_checkpoint = recovered_checkpoint
        #: WAL records replayed during recovery.
        self.replayed_events = replayed_events
        #: True when recovery truncated a torn tail / dropped segments.
        self.repaired_torn_tail = repaired_torn_tail
        self.last_checkpoint = recovered_checkpoint
        self._rows_since_checkpoint = 0
        #: Events applied in memory but lost to a failed WAL append (a
        #: crash now would recover to a state missing them).  Healed by
        #: :meth:`checkpoint`, which captures the full live state.
        self.durability_gap = 0
        if wal is not None:
            graph.events.subscribe(self)

    @property
    def read_only(self) -> bool:
        return self.wal is None

    # -- event-log subscriber (writer mode) --------------------------------------

    def on_event(self, event) -> None:
        try:
            self.wal.append(event)
        except PersistError:
            # The mutation already applied in memory; the WAL missed it.
            # Record the gap (checkpoint() heals it) and let the typed
            # error reach the caller via the event log's re-raise.
            self.durability_gap += 1
            raise
        if isinstance(event, EdgeBatch):
            self._rows_since_checkpoint += event.rows
        if (
            self.checkpoint_every_rows
            and self._rows_since_checkpoint >= self.checkpoint_every_rows
        ):
            self.checkpoint()

    # -- durability operations ---------------------------------------------------

    def checkpoint(self) -> CheckpointManifest:
        """Write an atomic checkpoint of the current graph.

        The WAL is flushed first and the manifest records the current
        durable seq, so recovery replays exactly the records this
        snapshot does not already contain.
        """
        if self.wal is None:
            raise ValidationError("read-only replicas cannot write checkpoints")
        self.wal.flush()
        snap = self.graph.snapshot()
        manifest = write_checkpoint(
            self.directory / CHECKPOINT_DIR,
            snap,
            seq=self.wal.next_seq,
            backend=self.backend_name,
            weighted=self.graph.weighted,
            mutation_version=self.graph.mutation_version,
        )
        self.last_checkpoint = manifest
        self._rows_since_checkpoint = 0
        # The snapshot captures the full live state, including any
        # events a failed append never logged — the gap is healed.
        self.durability_gap = 0
        return manifest

    def tail(self) -> int:
        """Read-replica catch-up: apply the records another process has
        appended since the last call; returns how many were applied."""
        if self.follower is None:
            raise ValidationError("tail() is for read replicas (open with read_only=True)")
        events = self.follower.poll()
        for event in events:
            apply_event(self.graph, event)
        return len(events)

    def sync(self) -> None:
        """Force buffered WAL records to disk (no-op for replicas)."""
        if self.wal is not None:
            self.wal.flush()

    def close(self) -> None:
        """Detach from the event log and close the WAL."""
        if self.wal is not None:
            self.graph.events.unsubscribe(self)
            self.wal.close()
            self.wal = None

    def __enter__(self) -> "DurableGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "read-only" if self.read_only else "writer"
        return f"DurableGraph({self.backend_name!r}, {mode}, dir={str(self.directory)!r})"


def _load_store_meta(path: Path) -> dict:
    try:
        meta = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"unreadable store file {path}: {exc}")
    if not isinstance(meta, dict) or meta.get("kind") != STORE_KIND:
        raise ValidationError(f"{path} is not a durable-graph store file")
    if meta.get("schema_version") != STORE_SCHEMA_VERSION:
        raise ValidationError(
            f"{path} has schema {meta.get('schema_version')}, "
            f"this reader supports {STORE_SCHEMA_VERSION}"
        )
    return meta


def _check_identity(meta: dict, requested: dict) -> None:
    """Explicitly requested identity must match what the store holds —
    silently reinterpreting persisted bytes under a different backend or
    vertex space would 'recover' a different graph."""
    for key, value in requested.items():
        if value is not None and value != meta[key]:
            raise ValidationError(
                f"store holds {key}={meta[key]!r} but {key}={value!r} was "
                "requested — open the store with its recorded identity (or "
                "omit the argument to accept it)"
            )


def open_graph(
    directory,
    backend: str | None = None,
    num_vertices: int | None = None,
    *,
    weighted: bool | None = None,
    self_loops: str = "drop",
    dedup_batches: bool = False,
    default_weight: int = 0,
    backend_kwargs: dict | None = None,
    fsync: str = "batch",
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    checkpoint_every_rows: int | None = None,
    read_only: bool = False,
    wal_opener=None,
) -> DurableGraph:
    """Open (creating or recovering) a durable graph store at ``directory``.

    First open requires ``num_vertices`` (and takes ``backend``, default
    ``"slabhash"``, plus the usual facade policies); the identity is
    persisted to ``store.json`` and later opens recover with it — passing
    a *different* explicit identity raises :class:`ValidationError`.
    ``fsync``, ``segment_bytes`` and ``checkpoint_every_rows`` are
    per-open operational knobs, not identity.  See the module docstring
    for recovery semantics and ``read_only`` replicas.
    """
    directory = Path(directory)
    store_path = directory / STORE_FILE
    if store_path.exists():
        meta = _load_store_meta(store_path)
        _check_identity(
            meta, {"backend": backend, "num_vertices": num_vertices, "weighted": weighted}
        )
        if backend_kwargs and backend_kwargs != meta["backend_kwargs"]:
            raise ValidationError(
                f"store was created with backend_kwargs={meta['backend_kwargs']!r}; "
                f"got {backend_kwargs!r}"
            )
    else:
        if read_only:
            raise ValidationError(
                f"no durable store at {directory} — a read replica needs an "
                "existing store to follow"
            )
        if num_vertices is None:
            raise ValidationError("creating a new store requires num_vertices")
        meta = {
            "kind": STORE_KIND,
            "schema_version": STORE_SCHEMA_VERSION,
            "backend": backend or "slabhash",
            "num_vertices": int(num_vertices),
            "weighted": bool(weighted),
            "self_loops": self_loops,
            "dedup_batches": bool(dedup_batches),
            "default_weight": int(default_weight),
            "backend_kwargs": dict(backend_kwargs or {}),
            "environment": env_fingerprint(),
        }
        directory.mkdir(parents=True, exist_ok=True)
        with atomic_write(store_path, "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")

    graph = Graph.create(
        meta["backend"],
        meta["num_vertices"],
        weighted=meta["weighted"],
        self_loops=meta["self_loops"],
        dedup_batches=meta["dedup_batches"],
        default_weight=meta["default_weight"],
        **meta["backend_kwargs"],
    )

    wal_dir = directory / WAL_DIR
    scan = scan_wal(wal_dir)
    repaired = False
    if scan.torn and not read_only:
        repaired = repair_wal(scan)

    found = latest_valid_checkpoint(
        directory / CHECKPOINT_DIR,
        min_seq=scan.start_seq if scan.events else 0,
    )
    manifest = None
    replay_from = 0
    if found is not None:
        snap, manifest = found
        replay_from = manifest.seq
        # An all-empty snapshot has nothing to restore, and restoring it
        # would mark the backend built — breaking replay of a logged
        # bulk_build that legitimately expects an empty graph.
        if manifest.num_edges:
            graph.restore_snapshot(snap)
    elif scan.events and scan.start_seq > 0:
        raise ValidationError(
            f"WAL history starts at seq {scan.start_seq} but no valid "
            "checkpoint covers the records before it — the store cannot be "
            "recovered"
        )

    to_replay = [e for e in scan.events if e.seq >= replay_from]
    for event in to_replay:
        apply_event(graph, event)

    wal = None
    follower = None
    if read_only:
        follower = LogFollower(wal_dir, start_seq=scan.next_seq)
    else:
        next_seq = scan.next_seq
        if replay_from > next_seq:
            # The checkpoint post-dates every surviving WAL record (the
            # log was lost after the checkpoint was cut).  Every on-disk
            # record is already baked into the snapshot; clear them so
            # the new segment's seq range stays contiguous.
            for seg in list_segments(wal_dir):
                seg.unlink()
            next_seq = replay_from
        wal = WalWriter(
            wal_dir,
            start_seq=next_seq,
            fsync=fsync,
            segment_bytes=segment_bytes,
            opener=wal_opener or open,
        )

    return DurableGraph(
        directory,
        graph,
        backend_name=meta["backend"],
        wal=wal,
        follower=follower,
        checkpoint_every_rows=checkpoint_every_rows,
        recovered_checkpoint=manifest,
        replayed_events=len(to_replay),
        repaired_torn_tail=repaired,
    )
