"""Segmented append-only write-ahead log for graph events.

The durable half of the event-log contract: every normalized
:class:`~repro.eventlog.EdgeBatch` / :class:`~repro.eventlog.StructuralEvent`
a :class:`repro.api.Graph` publishes is framed as one length- and
CRC32-checked record and appended to a segment file.  Recovery replays
the records through the facade (:func:`repro.persist.store.apply_event`),
so a crash loses at most the tail the fsync policy allowed in flight.

On-disk format (all integers little-endian):

- **segment** ``seg-<first_seq, 20 digits>.wal``: a 16-byte header
  (``b"WSEG"``, format version, first record seq) followed by records.
  The writer rotates to a new segment once the current one exceeds
  ``segment_bytes`` — always at a record boundary, and the new segment's
  name/header seq equals the previous segment's end, so contiguity is
  checkable without reading ahead;
- **record**: ``b"WREC"`` + payload length (uint32) + CRC32 of the
  payload (uint32) + payload.  The payload re-stamps the event with its
  *durable* sequence number (the in-memory log restarts at 0 after every
  recovery; the WAL seq is monotone across process lifetimes) and keeps
  the publisher's before/after ``mutation_version`` as provenance.

A torn tail — short header, short payload, CRC mismatch, or a seq
discontinuity — marks the end of trustworthy history: :func:`scan_wal`
stops there, and everything after (including later segments, whose
prefix is now unanchored) is reported for :func:`repair_wal` to discard.

Durability knobs (``fsync=``): ``"always"`` fsyncs after every record
(each applied batch survives a crash), ``"batch"`` fsyncs on
:meth:`WalWriter.flush` / rotation / close (the default: checkpoints and
explicit syncs are durable, the OS flushes the rest), ``"never"`` leaves
flushing entirely to the OS (benchmarks, tests).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.coo import COO
from repro.eventlog.events import EdgeBatch, StructuralEvent
from repro.util.errors import PersistError, ValidationError

__all__ = [
    "WalWriter",
    "LogFollower",
    "WalScan",
    "scan_wal",
    "repair_wal",
    "list_segments",
    "encode_record",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
]

RECORD_MAGIC = b"WREC"
SEGMENT_MAGIC = b"WSEG"
SEGMENT_VERSION = 1

#: Segment header: magic, format version, seq of the first record.
SEGMENT_HEADER = struct.Struct("<4sIq")
#: Record header: magic, payload byte length, CRC32 of the payload.
RECORD_HEADER = struct.Struct("<4sII")

FSYNC_POLICIES = ("always", "batch", "never")
DEFAULT_SEGMENT_BYTES = 4 << 20

_KIND_EDGE_BATCH = 1
_KIND_STRUCTURAL = 2

_PAYLOAD_NONE = 0
_PAYLOAD_VERTEX_IDS = 1
_PAYLOAD_COO = 2

_FLAG_VERSIONED = 1
_FLAG_INSERT = 2
_FLAG_WEIGHTED = 4

# Common payload prefix: kind, durable seq, before/after version, flags.
_COMMON = struct.Struct("<BqqqB")
_EDGE_EXTRA = struct.Struct("<qq")  # retention rows, array length
_STRUCT_EXTRA = struct.Struct("<H")  # reason byte length
_VIDS_EXTRA = struct.Struct("<q")  # vertex-id array length
_COO_EXTRA = struct.Struct("<qqB")  # num_vertices, array length, has_weights


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


def _i64_bytes(arr) -> bytes:
    return np.ascontiguousarray(arr, dtype=np.int64).tobytes()


def _read_i64(buf: bytes, off: int, n: int):
    if n < 0 or off + 8 * n > len(buf):
        raise ValidationError("array extends past the record payload")
    return np.frombuffer(buf, dtype="<i8", count=n, offset=off).copy(), off + 8 * n


def encode_record(event, seq: int) -> bytes:
    """Frame one event as a complete WAL record (header + payload),
    re-stamped with its durable sequence number ``seq``."""
    payload = _encode_payload(event, int(seq))
    return RECORD_HEADER.pack(RECORD_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _encode_payload(event, seq: int) -> bytes:
    flags, before, after = 0, 0, 0
    if event.before_version is not None and event.after_version is not None:
        flags = _FLAG_VERSIONED
        before, after = int(event.before_version), int(event.after_version)
    if isinstance(event, EdgeBatch):
        if event.is_insert:
            flags |= _FLAG_INSERT
        if event.weights is not None:
            flags |= _FLAG_WEIGHTED
        parts = [
            _COMMON.pack(_KIND_EDGE_BATCH, seq, before, after, flags),
            _EDGE_EXTRA.pack(int(event.rows), int(event.src.shape[0])),
            _i64_bytes(event.src),
            _i64_bytes(event.dst),
        ]
        if event.weights is not None:
            parts.append(_i64_bytes(event.weights))
        return b"".join(parts)
    if isinstance(event, StructuralEvent):
        reason = event.reason.encode("utf-8")
        parts = [
            _COMMON.pack(_KIND_STRUCTURAL, seq, before, after, flags),
            _STRUCT_EXTRA.pack(len(reason)),
            reason,
        ]
        payload = event.payload
        if payload is None:
            parts.append(bytes([_PAYLOAD_NONE]))
        elif isinstance(payload, COO):
            parts.append(bytes([_PAYLOAD_COO]))
            parts.append(
                _COO_EXTRA.pack(
                    int(payload.num_vertices),
                    int(payload.src.shape[0]),
                    0 if payload.weights is None else 1,
                )
            )
            parts.append(_i64_bytes(payload.src))
            parts.append(_i64_bytes(payload.dst))
            if payload.weights is not None:
                parts.append(_i64_bytes(payload.weights))
        else:
            vids = np.ascontiguousarray(payload, dtype=np.int64)
            if vids.ndim != 1:
                raise ValidationError(
                    f"structural payload of {event.reason!r} must be a 1-D "
                    "vertex-id array or a COO to be WAL-encodable"
                )
            parts.append(bytes([_PAYLOAD_VERTEX_IDS]))
            parts.append(_VIDS_EXTRA.pack(int(vids.shape[0])))
            parts.append(vids.tobytes())
        return b"".join(parts)
    raise ValidationError(f"cannot WAL-encode event of type {type(event).__name__}")


def _decode_payload(buf: bytes):
    kind, seq, before, after, flags = _COMMON.unpack_from(buf, 0)
    off = _COMMON.size
    versioned = bool(flags & _FLAG_VERSIONED)
    bv = before if versioned else None
    av = after if versioned else None
    if kind == _KIND_EDGE_BATCH:
        rows, n = _EDGE_EXTRA.unpack_from(buf, off)
        off += _EDGE_EXTRA.size
        src, off = _read_i64(buf, off, n)
        dst, off = _read_i64(buf, off, n)
        weights = None
        if flags & _FLAG_WEIGHTED:
            weights, off = _read_i64(buf, off, n)
        _check_consumed(buf, off)
        return EdgeBatch(
            seq=seq,
            before_version=bv,
            after_version=av,
            is_insert=bool(flags & _FLAG_INSERT),
            src=src,
            dst=dst,
            weights=weights,
            rows=int(rows),
        )
    if kind == _KIND_STRUCTURAL:
        (rlen,) = _STRUCT_EXTRA.unpack_from(buf, off)
        off += _STRUCT_EXTRA.size
        if off + rlen + 1 > len(buf):
            raise ValidationError("structural reason extends past the payload")
        reason = buf[off : off + rlen].decode("utf-8")
        off += rlen
        pkind = buf[off]
        off += 1
        if pkind == _PAYLOAD_NONE:
            payload = None
        elif pkind == _PAYLOAD_VERTEX_IDS:
            (n,) = _VIDS_EXTRA.unpack_from(buf, off)
            off += _VIDS_EXTRA.size
            payload, off = _read_i64(buf, off, n)
        elif pkind == _PAYLOAD_COO:
            nv, n, has_w = _COO_EXTRA.unpack_from(buf, off)
            off += _COO_EXTRA.size
            src, off = _read_i64(buf, off, n)
            dst, off = _read_i64(buf, off, n)
            w = None
            if has_w:
                w, off = _read_i64(buf, off, n)
            payload = COO(src, dst, int(nv), weights=w)
        else:
            raise ValidationError(f"unknown structural payload kind {pkind}")
        _check_consumed(buf, off)
        return StructuralEvent(
            seq=seq, before_version=bv, after_version=av, reason=reason, payload=payload
        )
    raise ValidationError(f"unknown WAL record kind {kind}")


def _check_consumed(buf: bytes, off: int) -> None:
    if off != len(buf):
        raise ValidationError(f"record payload has {len(buf) - off} trailing bytes")


def _try_record(data: bytes, offset: int, expected_seq: int):
    """``(event, end_offset, None)`` for a valid record at ``offset``, or
    ``(None, offset, why)`` when the bytes there are torn or corrupt."""
    body = offset + RECORD_HEADER.size
    if body > len(data):
        return None, offset, f"truncated record header ({len(data) - offset} bytes)"
    magic, length, crc = RECORD_HEADER.unpack_from(data, offset)
    if magic != RECORD_MAGIC:
        return None, offset, "bad record magic"
    if body + length > len(data):
        return None, offset, f"truncated payload ({len(data) - body} of {length} bytes)"
    payload = data[body : body + length]
    if zlib.crc32(payload) != crc:
        return None, offset, "payload CRC mismatch"
    try:
        event = _decode_payload(payload)
    except (ValidationError, struct.error, UnicodeDecodeError) as exc:
        return None, offset, f"undecodable payload: {exc}"
    if event.seq != expected_seq:
        return None, offset, f"seq discontinuity (record {event.seq}, expected {expected_seq})"
    return event, body + length, None


# ---------------------------------------------------------------------------
# Scanning and repair
# ---------------------------------------------------------------------------


def list_segments(directory) -> list:
    """Segment files of a WAL directory in seq order (names sort)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir() if p.name.startswith("seg-") and p.name.endswith(".wal")
    )


def _segment_first_seq(path: Path) -> int:
    return int(path.name[len("seg-") : -len(".wal")])


def _parse_segment_header(data: bytes):
    if len(data) < SEGMENT_HEADER.size:
        return None, "truncated segment header"
    magic, version, first_seq = SEGMENT_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        return None, "bad segment magic"
    if version != SEGMENT_VERSION:
        return None, f"unsupported segment version {version}"
    return int(first_seq), None


@dataclass
class WalScan:
    """Everything :func:`scan_wal` learned about a WAL directory."""

    #: Decoded events of the valid prefix, in seq order.
    events: list = field(default_factory=list)
    #: Seq the next appended record must get (end of valid history).
    next_seq: int = 0
    #: Seq of the oldest record on disk (0 when the WAL is empty).
    start_seq: int = 0
    #: Segment holding the end of valid history (None when empty).
    tail_path: Path | None = None
    #: Valid byte length of ``tail_path`` (bytes past it are torn).
    tail_offset: int = 0
    #: True when trailing bytes or whole segments must be discarded.
    torn: bool = False
    #: Human-readable reason the scan stopped early.
    torn_detail: str | None = None
    #: Segments contributing valid records, in order.
    segments: list = field(default_factory=list)
    #: Segments wholly past the corruption point (untrustworthy history).
    dropped: list = field(default_factory=list)


def scan_wal(directory) -> WalScan:
    """Read a WAL directory's valid prefix; never modifies any file.

    Stops at the first torn or corrupt record (a partially flushed tail
    after a crash, a flipped bit) or at a segment whose header does not
    continue the previous segment's seq range.  Everything after the stop
    point — including later segments — is reported in ``dropped``: a gap
    makes any suffix unanchored history that replay must not trust.
    """
    scan = WalScan()
    segments = list_segments(directory)
    expected: int | None = None
    for i, seg in enumerate(segments):
        data = seg.read_bytes()
        first_seq, why = _parse_segment_header(data)
        if first_seq is None or (expected is not None and first_seq != expected):
            if first_seq is not None:
                why = f"starts at seq {first_seq}, expected {expected}"
            scan.torn = True
            scan.torn_detail = f"{seg.name}: {why}"
            scan.dropped = list(segments[i:])
            break
        if expected is None:
            expected = first_seq
            scan.start_seq = first_seq
        scan.segments.append(seg)
        scan.tail_path = seg
        offset = SEGMENT_HEADER.size
        stopped = False
        while offset < len(data):
            event, offset, why = _try_record(data, offset, expected)
            if event is None:
                scan.torn = True
                scan.torn_detail = f"{seg.name}@{offset}: {why}"
                stopped = True
                break
            scan.events.append(event)
            expected += 1
        scan.tail_offset = offset
        if stopped:
            scan.dropped = list(segments[i + 1 :])
            break
    scan.next_seq = expected if expected is not None else 0
    return scan


def repair_wal(scan: WalScan) -> bool:
    """Make the on-disk WAL match ``scan``'s valid prefix: truncate the
    torn tail bytes and unlink dropped segments.  Writer-side only — a
    read-only follower must never modify another process's log.  Returns
    True when anything changed."""
    changed = False
    if scan.tail_path is not None and scan.tail_path.stat().st_size > scan.tail_offset:
        with open(scan.tail_path, "r+b") as fh:
            fh.truncate(scan.tail_offset)
        changed = True
    for seg in scan.dropped:
        if seg.exists():
            seg.unlink()
            changed = True
    return changed


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def _fsync_file(fh) -> None:
    """Durably sync ``fh``: its own ``fsync()`` when it has one (the
    chaos-injection seam), else ``os.fsync`` on the descriptor."""
    sync = getattr(fh, "fsync", None)
    if callable(sync):
        sync()
    else:
        os.fsync(fh.fileno())


class WalWriter:
    """Appends framed events to segment files (see module docstring).

    Designed to sit directly on ``graph.events.subscribe(writer)`` — the
    :meth:`on_event` hook logs every published event.  Single-writer: the
    store layer assumes one process owns a WAL directory at a time.
    """

    def __init__(
        self,
        directory,
        *,
        start_seq: int = 0,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        opener=open,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValidationError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if segment_bytes <= SEGMENT_HEADER.size:
            raise ValidationError("segment_bytes must exceed the segment header size")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        #: File opener (``callable(path, mode) -> file``) — the fault
        #: seam chaos testing injects through (``FaultyStore.opener``).
        self._opener = opener
        #: Durable seq the next appended record will get.
        self.next_seq = int(start_seq)
        #: True when a failed append could not be cleaned up and the tail
        #: segment may hold a partial record (see :class:`PersistError`).
        self.broken = False
        # Wall-clock accounting for the per-batch append overhead metric.
        self.bytes_written = 0
        self.records_written = 0
        self.rows_written = 0
        self.append_seconds = 0.0
        self._fh = None
        self._segment_size = 0
        existing = list_segments(self.directory)
        if existing:
            # Resume appending into the (already repaired) tail segment.
            tail = existing[-1]
            try:
                self._fh = self._opener(tail, "ab")
            except OSError as exc:
                raise PersistError(
                    f"cannot reopen WAL tail segment {tail.name}: {exc}", op="open"
                ) from exc
            self._segment_size = tail.stat().st_size

    # -- appending ---------------------------------------------------------------

    def on_event(self, event) -> None:
        """Event-log subscriber hook."""
        self.append(event)

    def append(self, event) -> int:
        """Frame and append one event; returns its durable seq.

        Failure contract: an :class:`OSError` from the write or fsync is
        wrapped in a typed :class:`PersistError`, the record's durable
        seq is *not* consumed, and any partially-written bytes are
        truncated away so the on-disk log stays ``scan_wal``-clean.
        Only when that truncation itself fails does the writer mark
        itself :attr:`broken` (``PersistError.broken`` is True) and
        refuse further appends — the on-disk tail then needs
        :func:`repair_wal` before reuse.
        """
        if self.broken:
            raise PersistError(
                "WAL writer is broken (an earlier fault could not be "
                "cleaned up); repair the log and construct a new writer",
                op="write",
                broken=True,
            )
        t0 = time.perf_counter()
        record = encode_record(event, self.next_seq)
        if self._fh is None or (
            self._segment_size > SEGMENT_HEADER.size
            and self._segment_size + len(record) > self.segment_bytes
        ):
            self._open_segment()
        start = self._segment_size
        try:
            self._fh.write(record)
            self._segment_size += len(record)
            if self.fsync == "always":
                self._fh.flush()
                _fsync_file(self._fh)
        except OSError as exc:
            self._rewind_tail(start, exc)  # always raises PersistError
        self.bytes_written += len(record)
        self.records_written += 1
        if isinstance(event, EdgeBatch):
            self.rows_written += event.rows
        seq = self.next_seq
        self.next_seq += 1
        self.append_seconds += time.perf_counter() - t0
        return seq

    def _rewind_tail(self, start: int, exc: OSError) -> None:
        """Restore a scan-clean tail after a failed write/fsync, then
        raise the typed :class:`PersistError` describing the fault."""
        op = "fsync" if self._segment_size > start else "write"
        try:
            # truncate() flushes earlier buffered records first, then
            # cuts the file back to exactly the end of the last complete
            # record — discarding the partial (or unsynced) one.  The
            # seek matters: truncation does not move the position, and
            # writing past it would leave a zero-filled hole the scanner
            # would read as a torn record.
            self._fh.truncate(start)
            self._fh.seek(start)
            self._segment_size = start
        except OSError as trunc_exc:
            self.broken = True
            fh, self._fh = self._fh, None
            try:
                fh.close()
            except OSError:
                pass
            raise PersistError(
                f"WAL append failed ({exc}) and the torn tail could not "
                f"be truncated ({trunc_exc}); the log needs repair_wal()",
                op=op,
                broken=True,
            ) from exc
        raise PersistError(
            f"WAL append failed; the partial record was truncated away "
            f"and the log is still clean: {exc}",
            op=op,
        ) from exc

    def _open_segment(self) -> None:
        if self._fh is not None:
            self.flush()
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        path = self.directory / f"seg-{self.next_seq:020d}.wal"
        try:
            fh = self._opener(path, "wb")
        except OSError as exc:
            raise PersistError(
                f"cannot open WAL segment {path.name}: {exc}", op="open"
            ) from exc
        try:
            fh.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, self.next_seq))
            if self.fsync != "never":
                fh.flush()
                _fsync_file(fh)
        except OSError as exc:
            try:
                fh.close()
            except OSError:
                pass
            try:
                path.unlink()  # a partial header is not a valid segment
            except OSError:
                pass
            raise PersistError(
                f"cannot write WAL segment header {path.name}: {exc}", op="open"
            ) from exc
        self._fh = fh
        self._segment_size = SEGMENT_HEADER.size

    def rotate(self) -> None:
        """Force the next record into a fresh segment."""
        if self._fh is not None and self._segment_size > SEGMENT_HEADER.size:
            try:
                self.flush()
            finally:
                fh, self._fh = self._fh, None
                try:
                    fh.close()
                except OSError:
                    pass

    # -- durability --------------------------------------------------------------

    def flush(self) -> None:
        """Push buffered records to the OS (and to disk unless
        ``fsync="never"``).

        A no-op on a closed or broken writer — safe to call during
        teardown after a failed append.  A real flush/fsync failure on a
        live handle raises :class:`PersistError` (``op="fsync"``).
        """
        if self._fh is None:
            return
        try:
            self._fh.flush()
            if self.fsync != "never":
                _fsync_file(self._fh)
        except OSError as exc:
            raise PersistError(f"WAL flush failed: {exc}", op="fsync") from exc

    def close(self) -> None:
        """Flush (best-effort) and close the tail segment.

        Idempotent and exception-free: teardown after a fault must not
        raise a second confusing error from a broken handle — a flush or
        close failure here is swallowed (the append that caused it
        already surfaced a typed :class:`PersistError`).
        """
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            fh.flush()
            if self.fsync != "never":
                _fsync_file(fh)
        except OSError:
            pass
        try:
            fh.close()
        except OSError:
            pass

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Follower
# ---------------------------------------------------------------------------


class LogFollower:
    """Incremental reader of a WAL directory another process writes.

    Each :meth:`poll` decodes the records appended since the last poll
    and returns those with seq >= ``start_seq``.  A partial record at the
    tail is *normal* (the writer may be mid-append) — the follower simply
    stops there and retries on the next poll; it never modifies files.
    Rotation is followed by name: a finished segment's successor is
    exactly ``seg-<next_seq>.wal``.
    """

    def __init__(self, directory, *, start_seq: int = 0) -> None:
        self.directory = Path(directory)
        self.start_seq = int(start_seq)
        #: Seq of the next record to decode (records below ``start_seq``
        #: are decoded for position but not returned).
        self.next_seq = 0
        self._segment: Path | None = None
        self._offset = 0
        self._started = False

    def poll(self) -> list:
        """All newly complete events with seq >= ``start_seq``."""
        out: list = []
        while True:
            if self._segment is None:
                candidate = (
                    self.directory / f"seg-{self.next_seq:020d}.wal"
                    if self._started
                    else self._initial_segment()
                )
                if candidate is None or not candidate.exists():
                    return out
                first_seq, _why = _parse_segment_header(candidate.read_bytes())
                if first_seq is None:
                    return out  # header not fully on disk yet — retry later
                if self._started and first_seq != self.next_seq:
                    raise ValidationError(
                        f"WAL segment {candidate.name} starts at seq {first_seq}, "
                        f"expected {self.next_seq} — the log was rewritten "
                        "underneath this follower"
                    )
                if not self._started:
                    self.next_seq = first_seq
                    self._started = True
                self._segment = candidate
                self._offset = SEGMENT_HEADER.size
            data = self._segment.read_bytes()
            while self._offset < len(data):
                event, end, _why = _try_record(data, self._offset, self.next_seq)
                if event is None:
                    break  # torn tail — the writer will complete it
                self._offset = end
                if self.next_seq >= self.start_seq:
                    out.append(event)
                self.next_seq += 1
            successor = self.directory / f"seg-{self.next_seq:020d}.wal"
            if successor.exists() and successor != self._segment:
                self._segment = None  # writer rotated past this segment
                continue
            return out

    def _initial_segment(self) -> Path | None:
        """The latest segment that can contain ``start_seq`` (or the
        earliest one, when ``start_seq`` predates the whole log)."""
        best = None
        for seg in list_segments(self.directory):
            if best is None or _segment_first_seq(seg) <= self.start_seq:
                best = seg
        return best
