"""The public dynamic graph (Sections III-IV).

:class:`DynamicGraph` composes the vertex dictionary with the batched
kernels in the sibling modules.  Directed and undirected graphs are
supported (undirected operations mirror both orientations); the *weighted*
flag selects the slab-hash variant — concurrent map (15 KV lanes/slab)
when True, concurrent set (30 key lanes/slab) when False — exactly the two
variants the paper offers.

The class also implements the scalar :class:`repro.gpusim.wcws.WCWSTarget`
protocol so the literal Algorithm 1/2 reference engine can drive it; tests
use that to certify that the vectorized kernels and the paper's pseudocode
agree.
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import GraphBackend
from repro.api.capabilities import Capabilities
from repro.coo import COO
from repro.core import bulk as _bulk
from repro.core import edge_ops as _edge_ops
from repro.core import queries as _queries
from repro.core import rehash as _rehash
from repro.core import vertex_ops as _vertex_ops
from repro.core.vertex_dict import VertexDictionary
from repro.slabhash.stats import ArenaStats, compute_stats
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_in_range

__all__ = ["DynamicGraph"]


class DynamicGraph(GraphBackend):
    """A hash-table-per-vertex dynamic graph.

    Parameters
    ----------
    num_vertices:
        Vertex-dictionary capacity.  Choosing it generously avoids the
        (cheap, pointer-only) reallocation on vertex insertion.
    weighted:
        Map variant (True) or set variant (False).
    directed:
        Undirected graphs mirror every edge operation.
    load_factor:
        Target hash-table load factor used whenever connectivity
        information is available to size buckets (paper default 0.7).
    hash_seed:
        Seed for the per-vertex universal hash coefficients.

    Examples
    --------
    >>> g = DynamicGraph(num_vertices=100, weighted=True)
    >>> g.insert_edges([0, 1], [1, 2], weights=[10, 20])
    2
    >>> bool(g.edge_exists(0, 1)[0])
    True
    """

    capabilities = Capabilities(
        weighted=True,
        vertex_dynamic=True,
        rehash=True,
        tombstone_flush=True,
        vertex_id_reuse=True,
    )

    def __init__(
        self,
        num_vertices: int,
        weighted: bool = True,
        directed: bool = True,
        load_factor: float = 0.7,
        hash_seed: int = 0x5AB0,
        reuse_vertex_ids: bool = False,
    ) -> None:
        # Load factors above 1 deliberately undersize buckets to force
        # multi-slab chains — the Figure 2/3 sweeps rely on this.
        if not (0.0 < load_factor <= 16.0):
            raise ValidationError("load_factor must be in (0, 16]")
        self.weighted = bool(weighted)
        self.directed = bool(directed)
        self.load_factor = float(load_factor)
        self._dict = VertexDictionary(num_vertices, weighted=self.weighted, hash_seed=hash_seed)
        # Optional deleted-id recycling (the faimGraph feature the paper
        # names as straightforward future work; see core/id_reuse.py).
        self._recycler = None
        if reuse_vertex_ids:
            from repro.core.id_reuse import VertexIdRecycler

            self._recycler = VertexIdRecycler()

    # -- capacity / size -------------------------------------------------------

    @property
    def vertex_capacity(self) -> int:
        """Current dictionary capacity (ids addressable without growth)."""
        return self._dict.capacity

    @property
    def num_vertices(self) -> int:
        """Protocol name for :attr:`vertex_capacity` (GraphBackend)."""
        return self._dict.capacity

    def num_edges(self) -> int:
        """Exact directed-slot edge count (an undirected edge counts twice).

        O(1): reads the incrementally maintained aggregate counter.
        """
        return self._dict.total_edges()

    def num_active_vertices(self) -> int:
        """Vertices that currently participate in at least one edge ever
        inserted and were not deleted.

        O(1): reads the incrementally maintained aggregate counter.
        """
        return self._dict.num_active()

    def degree(self, vertex_ids) -> np.ndarray:
        """Exact out-degree per requested vertex (maintained counters)."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        check_in_range(vids, 0, self.vertex_capacity, "vertex_ids")
        return self._dict.edge_count[vids].copy()

    # -- mutation ---------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched edge insertion (Algorithm 1); returns edges newly added."""
        return _edge_ops.insert_edges(self, src, dst, weights)

    def delete_edges(self, src, dst) -> int:
        """Batched edge deletion; returns edges actually removed."""
        return _edge_ops.delete_edges(self, src, dst)

    def insert_vertices(self, vertex_ids, expected_degree=None) -> None:
        """Register vertices ahead of their edges (Section IV-D1)."""
        _vertex_ops.insert_vertices(self, vertex_ids, expected_degree)

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and all incident edges (Algorithm 2).

        With ``reuse_vertex_ids=True`` the deleted ids enter a recycling
        queue served by :meth:`allocate_vertex_ids`.  Only ids the deletion
        actually deactivated are queued: never-active ids and repeat
        deletions of an already-dead id vend nothing to the recycler.
        """
        removed, deactivated = _vertex_ops.delete_vertices(self, vertex_ids)
        if self._recycler is not None and deactivated.size:
            self._recycler.push(deactivated)
        return removed

    def allocate_vertex_ids(self, n: int) -> np.ndarray:
        """Vend ``n`` usable vertex ids, preferring recycled ones.

        Requires ``reuse_vertex_ids=True``; implements the memory-
        efficiency strategy the paper credits to faimGraph (Section
        VI-A3).  Returned ids are registered (tables created lazily on
        first insertion).
        """
        if self._recycler is None:
            raise ValidationError("construct the graph with reuse_vertex_ids=True to recycle ids")
        self._bump_version()
        ids = self._recycler.allocate_ids(self, n)
        self._dict.activate(ids)
        return ids

    def bulk_build(self, coo: COO) -> int:
        """One-shot build with a-priori bucket sizing (Table V workload)."""
        return _bulk.bulk_build(self, coo)

    def incremental_build(self, coo: COO, batch_size: int, on_batch=None) -> int:
        """Streamed build with single-bucket tables (Table VI workload)."""
        return _bulk.incremental_build(self, coo, batch_size, on_batch)

    # -- queries ------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Vectorized edgeExist (Section IV-B)."""
        return _queries.edge_exists(self, src, dst)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """(found, weight) per queried pair."""
        return _queries.edge_weights(self, src, dst)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """One adjacency list as (destinations, weights), unordered."""
        return _queries.neighbors(self, vertex)

    def adjacencies(self, vertex_ids):
        """Batched adjacency iterator: (owner_pos, destinations, weights)."""
        return _queries.adjacencies(self, vertex_ids)

    def export_coo(self) -> COO:
        """Snapshot the live edge set."""
        return _queries.export_coo(self)

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """(row_ptr, col_idx) sorted CSR snapshot.

        The hash-based structure never *maintains* sort order — that is the
        point of the paper — but tests and harnesses want a canonical view;
        this pays an explicit export + sort to produce one.
        """
        coo = self.export_coo()
        return coo.to_csr()[:2]

    # -- maintenance -----------------------------------------------------------------

    def rehash_candidates(self, max_chain_slabs: float = 2.0) -> np.ndarray:
        """Vertices whose chains exceed the threshold (Section III)."""
        return _rehash.rehash_candidates(self, max_chain_slabs)

    def rehash(self, vertex_ids=None, load_factor: float | None = None) -> int:
        """Rebuild overloaded (or given) tables at the target load factor;
        returns how many tables were rebuilt."""
        if vertex_ids is None:
            vertex_ids = self.rehash_candidates()
        vertex_ids = np.atleast_1d(np.asarray(vertex_ids, dtype=np.int64))
        self._bump_version()
        _rehash.rehash_vertices(self, vertex_ids, load_factor)
        return int(vertex_ids.size)

    def flush_tombstones(self, vertex_ids=None) -> None:
        """Compact tombstoned lanes (optional cleanup, Section IV-C2)."""
        if vertex_ids is None:
            vertex_ids = np.flatnonzero(self._dict.arena.table_base != -1)
        self._bump_version()
        self._dict.arena.flush_tombstones(vertex_ids)

    def stats(self) -> ArenaStats:
        """Aggregate slab statistics over all existing tables (Figure 2)."""
        existing = np.flatnonzero(self._dict.arena.table_base != -1)
        return compute_stats(self._dict.arena, existing)

    def memory_bytes(self) -> int:
        """Bytes currently held in slabs (Figure 2c's metric)."""
        return self._dict.arena.pool.allocated_bytes

    # -- WCWS reference protocol (executable specification hooks) ----------------

    def reference_replace(self, src: int, dst: int, weight: int) -> bool:
        if src == dst:
            return False
        self._dict.ensure_tables(np.array([src], dtype=np.int64))
        self._dict.activate(np.array([src, dst], dtype=np.int64))
        self._bump_version()
        return self._dict.arena.reference_insert_one(src, dst, weight)

    def reference_delete(self, src: int, dst: int) -> bool:
        self._bump_version()
        return self._dict.arena.reference_delete_one(src, dst)

    def reference_increment_edge_count(self, src: int, amount: int) -> None:
        self._dict.increment_edge_count(src, amount)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "map" if self.weighted else "set"
        direction = "directed" if self.directed else "undirected"
        return (
            f"DynamicGraph({direction}, {kind}, |V|cap={self.vertex_capacity}, "
            f"|E|={self.num_edges()}, lf={self.load_factor})"
        )
