"""Deleted-vertex-id recycling (the paper's acknowledged gap).

Table IV's discussion credits faimGraph with one capability the paper's
structure lacks: "it places the deleted vertex into a vertex queue and can
thus reuse identifiers of deleted vertices during subsequent vertex
insertions.  This allows faimGraph to be more memory efficient ...  It
would be straightforward to implement the same strategy with our data
structure but we have not yet done so."

This module is that straightforward implementation: a LIFO queue of
recycled ids fed by vertex deletion and drained by id allocation.  It is
opt-in (``DynamicGraph(reuse_vertex_ids=True)``) so the default structure
stays paper-faithful.

Memory effect: a recycled id's base slabs are still allocated (vertex
deletion keeps them), so reusing the id reuses that memory instead of
growing the dictionary — exactly faimGraph's advantage.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters

__all__ = ["VertexIdRecycler"]


class VertexIdRecycler:
    """LIFO queue of reusable vertex ids with duplicate protection."""

    __slots__ = ("_stack", "_queued")

    def __init__(self) -> None:
        self._stack: list[int] = []
        self._queued: set[int] = set()

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, vertex_ids: np.ndarray) -> int:
        """Queue deleted ids for reuse; returns how many were newly queued."""
        counters = get_counters()
        added = 0
        for v in np.asarray(vertex_ids, dtype=np.int64).tolist():
            if v not in self._queued:
                self._queued.add(v)
                self._stack.append(v)
                added += 1
        counters.atomics += added  # queue pushes
        return added

    def pop(self, n: int) -> np.ndarray:
        """Take up to ``n`` recycled ids (most recently deleted first)."""
        take = min(int(n), len(self._stack))
        out = np.array([self._stack.pop() for _ in range(take)], dtype=np.int64)
        self._queued.difference_update(out.tolist())
        get_counters().atomics += take
        return out

    def discard(self, vertex_ids: np.ndarray) -> None:
        """Remove ids from the queue (they were re-activated externally,
        e.g. by a direct edge insertion naming the id)."""
        doomed = {int(v) for v in np.asarray(vertex_ids).tolist()} & self._queued
        if not doomed:
            return
        self._queued -= doomed
        self._stack = [v for v in self._stack if v not in doomed]

    def allocate_ids(self, graph, n: int) -> np.ndarray:
        """Vend ``n`` vertex ids: recycled ones first, then fresh ids
        beyond the current active range (growing the dictionary).

        Recycled ids that were meanwhile re-activated directly (an edge
        insertion may name any id) are skipped, never handed out twice.
        """
        taken: list[np.ndarray] = []
        need = int(n)
        while need > 0 and len(self._stack):
            batch = self.pop(need)
            batch = batch[~graph._dict.active[batch]]
            if batch.size:
                taken.append(batch)
                need -= batch.size
        recycled = np.concatenate(taken) if taken else np.empty(0, dtype=np.int64)
        missing = int(n) - recycled.size
        if missing == 0:
            return recycled
        # Fresh ids: first never-activated slots, else extend capacity.
        active = graph._dict.active
        free = np.flatnonzero(~active)
        free = free[~np.isin(free, recycled)]
        fresh = free[:missing]
        still_missing = missing - fresh.size
        if still_missing > 0:
            start = graph.vertex_capacity
            graph._dict.ensure_capacity(start + still_missing)
            fresh = np.concatenate([fresh, np.arange(start, start + still_missing, dtype=np.int64)])
        return np.concatenate([recycled, fresh])
