"""Batched edge insertion and deletion (Algorithm 1 and Section IV-C2).

The vectorized pipeline per batch:

1. validate and coerce the arrays (once, at the boundary);
2. drop self-loops (Algorithm 1 line 3);
3. for an undirected graph, mirror the batch (Section IV-C: "inserting an
   edge ... also requires an operation on the edge in the other
   direction");
4. create single-bucket tables for sources seen for the first time
   (Section III-b: no connectivity information available);
5. run the slab-hash replace/delete kernel (intra-batch duplicates resolve
   to the paper's "most recent wins" / "only one delete succeeds");
6. update exact per-vertex edge counts from the success mask — the
   vectorized equivalent of ``popc(ballot(success))`` in Algorithm 1 lines
   9-10.

Complexity contract: every step above is **O(batch + touched slabs)**,
never O(|V|) — the paper's central claim that batched updates cost
proportional to the batch, not the graph.  Counter updates are scatter-adds
over the batch's unique sources (via
:meth:`repro.core.vertex_dict.VertexDictionary.add_edge_counts` /
``sub_edge_counts``), which also keep the dictionary's aggregate
``total_edges`` / ``num_active`` counters current so size queries stay
O(1).  ``bench/regression.py`` locks this in by asserting that small-batch
throughput does not degrade as vertex capacity grows.

Weights: the public API accepts integer weights (stored in the 32-bit value
lanes).  Float weights can be carried by viewing them as uint32 at the
caller; the examples show this pattern.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["insert_edges", "delete_edges"]


def _prepare(graph, src, dst, weights):
    graph._reject_weights_if_unweighted(weights)
    src = as_int_array(src, "src")
    dst = as_int_array(dst, "dst")
    n = check_equal_length(("src", src), ("dst", dst))
    if weights is None:
        w = None
    else:
        w = as_int_array(weights, "weights")
        check_equal_length(("src", src), ("weights", w))
    if n:
        check_in_range(src, 0, graph.vertex_capacity, "src")
        check_in_range(dst, 0, graph.vertex_capacity, "dst")
    return src, dst, w


def insert_edges(graph, src, dst, weights=None) -> int:
    """Insert a batch of directed edges; returns the number newly added.

    Existing (src, dst) pairs have their weight replaced and do not count.
    For undirected graphs both orientations are inserted and the return
    value counts directed slots (i.e. a brand-new undirected edge adds 2).
    """
    src, dst, w = _prepare(graph, src, dst, weights)
    if src.size == 0:
        return 0
    graph._bump_version()

    keep = src != dst  # no self-edges (Algorithm 1, line 3)
    src, dst = src[keep], dst[keep]
    w = w[keep] if w is not None else None
    if src.size == 0:
        return 0

    if not graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        w = np.concatenate([w, w]) if w is not None else None
    return _insert_prepared(graph, src, dst, w)


def _insert_prepared(graph, src, dst, w) -> int:
    vd = graph._dict
    vd.ensure_tables(src)
    if graph.weighted and w is None:
        w = np.zeros(src.shape[0], dtype=np.int64)
    added = vd.arena.insert(src, dst, w if graph.weighted else None)
    if added.any():
        vd.add_edge_counts(src[added])
    if graph.directed:
        vd.activate(np.concatenate([src, dst]))
    else:
        # The mirrored batch makes dst a permutation of src: one pass covers both.
        vd.activate(src)
    return int(added.sum())


def delete_edges(graph, src, dst) -> int:
    """Delete a batch of directed edges; returns the number removed.

    Absent pairs are no-ops.  Undirected graphs delete both orientations
    (the return value counts directed removals).
    """
    src, dst, _ = _prepare(graph, src, dst, None)
    if src.size == 0:
        return 0
    graph._bump_version()
    if not graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    removed = graph._dict.arena.delete(src, dst)
    if removed.any():
        graph._dict.sub_edge_counts(src[removed])
    return int(removed.sum())
