"""The paper's primary contribution: a hash-table-per-vertex dynamic graph.

:class:`repro.core.graph.DynamicGraph` is the public entry point; the
sibling modules hold the batched kernels it delegates to:

- :mod:`repro.core.vertex_dict` — the vertex dictionary (table handles,
  exact edge counts, growth by shallow pointer copy);
- :mod:`repro.core.edge_ops` — Algorithm 1 semantics (insert) and its
  deletion variant;
- :mod:`repro.core.vertex_ops` — Section IV-D (vertex insertion, Algorithm
  2 deletion);
- :mod:`repro.core.queries` — edgeExist, adjacency iteration, COO export;
- :mod:`repro.core.bulk` — bulk and incremental build workloads;
- :mod:`repro.core.rehash` — chain-length-triggered rehashing.
"""

from repro.core.graph import DynamicGraph

__all__ = ["DynamicGraph"]
