"""Batched vertex insertion and deletion (Section IV-D, Algorithm 2).

Vertex insertion is "inserting edges connected to a vertex that has an
empty adjacency list": grow the dictionary if the ids exceed capacity
(shallow pointer copy), create appropriately sized tables, then run the
ordinary edge-insertion kernel.

Vertex deletion follows Algorithm 2.  On hardware each warp drains an
atomic work queue of doomed vertices and, per vertex, iterates its
adjacency to erase the reverse edges; vectorized, all doomed vertices'
adjacencies are gathered in one iterator sweep and all reverse deletions
run as one delete kernel — the same slab traffic without the queue (the
queue exists to load-balance warps, which a batch kernel gets for free).
Overflow slabs are freed, base slabs retained, and edge counts zeroed
(Algorithm 2 lines 18-22).

Like the edge kernels, counter maintenance here is O(batch + touched
slabs): per-vertex deltas are scatter-adds over the affected sources and
the dictionary's aggregate counters ride along incrementally (see
:mod:`repro.core.vertex_dict`).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_in_range

__all__ = ["insert_vertices", "delete_vertices"]


def insert_vertices(graph, vertex_ids, expected_degree=None) -> None:
    """Register vertices (growing the dictionary if needed).

    ``expected_degree`` sizes each new table from connectivity information;
    omitted, new tables get one bucket.  Ids beyond current capacity
    trigger dictionary growth (Section IV-A1's pointer-copying extension).
    Edges are attached afterwards with :meth:`DynamicGraph.insert_edges`.
    """
    vertex_ids = as_int_array(vertex_ids, "vertex_ids")
    if vertex_ids.size == 0:
        return
    if vertex_ids.min() < 0:
        raise ValidationError("vertex_ids must be non-negative")
    graph._bump_version()
    graph._dict.ensure_capacity(int(vertex_ids.max()) + 1)
    graph._dict.ensure_tables(vertex_ids, expected_degree, graph.load_factor)
    graph._dict.activate(vertex_ids)


def delete_vertices(graph, vertex_ids) -> tuple[int, np.ndarray]:
    """Delete vertices and every edge touching them.

    Returns ``(edges_removed, deactivated)`` where ``deactivated`` holds the
    unique ids that were actually active before this call — the only ids a
    recycler may legitimately reuse.

    Follows Algorithm 2 for undirected graphs (erase the vertex from each
    neighbour's table via the adjacency iterator).  For directed graphs the
    reverse edges cannot be found from the vertex's own table, so the
    paper's "follow-up lookup" applies: a full sweep deletes the doomed ids
    from every remaining table.
    """
    vertex_ids = as_int_array(vertex_ids, "vertex_ids")
    if vertex_ids.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    check_in_range(vertex_ids, 0, graph.vertex_capacity, "vertex_ids")
    graph._bump_version()
    vertex_ids = np.unique(vertex_ids)
    vd = graph._dict
    counters = get_counters()
    # Algorithm 2 uses one atomicAdd per vertex acquisition; charge those.
    counters.atomics += int(vertex_ids.size)

    removed_total = 0
    if graph.directed:
        removed_total += _cleanup_references(graph, vertex_ids)
    else:
        # Iterate the doomed vertices' adjacency lists and erase the reverse
        # edges (Algorithm 2, lines 11-17).
        owners, neighbors, _ = vd.arena.iterate(vertex_ids)
        if neighbors.size:
            doomed_of_entry = vertex_ids[owners]
            removed = vd.arena.delete(neighbors, doomed_of_entry)
            if removed.any():
                vd.sub_edge_counts(neighbors[removed])
            removed_total += int(removed.sum())

    # Free dynamically allocated slabs, reset bases, zero the counts
    # (lines 18-22).
    vd.arena.clear_tables(vertex_ids)
    removed_total += vd.zero_edge_counts(vertex_ids)
    deactivated = vd.deactivate(vertex_ids)
    return removed_total, deactivated


def _cleanup_references(graph, doomed: np.ndarray) -> int:
    """Directed-case sweep: delete edges *into* the doomed vertices.

    The paper ends vertex deletion "with a follow-up lookup and delete of
    all of the deleted vertices in all of the hash tables"; this is that
    pass, restricted to tables that exist.
    """
    vd = graph._dict
    all_ids = np.flatnonzero(vd.arena.table_base != -1)
    # Skip the doomed tables themselves; they are cleared wholesale.
    all_ids = all_ids[~np.isin(all_ids, doomed)]
    if all_ids.size == 0:
        return 0
    owners, neighbors, _ = vd.arena.iterate(all_ids)
    if neighbors.size == 0:
        return 0
    doomed_mask = np.zeros(vd.capacity, dtype=bool)
    doomed_mask[doomed] = True
    hit = doomed_mask[neighbors]
    if not hit.any():
        return 0
    srcs = all_ids[owners[hit]]
    removed = vd.arena.delete(srcs, neighbors[hit])
    if removed.any():
        vd.sub_edge_counts(srcs[removed])
    return int(removed.sum())
