"""The vertex dictionary (Section III-a, IV-A1).

"We store vertices in a simple fixed-size array, indexed by vertex ID" —
the dictionary is capacity-bounded but growable: exceeding capacity
triggers a reallocation that copies only the per-vertex *handles* (table
base pointers, bucket counts, edge counters), never adjacency data.  That
shallow-copy property is the paper's argument for why over-allocation is
cheap to recover from; :class:`repro.gpusim.memory.GrowableArray` charges
exactly those copied bytes to the performance model.

The dictionary also owns the *exact* per-vertex edge counters maintained by
the popc-of-ballot accounting in the edge kernels, and the aggregate
counters derived from them.

Complexity contract (the paper's central claim, Section IV-C): every
mutation here costs **O(batch)** — proportional to the items touched, never
to the vertex capacity.  Per-vertex counters are updated by scatter-adds
over the batch's sources (:meth:`add_edge_counts` / :meth:`sub_edge_counts`)
and the aggregate ``total_edges`` / ``num_active`` counters are maintained
incrementally by the same calls, so :meth:`total_edges` and
:meth:`num_active` are **O(1)** reads.  All counter mutations must go
through the methods below; writing ``edge_count`` / ``active`` directly
desynchronizes the aggregates.  Setting :attr:`debug_invariants` (or the
``REPRO_DEBUG_COUNTERS`` environment variable) re-verifies the aggregates
against the full-array sums after every mutation — an O(capacity) check
reserved for tests and debugging.
"""

from __future__ import annotations

import os

import numpy as np

from repro.slabhash.arena import SlabArena
from repro.util.errors import ValidationError

__all__ = ["VertexDictionary"]

#: Environment switch for the O(capacity) post-mutation invariant check.
DEBUG_ENV_VAR = "REPRO_DEBUG_COUNTERS"


def _debug_default() -> bool:
    return os.environ.get(DEBUG_ENV_VAR, "") not in ("", "0", "false", "False")


class VertexDictionary:
    """Per-vertex handles and counters backed by a :class:`SlabArena`.

    The arena holds ``table_base`` / ``table_buckets`` (the "pointers to the
    hash table associated with each vertex"); this class adds the edge
    counters, the active-vertex mask, the incrementally maintained
    aggregates over both, and coordinates growth of all of them together.
    """

    def __init__(self, capacity: int, weighted: bool, hash_seed: int = 0x5AB0) -> None:
        if capacity < 1:
            raise ValidationError("vertex capacity must be at least 1")
        self.arena = SlabArena(int(capacity), weighted=weighted, hash_seed=hash_seed)
        self.edge_count = np.zeros(int(capacity), dtype=np.int64)
        self.active = np.zeros(int(capacity), dtype=bool)
        # Aggregates maintained incrementally by the mutators below so the
        # num_active()/total_edges() reads never scan capacity-sized arrays.
        self._total_edges = 0
        self._num_active = 0
        self.debug_invariants = _debug_default()

    @property
    def capacity(self) -> int:
        return self.arena.num_tables

    def ensure_capacity(self, needed: int) -> None:
        """Grow (by doubling) so ids < ``needed`` are addressable.

        This is the paper's dictionary reallocation: only handles move, and
        the aggregates are unaffected (new slots are empty and inactive).
        """
        if needed <= self.capacity:
            return
        new_cap = self.capacity
        while new_cap < needed:
            new_cap *= 2
        self.arena.grow_tables(new_cap)
        grown_counts = np.zeros(new_cap, dtype=np.int64)
        grown_counts[: self.edge_count.shape[0]] = self.edge_count
        self.edge_count = grown_counts
        grown_active = np.zeros(new_cap, dtype=bool)
        grown_active[: self.active.shape[0]] = self.active
        self.active = grown_active
        self._check()

    def ensure_tables(self, vertex_ids: np.ndarray, expected_degree=None, load_factor=0.7):
        """Create hash tables for any of ``vertex_ids`` lacking one.

        With connectivity information (``expected_degree`` aligned with
        ``vertex_ids``) buckets are sized as ``ceil(d / (lf * Bc))``;
        without it each new table gets a single bucket (Section III-b).
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        missing = ~self.arena.has_table(vertex_ids)
        if not missing.any():
            return
        new_ids, first_pos = np.unique(vertex_ids[missing], return_index=True)
        if expected_degree is None:
            buckets = np.ones(new_ids.shape[0], dtype=np.int64)
        else:
            expected = np.asarray(expected_degree, dtype=np.int64)[missing][first_pos]
            buckets = SlabArena.buckets_for(expected, load_factor, self.arena.pool.lane_capacity)
        self.arena.create_tables(new_ids, buckets)

    # -- counter mutation (O(batch) scatter updates) ---------------------------

    def add_edge_counts(self, sources: np.ndarray) -> None:
        """Credit one edge to each occurrence of ``sources`` (dups allowed).

        The vectorized ``popc(ballot(success))`` of Algorithm 1 lines 9-10:
        a scatter-add over the batch's unique sources, O(batch log batch),
        independent of capacity.
        """
        if sources.size == 0:
            return
        uniq, cnt = np.unique(sources, return_counts=True)
        self.edge_count[uniq] += cnt
        self._total_edges += int(sources.size)
        self._check()

    def sub_edge_counts(self, sources: np.ndarray) -> None:
        """Debit one edge per occurrence of ``sources`` (dups allowed)."""
        if sources.size == 0:
            return
        uniq, cnt = np.unique(sources, return_counts=True)
        self.edge_count[uniq] -= cnt
        self._total_edges -= int(sources.size)
        self._check()

    def increment_edge_count(self, vertex: int, amount: int) -> None:
        """Scalar counter adjustment (the WCWS reference engine's path)."""
        self.edge_count[vertex] += amount
        self._total_edges += int(amount)
        self._check()

    def zero_edge_counts(self, vertex_ids: np.ndarray) -> int:
        """Zero the given vertices' counters; returns the edges dropped.

        Algorithm 2 line 22.  Duplicate ids are collapsed so each vertex is
        debited exactly once.
        """
        vertex_ids = np.unique(np.asarray(vertex_ids, dtype=np.int64))
        dropped = int(self.edge_count[vertex_ids].sum())
        self.edge_count[vertex_ids] = 0
        self._total_edges -= dropped
        self._check()
        return dropped

    def activate(self, vertex_ids: np.ndarray) -> None:
        """Mark vertices active, counting only genuinely new activations."""
        fresh = vertex_ids[~self.active[vertex_ids]]
        if fresh.size == 0:
            return
        uniq = np.unique(fresh)
        self.active[uniq] = True
        self._num_active += int(uniq.size)
        self._check()

    def deactivate(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Mark vertices inactive; returns the unique ids actually flipped.

        Ids that were never active are ignored (and not returned), which is
        what lets the caller feed *only* real deactivations to the id
        recycler.
        """
        live = vertex_ids[self.active[vertex_ids]]
        uniq = np.unique(live)
        if uniq.size:
            self.active[uniq] = False
            self._num_active -= int(uniq.size)
        self._check()
        return uniq

    # -- aggregate reads (O(1)) ------------------------------------------------

    def num_active(self) -> int:
        return self._num_active

    def total_edges(self) -> int:
        return self._total_edges

    # -- debug invariants ------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the incremental aggregates against the full-array sums.

        O(capacity); run automatically after each mutation only when
        :attr:`debug_invariants` is set.
        """
        actual_edges = int(self.edge_count.sum())
        actual_active = int(np.count_nonzero(self.active))
        if self._total_edges != actual_edges:
            raise AssertionError(
                f"total_edges counter {self._total_edges} != array sum {actual_edges}"
            )
        if self._num_active != actual_active:
            raise AssertionError(
                f"num_active counter {self._num_active} != array count {actual_active}"
            )

    def _check(self) -> None:
        if self.debug_invariants:
            self.check_invariants()
