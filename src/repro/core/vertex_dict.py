"""The vertex dictionary (Section III-a, IV-A1).

"We store vertices in a simple fixed-size array, indexed by vertex ID" —
the dictionary is capacity-bounded but growable: exceeding capacity
triggers a reallocation that copies only the per-vertex *handles* (table
base pointers, bucket counts, edge counters), never adjacency data.  That
shallow-copy property is the paper's argument for why over-allocation is
cheap to recover from; :class:`repro.gpusim.memory.GrowableArray` charges
exactly those copied bytes to the performance model.

The dictionary also owns the *exact* per-vertex edge counters maintained by
the popc-of-ballot accounting in the edge kernels.
"""

from __future__ import annotations

import numpy as np

from repro.slabhash.arena import SlabArena
from repro.util.errors import ValidationError

__all__ = ["VertexDictionary"]


class VertexDictionary:
    """Per-vertex handles and counters backed by a :class:`SlabArena`.

    The arena holds ``table_base`` / ``table_buckets`` (the "pointers to the
    hash table associated with each vertex"); this class adds the edge
    counters and the active-vertex mask, and coordinates growth of all of
    them together.
    """

    def __init__(self, capacity: int, weighted: bool, hash_seed: int = 0x5AB0) -> None:
        if capacity < 1:
            raise ValidationError("vertex capacity must be at least 1")
        self.arena = SlabArena(int(capacity), weighted=weighted, hash_seed=hash_seed)
        self.edge_count = np.zeros(int(capacity), dtype=np.int64)
        self.active = np.zeros(int(capacity), dtype=bool)

    @property
    def capacity(self) -> int:
        return self.arena.num_tables

    def ensure_capacity(self, needed: int) -> None:
        """Grow (by doubling) so ids < ``needed`` are addressable.

        This is the paper's dictionary reallocation: only handles move.
        """
        if needed <= self.capacity:
            return
        new_cap = self.capacity
        while new_cap < needed:
            new_cap *= 2
        self.arena.grow_tables(new_cap)
        grown_counts = np.zeros(new_cap, dtype=np.int64)
        grown_counts[: self.edge_count.shape[0]] = self.edge_count
        self.edge_count = grown_counts
        grown_active = np.zeros(new_cap, dtype=bool)
        grown_active[: self.active.shape[0]] = self.active
        self.active = grown_active

    def ensure_tables(self, vertex_ids: np.ndarray, expected_degree=None, load_factor=0.7):
        """Create hash tables for any of ``vertex_ids`` lacking one.

        With connectivity information (``expected_degree`` aligned with
        ``vertex_ids``) buckets are sized as ``ceil(d / (lf * Bc))``;
        without it each new table gets a single bucket (Section III-b).
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        missing = ~self.arena.has_table(vertex_ids)
        if not missing.any():
            return
        new_ids, first_pos = np.unique(vertex_ids[missing], return_index=True)
        if expected_degree is None:
            buckets = np.ones(new_ids.shape[0], dtype=np.int64)
        else:
            expected = np.asarray(expected_degree, dtype=np.int64)[missing][first_pos]
            buckets = SlabArena.buckets_for(expected, load_factor, self.arena.pool.lane_capacity)
        self.arena.create_tables(new_ids, buckets)

    def num_active(self) -> int:
        return int(self.active.sum())

    def total_edges(self) -> int:
        return int(self.edge_count.sum())
