"""Query operations (Section IV-B): edgeExist, iteration, export.

All queries are read-only chain walks; none mutate the structure, keeping
the phase-concurrent contract trivially satisfied.
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["edge_exists", "edge_weights", "neighbors", "adjacencies", "export_coo"]


def edge_exists(graph, src, dst) -> np.ndarray:
    """Vectorized ``edgeExist`` — True where (src, dst) is a current edge."""
    src = as_int_array(src, "src")
    dst = as_int_array(dst, "dst")
    check_equal_length(("src", src), ("dst", dst))
    if src.size == 0:
        return np.empty(0, dtype=bool)
    check_in_range(src, 0, graph.vertex_capacity, "src")
    found, _ = graph._dict.arena.search(src, dst)
    return found


def edge_weights(graph, src, dst) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized lookup returning ``(found, weights)``."""
    src = as_int_array(src, "src")
    dst = as_int_array(dst, "dst")
    check_equal_length(("src", src), ("dst", dst))
    if src.size == 0:
        return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    check_in_range(src, 0, graph.vertex_capacity, "src")
    return graph._dict.arena.search(src, dst)


def neighbors(graph, vertex: int) -> tuple[np.ndarray, np.ndarray]:
    """One vertex's adjacency as ``(destinations, weights)`` (unordered)."""
    vid = int(vertex)
    check_in_range(np.array([vid]), 0, graph.vertex_capacity, "vertex")
    _, dst, w = graph._dict.arena.iterate(np.array([vid], dtype=np.int64))
    return dst, w


def adjacencies(graph, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Many adjacency lists in one sweep.

    Returns ``(owner_pos, destinations, weights)`` where ``owner_pos[i]``
    indexes into ``vertex_ids`` — the batched form of the paper's vertex
    adjacency-list iterator that frontier-based analytics consume.
    """
    vertex_ids = as_int_array(vertex_ids, "vertex_ids")
    if vertex_ids.size:
        check_in_range(vertex_ids, 0, graph.vertex_capacity, "vertex_ids")
    return graph._dict.arena.iterate(vertex_ids)


def export_coo(graph) -> COO:
    """Snapshot the live edge set as a :class:`repro.coo.COO`."""
    existing = np.flatnonzero(graph._dict.arena.table_base != -1)
    owners, dst, w = graph._dict.arena.iterate(existing)
    src = existing[owners]
    return COO(
        src,
        dst,
        graph.vertex_capacity,
        weights=w if graph.weighted else None,
    )
