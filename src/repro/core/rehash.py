"""Chain-length-triggered rehashing (Section III, "Advantages").

"In practice we can maintain low-cost metrics per vertex to determine the
chain-length and periodically perform rehashing if it exceeds a given
threshold."  The low-cost metric here is the exact edge count the kernels
already maintain: a vertex whose count implies more than
``max_chain_slabs`` slabs per bucket at the current bucket count is due for
a rebuild with buckets resized for the *current* degree.

Rehashing a table destroys it entirely (base slabs included — they return
to the allocator) and rebuilds at the target load factor, so it also
flushes tombstones as a side effect.
"""

from __future__ import annotations

import numpy as np

from repro.slabhash.arena import SlabArena
from repro.util.validation import as_int_array

__all__ = ["rehash_candidates", "rehash_vertices"]


def rehash_candidates(graph, max_chain_slabs: float = 2.0) -> np.ndarray:
    """Vertex ids whose implied chain length exceeds the threshold.

    Implied chain length = entries / (buckets * lane_capacity), computed
    from the maintained edge counts — O(|V|), no chain walks.
    """
    vd = graph._dict
    lane_cap = vd.arena.pool.lane_capacity
    buckets = vd.arena.table_buckets
    has_table = vd.arena.table_base != -1
    implied = np.zeros(vd.capacity, dtype=np.float64)
    np.divide(
        vd.edge_count,
        np.maximum(buckets, 1) * lane_cap,
        out=implied,
        where=has_table,
    )
    return np.flatnonzero(has_table & (implied > float(max_chain_slabs)))


def rehash_vertices(graph, vertex_ids, load_factor: float | None = None) -> None:
    """Rebuild the given vertices' tables sized for their current degree."""
    vertex_ids = as_int_array(vertex_ids, "vertex_ids")
    if vertex_ids.size == 0:
        return
    vd = graph._dict
    lf = graph.load_factor if load_factor is None else float(load_factor)
    owners, dst, w = vd.arena.iterate(vertex_ids)

    # Tear the tables down completely (frees base and overflow slabs).
    slab_ids, _, _ = vd.arena.table_slabs(vertex_ids)
    vd.arena.pool.free(slab_ids)
    vd.arena.table_base[vertex_ids] = -1
    vd.arena.table_buckets[vertex_ids] = 0

    degrees = np.bincount(owners, minlength=vertex_ids.size) if owners.size else np.zeros(
        vertex_ids.size, dtype=np.int64
    )
    buckets = SlabArena.buckets_for(np.maximum(degrees, 1), lf, vd.arena.pool.lane_capacity)
    vd.arena.create_tables(vertex_ids, buckets)
    if dst.size:
        vd.arena.insert(vertex_ids[owners], dst, w if graph.weighted else None)
    # Counts are unchanged: the live set was preserved exactly.
