"""Bulk and incremental build workloads (Section V-B).

**Bulk build** assumes the vertex count and per-vertex degrees are known a
priori: tables are sized as ``ceil(d / (lf * Bc))`` buckets in one bulk
base-slab reservation, then every edge is inserted in a single batch.  This
is the workload of Table V.

**Incremental build** starts from an empty graph with *no* connectivity
information: every table gets a single bucket (the structure degenerates
into per-vertex linked slab lists — the paper's "worst-case scenario" and
the faimGraph-like regime), and edges stream in fixed-size batches.  This
is the workload of Table VI.
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["bulk_build", "incremental_build"]


def bulk_build(graph, coo: COO) -> int:
    """Build from a COO snapshot with a-priori sizing; returns edges added.

    Duplicates within the COO are allowed (replace semantics applies); the
    graph must be empty.
    """
    if graph.num_edges() != 0:
        raise ValidationError("bulk_build requires an empty graph")
    graph._bump_version()
    if coo.num_vertices > graph.vertex_capacity:
        graph._dict.ensure_capacity(coo.num_vertices)
    work = coo.without_self_loops()
    if not graph.directed:
        work = work.symmetrized()
    degrees = work.out_degrees()
    sources = np.flatnonzero(degrees > 0)
    graph._dict.ensure_tables(sources, degrees[sources], graph.load_factor)
    return graph.insert_edges(work.src, work.dst, work.weights if graph.weighted else None)


def incremental_build(graph, coo: COO, batch_size: int, on_batch=None) -> int:
    """Stream a COO into an empty graph in batches; returns edges added.

    Tables are created lazily with one bucket each (no connectivity
    information).  ``on_batch(batch_index, batch_edges, added)`` is invoked
    after each batch so benches can time per-batch throughput.
    """
    if graph.num_edges() != 0:
        raise ValidationError("incremental_build requires an empty graph")
    graph._bump_version()
    if coo.num_vertices > graph.vertex_capacity:
        graph._dict.ensure_capacity(coo.num_vertices)
    total = 0
    for i, batch in enumerate(coo.batches(batch_size)):
        added = graph.insert_edges(batch.src, batch.dst, batch.weights if graph.weighted else None)
        total += added
        if on_batch is not None:
            on_batch(i, batch.num_edges, added)
    return total
