"""Tiered kernel dispatch: reference NumPy kernels + an optional jit tier.

The slab-hash probe rounds (:mod:`repro.slabhash.insert` / ``search`` /
``delete`` / ``iterate``) and the snapshot delta merge
(:mod:`repro.api.snapshot`) are *drivers*: they validate, schedule rounds,
allocate slabs, and charge the :mod:`repro.gpusim` device model.  The
per-round data movement lives behind this dispatch layer, in one of two
interchangeable tiers:

- ``reference`` — fused pure-NumPy passes (:mod:`repro.kernels.reference`),
  always available; the executable specification.
- ``jit`` — numba-compiled loop nests (:mod:`repro.kernels.jit`), selected
  automatically when numba is importable; an optional wall-clock fast path.

Both tiers implement the same pure functions over the same SoA arrays and
are required to be **bit-identical**: same mutations, same return values,
and — because all device-model charging happens in the drivers from
tier-independent quantities (pending sizes, hit/placement counts) — the
same :mod:`repro.gpusim` counters.  ``tests/test_kernels.py`` pins that
contract.

Selection:

- ``REPRO_JIT=0`` forces the reference tier even when numba is installed;
- ``REPRO_JIT=1`` requests the jit tier (falling back to reference with a
  warning when numba is absent);
- unset: auto-detect — jit when numba imports, reference otherwise.

Programmatic control: :func:`set_tier` / :func:`use_tier`; benches stamp
:func:`kernel_tier` into their environment fingerprint so baselines never
compare jit wall-clock against reference wall-clock.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

from repro.kernels import reference as _reference
from repro.util.errors import ValidationError

__all__ = [
    "KERNEL_TIERS",
    "available_tiers",
    "current_tier",
    "get_kernels",
    "jit_available",
    "kernel_tier",
    "set_tier",
    "use_tier",
]

#: Every tier name this dispatch layer knows about.
KERNEL_TIERS = ("reference", "jit")


def jit_available() -> bool:
    """True when numba is importable (the jit tier can actually compile)."""
    from repro.kernels import jit as _jit

    return _jit.NUMBA_AVAILABLE


def available_tiers() -> tuple:
    """Tiers that can be selected without ``force`` on this interpreter."""
    return KERNEL_TIERS if jit_available() else ("reference",)


def _tier_module(name: str):
    if name == "reference":
        return _reference
    from repro.kernels import jit as _jit

    return _jit


def _resolve_initial_tier() -> str:
    """Apply the ``REPRO_JIT`` override / auto-detection at import time."""
    raw = os.environ.get("REPRO_JIT", "").strip().lower()
    if raw in ("0", "false", "off", "no"):
        return "reference"
    if raw in ("1", "true", "on", "yes"):
        if jit_available():
            return "jit"
        warnings.warn(
            "REPRO_JIT=1 requested the jit kernel tier but numba is not "
            "installed; falling back to the reference tier "
            "(pip install 'repro-dynamic-graphs[jit]')",
            RuntimeWarning,
            stacklevel=2,
        )
        return "reference"
    if raw:
        warnings.warn(
            f"unrecognised REPRO_JIT value {raw!r} (expected 0/1); auto-detecting",
            RuntimeWarning,
            stacklevel=2,
        )
    return "jit" if jit_available() else "reference"


_ACTIVE_NAME = _resolve_initial_tier()
_ACTIVE = _tier_module(_ACTIVE_NAME)


def current_tier() -> str:
    """Name of the tier kernels currently dispatch to."""
    return _ACTIVE_NAME


def kernel_tier() -> str:
    """Alias of :func:`current_tier` for environment fingerprints."""
    return _ACTIVE_NAME


def get_kernels():
    """The active tier's kernel module (drivers call this per batch)."""
    return _ACTIVE


def set_tier(name: str, *, force: bool = False) -> str:
    """Select a kernel tier; returns the previously active tier name.

    Selecting ``"jit"`` without numba raises :class:`ValidationError`
    unless ``force=True``, which runs the jit tier's *uncompiled* Python
    loop implementations — semantically identical but slow, useful only
    for parity tests in numba-less environments.
    """
    if name not in KERNEL_TIERS:
        raise ValidationError(f"unknown kernel tier {name!r}; valid: {KERNEL_TIERS}")
    if name == "jit" and not jit_available() and not force:
        raise ValidationError(
            "kernel tier 'jit' requires numba (pip install "
            "'repro-dynamic-graphs[jit]'); pass force=True to run the "
            "uncompiled Python fallback"
        )
    global _ACTIVE_NAME, _ACTIVE
    previous = _ACTIVE_NAME
    _ACTIVE_NAME = name
    _ACTIVE = _tier_module(name)
    return previous


@contextmanager
def use_tier(name: str, *, force: bool = False):
    """Context manager: dispatch to ``name`` inside the block, then restore."""
    previous = set_tier(name, force=force)
    try:
        yield
    finally:
        set_tier(previous, force=True)
