"""The optional numba-jit kernel tier (compiled loop nests).

Each public function mirrors a :mod:`repro.kernels.reference` kernel with
the same signature, the same mutations, and bit-identical outputs; the
inner loops are ``@numba.njit``-compiled single passes that fuse the
gather, hit scan, empty-lane scan, rank-in-group lane claim, and scatter
into one traversal of the pending items — no NumPy temporaries, no
per-round boolean matrices.

When numba is not installed the ``@njit`` decorator degrades to the
identity, leaving plain-Python loop implementations: far too slow for real
workloads but semantically identical, which is what lets the
counter-parity tests exercise this tier's code paths in numba-less
environments (``set_tier("jit", force=True)``).  Sorting-dominated kernels
(:func:`sort_window_last`) are shared with the reference tier verbatim —
NumPy's compiled sort is already the fast path there.

Like the reference tier, nothing here touches :mod:`repro.gpusim`
counters; drivers charge the device model from the returned quantities.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.reference import (
    STATUS_ADVANCE,
    STATUS_DONE,
    STATUS_HIT,
    sort_window_last,
)
from repro.slabhash.constants import EMPTY_KEY, KEY_DTYPE, NULL_SLAB, TOMBSTONE_KEY

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default offline environment

    def njit(*args, **kwargs):
        """Identity decorator: keep the Python fallback callable as-is."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    NUMBA_AVAILABLE = False

__all__ = [
    "NUMBA_AVAILABLE",
    "TIER_NAME",
    "delete_round",
    "insert_round_map",
    "insert_round_set",
    "merge_sorted_csr",
    "search_round_map",
    "search_round_set",
    "sort_window_last",
    "walk_chains",
]

#: Dispatch name of this tier.
TIER_NAME = "jit"

_EMPTY32 = KEY_DTYPE(EMPTY_KEY)
_TOMBSTONE32 = KEY_DTYPE(TOMBSTONE_KEY)
_NULL = np.int64(NULL_SLAB)
_MASK32 = np.int64(0xFFFFFFFF)
_STATUS_HIT = np.uint8(STATUS_HIT)
_STATUS_DONE = np.uint8(STATUS_DONE)
_STATUS_ADVANCE = np.uint8(STATUS_ADVANCE)


@njit(cache=True)
def _insert_round_map(pool_keys, pool_values, cur, k, v, status):
    bc = pool_keys.shape[1]
    m = cur.shape[0]
    empty_lanes = np.empty(bc, dtype=np.int64)
    i = 0
    while i < m:
        slab = cur[i]
        j = i
        while j < m and cur[j] == slab:
            j += 1
        # Scan the slab once at group entry: pre-round empty lanes in
        # ascending order (the rank-th unplaced item takes the rank-th).
        n_empty = 0
        for lane in range(bc):
            if pool_keys[slab, lane] == _EMPTY32:
                empty_lanes[n_empty] = lane
                n_empty += 1
        used = 0
        for t in range(i, j):
            key = k[t]
            hit_lane = -1
            for lane in range(bc):
                if pool_keys[slab, lane] == key:
                    hit_lane = lane
                    break
            if hit_lane >= 0:
                pool_values[slab, hit_lane] = v[t]
                status[t] = _STATUS_HIT
            elif used < n_empty:
                lane = empty_lanes[used]
                used += 1
                pool_keys[slab, lane] = key
                pool_values[slab, lane] = v[t]
                status[t] = _STATUS_DONE
            else:
                status[t] = _STATUS_ADVANCE
        i = j


@njit(cache=True)
def _insert_round_set(pool_keys, cur, k, status):
    bc = pool_keys.shape[1]
    m = cur.shape[0]
    empty_lanes = np.empty(bc, dtype=np.int64)
    i = 0
    while i < m:
        slab = cur[i]
        j = i
        while j < m and cur[j] == slab:
            j += 1
        n_empty = 0
        for lane in range(bc):
            if pool_keys[slab, lane] == _EMPTY32:
                empty_lanes[n_empty] = lane
                n_empty += 1
        used = 0
        for t in range(i, j):
            key = k[t]
            hit_lane = -1
            for lane in range(bc):
                if pool_keys[slab, lane] == key:
                    hit_lane = lane
                    break
            if hit_lane >= 0:
                status[t] = _STATUS_HIT
            elif used < n_empty:
                pool_keys[slab, empty_lanes[used]] = key
                used += 1
                status[t] = _STATUS_DONE
            else:
                status[t] = _STATUS_ADVANCE
        i = j


def insert_round_map(pool_keys, pool_values, cur, k, v):
    """One insert round (map variant); see the reference tier's contract."""
    status = np.empty(cur.shape[0], dtype=np.uint8)
    _insert_round_map(pool_keys, pool_values, cur, k, v, status)
    return status


def insert_round_set(pool_keys, cur, k):
    """One insert round (set variant); see the reference tier's contract."""
    status = np.empty(cur.shape[0], dtype=np.uint8)
    _insert_round_set(pool_keys, cur, k, status)
    return status


@njit(cache=True)
def _search_round(pool_keys, cur, k, status, hit_lanes):
    bc = pool_keys.shape[1]
    for t in range(cur.shape[0]):
        slab = cur[t]
        key = k[t]
        hit_lane = -1
        has_empty = False
        for lane in range(bc):
            kk = pool_keys[slab, lane]
            if kk == key:
                hit_lane = lane
                break
            if kk == _EMPTY32:
                has_empty = True
        if hit_lane >= 0:
            status[t] = _STATUS_HIT
            hit_lanes[t] = hit_lane
        elif has_empty:
            status[t] = _STATUS_DONE
        else:
            status[t] = _STATUS_ADVANCE


def search_round_map(pool_keys, pool_values, cur, k):
    """One search round (map variant); returns ``(status, values)``."""
    m = cur.shape[0]
    status = np.empty(m, dtype=np.uint8)
    hit_lanes = np.full(m, -1, dtype=np.int64)
    _search_round(pool_keys, cur, k, status, hit_lanes)
    vals = np.zeros(m, dtype=np.int64)
    got = hit_lanes >= 0
    vals[got] = pool_values[cur[got], hit_lanes[got]]
    return status, vals


def search_round_set(pool_keys, cur, k):
    """One search round (set variant); returns the status array only."""
    m = cur.shape[0]
    status = np.empty(m, dtype=np.uint8)
    hit_lanes = np.full(m, -1, dtype=np.int64)
    _search_round(pool_keys, cur, k, status, hit_lanes)
    return status


@njit(cache=True)
def _delete_round(pool_keys, cur, k, status):
    bc = pool_keys.shape[1]
    for t in range(cur.shape[0]):
        slab = cur[t]
        key = k[t]
        hit_lane = -1
        has_empty = False
        for lane in range(bc):
            kk = pool_keys[slab, lane]
            if kk == key:
                hit_lane = lane
                break
            if kk == _EMPTY32:
                has_empty = True
        if hit_lane >= 0:
            pool_keys[slab, hit_lane] = _TOMBSTONE32
            status[t] = _STATUS_HIT
        elif has_empty:
            status[t] = _STATUS_DONE
        else:
            status[t] = _STATUS_ADVANCE


def delete_round(pool_keys, cur, k):
    """One tombstone-delete round; mutates hit lanes, returns statuses."""
    status = np.empty(cur.shape[0], dtype=np.uint8)
    _delete_round(pool_keys, cur, k, status)
    return status


@njit(cache=True)
def _chain_lengths(next_slab, heads, lengths):
    total = np.int64(0)
    max_len = np.int64(0)
    for i in range(heads.shape[0]):
        length = np.int64(1)
        slab = heads[i]
        while next_slab[slab] != _NULL:
            slab = next_slab[slab]
            length += 1
        lengths[i] = length
        total += length
        if length > max_len:
            max_len = length
    return total, max_len


@njit(cache=True)
def _fill_level_order(next_slab, heads, lengths, max_len, slabs, head_idx, is_base):
    n = heads.shape[0]
    # offsets[d] = start of depth-d block in level-major output order.
    offsets = np.zeros(max_len + 1, dtype=np.int64)
    for i in range(n):
        for d in range(lengths[i]):
            offsets[d + 1] += 1
    for d in range(max_len):
        offsets[d + 1] += offsets[d]
    fill = offsets[:max_len].copy()
    for i in range(n):
        slab = heads[i]
        for d in range(lengths[i]):
            pos = fill[d]
            fill[d] += 1
            slabs[pos] = slab
            head_idx[pos] = i
            is_base[pos] = d == 0
            slab = next_slab[slab]


def walk_chains(next_slab, heads):
    """Level-order chain walk; same contract as the reference tier.

    Two compiled passes: measure every chain, then scatter slabs into
    level-major order (heads first, each depth block in surviving-head
    order — exactly the frontier order of the reference walk).
    """
    n = heads.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=bool), 0, 0
    lengths = np.empty(n, dtype=np.int64)
    total, max_len = _chain_lengths(next_slab, heads, lengths)
    slabs = np.empty(total, dtype=np.int64)
    head_idx = np.empty(total, dtype=np.int64)
    is_base = np.empty(total, dtype=bool)
    _fill_level_order(next_slab, heads, lengths, max_len, slabs, head_idx, is_base)
    # The reference walk gathers one next pointer per frontier slab per
    # level: levels = deepest chain, reads = every slab reached.
    return slabs, head_idx, is_base, int(max_len), int(total)


@njit(cache=True)
def _merge_stream(row_ptr, col_idx, weights, has_w, ups, upw, dels, out_comp, out_w):
    num_vertices = row_ptr.shape[0] - 1
    n_ups = ups.shape[0]
    n_dels = dels.shape[0]
    ui = 0
    di = 0
    out = 0
    prev = np.int64(-1)
    for v in range(num_vertices):
        for e in range(row_ptr[v], row_ptr[v + 1]):
            comp_o = (np.int64(v) << np.int64(32)) | col_idx[e]
            if comp_o <= prev:
                return np.int64(-1)  # duplicated base key (broken export)
            prev = comp_o
            # Emit every upsert strictly below the old key first.
            while ui < n_ups and ups[ui] < comp_o:
                out_comp[out] = ups[ui]
                if has_w:
                    out_w[out] = upw[ui]
                out += 1
                ui += 1
            while di < n_dels and dels[di] < comp_o:
                di += 1
            if ui < n_ups and ups[ui] == comp_o:
                out_comp[out] = ups[ui]  # replace: new weight wins
                if has_w:
                    out_w[out] = upw[ui]
                out += 1
                ui += 1
            elif di < n_dels and dels[di] == comp_o:
                di += 1  # delete: old key dropped
            else:
                out_comp[out] = comp_o
                if has_w:
                    out_w[out] = weights[e]
                out += 1
    while ui < n_ups:
        out_comp[out] = ups[ui]
        if has_w:
            out_w[out] = upw[ui]
        out += 1
        ui += 1
    return out


def merge_sorted_csr(
    row_ptr, col_idx, weights, upsert_comp, upsert_weights, delete_comp, num_vertices
):
    """Stream-merge a sorted delta into a sorted CSR (compiled single pass).

    Same contract as the reference tier: returns the merged
    ``(row_ptr, col_idx, weights)`` or ``None`` on a duplicated base key.
    """
    num_edges = col_idx.shape[0]
    n_ups = upsert_comp.shape[0]
    has_w = weights is not None
    w_in = weights if has_w else np.empty(0, dtype=np.int64)
    upw = upsert_weights
    if upw is None:
        upw = np.zeros(n_ups, dtype=np.int64) if has_w else np.empty(0, dtype=np.int64)
    out_comp = np.empty(num_edges + n_ups, dtype=np.int64)
    out_w = np.empty(num_edges + n_ups if has_w else 0, dtype=np.int64)
    count = _merge_stream(
        row_ptr, col_idx, w_in, has_w, upsert_comp, upw, delete_comp, out_comp, out_w
    )
    if count < 0:
        return None
    comp = out_comp[: int(count)]
    counts = np.bincount(comp >> np.int64(32), minlength=num_vertices)
    new_row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    new_weights = out_w[: int(count)].copy() if has_w else None
    return new_row_ptr, (comp & _MASK32).astype(np.int64), new_weights
