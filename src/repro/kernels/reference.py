"""The always-on pure-NumPy kernel tier (the executable specification).

Each function is one *fused* whole-round (or whole-walk) pass over the
structure-of-arrays slab arena or a sorted CSR: a single gather feeds hit
detection, the empty-lane scan, rank-in-group lane claiming, and the
scatter writes, with no per-item Python and no re-sorting between rounds
(the insert driver maintains group contiguity across rounds instead — see
:mod:`repro.slabhash.insert`).

Kernels here are **pure with respect to the device model**: they never
touch :mod:`repro.gpusim` counters.  Drivers charge the model from the
tier-independent quantities these functions return (pending sizes, status
counts, walk levels), which is what makes the optional jit tier
(:mod:`repro.kernels.jit`) bit-identical in modeled cost by construction.

Status codes shared by both tiers:

- ``STATUS_HIT`` (0) — the probe found its key this round (insert:
  replaced; search: found; delete: tombstoned);
- ``STATUS_DONE`` (1) — the item resolved without a hit (insert: claimed
  an empty lane; search/delete: an empty lane proved the key absent);
- ``STATUS_ADVANCE`` (2) — unresolved; the driver moves the item to the
  next slab in its chain.
"""

from __future__ import annotations

import numpy as np

from repro.slabhash.constants import EMPTY_KEY, KEY_DTYPE, NULL_SLAB, TOMBSTONE_KEY
from repro.util.groupby import rank_within_group

__all__ = [
    "STATUS_ADVANCE",
    "STATUS_DONE",
    "STATUS_HIT",
    "TIER_NAME",
    "delete_round",
    "insert_round_map",
    "insert_round_set",
    "merge_sorted_csr",
    "search_round_map",
    "search_round_set",
    "sort_window_last",
    "walk_chains",
]

#: Dispatch name of this tier.
TIER_NAME = "reference"

#: Probe resolved by finding its key this round.
STATUS_HIT = 0
#: Probe resolved without a key hit (lane claimed / provably absent).
STATUS_DONE = 1
#: Probe unresolved; advance to the next slab in the chain.
STATUS_ADVANCE = 2

_EMPTY32 = KEY_DTYPE(EMPTY_KEY)
_TOMBSTONE32 = KEY_DTYPE(TOMBSTONE_KEY)
_MASK32 = np.int64(0xFFFFFFFF)


def _insert_round(pool_keys, pool_values, cur, k, v):
    """Shared map/set insert round over group-contiguous pending items."""
    m = cur.shape[0]
    rows = pool_keys[cur]  # (m, Bc) gather = m slab reads (driver charges)
    hit = rows == k[:, None]
    hit_any = hit.any(axis=1)
    status = np.full(m, STATUS_ADVANCE, dtype=np.uint8)

    # (1) replace existing keys (value update only; not "added").
    if hit_any.any():
        repl = np.flatnonzero(hit_any)
        status[repl] = STATUS_HIT
        if pool_values is not None:
            lanes = hit[repl].argmax(axis=1)
            pool_values[cur[repl], lanes] = v[repl]

    rest = np.flatnonzero(~hit_any)
    if rest.size:
        # Equal slabs are contiguous (driver invariant), so rank-in-group
        # needs no sort.  Reuse this round's gathered rows for the
        # empty-lane scan instead of re-reading the pool.
        rest_slabs = cur[rest]
        rank = rank_within_group(rest_slabs)
        empty = rows[rest] == _EMPTY32  # (r, Bc)
        n_empty = empty.sum(axis=1)
        fits = rank < n_empty

        # (2) claim the rank-th empty lane of the shared slab.  The cumsum
        # lane selection runs only over the rows that actually fit.
        if fits.any():
            empty_f = empty[fits]
            csum = np.cumsum(empty_f, axis=1)
            lane_match = empty_f & (csum == (rank[fits] + 1)[:, None])
            lanes = lane_match.argmax(axis=1)
            fit_rows = rest[fits]
            pool_keys[rest_slabs[fits], lanes] = k[fit_rows]
            if pool_values is not None:
                pool_values[rest_slabs[fits], lanes] = v[fit_rows]
            status[fit_rows] = STATUS_DONE
    return status


def insert_round_map(pool_keys, pool_values, cur, k, v):
    """One insert round (map variant): replace / claim lane / advance.

    ``cur`` / ``k`` / ``v`` are the pending items' current slab, key, and
    value, with equal slabs contiguous.  Mutates the pool in place and
    returns a per-item status array (see module docstring).
    """
    return _insert_round(pool_keys, pool_values, cur, k, v)


def insert_round_set(pool_keys, cur, k):
    """One insert round (set variant): like the map but with no values."""
    return _insert_round(pool_keys, None, cur, k, None)


def _probe_round(pool_keys, cur, k):
    """Shared hit / empty-terminated probe for search and delete rounds."""
    rows = pool_keys[cur]
    hit = rows == k[:, None]
    hit_any = hit.any(axis=1)
    status = np.full(cur.shape[0], STATUS_ADVANCE, dtype=np.uint8)
    rest = np.flatnonzero(~hit_any)
    if rest.size:
        # A slab with an empty lane terminates the chain's data region:
        # the key is provably absent (empties exist only at chain tails).
        has_empty = (rows[rest] == _EMPTY32).any(axis=1)
        status[rest[has_empty]] = STATUS_DONE
    return status, hit, hit_any


def search_round_map(pool_keys, pool_values, cur, k):
    """One search round (map variant); returns ``(status, values)``."""
    status, hit, hit_any = _probe_round(pool_keys, cur, k)
    vals = np.zeros(cur.shape[0], dtype=np.int64)
    got = np.flatnonzero(hit_any)
    if got.size:
        status[got] = STATUS_HIT
        lanes = hit[got].argmax(axis=1)
        vals[got] = pool_values[cur[got], lanes]
    return status, vals


def search_round_set(pool_keys, cur, k):
    """One search round (set variant); returns the status array only."""
    status, _, hit_any = _probe_round(pool_keys, cur, k)
    status[hit_any] = STATUS_HIT
    return status


def delete_round(pool_keys, cur, k):
    """One tombstone-delete round; mutates hit lanes, returns statuses."""
    status, hit, hit_any = _probe_round(pool_keys, cur, k)
    found = np.flatnonzero(hit_any)
    if found.size:
        status[found] = STATUS_HIT
        lanes = hit[found].argmax(axis=1)
        pool_keys[cur[found], lanes] = _TOMBSTONE32
    return status


def walk_chains(next_slab, heads):
    """Level-order walk of every chain rooted at ``heads``.

    Returns ``(slabs, head_idx, is_base, levels, reads)``: all reachable
    slab ids in level order (heads first, then each chain's next slab in
    surviving-head order, and so on), the owning index into ``heads`` per
    slab, a base-slab mask, and the walk's cost quantities — ``levels``
    pointer-gather rounds touching ``reads`` slabs in total — which the
    driver charges to the device model.
    """
    n = heads.shape[0]
    idx0 = np.arange(n, dtype=np.int64)
    all_slabs = [heads]
    all_idx = [idx0]
    all_base = [np.ones(n, dtype=bool)]
    frontier = heads
    owners = idx0
    levels = 0
    reads = 0
    while frontier.size:
        levels += 1
        reads += int(frontier.shape[0])
        nxt = next_slab[frontier]
        alive = nxt != NULL_SLAB
        frontier = nxt[alive]
        owners = owners[alive]
        if frontier.size:
            all_slabs.append(frontier)
            all_idx.append(owners)
            all_base.append(np.zeros(frontier.shape[0], dtype=bool))
    return (
        np.concatenate(all_slabs),
        np.concatenate(all_idx),
        np.concatenate(all_base),
        levels,
        reads,
    )


def sort_window_last(comp, w, is_ins):
    """Fused dedup-last + sort of an event-window delta.

    One stable argsort replaces the pre-refactor pair (a
    ``last_occurrence_mask`` sort followed by a second full sort): sort
    the composite keys once, then keep the last element of every equal
    run — which *is* the batch's last occurrence, because the sort is
    stable.  Returns ``(sorted unique comp, w, is_ins)`` with each
    survivor carrying its window-final payload.
    """
    if comp.shape[0] == 0:
        return comp, w, is_ins
    order = np.argsort(comp, kind="stable")
    sc = comp[order]
    last = np.empty(sc.shape[0], dtype=bool)
    last[-1] = True
    np.not_equal(sc[1:], sc[:-1], out=last[:-1])
    idx = order[last]
    return sc[last], w[idx], is_ins[idx]


def merge_sorted_csr(
    row_ptr, col_idx, weights, upsert_comp, upsert_weights, delete_comp, num_vertices
):
    """Stream-merge a sorted, disjoint upsert/delete delta into a sorted CSR.

    Returns ``(row_ptr, col_idx, weights)`` for the merged edge set, or
    ``None`` when the base contains duplicate composite keys (the driver
    raises — a duplicate means a broken ``export_coo``).  Pure stream
    work: O(E + B log E), no whole-edge-set sort.
    """
    old_deg = np.diff(row_ptr)
    old_src = np.repeat(np.arange(num_vertices, dtype=np.int64), old_deg)
    old_comp = (old_src << np.int64(32)) | col_idx
    if old_comp.size > 1 and not bool(np.all(old_comp[1:] > old_comp[:-1])):
        # searchsorted pairs each touched key with one position, so a
        # duplicated base key would silently survive a delete/upsert.
        return None
    # Drop every touched key from the old stream: deletes disappear,
    # upserted keys re-enter from the delta with their new weight.
    touched = np.concatenate([upsert_comp, delete_comp])
    keep = np.ones(old_comp.shape[0], dtype=bool)
    if touched.size and old_comp.size:
        loc = np.searchsorted(old_comp, touched)
        safe = np.minimum(loc, old_comp.shape[0] - 1)
        hit = (loc < old_comp.shape[0]) & (old_comp[safe] == touched)
        keep[loc[hit]] = False
    kept_comp = old_comp[keep]
    total = kept_comp.shape[0] + upsert_comp.shape[0]
    new_comp = np.empty(total, dtype=np.int64)
    ins_at = np.searchsorted(kept_comp, upsert_comp) + np.arange(
        upsert_comp.shape[0], dtype=np.int64
    )
    ins_mask = np.zeros(total, dtype=bool)
    ins_mask[ins_at] = True
    new_comp[ins_at] = upsert_comp
    new_comp[~ins_mask] = kept_comp
    new_weights = None
    if weights is not None:
        new_weights = np.empty(total, dtype=np.int64)
        new_weights[ins_at] = (
            upsert_weights
            if upsert_weights is not None
            else np.zeros(upsert_comp.shape[0], dtype=np.int64)
        )
        new_weights[~ins_mask] = weights[keep]
    counts = np.bincount(new_comp >> np.int64(32), minlength=num_vertices)
    new_row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return new_row_ptr, (new_comp & _MASK32).astype(np.int64), new_weights
