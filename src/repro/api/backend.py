"""The :class:`GraphBackend` protocol every dynamic structure implements.

The paper is a comparison of one structure against four competitors; this
ABC is the contract that makes the comparison (and every consumer —
analytics, bench harness, examples) backend-agnostic:

- **required surface** (abstract): ``insert_edges``, ``delete_edges``,
  ``edge_exists``, ``neighbors``, ``num_edges``, ``bulk_build``,
  ``export_coo``, ``sorted_adjacency``;
- **derived defaults** (overridable): ``edge_weights``, ``degree``,
  ``adjacencies``, ``delete_vertices`` (raises unless the capability is
  declared), ``memory_bytes``, ``snapshot``;
- a class-level :class:`~repro.api.capabilities.Capabilities` declaration,
  narrowed per instance by :meth:`instance_capabilities`;
- **snapshot versioning**: every mutating operation calls
  :meth:`_bump_version` so :attr:`mutation_version` increases monotonically.
  The default :meth:`snapshot` keys its cached :class:`CSRSnapshot` on that
  version — a snapshot of an unchanged structure is O(1) and performs zero
  slab reads and zero sorts.  The :class:`repro.api.Graph` facade layers an
  incremental delta-merge on top (see ``repro.api.facade``).

Backends keep their own boundary validation so they remain safe to drive
directly; the :class:`repro.api.Graph` facade performs the same
normalization once and the (fast-pathed) re-coercion inside the backend is
then a no-op on already-clean int64 arrays.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.api.capabilities import Capabilities
from repro.api.snapshot import CSRSnapshot
from repro.coo import COO
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_in_range

__all__ = [
    "GraphBackend",
    "DegreeView",
    "degree_array",
    "gather_adjacencies",
    "scan_edge_weights",
]


def scan_edge_weights(graph, src, dst, gather) -> tuple[np.ndarray, np.ndarray]:
    """Shared ``edge_weights`` engine for scan-based list structures.

    ``gather(verts)`` returns ``(owner_pos, exist_dst, weight_at)`` for the
    unique queried sources, where ``weight_at(hit_indices)`` maps indices
    into the gathered arrays to stored weights (and charges whatever
    counters the structure's scan costs).  The helper does the common
    validate / composite / sort / binary-search sequence once so Hornet-
    and faimGraph-style backends don't each maintain a copy.
    """
    src = as_int_array(src, "src")
    dst = as_int_array(dst, "dst")
    if src.shape[0] != dst.shape[0]:
        raise ValidationError(f"length mismatch: src has {src.shape[0]}, dst has {dst.shape[0]}")
    if src.size == 0:
        return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    check_in_range(src, 0, graph.num_vertices, "src")
    verts = np.unique(src)
    owner, exist_dst, weight_at = gather(verts)
    exist_comp = (verts[owner] << np.int64(32)) | exist_dst
    order = np.argsort(exist_comp)
    exist_sorted = exist_comp[order]
    query = (src << np.int64(32)) | dst
    found = np.zeros(src.shape[0], dtype=bool)
    weights = np.zeros(src.shape[0], dtype=np.int64)
    if exist_sorted.size:
        loc = np.searchsorted(exist_sorted, query)
        safe = np.minimum(loc, exist_sorted.shape[0] - 1)
        found = (loc < exist_sorted.shape[0]) & (exist_sorted[safe] == query)
        if found.any():
            weights[found] = weight_at(order[loc[found]])
    return found, weights


def gather_adjacencies(graph, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched ``(owner_pos, destinations, weights)`` via per-vertex
    :meth:`neighbors` calls — the generic adjacency sweep shared by the
    :meth:`GraphBackend.adjacencies` default and the analytics fallback
    for foreign graph objects.  ``owner_pos[i]`` indexes ``vertex_ids``.
    """
    vids = as_int_array(vertex_ids, "vertex_ids")
    owner_parts, dst_parts, w_parts = [], [], []
    for pos, v in enumerate(vids.tolist()):
        nbrs, ws = graph.neighbors(int(v))
        if nbrs.size:
            owner_parts.append(np.full(nbrs.shape[0], pos, dtype=np.int64))
            dst_parts.append(nbrs.astype(np.int64, copy=False))
            w_parts.append(ws.astype(np.int64, copy=False))
    if not owner_parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    return (
        np.concatenate(owner_parts),
        np.concatenate(dst_parts),
        np.concatenate(w_parts),
    )


class DegreeView(np.ndarray):
    """An out-degree array that is *also* callable like the protocol method.

    The list baselines maintain degrees as a plain per-vertex ndarray and
    index it internally (``self.degree[src]``); the protocol (and the
    ``Graph`` facade) want a uniform ``degree(vertex_ids) -> ndarray``
    callable.  This ndarray subclass serves both: indexing, reductions and
    ufuncs behave exactly like the underlying array, while calling it
    validates the ids and gathers a copy — the same semantics as
    :meth:`repro.core.DynamicGraph.degree`.
    """

    def __call__(self, vertex_ids) -> np.ndarray:
        vids = as_int_array(vertex_ids, "vertex_ids")
        check_in_range(vids, 0, self.shape[0], "vertex_ids")
        return np.asarray(self)[vids].copy()


def degree_array(doc: str | None = None) -> property:
    """A property that stores any assigned array as a :class:`DegreeView`.

    Backends assign and mutate ``self.degree`` freely (including rebinding
    to the result of ``np.bincount``); the setter re-wraps so the public
    attribute always satisfies the callable protocol.
    """

    def fget(self):
        return self._degree_view

    def fset(self, value):
        self._degree_view = np.asarray(value, dtype=np.int64).view(DegreeView)

    return property(fget, fset, doc=doc or "Per-vertex out-degree (indexable and callable).")


class GraphBackend(abc.ABC):
    """Abstract base for every dynamic graph structure in the package.

    Subclasses must set the class attribute ``capabilities`` and define an
    instance attribute (or property) ``num_vertices`` — the vertex-id space
    ``[0, num_vertices)`` every batched operation validates against — plus
    ``weighted`` reflecting the instance's storage configuration.
    """

    #: Class-level declaration of optional features (see Capabilities).
    capabilities: ClassVar[Capabilities] = Capabilities()

    #: Whether this *instance* stores per-edge weights.
    weighted: bool = False

    #: Monotone mutation counter (class default 0; bumps write the instance).
    _mutation_version: int = 0

    #: Last materialized snapshot as ``(version, CSRSnapshot)``; kept across
    #: bumps because the facade's delta-merge uses it as the merge base.
    _snapshot_cache: tuple[int, CSRSnapshot] | None = None

    # -- snapshot versioning ---------------------------------------------------

    @property
    def mutation_version(self) -> int:
        """Monotonically increasing counter of mutating operations.

        Equal versions guarantee an unchanged live edge set; the snapshot
        cache (and any external reader) keys on it.  Bumps are deliberately
        conservative: any mutating call that passes validation with a
        non-empty batch bumps even when it changes nothing (weight
        replacement makes "nothing changed" expensive to prove), so a
        stale version never masquerades as fresh; only empty batches and
        rejected arguments leave the version untouched.
        """
        return self._mutation_version

    def _bump_version(self) -> None:
        """Advance :attr:`mutation_version`; called by every mutating op."""
        self._mutation_version = self._mutation_version + 1

    # -- required batched surface ----------------------------------------------

    @abc.abstractmethod
    def insert_edges(self, src, dst, weights=None) -> int:
        """Insert a batch of directed edges; returns edges newly added.

        Self-loops are dropped; duplicates resolve by replace semantics
        (most recent weight wins).  Unweighted instances must reject
        explicit ``weights`` with :class:`ValidationError`.
        """

    @abc.abstractmethod
    def delete_edges(self, src, dst) -> int:
        """Delete a batch of directed edges; returns edges removed."""

    @abc.abstractmethod
    def edge_exists(self, src, dst) -> np.ndarray:
        """Vectorized membership test (the paper's ``edgeExist``)."""

    @abc.abstractmethod
    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """One adjacency list as ``(destinations, weights)``."""

    @abc.abstractmethod
    def num_edges(self) -> int:
        """Exact directed-slot edge count."""

    @abc.abstractmethod
    def bulk_build(self, coo: COO) -> int:
        """One-shot build from a COO snapshot; requires an empty structure."""

    @abc.abstractmethod
    def export_coo(self) -> COO:
        """Snapshot the live edge set."""

    @abc.abstractmethod
    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """``(row_ptr, col_idx)`` sorted CSR view (paying a sort if the
        structure does not maintain order — Table VIII's cost)."""

    # -- derived defaults ----------------------------------------------------------

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex.

        Baselines shadow this with a :func:`degree_array` property (O(1)
        gathers from maintained counters); this fallback walks adjacency.
        """
        vids = as_int_array(vertex_ids, "vertex_ids")
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        return np.array(
            [self.neighbors(int(v))[0].shape[0] for v in vids.tolist()],
            dtype=np.int64,
        )

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """``(found, weight)`` per queried pair.

        Default suits unweighted instances: membership plus zero weights.
        Weighted backends override with a real value lookup.
        """
        found = self.edge_exists(src, dst)
        return found, np.zeros(found.shape[0], dtype=np.int64)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched adjacency iterator: ``(owner_pos, destinations, weights)``.

        ``owner_pos[i]`` indexes into ``vertex_ids``.  The default loops
        over :meth:`neighbors`; structures with a bulk sweep override it.
        """
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size:
            check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        return gather_adjacencies(self, vids)

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and incident edges (Algorithm 2 semantics).

        Backends without the ``vertex_dynamic`` capability inherit this
        refusal — matching e.g. real Hornet, which "does not implement
        vertex deletion" (Section VI-A3).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement vertex deletion "
            "(capability vertex_dynamic=False)"
        )

    def memory_bytes(self) -> int:
        """Bytes currently held in the structure's storage pools."""
        return int(getattr(self, "allocated_bytes", 0))

    def snapshot(self) -> CSRSnapshot:
        """Sorted-CSR snapshot of the live edge set (what analytics read).

        Cached keyed on :attr:`mutation_version`: repeated snapshots of an
        unchanged structure return the same object without re-walking slabs
        or re-sorting (the paper's phase-concurrent usage model — compute
        phases between update phases should not pay the export twice).
        """
        version = self.mutation_version
        cached = self._snapshot_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        snap = CSRSnapshot.from_coo(self.export_coo())
        self._snapshot_cache = (version, snap)
        return snap

    # -- capability helpers ------------------------------------------------------------

    def instance_capabilities(self) -> Capabilities:
        """Class capabilities narrowed by this instance's configuration."""
        return self.capabilities.narrowed(weighted=self.weighted)

    def _reject_weights_if_unweighted(self, weights) -> None:
        """Shared guard: explicit weights on an unweighted instance error.

        Unweighted structures used to drop weights silently, which made
        cross-backend comparisons quietly unsound; the contract now
        requires a loud failure.
        """
        if weights is not None and not self.weighted:
            raise ValidationError(
                f"{type(self).__name__} instance is unweighted (weighted=False) "
                "and cannot store edge weights; construct it with weighted=True "
                "or omit the weights argument"
            )
