"""The uniform read-only view analytics consume: a sorted CSR snapshot.

The paper's usage pattern is *phase-concurrent*: update phases mutate the
structure, query/compute phases read it.  Whole-graph analytics (PageRank,
connected components, core numbers, sorted triangle counting) should not
poke backend internals — they take one :class:`CSRSnapshot` produced by
:meth:`repro.api.Graph.snapshot` (or any backend's ``snapshot()``) and
iterate over flat arrays, exactly how a Gunrock app consumes the structure
between update phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coo import COO

__all__ = ["CSRSnapshot", "as_snapshot"]


@dataclass(frozen=True)
class CSRSnapshot:
    """An immutable sorted-CSR view of a graph's live edge set.

    Rows are sorted by destination (so ``col_idx`` is globally sorted under
    the ``(src << 32) | dst`` composite order), which sorted-intersection
    kernels rely on.  ``weights`` is None for unweighted snapshots.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray | None
    num_vertices: int

    @classmethod
    def from_coo(cls, coo: COO) -> "CSRSnapshot":
        row_ptr, col_idx, w = coo.to_csr()
        return cls(
            row_ptr=row_ptr,
            col_idx=col_idx,
            weights=w if coo.weights is not None else None,
            num_vertices=coo.num_vertices,
        )

    # -- shape -----------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.col_idx.shape[0])

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex id."""
        return np.diff(self.row_ptr).astype(np.int64)

    # -- flat-array access -------------------------------------------------------

    def sources(self) -> np.ndarray:
        """Source id per edge (the COO expansion of ``row_ptr``)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.row_ptr))

    def weights_or_zeros(self) -> np.ndarray:
        if self.weights is not None:
            return self.weights
        return np.zeros(self.num_edges, dtype=np.int64)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (destinations, weights) slice for one vertex (views)."""
        v = int(vertex)
        lo, hi = int(self.row_ptr[v]), int(self.row_ptr[v + 1])
        if self.weights is not None:
            return self.col_idx[lo:hi], self.weights[lo:hi]
        return self.col_idx[lo:hi], np.zeros(hi - lo, dtype=np.int64)

    def to_coo(self) -> COO:
        return COO(
            self.sources(),
            self.col_idx.copy(),
            self.num_vertices,
            weights=None if self.weights is None else self.weights.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"CSRSnapshot(|V|={self.num_vertices}, |E|={self.num_edges}, {kind})"


def as_snapshot(graph) -> CSRSnapshot:
    """Coerce a graph-like object into a :class:`CSRSnapshot`.

    Accepts (in priority order) an existing snapshot, anything exposing a
    ``snapshot()`` method (the :class:`repro.api.Graph` facade and every
    :class:`repro.api.GraphBackend`), or anything exposing ``export_coo``.
    """
    if isinstance(graph, CSRSnapshot):
        return graph
    snap = getattr(graph, "snapshot", None)
    if callable(snap):
        return snap()
    return CSRSnapshot.from_coo(graph.export_coo())
