"""The uniform read-only view analytics consume: a sorted CSR snapshot.

The paper's usage pattern is *phase-concurrent*: update phases mutate the
structure, query/compute phases read it.  Whole-graph analytics (PageRank,
connected components, core numbers, sorted triangle counting) should not
poke backend internals — they take one :class:`CSRSnapshot` produced by
:meth:`repro.api.Graph.snapshot` (or any backend's ``snapshot()``) and
iterate over flat arrays, exactly how a Gunrock app consumes the structure
between update phases.

Snapshots are versioned and cached: :meth:`repro.api.GraphBackend.snapshot`
keys the last built snapshot on the backend's ``mutation_version`` (an
unchanged graph re-serves the same object for free), and the
:class:`repro.api.Graph` facade maintains the cache *incrementally* by
merging a sorted O(batch) delta into the cached CSR
(:func:`merge_csr_delta`) instead of re-sorting the whole edge set — the
Table VIII re-sort cost the paper prices, paid only on genuine cold
rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.kernels import get_kernels
from repro.util.errors import ValidationError

__all__ = [
    "CSRSnapshot",
    "as_snapshot",
    "cached_snapshot",
    "merge_csr_delta",
    "merge_event_window",
]

@dataclass(frozen=True)
class CSRSnapshot:
    """An immutable sorted-CSR view of a graph's live edge set.

    Rows are sorted by destination (so ``col_idx`` is globally sorted under
    the ``(src << 32) | dst`` composite order), which sorted-intersection
    kernels rely on.  ``weights`` is None for unweighted snapshots.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray | None
    num_vertices: int

    @classmethod
    def from_coo(cls, coo: COO) -> "CSRSnapshot":
        """Cold-build a sorted CSR from COO (charges the O(E log E) sort)."""
        # The cold-build lexsort is the whole-edge-set sort whose absence
        # the cached/incremental paths are measured against; charge it so
        # the device model prices cold vs. cached snapshots honestly.
        counters = get_counters()
        counters.kernel_launches += 1
        counters.sorted_elements += coo.num_edges
        row_ptr, col_idx, w = coo.to_csr()
        return cls(
            row_ptr=row_ptr,
            col_idx=col_idx,
            weights=w if coo.weights is not None else None,
            num_vertices=coo.num_vertices,
        )

    # -- shape -----------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Edge (CSR row) count."""
        return int(self.col_idx.shape[0])

    @property
    def weighted(self) -> bool:
        """True when the snapshot carries per-edge weights (lets weighted
        kernels like :func:`repro.analytics.sssp` accept a bare snapshot)."""
        return self.weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex id."""
        return np.diff(self.row_ptr).astype(np.int64)

    # -- flat-array access -------------------------------------------------------

    def sources(self) -> np.ndarray:
        """Source id per edge (the COO expansion of ``row_ptr``)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.row_ptr))

    def weights_or_zeros(self) -> np.ndarray:
        """Weights array, or zeros for an unweighted snapshot."""
        if self.weights is not None:
            return self.weights
        return np.zeros(self.num_edges, dtype=np.int64)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched adjacency gather ``(owner_pos, destinations, weights)``.

        Same contract as :meth:`repro.api.GraphBackend.adjacencies` —
        ``owner_pos[i]`` indexes the requested vertex that owns edge ``i``
        — so frontier kernels (:func:`repro.analytics.bfs`,
        :func:`repro.analytics.sssp`) traverse a snapshot with vectorized
        row gathers instead of per-vertex ``neighbors`` calls.  Charges
        the device model for the gather (one launch + the copied rows),
        making snapshot traversals priceable by the stream bench.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        lens = np.diff(self.row_ptr)[vertex_ids]
        starts = self.row_ptr[vertex_ids]
        m = int(lens.sum())
        counters = get_counters()
        counters.kernel_launches += 1
        counters.bytes_copied += int(vertex_ids.shape[0]) * 8 + m * (
            16 if self.weights is not None else 8
        )
        if m == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), e.copy()
        flat = (
            np.arange(m, dtype=np.int64)
            - np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]), lens)
            + np.repeat(starts, lens)
        )
        owner_pos = np.repeat(np.arange(vertex_ids.shape[0], dtype=np.int64), lens)
        dst = self.col_idx[flat]
        w = self.weights[flat] if self.weights is not None else np.zeros(m, dtype=np.int64)
        return owner_pos, dst, w

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (destinations, weights) slice for one vertex (views)."""
        v = int(vertex)
        lo, hi = int(self.row_ptr[v]), int(self.row_ptr[v + 1])
        if self.weights is not None:
            return self.col_idx[lo:hi], self.weights[lo:hi]
        return self.col_idx[lo:hi], np.zeros(hi - lo, dtype=np.int64)

    def to_coo(self) -> COO:
        """COO expansion (copied arrays; round-trips through from_coo)."""
        return COO(
            self.sources(),
            self.col_idx.copy(),
            self.num_vertices,
            weights=None if self.weights is None else self.weights.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"CSRSnapshot(|V|={self.num_vertices}, |E|={self.num_edges}, {kind})"


def as_snapshot(graph) -> CSRSnapshot:
    """Coerce a graph-like object into a :class:`CSRSnapshot`.

    Accepts (in priority order) an existing snapshot, anything exposing a
    ``snapshot()`` method (the :class:`repro.api.Graph` facade and every
    :class:`repro.api.GraphBackend`), or anything exposing ``export_coo``.
    """
    if isinstance(graph, CSRSnapshot):
        return graph
    snap = getattr(graph, "snapshot", None)
    if callable(snap):
        return snap()
    return CSRSnapshot.from_coo(graph.export_coo())


def cached_snapshot(graph) -> CSRSnapshot | None:
    """The graph's cached snapshot iff it is still fresh, else None.

    Never builds anything: analytics that merely *prefer* flat arrays (the
    k-core degree pass, hash triangle counting) use this to skip the slab
    walk when some earlier phase already snapshotted the unchanged graph,
    without forcing a sort on graphs that were never snapshotted.
    """
    backend = getattr(graph, "backend", graph)  # unwrap a Graph facade
    cache = getattr(backend, "_snapshot_cache", None)
    version = getattr(backend, "mutation_version", None)
    if cache is not None and version is not None and cache[0] == version:
        return cache[1]
    return None


def merge_event_window(base: CSRSnapshot, events, directed: bool = True) -> CSRSnapshot:
    """Reduce an event-log window of :class:`~repro.eventlog.EdgeBatch`
    events to net per-key ops and merge them into ``base``.

    The caller (a cursor consumer — see :meth:`repro.api.Graph.snapshot`)
    has already proven the window is a complete, purely edge-batched
    history from ``base``'s version to the live one.  ``directed=False``
    mirrors every batch before reduction, matching what the undirected
    backend stored.  Replace semantics apply across the whole window: the
    last operation per composite key wins.
    """
    srcs, dsts, ws, kinds = [], [], [], []
    for event in events:
        src, dst, weights = event.src, event.dst, event.weights
        if not directed:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
            if weights is not None:
                weights = np.concatenate([weights, weights])
        srcs.append(src)
        dsts.append(dst)
        ws.append(
            weights if weights is not None else np.zeros(src.shape[0], dtype=np.int64)
        )
        kinds.append(np.full(src.shape[0], event.is_insert, dtype=bool))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    w = np.concatenate(ws)
    is_ins = np.concatenate(kinds)
    comp = (src << np.int64(32)) | dst
    get_counters().sorted_elements += int(comp.shape[0])
    # Fused dedup-last + sort (one stable argsort instead of the old
    # mask-sort / re-sort pair) behind the kernel-tier seam.
    comp, w, is_ins = get_kernels().sort_window_last(comp, w, is_ins)
    weighted = base.weights is not None
    return merge_csr_delta(
        base,
        comp[is_ins],
        w[is_ins] if weighted else None,
        comp[~is_ins],
    )


def merge_csr_delta(
    base: CSRSnapshot,
    upsert_comp: np.ndarray,
    upsert_weights: np.ndarray | None,
    delete_comp: np.ndarray,
) -> CSRSnapshot:
    """Merge a net edge delta into a sorted CSR snapshot.

    ``upsert_comp`` / ``delete_comp`` are disjoint, sorted, unique
    composite keys ``(src << 32) | dst``; an upsert replaces the weight of
    an existing edge or inserts a new one, a delete removes the edge if
    present.  Cost is **O(E + B log E)** stream work — no whole-edge-set
    sort — and the result is bit-identical to a cold
    :meth:`CSRSnapshot.from_coo` rebuild of the same live set (both orders
    are the unique-key composite order).

    Charges the device model for the merge stream (``bytes_copied``) so
    benches price the incremental path against the cold rebuild's
    ``sorted_elements``.  The stream merge itself runs behind the
    :mod:`repro.kernels` tier seam (``merge_sorted_csr``); both tiers
    produce bit-identical CSRs and this driver charges from result shapes,
    so the modeled cost is tier-independent.
    """
    counters = get_counters()
    counters.kernel_launches += 1
    merged = get_kernels().merge_sorted_csr(
        base.row_ptr,
        base.col_idx,
        base.weights,
        upsert_comp,
        upsert_weights,
        delete_comp,
        base.num_vertices,
    )
    if merged is None:
        # Backends export unique live sets — a duplicate composite key in
        # the base means a broken export_coo; fail loudly instead of
        # letting searchsorted pair it with a single position.
        raise ValidationError("merge base contains duplicate (src, dst) keys")
    row_ptr, col_idx, weights = merged
    width = 16 if base.weights is not None else 8
    counters.bytes_copied += (base.num_edges + int(col_idx.shape[0])) * width
    return CSRSnapshot(
        row_ptr=row_ptr,
        col_idx=col_idx,
        weights=weights,
        num_vertices=base.num_vertices,
    )
