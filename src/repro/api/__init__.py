"""Unified dynamic-graph API: protocol, capability registry, and facade.

The paper (Awad et al., IPDPS 2020) compares one dynamic-graph structure
against Hornet-, faimGraph-, GPMA- and B-tree-style competitors; this
package is the contract that lets every consumer in the repository —
analytics, the bench harness, examples, tests — drive all five structures
through one stable surface:

- :class:`GraphBackend` (``repro.api.backend``) — the typed ABC capturing
  the shared update/query surface every structure implements;
- :class:`Capabilities` (``repro.api.capabilities``) — per-backend feature
  flags (weighted storage, vertex deletion, sorted ranges, rehash,
  tombstone flush) that consumers branch on instead of ``hasattr`` probes;
- the **registry** (``repro.api.registry``) — ``create("hornet",
  num_vertices=...)`` constructs any registered backend by name;
  ``register(...)`` adds new ones;
- :class:`Graph` (``repro.api.facade``) — argument normalization done
  exactly once, capability-gated dispatch, and the :meth:`Graph.snapshot`
  sorted-CSR view whole-graph analytics consume;
- :class:`CSRSnapshot` / :func:`as_snapshot` (``repro.api.snapshot``) —
  the immutable read view of a phase-concurrent structure.  Snapshots are
  cached keyed on each backend's ``mutation_version`` and maintained
  incrementally by the facade's delta-merge (cold O(E log E) rebuilds are
  paid only when the structure changed in ways a sorted merge cannot
  express); :func:`cached_snapshot` peeks at a fresh cache without
  building anything.

Quickstart::

    import repro.api as api

    g = api.Graph.create("slabhash", num_vertices=1_000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])                  # -> array([ True])

    from repro.analytics import pagerank
    pagerank(g)                              # reads g.snapshot()

    raw = api.create("gpma", num_vertices=64)   # unwrapped backend
    api.capabilities("gpma").vertex_dynamic     # False
"""

from repro.api.backend import DegreeView, GraphBackend, degree_array
from repro.api.capabilities import Capabilities
from repro.api.facade import MAX_PACKABLE_VERTICES, Graph
from repro.api.registry import (
    BackendSpec,
    backend_names,
    capabilities,
    create,
    get_spec,
    register,
)
from repro.api.sharding import (
    SHARD_DEAD,
    SHARD_DEGRADED,
    SHARD_HEALTHY,
    DegradedSnapshot,
    DispatchReport,
    PartialDispatchError,
    Partitioner,
    RetryPolicy,
    ShardedGraph,
    ShardError,
)
from repro.api.snapshot import CSRSnapshot, as_snapshot, cached_snapshot, merge_csr_delta

__all__ = [
    "BackendSpec",
    "Capabilities",
    "CSRSnapshot",
    "DegradedSnapshot",
    "DegreeView",
    "DispatchReport",
    "Graph",
    "GraphBackend",
    "MAX_PACKABLE_VERTICES",
    "PartialDispatchError",
    "Partitioner",
    "RetryPolicy",
    "SHARD_DEAD",
    "SHARD_DEGRADED",
    "SHARD_HEALTHY",
    "ShardError",
    "ShardedGraph",
    "as_snapshot",
    "backend_names",
    "cached_snapshot",
    "capabilities",
    "create",
    "degree_array",
    "get_spec",
    "merge_csr_delta",
    "register",
]
