"""Backend registry: construct any dynamic graph structure by name.

Benchmarks, tests and examples pit the paper's structure against four
competitors on identical inputs; the registry is the single factory they
all share::

    import repro.api as api
    g = api.create("hornet", num_vertices=1_000)
    api.backend_names()          # ('btree', 'faimgraph', 'gpma', 'hornet', 'slabhash')
    api.capabilities("gpma")     # Capabilities(weighted=False, ...)

Backends register lazily (a loader returning the class), so importing
``repro.api`` stays cheap and the package avoids import cycles: backend
modules import ``repro.api.backend`` for the ABC while the registry only
touches them on first :func:`create`.

Every registered backend inherits the :class:`~repro.api.backend.GraphBackend`
snapshot contract: mutating operations bump ``mutation_version`` and
``snapshot()`` re-serves its cached sorted-CSR view while the version is
unchanged, so registry consumers get phase-concurrent snapshot caching for
free (see the README's "Snapshots and phase-concurrency" section).

Weight defaulting is made explicit and uniform here: :func:`create` always
passes ``weighted`` (default **False** — the set variant), unlike the
legacy constructors whose defaults disagreed (``DynamicGraph``/``BTreeGraph``
/``HornetGraph`` defaulted weighted, ``FaimGraph``/``GPMAGraph`` did not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable

from repro.api.capabilities import Capabilities
from repro.util.errors import ValidationError

__all__ = [
    "BackendSpec",
    "register",
    "create",
    "backend_names",
    "get_spec",
    "capabilities",
]


@dataclass
class BackendSpec:
    """One registered backend: a name, a lazy class loader, and metadata."""

    name: str
    loader: Callable[[], type]
    description: str = ""
    aliases: tuple[str, ...] = ()
    _cls: type | None = field(default=None, repr=False)

    def cls(self) -> type:
        """The backend class (imported on first use, then cached)."""
        if self._cls is None:
            self._cls = self.loader()
        return self._cls

    @property
    def capabilities(self) -> Capabilities:
        """Class-level capability flags (resolves a lazy loader)."""
        return self.cls().capabilities


_REGISTRY: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register(
    name: str,
    loader: Callable[[], type] | type,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> BackendSpec:
    """Register a backend class (or lazy loader) under ``name``.

    ``aliases`` are alternate lookup names (the bench harness's legacy
    ``"ours"`` resolves to ``"slabhash"`` this way).  Re-registering an
    existing name requires ``overwrite=True``.
    """
    key = name.lower()
    taken = set(_REGISTRY) | set(_ALIASES)
    if not overwrite:
        clashes = ({key} | {a.lower() for a in aliases}) & taken
        if clashes:
            raise ValidationError(f"backend name/alias already registered: {sorted(clashes)}")
    else:
        # Purge stale alias entries so the overwritten name/aliases resolve
        # to this registration (aliases win in get_spec, so leftovers from
        # a previous registration would silently shadow it).
        _ALIASES.pop(key, None)
        for alias in aliases:
            _ALIASES.pop(alias.lower(), None)
    if isinstance(loader, type):
        cls = loader
        spec = BackendSpec(key, lambda: cls, description, tuple(aliases), cls)
    else:
        spec = BackendSpec(key, loader, description, tuple(aliases))
    _REGISTRY[key] = spec
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = key
    return spec


def get_spec(name: str) -> BackendSpec:
    """Resolve a name or alias to its :class:`BackendSpec`."""
    key = str(name).lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(
            f"unknown graph backend {name!r}; registered backends: {known}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Canonical registered names (aliases excluded), sorted."""
    return tuple(sorted(_REGISTRY))


def capabilities(name: str) -> Capabilities:
    """Class-level capability declaration of a registered backend."""
    return get_spec(name).capabilities


def create(name: str, num_vertices: int, *, weighted: bool = False, **kwargs: Any):
    """Instantiate a registered backend by name.

    Parameters
    ----------
    name:
        Registered backend name or alias (case-insensitive).
    num_vertices:
        Vertex-id space / dictionary capacity.
    weighted:
        Store per-edge weights.  Explicitly defaulted to **False** for
        every backend (the legacy constructors disagreed); requesting
        ``weighted=True`` from a backend without the capability raises.
    **kwargs:
        Backend-specific options passed through (``load_factor``,
        ``directed``, ``segment_size``, ...).
    """
    spec = get_spec(name)
    if weighted and not spec.capabilities.weighted:
        raise ValidationError(
            f"backend {spec.name!r} cannot store edge weights "
            "(capability weighted=False)"
        )
    return spec.cls()(num_vertices=int(num_vertices), weighted=weighted, **kwargs)


def _lazy(module: str, attr: str) -> Callable[[], type]:
    def load() -> type:
        return getattr(import_module(module), attr)

    return load


# -- the paper's five dynamic structures -------------------------------------------

register(
    "slabhash",
    _lazy("repro.core.graph", "DynamicGraph"),
    description="Hash-table-per-vertex dynamic graph (the paper's contribution)",
    aliases=("ours", "dynamic"),
)
register(
    "btree",
    _lazy("repro.btree.graph", "BTreeGraph"),
    description="B+-tree-per-vertex graph with natively sorted adjacency (Section VII)",
)
register(
    "hornet",
    _lazy("repro.baselines.hornet", "HornetGraph"),
    description="Hornet-like block-per-vertex structure (Busato et al., HPEC 2018)",
)
register(
    "faimgraph",
    _lazy("repro.baselines.faimgraph", "FaimGraph"),
    description="faimGraph-like paged adjacency lists (Winter et al., SC 2018)",
    aliases=("faim",),
)
register(
    "gpma",
    _lazy("repro.baselines.gpma", "GPMAGraph"),
    description="GPMA-like packed-memory-array edge set (Sha et al., VLDB 2017)",
)
