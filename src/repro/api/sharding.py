"""A sharded multi-graph service built on the event log.

The paper's phase-concurrent model assumes one device-resident structure;
scaling past one device (or one allocator arena) means partitioning the
vertex space across N independent :class:`repro.api.Graph` shards and
routing work to them.  This module is that layer:

- :class:`Partitioner` — a deterministic multiplicative-hash partition of
  the vertex-id space (balanced for both random and contiguous id
  populations, unlike a plain modulus);
- :class:`ShardedGraph` — a facade with the same batch surface as
  :class:`~repro.api.Graph`.  Batches are normalized **once** (the same
  :func:`repro.api.facade.normalize_batch` seam the single-graph facade
  uses), published to the router's own :class:`repro.eventlog.EventLog`,
  and routed to per-shard facades by the *source* vertex's owner — a cut
  edge ``(u, v)`` with ``owner(u) != owner(v)`` is stored in ``u``'s
  shard, so every vertex's full out-adjacency lives in exactly one shard.
  Queries (``degree`` / ``edge_exists`` / ``edge_weights`` /
  ``adjacencies`` / ``neighbors``) scatter to the owning shards and
  gather results back into the caller's order.

Because the router publishes the same typed events a single facade does,
every event-log consumer works unchanged on a sharded service: the
incremental analytics of :mod:`repro.stream.incremental` attach to
``ShardedGraph.events`` exactly as they do to ``Graph.events``, and
:meth:`ShardedGraph.snapshot` assembles a **global** sorted
:class:`~repro.api.snapshot.CSRSnapshot` from the per-shard cached
snapshots (each maintained incrementally by its shard's own event-log
merge), so ``pagerank`` / ``connected_components`` / triangle counting
run unchanged — and bit-identical to the same workload applied to a
single ``Graph``.

Robustness (see ``docs/robustness.md``): every shard carries a health
state (``"healthy"`` / ``"degraded"`` / ``"dead"``).  Transient shard
faults are retried with bounded modeled backoff (:class:`RetryPolicy`);
a permanent fault marks the shard dead.  A mutation that fails on some
shards reports **exactly which shards applied** (:class:`DispatchReport`)
and is re-driveable via :meth:`ShardedGraph.redrive`; the router
publishes a structural ``"partial_dispatch"`` event so snapshot-merge and
incremental-analytics consumers rebuild cold instead of silently
diverging.  Reads survive dead shards through
:meth:`ShardedGraph.degraded_snapshot`, which serves each dead shard's
last cached per-shard snapshot tagged with staleness, and a dead shard is
restored **bit-identically** from its durable per-shard WAL by
:meth:`ShardedGraph.rebuild_shard` (after :meth:`attach_durability`).

Cost accounting: shard dispatches are independent, so the device model
prices an update batch as *router overhead + the slowest shard*
(:attr:`ShardedGraph.update_costs` ``.parallel_seconds``) alongside the
total work across shards (``.serial_seconds``).  Retry backoff is modeled
time, charged to the faulting shard — so chaos runs price their own
recovery overhead deterministically.  The ``t12/shard`` bench artifact
reports aggregate update throughput under the parallel model vs. shard
count; ``t14/chaos`` prices degraded reads and WAL-replay recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.facade import (
    DEFAULT_DELTA_LIMIT,
    Graph,
    _check_packable,
    normalize_batch,
)
from repro.api.snapshot import CSRSnapshot
from repro.coo import COO
from repro.eventlog import EventLog
from repro.gpusim.counters import counting, get_counters
from repro.gpusim.model import simulated_seconds
from repro.util.errors import (
    FaultError,
    PermanentFault,
    ReproError,
    TransientFault,
    ValidationError,
)
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = [
    "Partitioner",
    "ShardedGraph",
    "ShardCosts",
    "ShardError",
    "PartialDispatchError",
    "DispatchReport",
    "DegradedSnapshot",
    "RetryPolicy",
    "SHARD_HEALTHY",
    "SHARD_DEGRADED",
    "SHARD_DEAD",
]

#: Fibonacci multiplier (golden-ratio reciprocal in 64 bits) — spreads
#: consecutive ids across the hash space.
_FIB = np.uint64(0x9E3779B97F4A7C15)

#: Shard health states (see the module docstring and docs/robustness.md).
SHARD_HEALTHY = "healthy"
SHARD_DEGRADED = "degraded"
SHARD_DEAD = "dead"


class ShardError(ReproError, RuntimeError):
    """A shard failed while serving a routed operation.

    Carries the shard index and the operation name so scatter-gather
    failures are diagnosable instead of surfacing as a raw backend
    exception with no routing context; the original fault (when there is
    one) rides along as ``__cause__``.
    """

    def __init__(self, message: str, *, shard: int, op: str) -> None:
        super().__init__(message)
        #: Index of the shard that failed.
        self.shard = int(shard)
        #: The routed operation that was in flight.
        self.op = op


@dataclass(frozen=True)
class DispatchReport:
    """Exactly what happened to one partially-dispatched mutation.

    ``applied`` / ``failed`` name the shards the batch did and did not
    reach (``failed`` pairs each shard with the failure description);
    ``payload`` keeps the normalized batch arrays so
    :meth:`ShardedGraph.redrive` can re-dispatch the failed rows without
    re-normalizing; ``result`` is the count the applied shards returned.
    """

    op: str
    applied: tuple
    failed: tuple
    payload: dict
    result: int

    @property
    def failed_shards(self) -> tuple:
        """Just the failed shard indices, in order."""
        return tuple(s for s, _ in self.failed)


class PartialDispatchError(ShardError):
    """A mutation applied on some shards and failed on others.

    The attached :class:`DispatchReport` says exactly which — the batch
    is diagnosable and re-driveable (:meth:`ShardedGraph.redrive`), never
    silently divergent.
    """

    def __init__(self, message: str, *, shard: int, op: str, report: DispatchReport) -> None:
        super().__init__(message, shard=shard, op=op)
        #: Full accounting of the partial dispatch.
        self.report = report


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient shard faults.

    ``max_attempts`` counts the first try; backoff between attempts is
    *modeled* device time (``backoff_base`` seconds, multiplied by
    ``multiplier`` each retry) charged to the faulting shard — so chaos
    runs stay deterministic while still pricing their recovery overhead.
    """

    max_attempts: int = 3
    backoff_base: float = 100e-6
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValidationError("backoff_base must be non-negative")
        if self.multiplier < 1.0:
            raise ValidationError("multiplier must be >= 1")


@dataclass(frozen=True)
class DegradedSnapshot:
    """A global snapshot assembled while some shards could not serve.

    ``snapshot`` is the assembled :class:`CSRSnapshot`; ``stale_shards``
    served their last cached per-shard snapshot (``staleness`` pairs each
    with ``(cached_version, live_version)``); ``missing_shards`` had no
    cached snapshot at all and contribute no edges.
    """

    snapshot: CSRSnapshot
    stale_shards: tuple
    missing_shards: tuple
    staleness: tuple

    @property
    def fresh(self) -> bool:
        """True when every shard served live (nothing stale or missing)."""
        return not self.stale_shards and not self.missing_shards


class Partitioner:
    """Deterministic hash partition of the vertex-id space into N shards.

    Uses a multiplicative (Fibonacci) hash so both random and contiguous
    id populations balance; a plain ``id % N`` would stripe contiguous
    ranges perfectly but correlate with any id-structured workload.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        self.num_shards = int(num_shards)

    def shard_of(self, vertex_ids) -> np.ndarray:
        """Owner shard per vertex id (vectorized, int64 in [0, N))."""
        ids = np.asarray(vertex_ids, dtype=np.int64).astype(np.uint64)
        h = (ids * _FIB) >> np.uint64(40)
        return (h % np.uint64(self.num_shards)).astype(np.int64)

    def cut_mask(self, src, dst) -> np.ndarray:
        """True per edge when its endpoints live on different shards."""
        return self.shard_of(src) != self.shard_of(dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partitioner(num_shards={self.num_shards})"


@dataclass
class ShardCosts:
    """Modeled device seconds accumulated by the router for one class of
    operations (updates or queries).

    ``parallel_seconds`` prices each call as router overhead plus the
    slowest shard (shards execute independently); ``serial_seconds`` is
    router overhead plus the *sum* over shards — the aggregate device
    work burned, whose ratio to a single-shard run is the fan-out tax.
    """

    num_shards: int
    parallel_seconds: float = 0.0
    serial_seconds: float = 0.0
    per_shard_seconds: list = field(default_factory=list)
    calls: int = 0

    def __post_init__(self) -> None:
        if not self.per_shard_seconds:
            self.per_shard_seconds = [0.0] * self.num_shards

    def record(self, router_seconds: float, shard_times) -> None:
        """Fold one routed call: ``shard_times`` is ``[(shard, secs), ...]``."""
        slowest = 0.0
        total = 0.0
        for shard, secs in shard_times:
            self.per_shard_seconds[shard] += secs
            slowest = max(slowest, secs)
            total += secs
        self.parallel_seconds += router_seconds + slowest
        self.serial_seconds += router_seconds + total
        self.calls += 1

    def copy(self) -> "ShardCosts":
        """Independent snapshot of the accumulated cost counters."""
        out = ShardCosts(self.num_shards)
        out.parallel_seconds = self.parallel_seconds
        out.serial_seconds = self.serial_seconds
        out.per_shard_seconds = list(self.per_shard_seconds)
        out.calls = self.calls
        return out


def _fresh_fault_stats() -> dict:
    return {
        "transient_faults": 0,
        "permanent_faults": 0,
        "shard_errors": 0,
        "retries": 0,
        "backoff_seconds": 0.0,
        "partial_dispatches": 0,
        "degraded_reads": 0,
        "rebuilds": 0,
    }


class ShardedGraph:
    """N per-shard :class:`Graph` facades behind one batch surface.

    Construct with :meth:`ShardedGraph.create` (fresh shards by registry
    name) or wrap pre-constructed **empty** shard facades directly — the
    router's routing invariant (each vertex's out-edges live only in its
    owner shard) must hold from the first batch, so populated shards are
    rejected.

    Only directed shard backends are supported: an undirected backend
    mirrors ``(u, v)`` into ``v``'s adjacency *inside u's shard*, which
    would scatter a vertex's neighborhood across shards and break both
    routed queries and global snapshot assembly.

    ``partial_dispatch`` picks the mid-dispatch-failure policy:
    ``"raise"`` (default) raises :class:`PartialDispatchError` carrying
    the :class:`DispatchReport`; ``"record"`` appends the report to
    :attr:`pending` and returns the partial result — the scenario
    engine's choice, so a chaos phase keeps its RNG stream aligned with
    a fault-free run and re-drives between phases.
    """

    def __init__(
        self,
        shards,
        partitioner: Partitioner | None = None,
        *,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        event_retention: int = DEFAULT_DELTA_LIMIT,
        retry: RetryPolicy | None = None,
        partial_dispatch: str = "raise",
        shard_factory=None,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValidationError("ShardedGraph needs at least one shard")
        for shard in shards:
            if not isinstance(shard, Graph):
                raise ValidationError(
                    f"shards must be repro.api.Graph facades, got {type(shard).__name__}"
                )
            if not shard.directed:
                raise ValidationError(
                    "ShardedGraph requires directed shard backends (an "
                    "undirected backend would mirror cut edges inside the "
                    "wrong shard); symmetric edge sets work fine — insert "
                    "both orientations, as the dataset generators do"
                )
            if shard.num_edges() != 0:
                raise ValidationError(
                    "ShardedGraph shards must start empty so the routing "
                    "invariant (out-edges live in the owner shard) holds"
                )
        first = shards[0]
        if any(s.num_vertices != first.num_vertices for s in shards):
            raise ValidationError("all shards must share one vertex-id space")
        if any(s.weighted != first.weighted for s in shards):
            raise ValidationError("all shards must agree on weightedness")
        if self_loops not in ("drop", "error"):
            raise ValidationError(f"self_loops must be 'drop' or 'error', got {self_loops!r}")
        if partial_dispatch not in ("raise", "record"):
            raise ValidationError(
                f"partial_dispatch must be 'raise' or 'record', got {partial_dispatch!r}"
            )
        _check_packable(first.num_vertices)
        self.shards = shards
        self.partitioner = partitioner or Partitioner(len(shards))
        if self.partitioner.num_shards != len(shards):
            raise ValidationError(
                f"partitioner covers {self.partitioner.num_shards} shards "
                f"but {len(shards)} were provided"
            )
        self.self_loops = self_loops
        self.dedup_batches = bool(dedup_batches)
        self.default_weight = int(default_weight)
        #: The router's own event log: normalized *global* batches and
        #: structural events, version-stamped with the aggregate
        #: :attr:`mutation_version` — the same contract a single facade
        #: publishes, so cursor consumers work unchanged.
        self.events = EventLog(retention_rows=event_retention)
        self.update_costs = ShardCosts(len(shards))
        self.query_costs = ShardCosts(len(shards))
        #: Retry-with-backoff policy for transient shard faults.
        self.retry = retry or RetryPolicy()
        #: Mid-dispatch-failure policy: ``"raise"`` or ``"record"``.
        self.partial_dispatch = partial_dispatch
        #: Per-shard health: ``SHARD_HEALTHY`` / ``SHARD_DEGRADED`` /
        #: ``SHARD_DEAD`` (dead shards are skipped by fan-outs and only
        #: return via :meth:`rebuild_shard`).
        self.health = [SHARD_HEALTHY] * len(shards)
        #: Counters of faults absorbed, retries spent, and recoveries.
        self.fault_stats = _fresh_fault_stats()
        #: Recorded :class:`DispatchReport`\ s awaiting :meth:`redrive_pending`
        #: (``partial_dispatch="record"`` mode only).
        self.pending: list = []
        #: Durable per-shard stores (set by :meth:`attach_durability`).
        self.stores = None
        self._shard_factory = shard_factory
        self._shard_snaps: dict = {}
        self._snap_cache: tuple | None = None

    @classmethod
    def create(
        cls,
        name: str,
        num_vertices: int,
        *,
        num_shards: int = 4,
        weighted: bool = False,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
        event_retention: int = DEFAULT_DELTA_LIMIT,
        partitioner: Partitioner | None = None,
        retry: RetryPolicy | None = None,
        partial_dispatch: str = "raise",
        **backend_kwargs: Any,
    ) -> "ShardedGraph":
        """Construct ``num_shards`` fresh registry backends and shard them.

        Every shard addresses the full global vertex-id space, so global
        ids route and query without translation; per-shard structures
        only ever hold the edges they own.  The construction recipe is
        kept as the service's shard factory, so :meth:`rebuild_shard`
        can mint an identical empty replacement.
        """

        def factory() -> Graph:
            return Graph.create(
                name,
                num_vertices,
                weighted=weighted,
                snapshot_delta_limit=snapshot_delta_limit,
                **backend_kwargs,
            )

        shards = [factory() for _ in range(num_shards)]
        return cls(
            shards,
            partitioner,
            self_loops=self_loops,
            dedup_batches=dedup_batches,
            default_weight=default_weight,
            event_retention=event_retention,
            retry=retry,
            partial_dispatch=partial_dispatch,
            shard_factory=factory,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shard instances behind the router."""
        return len(self.shards)

    @property
    def num_vertices(self) -> int:
        """Global vertex-id space (each shard owns a hash slice of it)."""
        return self.shards[0].num_vertices

    @property
    def weighted(self) -> bool:
        """Whether the shards store per-edge weights (uniform)."""
        return self.shards[0].weighted

    @property
    def directed(self) -> bool:
        """Sharded services are directed (cut edges are source-owned)."""
        return True

    @property
    def capabilities(self):
        """Capabilities of the shard instances (uniform by construction)."""
        return self.shards[0].capabilities

    @property
    def mutation_version(self):
        """Aggregate monotone version: the sum of shard versions (every
        shard mutation bumps it, so event-log chain checks work)."""
        total = 0
        for shard in self.shards:
            version = shard.mutation_version
            if version is None:
                return None
            total += int(version)
        return total

    # -- health -----------------------------------------------------------------

    def shard_health(self, shard_index: int) -> str:
        """The health state of one shard."""
        return self.health[self._check_shard(shard_index)]

    @property
    def dead_shards(self) -> tuple:
        """Indices of shards currently marked dead."""
        return tuple(s for s, h in enumerate(self.health) if h == SHARD_DEAD)

    def _check_shard(self, shard_index) -> int:
        s = int(shard_index)
        if not 0 <= s < self.num_shards:
            raise ValidationError(
                f"shard index {s} out of range for {self.num_shards} shards"
            )
        return s

    def _set_health(self, s: int, state: str) -> None:
        self.health[s] = state

    def kill_shard(self, shard_index: int) -> None:
        """Mark a shard dead, as an injected permanent fault would.

        The shard's in-memory structure is treated as lost: fan-outs skip
        it (mutations report it in ``failed``, queries raise
        :class:`ShardError`), :meth:`snapshot` refuses, and
        :meth:`degraded_snapshot` serves its last cached per-shard
        snapshot.  Restore it with :meth:`rebuild_shard`.
        """
        s = self._check_shard(shard_index)
        before = self.mutation_version
        self._set_health(s, SHARD_DEAD)
        self._snap_cache = None
        self.events.publish_structural(
            "kill_shard",
            before_version=before,
            after_version=self.mutation_version,
            payload=np.array([s], dtype=np.int64),
        )

    # -- routing helpers ----------------------------------------------------------

    def _normalize(self, src, dst, weights, *, fill_default_weight: bool = True):
        return normalize_batch(
            src,
            dst,
            weights,
            num_vertices=self.num_vertices,
            weighted=self.weighted,
            self_loops=self.self_loops,
            dedup_batches=self.dedup_batches,
            default_weight=self.default_weight,
            fill_default_weight=fill_default_weight,
            backend_name=type(self.shards[0].backend).__name__,
        )

    def _charge_router(self, rows: int) -> float:
        """Price the scatter/gather the router performs around a fan-out
        (one dispatch plus moving the routed rows), and return it."""
        delta = {"kernel_launches": 1, "bytes_copied": int(rows) * 16}
        counters = get_counters()
        counters.kernel_launches += 1
        counters.bytes_copied += int(rows) * 16
        return simulated_seconds(delta)

    def _attempt(self, s: int, shard, mask, dispatch, op: str):
        """Run one shard dispatch under the retry policy.

        Returns ``(modeled_seconds, failure)`` — ``failure`` is None on
        success, else the exception that exhausted the policy.  Health
        transitions: a transient-fault exhaustion or unexpected error
        degrades the shard, a permanent fault kills it, and a success
        restores a degraded shard to healthy.
        """
        backoff = self.retry.backoff_base
        total = 0.0
        last: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            delta: dict = {}
            try:
                with counting() as delta:
                    dispatch(s, shard, mask)
            except TransientFault as exc:
                total += simulated_seconds(delta)
                self.fault_stats["transient_faults"] += 1
                last = exc
                if attempt + 1 < self.retry.max_attempts:
                    # Modeled backoff: charged to the faulting shard so
                    # retried batches price their own recovery latency.
                    total += backoff
                    self.fault_stats["retries"] += 1
                    self.fault_stats["backoff_seconds"] += backoff
                    backoff *= self.retry.multiplier
                continue
            except PermanentFault as exc:
                total += simulated_seconds(delta)
                self.fault_stats["permanent_faults"] += 1
                self._set_health(s, SHARD_DEAD)
                return total, exc
            except ValidationError:
                raise  # a caller/router bug, not an environmental fault
            except Exception as exc:
                total += simulated_seconds(delta)
                self.fault_stats["shard_errors"] += 1
                self._set_health(s, SHARD_DEGRADED)
                return total, exc
            else:
                total += simulated_seconds(delta)
                if self.health[s] == SHARD_DEGRADED:
                    self._set_health(s, SHARD_HEALTHY)
                return total, None
        self._set_health(s, SHARD_DEGRADED)
        return total, last

    def _fan_out(self, owner, costs: ShardCosts, router_seconds: float, dispatch, *, op: str):
        """Run ``dispatch(shard_index, shard, row_mask)`` for every shard
        that owns rows, under the retry policy, recording per-shard
        modeled cost.  Returns ``(applied, failures)`` where ``failures``
        pairs shard indices with the exception (or reason string, for
        dead shards that were never attempted)."""
        shard_times = []
        applied = []
        failures = []
        for s, shard in enumerate(self.shards):
            mask = owner == s
            if not mask.any():
                continue
            if self.health[s] == SHARD_DEAD:
                failures.append((s, f"shard {s} is dead (not attempted)"))
                continue
            secs, err = self._attempt(s, shard, mask, dispatch, op)
            shard_times.append((s, secs))
            if err is None:
                applied.append(s)
            else:
                failures.append((s, err))
        costs.record(router_seconds, shard_times)
        return applied, failures

    def _partial(self, op: str, before, applied, failures, *, payload: dict, result: int):
        """Account a mid-dispatch failure: publish the structural
        ``"partial_dispatch"`` marker (consumers rebuild cold instead of
        trusting a batch that only partially landed), then raise or
        record per the :attr:`partial_dispatch` policy."""
        report = DispatchReport(
            op=op,
            applied=tuple(applied),
            failed=tuple((s, str(e)) for s, e in failures),
            payload=payload,
            result=int(result),
        )
        self.fault_stats["partial_dispatches"] += 1
        self.events.publish_structural(
            "partial_dispatch",
            before_version=before,
            after_version=self.mutation_version,
            payload=np.array([s for s, _ in failures], dtype=np.int64),
        )
        if self.partial_dispatch == "record":
            self.pending.append(report)
            return report.result
        first_shard, first_err = failures[0]
        cause = first_err if isinstance(first_err, BaseException) else None
        raise PartialDispatchError(
            f"{op} applied on shards {list(report.applied)} but failed on "
            f"{list(report.failed_shards)}; the batch is re-driveable "
            "(see the attached DispatchReport and ShardedGraph.redrive)",
            shard=first_shard,
            op=op,
            report=report,
        ) from cause

    # -- mutation -----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Normalize once, route to owner shards, publish one event.

        On a mid-dispatch failure the partial-dispatch policy applies
        (see class docstring); the returned count covers the shards that
        applied."""
        src, dst, weights = self._normalize(src, dst, weights)
        if src.size == 0:
            return 0
        before = self.mutation_version
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        added = 0

        def dispatch(s, shard, mask):
            nonlocal added
            added += shard.insert_edges(
                src[mask], dst[mask], weights[mask] if weights is not None else None
            )

        applied, failures = self._fan_out(
            owner, self.update_costs, router, dispatch, op="insert_edges"
        )
        if failures:
            return self._partial(
                "insert_edges",
                before,
                applied,
                failures,
                payload={"src": src, "dst": dst, "weights": weights, "owner": owner},
                result=added,
            )
        self.events.publish_edge_batch(
            True,
            src,
            dst,
            weights,
            before_version=before,
            after_version=self.mutation_version,
            rows=int(src.shape[0]),
        )
        return added

    def delete_edges(self, src, dst) -> int:
        """Route a deletion batch to owner shards; returns removed count.

        Partial-dispatch failures follow the same policy as
        :meth:`insert_edges`."""
        src, dst, _ = self._normalize(src, dst, None, fill_default_weight=False)
        if src.size == 0:
            return 0
        before = self.mutation_version
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        removed = 0

        def dispatch(s, shard, mask):
            nonlocal removed
            removed += shard.delete_edges(src[mask], dst[mask])

        applied, failures = self._fan_out(
            owner, self.update_costs, router, dispatch, op="delete_edges"
        )
        if failures:
            return self._partial(
                "delete_edges",
                before,
                applied,
                failures,
                payload={"src": src, "dst": dst, "weights": None, "owner": owner},
                result=removed,
            )
        self.events.publish_edge_batch(
            False,
            src,
            dst,
            None,
            before_version=before,
            after_version=self.mutation_version,
            rows=int(src.shape[0]),
        )
        return removed

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and all incident edges.

        Out-edges live in the owner shard, but *in*-edges live wherever
        their source is owned — so the batch fans out to every shard, and
        the return value sums per-shard deactivations (a vertex counts
        once per shard that had activated it)."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return 0
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        before = self.mutation_version
        router = self._charge_router(vids.shape[0])
        shard_times = []
        applied = []
        failures = []
        removed = 0

        def dispatch(s, shard, mask):
            nonlocal removed
            removed += shard.delete_vertices(vids)

        for s, shard in enumerate(self.shards):
            if self.health[s] == SHARD_DEAD:
                failures.append((s, f"shard {s} is dead (not attempted)"))
                continue
            secs, err = self._attempt(s, shard, None, dispatch, "delete_vertices")
            shard_times.append((s, secs))
            if err is None:
                applied.append(s)
            else:
                failures.append((s, err))
        self.update_costs.record(router, shard_times)
        if failures:
            return self._partial(
                "delete_vertices",
                before,
                applied,
                failures,
                payload={"vids": vids.copy()},
                result=removed,
            )
        self.events.publish_structural(
            "delete_vertices",
            before_version=before,
            after_version=self.mutation_version,
            payload=vids.copy(),
        )
        return removed

    def bulk_build(self, coo: COO) -> int:
        """One-shot build: split the COO by owner shard, build each.

        Partial-dispatch failures follow the mutation policy; a failed
        shard is still empty, so a redrive re-attempts its part of the
        build."""
        _check_packable(int(coo.num_vertices))
        if coo.weights is not None and not self.weighted:
            coo = COO(coo.src, coo.dst, coo.num_vertices, weights=None)
        before = self.mutation_version
        owner = self.partitioner.shard_of(coo.src)
        router = self._charge_router(coo.num_edges)
        built = 0

        def dispatch(s, shard, mask):
            nonlocal built
            built += shard.bulk_build(
                COO(
                    coo.src[mask],
                    coo.dst[mask],
                    coo.num_vertices,
                    weights=coo.weights[mask] if coo.weights is not None else None,
                )
            )

        shard_times = []
        applied = []
        failures = []
        for s, shard in enumerate(self.shards):
            mask = owner == s
            if self.health[s] == SHARD_DEAD:
                failures.append((s, f"shard {s} is dead (not attempted)"))
                continue
            secs, err = self._attempt(s, shard, mask, dispatch, "bulk_build")
            shard_times.append((s, secs))
            if err is None:
                applied.append(s)
            else:
                failures.append((s, err))
        self.update_costs.record(router, shard_times)
        if failures:
            return self._partial(
                "bulk_build",
                before,
                applied,
                failures,
                payload={"coo": coo, "owner": owner},
                result=built,
            )
        self.events.publish_structural(
            "bulk_build",
            before_version=before,
            after_version=self.mutation_version,
            payload=COO(
                coo.src.copy(),
                coo.dst.copy(),
                coo.num_vertices,
                weights=None if coo.weights is None else coo.weights.copy(),
            ),
        )
        return built

    # -- redrive -------------------------------------------------------------------

    def redrive(self, report: DispatchReport):
        """Re-dispatch a partial mutation's failed shards.

        Rows for shards that are healthy (or degraded) again are applied
        and published as a fresh event; shards still dead (or failing)
        stay in the returned follow-up report.  Returns None once every
        shard has applied.
        """
        payload = report.payload
        before = self.mutation_version
        shard_times = []
        applied_now = []
        failures = []
        redriven = report.result

        def make_dispatch():
            if report.op == "insert_edges":
                src, dst, w = payload["src"], payload["dst"], payload["weights"]

                def d(s, shard, mask):
                    nonlocal redriven
                    redriven += shard.insert_edges(
                        src[mask], dst[mask], w[mask] if w is not None else None
                    )

            elif report.op == "delete_edges":
                src, dst = payload["src"], payload["dst"]

                def d(s, shard, mask):
                    nonlocal redriven
                    redriven += shard.delete_edges(src[mask], dst[mask])

            elif report.op == "delete_vertices":
                vids = payload["vids"]

                def d(s, shard, mask):
                    nonlocal redriven
                    redriven += shard.delete_vertices(vids)

            elif report.op == "bulk_build":
                coo = payload["coo"]

                def d(s, shard, mask):
                    nonlocal redriven
                    redriven += shard.bulk_build(
                        COO(
                            coo.src[mask],
                            coo.dst[mask],
                            coo.num_vertices,
                            weights=coo.weights[mask] if coo.weights is not None else None,
                        )
                    )

            else:  # pragma: no cover - reports are built by this class
                raise ValidationError(f"cannot redrive op {report.op!r}")
            return d

        dispatch = make_dispatch()
        owner = payload.get("owner")
        rows = int(owner.shape[0]) if owner is not None else 1
        router = self._charge_router(rows)
        for s in report.failed_shards:
            if self.health[s] == SHARD_DEAD:
                failures.append((s, f"shard {s} is dead (not attempted)"))
                continue
            mask = (owner == s) if owner is not None else None
            if mask is not None and not mask.any():
                applied_now.append(s)
                continue
            secs, err = self._attempt(s, self.shards[s], mask, dispatch, report.op)
            shard_times.append((s, secs))
            if err is None:
                applied_now.append(s)
            else:
                failures.append((s, err))
        self.update_costs.record(router, shard_times)
        if applied_now:
            self._publish_redrive(report, applied_now, owner, before)
        if failures:
            follow_up = DispatchReport(
                op=report.op,
                applied=tuple(report.applied) + tuple(applied_now),
                failed=tuple((s, str(e)) for s, e in failures),
                payload=payload,
                result=int(redriven),
            )
            self.fault_stats["partial_dispatches"] += 1
            self.events.publish_structural(
                "partial_dispatch",
                before_version=before,
                after_version=self.mutation_version,
                payload=np.array([s for s, _ in failures], dtype=np.int64),
            )
            return follow_up
        return None

    def _publish_redrive(self, report, applied_now, owner, before) -> None:
        """Publish the redriven rows as a fresh, truthful event."""
        payload = report.payload
        if report.op in ("insert_edges", "delete_edges"):
            mask = np.isin(owner, np.array(applied_now, dtype=np.int64))
            src = payload["src"][mask]
            dst = payload["dst"][mask]
            w = payload["weights"][mask] if payload.get("weights") is not None else None
            if src.size:
                self.events.publish_edge_batch(
                    report.op == "insert_edges",
                    src,
                    dst,
                    w,
                    before_version=before,
                    after_version=self.mutation_version,
                    rows=int(src.shape[0]),
                )
        elif report.op == "delete_vertices":
            self.events.publish_structural(
                "delete_vertices",
                before_version=before,
                after_version=self.mutation_version,
                payload=payload["vids"].copy(),
            )
        elif report.op == "bulk_build":
            coo = payload["coo"]
            mask = np.isin(owner, np.array(applied_now, dtype=np.int64))
            self.events.publish_structural(
                "bulk_build",
                before_version=before,
                after_version=self.mutation_version,
                payload=COO(
                    coo.src[mask],
                    coo.dst[mask],
                    coo.num_vertices,
                    weights=None if coo.weights is None else coo.weights[mask],
                ),
            )

    def redrive_pending(self) -> int:
        """Redrive every recorded partial dispatch, in order.

        Reports that still have failing shards stay queued; returns how
        many remain."""
        remaining = []
        for report in self.pending:
            follow_up = self.redrive(report)
            if follow_up is not None:
                remaining.append(follow_up)
        self.pending = remaining
        return len(remaining)

    # -- queries (scatter-gather) ----------------------------------------------------

    def _raise_query_failures(self, op: str, failures) -> None:
        if not failures:
            return
        s, err = failures[0]
        cause = err if isinstance(err, BaseException) else None
        hint = (
            " (the shard is dead — degraded_snapshot() serves cached reads, "
            "rebuild_shard() restores it)"
            if self.health[s] == SHARD_DEAD
            else ""
        )
        raise ShardError(
            f"shard {s} failed during {op}: {err}{hint}", shard=s, op=op
        ) from cause

    def edge_exists(self, src, dst) -> np.ndarray:
        """Boolean membership per pair, scatter-gathered from owners.

        A shard failure surfaces as a typed :class:`ShardError` carrying
        the shard index and op."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        out = np.zeros(src.shape[0], dtype=bool)

        def dispatch(s, shard, mask):
            out[mask] = shard.edge_exists(src[mask], dst[mask])

        _, failures = self._fan_out(owner, self.query_costs, router, dispatch, op="edge_exists")
        self._raise_query_failures("edge_exists", failures)
        return out

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(found, weight)``, scatter-gathered from owners.

        A shard failure surfaces as a typed :class:`ShardError`."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        exists = np.zeros(src.shape[0], dtype=bool)
        weights = np.zeros(src.shape[0], dtype=np.int64)

        def dispatch(s, shard, mask):
            exists[mask], weights[mask] = shard.edge_weights(src[mask], dst[mask])

        _, failures = self._fan_out(owner, self.query_costs, router, dispatch, op="edge_weights")
        self._raise_query_failures("edge_weights", failures)
        return exists, weights

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex, gathered from owner shards.

        A shard failure surfaces as a typed :class:`ShardError`."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return np.empty(0, dtype=np.int64)
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        owner = self.partitioner.shard_of(vids)
        router = self._charge_router(vids.shape[0])
        out = np.zeros(vids.shape[0], dtype=np.int64)

        def dispatch(s, shard, mask):
            out[mask] = shard.degree(vids[mask])

        _, failures = self._fan_out(owner, self.query_costs, router, dispatch, op="degree")
        self._raise_query_failures("degree", failures)
        return out

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """One vertex's adjacency, served by its owner shard alone.

        A shard failure surfaces as a typed :class:`ShardError`."""
        v = int(vertex)
        check_in_range(np.array([v]), 0, self.num_vertices, "vertex")
        s = int(self.partitioner.shard_of(np.array([v]))[0])
        if self.health[s] == SHARD_DEAD:
            self._raise_query_failures(
                "neighbors", [(s, f"shard {s} is dead (not attempted)")]
            )
        try:
            return self.shards[s].neighbors(v)
        except ValidationError:
            raise
        except FaultError as exc:
            if isinstance(exc, PermanentFault):
                self.fault_stats["permanent_faults"] += 1
                self._set_health(s, SHARD_DEAD)
            else:
                self.fault_stats["transient_faults"] += 1
                self._set_health(s, SHARD_DEGRADED)
            self._raise_query_failures("neighbors", [(s, exc)])
        except Exception as exc:
            self.fault_stats["shard_errors"] += 1
            self._set_health(s, SHARD_DEGRADED)
            self._raise_query_failures("neighbors", [(s, exc)])

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``(owner_pos, destinations, weights)`` gathered from
        owner shards; rows are grouped by ascending position in
        ``vertex_ids`` (neighbor order within a vertex is shard-native).
        A shard failure surfaces as a typed :class:`ShardError`."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        owner = self.partitioner.shard_of(vids)
        router = self._charge_router(vids.shape[0])
        pos_parts: list = []
        dst_parts: list = []
        w_parts: list = []

        def dispatch(s, shard, mask):
            pos = np.flatnonzero(mask)
            owner_pos, dsts, ws = shard.adjacencies(vids[mask])
            pos_parts.append(pos[owner_pos])
            dst_parts.append(dsts)
            w_parts.append(ws)

        _, failures = self._fan_out(owner, self.query_costs, router, dispatch, op="adjacencies")
        self._raise_query_failures("adjacencies", failures)
        if not pos_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        pos = np.concatenate(pos_parts)
        dsts = np.concatenate(dst_parts)
        ws = np.concatenate(w_parts)
        order = np.argsort(pos, kind="stable")
        get_counters().bytes_copied += int(pos.shape[0]) * 24
        return pos[order], dsts[order], ws[order]

    def num_edges(self) -> int:
        """Global edge count (shards partition the edge set)."""
        return sum(shard.num_edges() for shard in self.shards)

    def memory_bytes(self) -> int:
        """Total modeled resident bytes across all shards."""
        return sum(shard.memory_bytes() for shard in self.shards)

    def export_coo(self) -> COO:
        """Concatenated unsorted COO export of every shard's edges."""
        parts = [shard.export_coo() for shard in self.shards]
        weighted = self.weighted
        return COO(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            self.num_vertices,
            weights=np.concatenate([p.weights for p in parts]) if weighted else None,
        )

    # -- global snapshot ---------------------------------------------------------------

    def _assemble(self, shard_snaps) -> CSRSnapshot:
        """Place per-shard sorted CSRs at their global offsets — O(E)
        stream work, charged as copy traffic.  Correct because a vertex's
        out-edges live in exactly one shard and each shard's CSR is
        destination-sorted per vertex."""
        n = self.num_vertices
        counts = np.zeros(n, dtype=np.int64)
        for snap in shard_snaps:
            counts += np.diff(snap.row_ptr)
        row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        total = int(row_ptr[-1])
        col_idx = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.int64) if self.weighted else None
        counters = get_counters()
        counters.kernel_launches += len(shard_snaps)
        counters.bytes_copied += total * (16 if self.weighted else 8) + (n + 1) * 8
        for snap in shard_snaps:
            if snap.num_edges == 0:
                continue
            deg = np.diff(snap.row_ptr)
            # Only the owner shard holds rows for a vertex, so its global
            # slice starts at row_ptr[v] and the shard-local offset maps
            # rows across with one repeat + add.
            place = np.arange(snap.num_edges, dtype=np.int64) + np.repeat(
                row_ptr[:-1] - snap.row_ptr[:-1], deg
            )
            col_idx[place] = snap.col_idx
            if weights is not None:
                weights[place] = snap.weights
        return CSRSnapshot(row_ptr=row_ptr, col_idx=col_idx, weights=weights, num_vertices=n)

    def _empty_shard_snapshot(self) -> CSRSnapshot:
        return CSRSnapshot(
            row_ptr=np.zeros(self.num_vertices + 1, dtype=np.int64),
            col_idx=np.empty(0, dtype=np.int64),
            weights=np.empty(0, dtype=np.int64) if self.weighted else None,
            num_vertices=self.num_vertices,
        )

    def snapshot(self) -> CSRSnapshot:
        """Assemble the global sorted-CSR view from per-shard snapshots.

        Each shard serves its snapshot through its own cached /
        incremental / cold tiers; the assembled result is bit-identical
        to the snapshot of a single :class:`Graph` given the same
        workload, and unchanged shards re-serve the same assembled object
        for free.  Refuses while any shard is dead — that state cannot
        serve an exact global view; use :meth:`degraded_snapshot` (tagged
        staleness) or :meth:`rebuild_shard` (exact recovery) instead.
        """
        dead = self.dead_shards
        if dead:
            raise ShardError(
                f"shard(s) {list(dead)} are dead — snapshot() would be "
                "silently incomplete; serve degraded_snapshot() or recover "
                "with rebuild_shard()",
                shard=dead[0],
                op="snapshot",
            )
        versions = tuple(shard.mutation_version for shard in self.shards)
        if self._snap_cache is not None and self._snap_cache[0] == versions:
            return self._snap_cache[1]
        shard_snaps = [shard.snapshot() for shard in self.shards]
        for s, snap in enumerate(shard_snaps):
            self._shard_snaps[s] = (versions[s], snap)
        assembled = self._assemble(shard_snaps)
        self._snap_cache = (versions, assembled)
        return assembled

    def degraded_snapshot(self) -> DegradedSnapshot:
        """Best-effort global snapshot that survives dead or failing shards.

        Healthy shards serve live; a dead (or currently faulting) shard
        contributes its last cached per-shard snapshot — tagged in
        ``stale_shards`` with ``(cached_version, live_version)`` — and a
        shard with no cached snapshot at all is reported in
        ``missing_shards`` and contributes nothing.  The extra modeled
        cost of this path (vs. a healthy :meth:`snapshot`) is priced by
        the ``t14/chaos`` bench artifact.
        """
        shard_snaps = []
        stale = []
        missing = []
        staleness = []
        for s, shard in enumerate(self.shards):
            if self.health[s] != SHARD_DEAD:
                try:
                    snap = shard.snapshot()
                except FaultError:
                    snap = None
                if snap is not None:
                    self._shard_snaps[s] = (shard.mutation_version, snap)
                    shard_snaps.append(snap)
                    continue
            self.fault_stats["degraded_reads"] += 1
            cached = self._shard_snaps.get(s)
            if cached is None:
                missing.append(s)
                shard_snaps.append(self._empty_shard_snapshot())
                continue
            stale.append(s)
            live = None if self.health[s] == SHARD_DEAD else self.shards[s].mutation_version
            staleness.append((s, cached[0], live))
            shard_snaps.append(cached[1])
        return DegradedSnapshot(
            snapshot=self._assemble(shard_snaps),
            stale_shards=tuple(stale),
            missing_shards=tuple(missing),
            staleness=tuple(staleness),
        )

    # -- durability and recovery -----------------------------------------------------

    def attach_durability(
        self,
        directory,
        *,
        fsync: str = "batch",
        segment_bytes: int | None = None,
        checkpoint_every_rows: int | None = None,
        opener=None,
    ):
        """Attach durable per-shard stores (WAL + checkpoints) under
        ``directory`` — the recovery source :meth:`rebuild_shard` replays.

        Each shard gets its own segmented WAL subscribed to that shard's
        event log, so per-shard durable order equals per-shard applied
        order (the facade publishes only after the backend succeeds);
        since every vertex's out-edges live in exactly one shard, that is
        all the ordering a bit-identical rebuild needs.  Returns the
        :class:`repro.persist.sharded.ShardStores`.
        """
        # Imported lazily: repro.persist imports the facade module, so a
        # top-level import here would be circular.
        from repro.persist.sharded import ShardStores

        if self.stores is not None:
            raise ValidationError("durability is already attached to this service")
        self.stores = ShardStores(
            self,
            directory,
            fsync=fsync,
            segment_bytes=segment_bytes,
            checkpoint_every_rows=checkpoint_every_rows,
            opener=opener,
        )
        return self.stores

    def rebuild_shard(self, shard_index: int, *, factory=None):
        """Restore a dead shard bit-identically from its durable store.

        A fresh empty shard (from ``factory`` or the service's own shard
        factory) is recovered as checkpoint + WAL-tail replay, swapped
        in, and marked healthy; a structural ``"rebuild_shard"`` event
        tells consumers to rebuild cold.  Returns the recovery stats the
        store reports (events replayed, checkpoint used).
        """
        s = self._check_shard(shard_index)
        if self.stores is None:
            raise ValidationError(
                "rebuild_shard() needs durable per-shard stores — call "
                "attach_durability(directory) before faults strike"
            )
        make = factory or self._shard_factory
        if make is None:
            raise ValidationError(
                "no shard factory available — construct the service via "
                "ShardedGraph.create() or pass factory="
            )
        fresh = make()
        if not isinstance(fresh, Graph) or fresh.num_edges() != 0:
            raise ValidationError("shard factory must produce an empty Graph facade")
        if fresh.num_vertices != self.num_vertices or fresh.weighted != self.weighted:
            raise ValidationError(
                "shard factory produced a mismatched shard (vertex space or "
                "weightedness differs from the service)"
            )
        info = self.stores.rebuild(s, fresh)
        before = self.mutation_version
        self.shards[s] = fresh
        self._set_health(s, SHARD_HEALTHY)
        self.fault_stats["rebuilds"] += 1
        self._snap_cache = None
        self._shard_snaps.pop(s, None)
        self.events.publish_structural(
            "rebuild_shard",
            before_version=before,
            after_version=self.mutation_version,
            payload=np.array([s], dtype=np.int64),
        )
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph({type(self.shards[0].backend).__name__} x "
            f"{self.num_shards}, |V|={self.num_vertices}, |E|={self.num_edges()}, "
            f"weighted={self.weighted})"
        )
