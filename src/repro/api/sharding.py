"""A sharded multi-graph service built on the event log.

The paper's phase-concurrent model assumes one device-resident structure;
scaling past one device (or one allocator arena) means partitioning the
vertex space across N independent :class:`repro.api.Graph` shards and
routing work to them.  This module is that layer:

- :class:`Partitioner` — a deterministic multiplicative-hash partition of
  the vertex-id space (balanced for both random and contiguous id
  populations, unlike a plain modulus);
- :class:`ShardedGraph` — a facade with the same batch surface as
  :class:`~repro.api.Graph`.  Batches are normalized **once** (the same
  :func:`repro.api.facade.normalize_batch` seam the single-graph facade
  uses), published to the router's own :class:`repro.eventlog.EventLog`,
  and routed to per-shard facades by the *source* vertex's owner — a cut
  edge ``(u, v)`` with ``owner(u) != owner(v)`` is stored in ``u``'s
  shard, so every vertex's full out-adjacency lives in exactly one shard.
  Queries (``degree`` / ``edge_exists`` / ``edge_weights`` /
  ``adjacencies`` / ``neighbors``) scatter to the owning shards and
  gather results back into the caller's order.

Because the router publishes the same typed events a single facade does,
every event-log consumer works unchanged on a sharded service: the
incremental analytics of :mod:`repro.stream.incremental` attach to
``ShardedGraph.events`` exactly as they do to ``Graph.events``, and
:meth:`ShardedGraph.snapshot` assembles a **global** sorted
:class:`~repro.api.snapshot.CSRSnapshot` from the per-shard cached
snapshots (each maintained incrementally by its shard's own event-log
merge), so ``pagerank`` / ``connected_components`` / triangle counting
run unchanged — and bit-identical to the same workload applied to a
single ``Graph``.

Cost accounting: shard dispatches are independent, so the device model
prices an update batch as *router overhead + the slowest shard*
(:attr:`ShardedGraph.update_costs` ``.parallel_seconds``) alongside the
total work across shards (``.serial_seconds``).  The ``t12/shard`` bench
artifact reports aggregate update throughput under the parallel model vs.
shard count, and the scatter-gather work inflation queries pay for the
same answers — the cross-shard query tax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.facade import (
    DEFAULT_DELTA_LIMIT,
    Graph,
    _check_packable,
    normalize_batch,
)
from repro.api.snapshot import CSRSnapshot
from repro.coo import COO
from repro.eventlog import EventLog
from repro.gpusim.counters import counting, get_counters
from repro.gpusim.model import simulated_seconds
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["Partitioner", "ShardedGraph", "ShardCosts"]

#: Fibonacci multiplier (golden-ratio reciprocal in 64 bits) — spreads
#: consecutive ids across the hash space.
_FIB = np.uint64(0x9E3779B97F4A7C15)


class Partitioner:
    """Deterministic hash partition of the vertex-id space into N shards.

    Uses a multiplicative (Fibonacci) hash so both random and contiguous
    id populations balance; a plain ``id % N`` would stripe contiguous
    ranges perfectly but correlate with any id-structured workload.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        self.num_shards = int(num_shards)

    def shard_of(self, vertex_ids) -> np.ndarray:
        """Owner shard per vertex id (vectorized, int64 in [0, N))."""
        ids = np.asarray(vertex_ids, dtype=np.int64).astype(np.uint64)
        h = (ids * _FIB) >> np.uint64(40)
        return (h % np.uint64(self.num_shards)).astype(np.int64)

    def cut_mask(self, src, dst) -> np.ndarray:
        """True per edge when its endpoints live on different shards."""
        return self.shard_of(src) != self.shard_of(dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partitioner(num_shards={self.num_shards})"


@dataclass
class ShardCosts:
    """Modeled device seconds accumulated by the router for one class of
    operations (updates or queries).

    ``parallel_seconds`` prices each call as router overhead plus the
    slowest shard (shards execute independently); ``serial_seconds`` is
    router overhead plus the *sum* over shards — the aggregate device
    work burned, whose ratio to a single-shard run is the fan-out tax.
    """

    num_shards: int
    parallel_seconds: float = 0.0
    serial_seconds: float = 0.0
    per_shard_seconds: list = field(default_factory=list)
    calls: int = 0

    def __post_init__(self) -> None:
        if not self.per_shard_seconds:
            self.per_shard_seconds = [0.0] * self.num_shards

    def record(self, router_seconds: float, shard_times) -> None:
        """Fold one routed call: ``shard_times`` is ``[(shard, secs), ...]``."""
        slowest = 0.0
        total = 0.0
        for shard, secs in shard_times:
            self.per_shard_seconds[shard] += secs
            slowest = max(slowest, secs)
            total += secs
        self.parallel_seconds += router_seconds + slowest
        self.serial_seconds += router_seconds + total
        self.calls += 1

    def copy(self) -> "ShardCosts":
        """Independent snapshot of the accumulated cost counters."""
        out = ShardCosts(self.num_shards)
        out.parallel_seconds = self.parallel_seconds
        out.serial_seconds = self.serial_seconds
        out.per_shard_seconds = list(self.per_shard_seconds)
        out.calls = self.calls
        return out


class ShardedGraph:
    """N per-shard :class:`Graph` facades behind one batch surface.

    Construct with :meth:`ShardedGraph.create` (fresh shards by registry
    name) or wrap pre-constructed **empty** shard facades directly — the
    router's routing invariant (each vertex's out-edges live only in its
    owner shard) must hold from the first batch, so populated shards are
    rejected.

    Only directed shard backends are supported: an undirected backend
    mirrors ``(u, v)`` into ``v``'s adjacency *inside u's shard*, which
    would scatter a vertex's neighborhood across shards and break both
    routed queries and global snapshot assembly.
    """

    def __init__(
        self,
        shards,
        partitioner: Partitioner | None = None,
        *,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        event_retention: int = DEFAULT_DELTA_LIMIT,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValidationError("ShardedGraph needs at least one shard")
        for shard in shards:
            if not isinstance(shard, Graph):
                raise ValidationError(
                    f"shards must be repro.api.Graph facades, got {type(shard).__name__}"
                )
            if not shard.directed:
                raise ValidationError(
                    "ShardedGraph requires directed shard backends (an "
                    "undirected backend would mirror cut edges inside the "
                    "wrong shard); symmetric edge sets work fine — insert "
                    "both orientations, as the dataset generators do"
                )
            if shard.num_edges() != 0:
                raise ValidationError(
                    "ShardedGraph shards must start empty so the routing "
                    "invariant (out-edges live in the owner shard) holds"
                )
        first = shards[0]
        if any(s.num_vertices != first.num_vertices for s in shards):
            raise ValidationError("all shards must share one vertex-id space")
        if any(s.weighted != first.weighted for s in shards):
            raise ValidationError("all shards must agree on weightedness")
        if self_loops not in ("drop", "error"):
            raise ValidationError(f"self_loops must be 'drop' or 'error', got {self_loops!r}")
        _check_packable(first.num_vertices)
        self.shards = shards
        self.partitioner = partitioner or Partitioner(len(shards))
        if self.partitioner.num_shards != len(shards):
            raise ValidationError(
                f"partitioner covers {self.partitioner.num_shards} shards "
                f"but {len(shards)} were provided"
            )
        self.self_loops = self_loops
        self.dedup_batches = bool(dedup_batches)
        self.default_weight = int(default_weight)
        #: The router's own event log: normalized *global* batches and
        #: structural events, version-stamped with the aggregate
        #: :attr:`mutation_version` — the same contract a single facade
        #: publishes, so cursor consumers work unchanged.
        self.events = EventLog(retention_rows=event_retention)
        self.update_costs = ShardCosts(len(shards))
        self.query_costs = ShardCosts(len(shards))
        self._snap_cache: tuple | None = None

    @classmethod
    def create(
        cls,
        name: str,
        num_vertices: int,
        *,
        num_shards: int = 4,
        weighted: bool = False,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
        event_retention: int = DEFAULT_DELTA_LIMIT,
        partitioner: Partitioner | None = None,
        **backend_kwargs: Any,
    ) -> "ShardedGraph":
        """Construct ``num_shards`` fresh registry backends and shard them.

        Every shard addresses the full global vertex-id space, so global
        ids route and query without translation; per-shard structures
        only ever hold the edges they own.
        """
        shards = [
            Graph.create(
                name,
                num_vertices,
                weighted=weighted,
                snapshot_delta_limit=snapshot_delta_limit,
                **backend_kwargs,
            )
            for _ in range(num_shards)
        ]
        return cls(
            shards,
            partitioner,
            self_loops=self_loops,
            dedup_batches=dedup_batches,
            default_weight=default_weight,
            event_retention=event_retention,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shard instances behind the router."""
        return len(self.shards)

    @property
    def num_vertices(self) -> int:
        """Global vertex-id space (each shard owns a hash slice of it)."""
        return self.shards[0].num_vertices

    @property
    def weighted(self) -> bool:
        """Whether the shards store per-edge weights (uniform)."""
        return self.shards[0].weighted

    @property
    def directed(self) -> bool:
        """Sharded services are directed (cut edges are source-owned)."""
        return True

    @property
    def capabilities(self):
        """Capabilities of the shard instances (uniform by construction)."""
        return self.shards[0].capabilities

    @property
    def mutation_version(self):
        """Aggregate monotone version: the sum of shard versions (every
        shard mutation bumps it, so event-log chain checks work)."""
        total = 0
        for shard in self.shards:
            version = shard.mutation_version
            if version is None:
                return None
            total += int(version)
        return total

    # -- routing helpers ----------------------------------------------------------

    def _normalize(self, src, dst, weights, *, fill_default_weight: bool = True):
        return normalize_batch(
            src,
            dst,
            weights,
            num_vertices=self.num_vertices,
            weighted=self.weighted,
            self_loops=self.self_loops,
            dedup_batches=self.dedup_batches,
            default_weight=self.default_weight,
            fill_default_weight=fill_default_weight,
            backend_name=type(self.shards[0].backend).__name__,
        )

    def _charge_router(self, rows: int) -> float:
        """Price the scatter/gather the router performs around a fan-out
        (one dispatch plus moving the routed rows), and return it."""
        delta = {"kernel_launches": 1, "bytes_copied": int(rows) * 16}
        counters = get_counters()
        counters.kernel_launches += 1
        counters.bytes_copied += int(rows) * 16
        return simulated_seconds(delta)

    def _fan_out(self, owner, costs: ShardCosts, router_seconds: float, dispatch):
        """Run ``dispatch(shard_index, shard, row_mask)`` for every shard
        that owns rows, recording per-shard modeled cost."""
        shard_times = []
        for s, shard in enumerate(self.shards):
            mask = owner == s
            if not mask.any():
                continue
            with counting() as delta:
                dispatch(s, shard, mask)
            shard_times.append((s, simulated_seconds(delta)))
        costs.record(router_seconds, shard_times)

    # -- mutation -----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Normalize once, route to owner shards, publish one event."""
        src, dst, weights = self._normalize(src, dst, weights)
        if src.size == 0:
            return 0
        before = self.mutation_version
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        added = 0

        def dispatch(s, shard, mask):
            nonlocal added
            added += shard.insert_edges(
                src[mask], dst[mask], weights[mask] if weights is not None else None
            )

        self._fan_out(owner, self.update_costs, router, dispatch)
        self.events.publish_edge_batch(
            True,
            src,
            dst,
            weights,
            before_version=before,
            after_version=self.mutation_version,
            rows=int(src.shape[0]),
        )
        return added

    def delete_edges(self, src, dst) -> int:
        """Route a deletion batch to owner shards; returns removed count."""
        src, dst, _ = self._normalize(src, dst, None, fill_default_weight=False)
        if src.size == 0:
            return 0
        before = self.mutation_version
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        removed = 0

        def dispatch(s, shard, mask):
            nonlocal removed
            removed += shard.delete_edges(src[mask], dst[mask])

        self._fan_out(owner, self.update_costs, router, dispatch)
        self.events.publish_edge_batch(
            False,
            src,
            dst,
            None,
            before_version=before,
            after_version=self.mutation_version,
            rows=int(src.shape[0]),
        )
        return removed

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and all incident edges.

        Out-edges live in the owner shard, but *in*-edges live wherever
        their source is owned — so the batch fans out to every shard, and
        the return value sums per-shard deactivations (a vertex counts
        once per shard that had activated it).
        """
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return 0
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        before = self.mutation_version
        router = self._charge_router(vids.shape[0])
        shard_times = []
        removed = 0
        for s, shard in enumerate(self.shards):
            with counting() as delta:
                removed += shard.delete_vertices(vids)
            shard_times.append((s, simulated_seconds(delta)))
        self.update_costs.record(router, shard_times)
        self.events.publish_structural(
            "delete_vertices",
            before_version=before,
            after_version=self.mutation_version,
            payload=vids.copy(),
        )
        return removed

    def bulk_build(self, coo: COO) -> int:
        """One-shot build: split the COO by owner shard, build each."""
        _check_packable(int(coo.num_vertices))
        if coo.weights is not None and not self.weighted:
            coo = COO(coo.src, coo.dst, coo.num_vertices, weights=None)
        before = self.mutation_version
        owner = self.partitioner.shard_of(coo.src)
        router = self._charge_router(coo.num_edges)
        shard_times = []
        built = 0
        for s, shard in enumerate(self.shards):
            mask = owner == s
            part = COO(
                coo.src[mask],
                coo.dst[mask],
                coo.num_vertices,
                weights=coo.weights[mask] if coo.weights is not None else None,
            )
            with counting() as delta:
                built += shard.bulk_build(part)
            shard_times.append((s, simulated_seconds(delta)))
        self.update_costs.record(router, shard_times)
        self.events.publish_structural(
            "bulk_build",
            before_version=before,
            after_version=self.mutation_version,
            payload=COO(
                coo.src.copy(),
                coo.dst.copy(),
                coo.num_vertices,
                weights=None if coo.weights is None else coo.weights.copy(),
            ),
        )
        return built

    # -- queries (scatter-gather) ----------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Boolean membership per pair, scatter-gathered from owners."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        out = np.zeros(src.shape[0], dtype=bool)

        def dispatch(s, shard, mask):
            out[mask] = shard.edge_exists(src[mask], dst[mask])

        self._fan_out(owner, self.query_costs, router, dispatch)
        return out

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(found, weight)``, scatter-gathered from owners."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        owner = self.partitioner.shard_of(src)
        router = self._charge_router(src.shape[0])
        exists = np.zeros(src.shape[0], dtype=bool)
        weights = np.zeros(src.shape[0], dtype=np.int64)

        def dispatch(s, shard, mask):
            exists[mask], weights[mask] = shard.edge_weights(src[mask], dst[mask])

        self._fan_out(owner, self.query_costs, router, dispatch)
        return exists, weights

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex, gathered from owner shards."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return np.empty(0, dtype=np.int64)
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        owner = self.partitioner.shard_of(vids)
        router = self._charge_router(vids.shape[0])
        out = np.zeros(vids.shape[0], dtype=np.int64)

        def dispatch(s, shard, mask):
            out[mask] = shard.degree(vids[mask])

        self._fan_out(owner, self.query_costs, router, dispatch)
        return out

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """One vertex's adjacency, served by its owner shard alone."""
        v = int(vertex)
        check_in_range(np.array([v]), 0, self.num_vertices, "vertex")
        shard = self.shards[int(self.partitioner.shard_of(np.array([v]))[0])]
        return shard.neighbors(v)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``(owner_pos, destinations, weights)`` gathered from
        owner shards; rows are grouped by ascending position in
        ``vertex_ids`` (neighbor order within a vertex is shard-native)."""
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        owner = self.partitioner.shard_of(vids)
        router = self._charge_router(vids.shape[0])
        pos_parts: list = []
        dst_parts: list = []
        w_parts: list = []

        def dispatch(s, shard, mask):
            pos = np.flatnonzero(mask)
            owner_pos, dsts, ws = shard.adjacencies(vids[mask])
            pos_parts.append(pos[owner_pos])
            dst_parts.append(dsts)
            w_parts.append(ws)

        self._fan_out(owner, self.query_costs, router, dispatch)
        if not pos_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        pos = np.concatenate(pos_parts)
        dsts = np.concatenate(dst_parts)
        ws = np.concatenate(w_parts)
        order = np.argsort(pos, kind="stable")
        get_counters().bytes_copied += int(pos.shape[0]) * 24
        return pos[order], dsts[order], ws[order]

    def num_edges(self) -> int:
        """Global edge count (shards partition the edge set)."""
        return sum(shard.num_edges() for shard in self.shards)

    def memory_bytes(self) -> int:
        """Total modeled resident bytes across all shards."""
        return sum(shard.memory_bytes() for shard in self.shards)

    def export_coo(self) -> COO:
        """Concatenated unsorted COO export of every shard's edges."""
        parts = [shard.export_coo() for shard in self.shards]
        weighted = self.weighted
        return COO(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            self.num_vertices,
            weights=np.concatenate([p.weights for p in parts]) if weighted else None,
        )

    # -- global snapshot ---------------------------------------------------------------

    def snapshot(self) -> CSRSnapshot:
        """Assemble the global sorted-CSR view from per-shard snapshots.

        Each shard serves its snapshot through its own cached /
        incremental / cold tiers; the router then places every shard's
        rows at the owning vertices' global offsets — O(E) stream work,
        charged as copy traffic.  Because a vertex's out-edges live in
        exactly one shard and each shard's CSR is already
        destination-sorted per vertex, the assembled snapshot is
        bit-identical to the snapshot of a single :class:`Graph` given
        the same workload.  Unchanged shards re-serve the same assembled
        object for free.
        """
        versions = tuple(shard.mutation_version for shard in self.shards)
        if self._snap_cache is not None and self._snap_cache[0] == versions:
            return self._snap_cache[1]
        shard_snaps = [shard.snapshot() for shard in self.shards]
        n = self.num_vertices
        counts = np.zeros(n, dtype=np.int64)
        for snap in shard_snaps:
            counts += np.diff(snap.row_ptr)
        row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        total = int(row_ptr[-1])
        col_idx = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.int64) if self.weighted else None
        counters = get_counters()
        counters.kernel_launches += len(shard_snaps)
        counters.bytes_copied += total * (16 if self.weighted else 8) + (n + 1) * 8
        for snap in shard_snaps:
            if snap.num_edges == 0:
                continue
            deg = np.diff(snap.row_ptr)
            # Only the owner shard holds rows for a vertex, so its global
            # slice starts at row_ptr[v] and the shard-local offset maps
            # rows across with one repeat + add.
            place = np.arange(snap.num_edges, dtype=np.int64) + np.repeat(
                row_ptr[:-1] - snap.row_ptr[:-1], deg
            )
            col_idx[place] = snap.col_idx
            if weights is not None:
                weights[place] = snap.weights
        assembled = CSRSnapshot(
            row_ptr=row_ptr, col_idx=col_idx, weights=weights, num_vertices=n
        )
        self._snap_cache = (versions, assembled)
        return assembled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph({type(self.shards[0].backend).__name__} x "
            f"{self.num_shards}, |V|={self.num_vertices}, |E|={self.num_edges()}, "
            f"weighted={self.weighted})"
        )
