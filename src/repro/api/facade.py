"""The ``Graph`` facade: one normalization layer over any backend.

Every backend historically re-implemented the same argument pipeline
(coerce to int64, length check, bounds check, self-loop drop, weight
defaulting) with subtly different defaults.  The facade does that work
exactly once at the public boundary and dispatches clean ndarray batches;
backend-side re-coercion is a fast-pathed no-op on already-clean arrays.

Quickstart::

    from repro.api import Graph
    g = Graph.create("slabhash", num_vertices=1_000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])            # -> array([ True])
    snap = g.snapshot()                # sorted-CSR view for analytics
    g.capabilities                     # Capabilities(...) of the instance

Policies (chosen at construction, applied to every batch):

- ``self_loops``: ``"drop"`` (default, Algorithm 1 line 3) or ``"error"``;
- ``dedup_batches``: pre-collapse intra-batch duplicates (last occurrence
  wins, matching replace semantics) before the backend sees them;
- ``default_weight``: fill value when a weighted graph gets no weights;
- weights handed to an unweighted instance raise :class:`ValidationError`
  — never silently dropped.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.backend import GraphBackend
from repro.api.capabilities import Capabilities
from repro.api.registry import create as _create_backend
from repro.api.snapshot import CSRSnapshot, as_snapshot
from repro.coo import COO
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["Graph"]

_SELF_LOOP_POLICIES = ("drop", "error")


class Graph:
    """A backend-agnostic dynamic graph with uniform batch normalization.

    Wrap an existing backend instance (``Graph(backend)``) or construct by
    registry name (:meth:`Graph.create`).  All mutation and query methods
    validate once here, then dispatch; capability-gated operations raise a
    clear :class:`ValidationError` naming the missing flag instead of an
    ``AttributeError`` from a missing method.
    """

    def __init__(
        self,
        backend: GraphBackend,
        *,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
    ) -> None:
        if isinstance(backend, str):
            raise ValidationError(
                "Graph() wraps a backend instance; use "
                "Graph.create(name, num_vertices=...) to construct by name"
            )
        if self_loops not in _SELF_LOOP_POLICIES:
            raise ValidationError(
                f"self_loops must be one of {_SELF_LOOP_POLICIES}, got {self_loops!r}"
            )
        self.backend = backend
        self.self_loops = self_loops
        self.dedup_batches = bool(dedup_batches)
        self.default_weight = int(default_weight)

    @classmethod
    def create(
        cls,
        name: str,
        num_vertices: int,
        *,
        weighted: bool = False,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        **backend_kwargs: Any,
    ) -> "Graph":
        """Construct a registered backend by name and wrap it."""
        backend = _create_backend(name, num_vertices, weighted=weighted, **backend_kwargs)
        return cls(
            backend,
            self_loops=self_loops,
            dedup_batches=dedup_batches,
            default_weight=default_weight,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def capabilities(self) -> Capabilities:
        """Capabilities of the wrapped *instance* (class flags narrowed by
        construction choices such as ``weighted=False``)."""
        return self.backend.instance_capabilities()

    @property
    def num_vertices(self) -> int:
        """Current vertex-id space (ids addressable without growth)."""
        return int(self.backend.num_vertices)

    @property
    def vertex_capacity(self) -> int:
        """Alias of :attr:`num_vertices` (the slab-hash structure's name)."""
        return self.num_vertices

    @property
    def weighted(self) -> bool:
        return bool(self.backend.weighted)

    @property
    def directed(self) -> bool:
        """Backends without an explicit mode store directed slots."""
        return bool(getattr(self.backend, "directed", True))

    # -- batch normalization (the single validation seam) ------------------------

    def _normalize(self, src, dst, weights, *, fill_default_weight: bool = True):
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size:
            n = self.num_vertices
            check_in_range(src, 0, n, "src")
            check_in_range(dst, 0, n, "dst")
        if weights is not None:
            if not self.weighted:
                raise ValidationError(
                    f"graph is unweighted (backend {type(self.backend).__name__}); "
                    "weights are not accepted — construct with weighted=True"
                )
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", src), ("weights", weights))
        loops = src == dst
        if loops.any():
            if self.self_loops == "error":
                raise ValidationError(
                    f"batch contains {int(loops.sum())} self-loop(s) and this "
                    "Graph was constructed with self_loops='error'"
                )
            keep = ~loops
            src, dst = src[keep], dst[keep]
            weights = weights[keep] if weights is not None else None
        if self.dedup_batches and src.size:
            comp = (src << np.int64(32)) | dst
            keep = last_occurrence_mask(comp)
            src, dst = src[keep], dst[keep]
            weights = weights[keep] if weights is not None else None
        if weights is None and self.weighted and fill_default_weight:
            weights = np.full(src.shape[0], self.default_weight, dtype=np.int64)
        return src, dst, weights

    # -- mutation -----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched edge insertion (replace semantics); returns edges added."""
        src, dst, weights = self._normalize(src, dst, weights)
        if src.size == 0:
            return 0
        return int(self.backend.insert_edges(src, dst, weights))

    def delete_edges(self, src, dst) -> int:
        """Batched edge deletion; returns edges actually removed."""
        src, dst, _ = self._normalize(src, dst, None, fill_default_weight=False)
        if src.size == 0:
            return 0
        return int(self.backend.delete_edges(src, dst))

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and incident edges (capability-gated)."""
        self._require("vertex_dynamic")
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return 0
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        return int(self.backend.delete_vertices(vids))

    def bulk_build(self, coo: COO) -> int:
        """One-shot build from a COO snapshot (requires an empty graph).

        A weighted COO loads into an unweighted graph by *dropping* weights
        — a snapshot restore, unlike :meth:`insert_edges`, which rejects
        explicit weights on unweighted instances.
        """
        if coo.weights is not None and not self.weighted:
            coo = COO(coo.src, coo.dst, coo.num_vertices, weights=None)
        return int(self.backend.bulk_build(coo))

    # -- queries --------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_exists(src, dst)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_weights(src, dst)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        v = int(vertex)
        check_in_range(np.array([v]), 0, self.num_vertices, "vertex")
        return self.backend.neighbors(v)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched adjacency iterator ``(owner_pos, destinations, weights)``."""
        return self.backend.adjacencies(vertex_ids)

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex (uniform across backends)."""
        return self.backend.degree(vertex_ids)

    def num_edges(self) -> int:
        return int(self.backend.num_edges())

    def memory_bytes(self) -> int:
        return int(self.backend.memory_bytes())

    def export_coo(self) -> COO:
        return self.backend.export_coo()

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        return self.backend.sorted_adjacency()

    def snapshot(self) -> CSRSnapshot:
        """Sorted-CSR snapshot — the uniform view analytics consume."""
        return as_snapshot(self.backend)

    def neighbor_range(self, vertex: int, lo: int, hi: int) -> np.ndarray:
        """Neighbors with ids in ``[lo, hi)`` (capability-gated: only
        sorted structures serve this without a scan — Section VII)."""
        self._require("range_queries")
        return self.backend.neighbor_range(int(vertex), int(lo), int(hi))

    # -- maintenance -------------------------------------------------------------------

    def rehash(self, vertex_ids=None, load_factor: float | None = None) -> int:
        self._require("rehash")
        return int(self.backend.rehash(vertex_ids, load_factor))

    def flush_tombstones(self, vertex_ids=None) -> None:
        self._require("tombstone_flush")
        self.backend.flush_tombstones(vertex_ids)

    # -- plumbing ----------------------------------------------------------------------

    def _require(self, flag: str) -> None:
        caps = self.capabilities
        if not getattr(caps, flag):
            raise ValidationError(
                f"backend {type(self.backend).__name__} does not support this "
                f"operation (capability {flag}=False)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({type(self.backend).__name__}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges()}, weighted={self.weighted})"
        )
