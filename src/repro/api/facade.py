"""The ``Graph`` facade: one normalization layer over any backend.

Every backend historically re-implemented the same argument pipeline
(coerce to int64, length check, bounds check, self-loop drop, weight
defaulting) with subtly different defaults.  The facade does that work
exactly once at the public boundary and dispatches clean ndarray batches;
backend-side re-coercion is a fast-pathed no-op on already-clean arrays.

Quickstart::

    from repro.api import Graph
    g = Graph.create("slabhash", num_vertices=1_000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])            # -> array([ True])
    snap = g.snapshot()                # sorted-CSR view for analytics
    g.capabilities                     # Capabilities(...) of the instance

Policies (chosen at construction, applied to every batch):

- ``self_loops``: ``"drop"`` (default, Algorithm 1 line 3) or ``"error"``;
- ``dedup_batches``: pre-collapse intra-batch duplicates (last occurrence
  wins, matching replace semantics) before the backend sees them;
- ``default_weight``: fill value when a weighted graph gets no weights;
- weights handed to an unweighted instance raise :class:`ValidationError`
  — never silently dropped.

Snapshot maintenance: the facade keeps a bounded *delta log* of the edge
batches it has applied since the backend's cached snapshot.  When
:meth:`Graph.snapshot` finds the cache stale but the log complete (every
intervening mutation went through this facade and was an edge batch), it
lexsorts only the O(batch) delta and merges it into the cached sorted CSR
(:func:`repro.api.snapshot.merge_csr_delta`) — O(E + B log B) instead of
the O(E log E) full rebuild.  Vertex deletion, bulk build, rehash,
tombstone flush, out-of-band backend mutations, or delta overflow fall
back to a cold rebuild automatically; merged snapshots are bit-identical
to cold ones (pinned by the cross-backend contract tests).

Delta subscribers: alongside the snapshot log, consumers can observe the
same per-batch edge deltas live via :meth:`Graph.subscribe_deltas`.  A
subscriber receives ``on_edge_batch(is_insert, src, dst, weights)`` after
every applied (normalized) batch and ``on_structural(reason)`` for
mutations not expressible as an edge delta (vertex deletion, bulk build,
rehash, tombstone flush).  The incremental analytics in
:mod:`repro.stream` maintain their state from these events instead of
recomputing from scratch each compute phase.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.backend import GraphBackend
from repro.api.capabilities import Capabilities
from repro.api.registry import create as _create_backend
from repro.api.snapshot import CSRSnapshot, as_snapshot, merge_csr_delta
from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["Graph", "DEFAULT_DELTA_LIMIT", "MAX_PACKABLE_VERTICES"]

_SELF_LOOP_POLICIES = ("drop", "error")

#: Default bound on logged delta rows before the facade stops logging and
#: the next snapshot falls back to a cold rebuild.  Past ~|E| logged rows
#: the merge stops beating the rebuild anyway; 2^16 keeps the log's memory
#: bounded regardless of graph size.
DEFAULT_DELTA_LIMIT = 1 << 16

#: Largest vertex-id space the ``(src << 32) | dst`` composite-key packing
#: (batch dedup, snapshot delta-merge) can represent: ids must fit in 31
#: bits because ``src << 32`` overflows signed int64 at ``src >= 2**31``,
#: and ``dst`` would collide into the src bits at ``2**32`` regardless.
MAX_PACKABLE_VERTICES = 1 << 31


def _check_packable(num_vertices: int) -> None:
    if num_vertices > MAX_PACKABLE_VERTICES:
        raise ValidationError(
            f"vertex space of {num_vertices} exceeds the facade's "
            "(src << 32) | dst composite-key packing (batch dedup, snapshot "
            f"delta-merge), which supports up to {MAX_PACKABLE_VERTICES} — "
            "larger id spaces would silently collide or overflow int64"
        )


class Graph:
    """A backend-agnostic dynamic graph with uniform batch normalization.

    Wrap an existing backend instance (``Graph(backend)``) or construct by
    registry name (:meth:`Graph.create`).  All mutation and query methods
    validate once here, then dispatch; capability-gated operations raise a
    clear :class:`ValidationError` naming the missing flag instead of an
    ``AttributeError`` from a missing method.
    """

    def __init__(
        self,
        backend: GraphBackend,
        *,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
    ) -> None:
        if isinstance(backend, str):
            raise ValidationError(
                "Graph() wraps a backend instance; use "
                "Graph.create(name, num_vertices=...) to construct by name"
            )
        if self_loops not in _SELF_LOOP_POLICIES:
            raise ValidationError(
                f"self_loops must be one of {_SELF_LOOP_POLICIES}, got {self_loops!r}"
            )
        _check_packable(int(getattr(backend, "num_vertices", 0)))
        self.backend = backend
        self.self_loops = self_loops
        self.dedup_batches = bool(dedup_batches)
        self.default_weight = int(default_weight)
        if snapshot_delta_limit < 0:
            raise ValidationError("snapshot_delta_limit must be non-negative")
        self.snapshot_delta_limit = int(snapshot_delta_limit)
        self._delta_subscribers: list = []
        self._reset_delta(getattr(backend, "mutation_version", 0))

    @classmethod
    def create(
        cls,
        name: str,
        num_vertices: int,
        *,
        weighted: bool = False,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
        **backend_kwargs: Any,
    ) -> "Graph":
        """Construct a registered backend by name and wrap it."""
        backend = _create_backend(name, num_vertices, weighted=weighted, **backend_kwargs)
        return cls(
            backend,
            self_loops=self_loops,
            dedup_batches=dedup_batches,
            default_weight=default_weight,
            snapshot_delta_limit=snapshot_delta_limit,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def capabilities(self) -> Capabilities:
        """Capabilities of the wrapped *instance* (class flags narrowed by
        construction choices such as ``weighted=False``)."""
        return self.backend.instance_capabilities()

    @property
    def num_vertices(self) -> int:
        """Current vertex-id space (ids addressable without growth)."""
        return int(self.backend.num_vertices)

    @property
    def vertex_capacity(self) -> int:
        """Alias of :attr:`num_vertices` (the slab-hash structure's name)."""
        return self.num_vertices

    @property
    def weighted(self) -> bool:
        return bool(self.backend.weighted)

    @property
    def directed(self) -> bool:
        """Backends without an explicit mode store directed slots."""
        return bool(getattr(self.backend, "directed", True))

    # -- batch normalization (the single validation seam) ------------------------

    def _normalize(self, src, dst, weights, *, fill_default_weight: bool = True):
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size:
            n = self.num_vertices
            check_in_range(src, 0, n, "src")
            check_in_range(dst, 0, n, "dst")
        if weights is not None:
            if not self.weighted:
                raise ValidationError(
                    f"graph is unweighted (backend {type(self.backend).__name__}); "
                    "weights are not accepted — construct with weighted=True"
                )
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", src), ("weights", weights))
        loops = src == dst
        if loops.any():
            if self.self_loops == "error":
                raise ValidationError(
                    f"batch contains {int(loops.sum())} self-loop(s) and this "
                    "Graph was constructed with self_loops='error'"
                )
            keep = ~loops
            src, dst = src[keep], dst[keep]
            weights = weights[keep] if weights is not None else None
        if self.dedup_batches and src.size:
            comp = (src << np.int64(32)) | dst
            keep = last_occurrence_mask(comp)
            src, dst = src[keep], dst[keep]
            weights = weights[keep] if weights is not None else None
        if weights is None and self.weighted and fill_default_weight:
            weights = np.full(src.shape[0], self.default_weight, dtype=np.int64)
        return src, dst, weights

    # -- mutation -----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched edge insertion (replace semantics); returns edges added."""
        src, dst, weights = self._normalize(src, dst, weights)
        if src.size == 0:
            return 0
        before = getattr(self.backend, "mutation_version", None)
        added = int(self.backend.insert_edges(src, dst, weights))
        self._log_delta(True, src, dst, weights, before)
        self._notify_edges(True, src, dst, weights, before)
        return added

    def delete_edges(self, src, dst) -> int:
        """Batched edge deletion; returns edges actually removed."""
        src, dst, _ = self._normalize(src, dst, None, fill_default_weight=False)
        if src.size == 0:
            return 0
        before = getattr(self.backend, "mutation_version", None)
        removed = int(self.backend.delete_edges(src, dst))
        self._log_delta(False, src, dst, None, before)
        self._notify_edges(False, src, dst, None, before)
        return removed

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and incident edges (capability-gated).

        Not expressible as an edge delta (incident edges live in other
        rows), so the snapshot delta log is dropped and the next
        :meth:`snapshot` rebuilds cold.
        """
        self._require("vertex_dynamic")
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return 0
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        removed = int(self.backend.delete_vertices(vids))
        self._invalidate_delta()
        self._notify_structural("delete_vertices")
        return removed

    def bulk_build(self, coo: COO) -> int:
        """One-shot build from a COO snapshot (requires an empty graph).

        A weighted COO loads into an unweighted graph by *dropping* weights
        — a snapshot restore, unlike :meth:`insert_edges`, which rejects
        explicit weights on unweighted instances.
        """
        # Backends grow their vertex space to fit the COO, so the
        # construction-time packing guard must be re-checked here.
        _check_packable(int(coo.num_vertices))
        if coo.weights is not None and not self.weighted:
            coo = COO(coo.src, coo.dst, coo.num_vertices, weights=None)
        built = int(self.backend.bulk_build(coo))
        self._invalidate_delta()
        self._notify_structural("bulk_build")
        return built

    # -- queries --------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_exists(src, dst)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_weights(src, dst)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        v = int(vertex)
        check_in_range(np.array([v]), 0, self.num_vertices, "vertex")
        return self.backend.neighbors(v)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched adjacency iterator ``(owner_pos, destinations, weights)``."""
        return self.backend.adjacencies(vertex_ids)

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex (uniform across backends)."""
        return self.backend.degree(vertex_ids)

    def num_edges(self) -> int:
        return int(self.backend.num_edges())

    def memory_bytes(self) -> int:
        return int(self.backend.memory_bytes())

    def export_coo(self) -> COO:
        return self.backend.export_coo()

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        return self.backend.sorted_adjacency()

    def snapshot(self) -> CSRSnapshot:
        """Sorted-CSR snapshot — the uniform view analytics consume.

        Three cost tiers, chosen automatically:

        1. **cached** — the backend is unchanged since the last snapshot:
           return the same object, zero work;
        2. **incremental** — every change since the cached snapshot is an
           edge batch this facade applied: sort the O(batch) delta and
           merge it into the cached sorted CSR (O(E + B log B));
        3. **cold** — anything else (vertex deletion, rehash, tombstone
           flush, bulk build, out-of-band backend mutation, delta
           overflow): full export + O(E log E) sort.
        """
        backend = self.backend
        version = getattr(backend, "mutation_version", 0)
        cached = getattr(backend, "_snapshot_cache", None)
        if (
            cached is not None
            and cached[0] != version
            and self._delta_log
            and self._delta_base == cached[0]
            and self._delta_version == version
        ):
            snap = self._merge_logged_delta(cached[1])
            backend._snapshot_cache = (version, snap)
        else:
            # Cache hit or cold rebuild — both version-keyed by the
            # backend's own snapshot() (as_snapshot also admits foreign
            # graph objects that only expose export_coo).
            snap = as_snapshot(backend)
        self._reset_delta(version)
        return snap

    def neighbor_range(self, vertex: int, lo: int, hi: int) -> np.ndarray:
        """Neighbors with ids in ``[lo, hi)`` (capability-gated: only
        sorted structures serve this without a scan — Section VII)."""
        self._require("range_queries")
        return self.backend.neighbor_range(int(vertex), int(lo), int(hi))

    # -- maintenance -------------------------------------------------------------------

    def rehash(self, vertex_ids=None, load_factor: float | None = None) -> int:
        self._require("rehash")
        rebuilt = int(self.backend.rehash(vertex_ids, load_factor))
        self._invalidate_delta()
        self._notify_structural("rehash")
        return rebuilt

    def flush_tombstones(self, vertex_ids=None) -> None:
        self._require("tombstone_flush")
        self.backend.flush_tombstones(vertex_ids)
        self._invalidate_delta()
        self._notify_structural("flush_tombstones")

    # -- snapshot delta log ------------------------------------------------------------

    def _reset_delta(self, anchor_version: int) -> None:
        """Start an empty delta log anchored at ``anchor_version``."""
        self._delta_log: list = []
        self._delta_rows = 0
        self._delta_base = anchor_version
        self._delta_version = anchor_version

    def _invalidate_delta(self) -> None:
        """Drop the log; the next snapshot rebuilds cold and re-anchors.

        A backend cache that is already stale can no longer serve either a
        hit or a merge base, so release its O(E) arrays too rather than
        pinning them until the next snapshot.
        """
        self._delta_log = []
        self._delta_rows = 0
        self._delta_base = -1
        self._delta_version = -1
        backend = self.backend
        cache = getattr(backend, "_snapshot_cache", None)
        if cache is not None and cache[0] != getattr(backend, "mutation_version", 0):
            backend._snapshot_cache = None

    def _log_delta(self, is_insert: bool, src, dst, weights, before_version) -> None:
        """Append one applied (normalized) batch to the delta log.

        ``before_version`` is the backend version observed immediately
        before dispatch; if it does not match the log's head, something
        mutated the backend out-of-band and the log is no longer a
        faithful replay — drop it.
        """
        if before_version is None or before_version != self._delta_version:
            self._invalidate_delta()
            return
        # Undirected backends mirror each batch internally; the mirrored
        # rows are added at merge time but counted against the bound here.
        self._delta_rows += int(src.shape[0]) * (1 if self.directed else 2)
        if self._delta_rows > self.snapshot_delta_limit:
            self._invalidate_delta()
            return
        # Copy: normalization fast-paths clean int64 input through, so the
        # arrays may alias a caller buffer that gets refilled before the
        # next snapshot.
        self._delta_log.append(
            (
                is_insert,
                src.copy(),
                dst.copy(),
                None if weights is None else weights.copy(),
            )
        )
        self._delta_version = getattr(self.backend, "mutation_version", -1)

    def _merge_logged_delta(self, base: CSRSnapshot) -> CSRSnapshot:
        """Reduce the log to net per-key ops and merge them into ``base``."""
        srcs, dsts, ws, kinds = [], [], [], []
        for is_insert, src, dst, weights in self._delta_log:
            if not self.directed:
                src, dst = (
                    np.concatenate([src, dst]),
                    np.concatenate([dst, src]),
                )
                if weights is not None:
                    weights = np.concatenate([weights, weights])
            srcs.append(src)
            dsts.append(dst)
            ws.append(
                weights
                if weights is not None
                else np.zeros(src.shape[0], dtype=np.int64)
            )
            kinds.append(np.full(src.shape[0], is_insert, dtype=bool))
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        w = np.concatenate(ws)
        is_ins = np.concatenate(kinds)
        comp = (src << np.int64(32)) | dst
        # Replace semantics across the whole log: the last op per key wins.
        get_counters().sorted_elements += int(comp.shape[0])
        last = last_occurrence_mask(comp)
        comp, w, is_ins = comp[last], w[last], is_ins[last]
        order = np.argsort(comp)
        comp, w, is_ins = comp[order], w[order], is_ins[order]
        weighted = base.weights is not None
        return merge_csr_delta(
            base,
            comp[is_ins],
            w[is_ins] if weighted else None,
            comp[~is_ins],
        )

    # -- delta subscribers -------------------------------------------------------------

    def subscribe_deltas(self, subscriber) -> None:
        """Register a live observer of this facade's applied deltas.

        ``subscriber`` must implement ``on_edge_batch(is_insert, src, dst,
        weights, before_version)`` — called after every applied edge
        batch with the *normalized* arrays (self-loops dropped, dedup
        applied, weights defaulted; valid only for the duration of the
        call — copy to keep) — and ``on_structural(reason)`` for
        mutations that cannot be expressed as an edge delta
        (``"delete_vertices"``, ``"bulk_build"``, ``"rehash"``,
        ``"flush_tombstones"``).  ``before_version`` is the backend's
        ``mutation_version`` observed immediately before dispatch;
        mutations applied to the backend behind the facade's back are
        *not* observed, so subscribers that need exactness must compare
        it against the version they last folded in (see
        :mod:`repro.stream.incremental`).
        """
        if subscriber not in self._delta_subscribers:
            self._delta_subscribers.append(subscriber)

    def unsubscribe_deltas(self, subscriber) -> None:
        """Remove a subscriber registered via :meth:`subscribe_deltas`."""
        if subscriber in self._delta_subscribers:
            self._delta_subscribers.remove(subscriber)

    def _notify_edges(self, is_insert: bool, src, dst, weights, before_version) -> None:
        for sub in list(self._delta_subscribers):
            sub.on_edge_batch(is_insert, src, dst, weights, before_version)

    def _notify_structural(self, reason: str) -> None:
        for sub in list(self._delta_subscribers):
            sub.on_structural(reason)

    # -- plumbing ----------------------------------------------------------------------

    def _require(self, flag: str) -> None:
        caps = self.capabilities
        if not getattr(caps, flag):
            raise ValidationError(
                f"backend {type(self.backend).__name__} does not support this "
                f"operation (capability {flag}=False)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({type(self.backend).__name__}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges()}, weighted={self.weighted})"
        )
