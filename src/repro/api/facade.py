"""The ``Graph`` facade: one normalization layer over any backend.

Every backend historically re-implemented the same argument pipeline
(coerce to int64, length check, bounds check, self-loop drop, weight
defaulting) with subtly different defaults.  The facade does that work
exactly once at the public boundary and dispatches clean ndarray batches;
backend-side re-coercion is a fast-pathed no-op on already-clean arrays.

Quickstart::

    from repro.api import Graph
    g = Graph.create("slabhash", num_vertices=1_000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])            # -> array([ True])
    snap = g.snapshot()                # sorted-CSR view for analytics
    g.capabilities                     # Capabilities(...) of the instance

Policies (chosen at construction, applied to every batch):

- ``self_loops``: ``"drop"`` (default, Algorithm 1 line 3) or ``"error"``;
- ``dedup_batches``: pre-collapse intra-batch duplicates (last occurrence
  wins, matching replace semantics) before the backend sees them;
- ``default_weight``: fill value when a weighted graph gets no weights;
- weights handed to an unweighted instance raise :class:`ValidationError`
  — never silently dropped.

Event log: every mutation the facade applies is published to a
first-class :class:`repro.eventlog.EventLog` at :attr:`Graph.events` —
normalized edge batches as :class:`~repro.eventlog.EdgeBatch` events and
vertex deletion / bulk build / rehash / tombstone flush as
:class:`~repro.eventlog.StructuralEvent`s, each stamped with the
backend's ``mutation_version`` before and after the dispatch.  Consumers
(the snapshot delta-merge below, :mod:`repro.stream.incremental`'s
analytics, the shard router) read it through cursors; a history whose
version chain does not connect the consumer's last sync to the live
version — an out-of-band backend mutation, or events trimmed past the
log's bounded retention — is detected as a log gap and answered with a
cold rebuild.

Snapshot maintenance rides the same log: when :meth:`Graph.snapshot`
finds the cached snapshot stale but the event window since it complete
and purely edge-batched, it lexsorts only the O(batch) delta and merges
it into the cached sorted CSR (:func:`repro.api.snapshot.merge_csr_delta`)
— O(E + B log B) instead of the O(E log E) full rebuild.  Structural
events, version-chain breaks, and retention gaps fall back to a cold
rebuild automatically; merged snapshots are bit-identical to cold ones
(pinned by the cross-backend contract tests).

Delta subscribers: :meth:`Graph.subscribe_deltas` remains as the
facade-flavored push interface — a subscriber receives
``on_edge_batch(is_insert, src, dst, weights, before_version)`` after
every applied batch and ``on_structural(reason)`` for structural events.
It is a thin adapter over ``Graph.events.subscribe``; new consumers
should subscribe to (or hold a cursor on) the event log directly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.backend import GraphBackend
from repro.api.capabilities import Capabilities
from repro.api.registry import create as _create_backend
from repro.api.snapshot import CSRSnapshot, as_snapshot, merge_event_window
from repro.coo import COO
from repro.eventlog import EdgeBatch, EventLog, StructuralEvent, version_chain_intact
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["Graph", "DEFAULT_DELTA_LIMIT", "MAX_PACKABLE_VERTICES", "normalize_batch"]

_SELF_LOOP_POLICIES = ("drop", "error")

#: Default bound on retained event-log rows before old events are trimmed
#: and lagging readers (the snapshot merge included) fall back to a cold
#: rebuild.  Past ~|E| logged rows the merge stops beating the rebuild
#: anyway; 2^16 keeps the log's memory bounded regardless of graph size.
DEFAULT_DELTA_LIMIT = 1 << 16

#: Largest vertex-id space the ``(src << 32) | dst`` composite-key packing
#: (batch dedup, snapshot delta-merge) can represent: ids must fit in 31
#: bits because ``src << 32`` overflows signed int64 at ``src >= 2**31``,
#: and ``dst`` would collide into the src bits at ``2**32`` regardless.
MAX_PACKABLE_VERTICES = 1 << 31


def _check_packable(num_vertices: int) -> None:
    if num_vertices > MAX_PACKABLE_VERTICES:
        raise ValidationError(
            f"vertex space of {num_vertices} exceeds the facade's "
            "(src << 32) | dst composite-key packing (batch dedup, snapshot "
            f"delta-merge), which supports up to {MAX_PACKABLE_VERTICES} — "
            "larger id spaces would silently collide or overflow int64"
        )


def normalize_batch(
    src,
    dst,
    weights,
    *,
    num_vertices: int,
    weighted: bool,
    self_loops: str = "drop",
    dedup_batches: bool = False,
    default_weight: int = 0,
    fill_default_weight: bool = True,
    backend_name: str = "backend",
):
    """The single batch-normalization seam (shared by :class:`Graph` and
    the shard router): coerce to int64, check lengths and bounds, apply
    the self-loop policy, optionally collapse intra-batch duplicates
    (last occurrence wins), and default weights."""
    src = as_int_array(src, "src")
    dst = as_int_array(dst, "dst")
    check_equal_length(("src", src), ("dst", dst))
    if src.size:
        check_in_range(src, 0, num_vertices, "src")
        check_in_range(dst, 0, num_vertices, "dst")
    if weights is not None:
        if not weighted:
            raise ValidationError(
                f"graph is unweighted (backend {backend_name}); "
                "weights are not accepted — construct with weighted=True"
            )
        weights = as_int_array(weights, "weights")
        check_equal_length(("src", src), ("weights", weights))
    loops = src == dst
    if loops.any():
        if self_loops == "error":
            raise ValidationError(
                f"batch contains {int(loops.sum())} self-loop(s) and this "
                "Graph was constructed with self_loops='error'"
            )
        keep = ~loops
        src, dst = src[keep], dst[keep]
        weights = weights[keep] if weights is not None else None
    if dedup_batches and src.size:
        comp = (src << np.int64(32)) | dst
        keep = last_occurrence_mask(comp)
        src, dst = src[keep], dst[keep]
        weights = weights[keep] if weights is not None else None
    if weights is None and weighted and fill_default_weight:
        weights = np.full(src.shape[0], default_weight, dtype=np.int64)
    return src, dst, weights


class _LegacyDeltaAdapter:
    """Bridges an ``on_edge_batch``/``on_structural`` subscriber onto the
    event log's ``on_event`` protocol (see :meth:`Graph.subscribe_deltas`)."""

    def __init__(self, subscriber) -> None:
        self.subscriber = subscriber

    def on_event(self, event) -> None:
        if isinstance(event, EdgeBatch):
            self.subscriber.on_edge_batch(
                event.is_insert, event.src, event.dst, event.weights, event.before_version
            )
        elif isinstance(event, StructuralEvent):
            self.subscriber.on_structural(event.reason)


class Graph:
    """A backend-agnostic dynamic graph with uniform batch normalization.

    Wrap an existing backend instance (``Graph(backend)``) or construct by
    registry name (:meth:`Graph.create`).  All mutation and query methods
    validate once here, then dispatch; capability-gated operations raise a
    clear :class:`ValidationError` naming the missing flag instead of an
    ``AttributeError`` from a missing method.
    """

    def __init__(
        self,
        backend: GraphBackend,
        *,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
    ) -> None:
        if isinstance(backend, str):
            raise ValidationError(
                "Graph() wraps a backend instance; use "
                "Graph.create(name, num_vertices=...) to construct by name"
            )
        if self_loops not in _SELF_LOOP_POLICIES:
            raise ValidationError(
                f"self_loops must be one of {_SELF_LOOP_POLICIES}, got {self_loops!r}"
            )
        _check_packable(int(getattr(backend, "num_vertices", 0)))
        self.backend = backend
        self.self_loops = self_loops
        self.dedup_batches = bool(dedup_batches)
        self.default_weight = int(default_weight)
        if snapshot_delta_limit < 0:
            raise ValidationError("snapshot_delta_limit must be non-negative")
        self.snapshot_delta_limit = int(snapshot_delta_limit)
        #: The first-class event log every facade mutation publishes to.
        self.events = EventLog(retention_rows=self.snapshot_delta_limit)
        self._snap_cursor = self.events.cursor()
        self._legacy_subscribers: dict = {}

    @classmethod
    def create(
        cls,
        name: str,
        num_vertices: int,
        *,
        weighted: bool = False,
        self_loops: str = "drop",
        dedup_batches: bool = False,
        default_weight: int = 0,
        snapshot_delta_limit: int = DEFAULT_DELTA_LIMIT,
        **backend_kwargs: Any,
    ) -> "Graph":
        """Construct a registered backend by name and wrap it."""
        backend = _create_backend(name, num_vertices, weighted=weighted, **backend_kwargs)
        return cls(
            backend,
            self_loops=self_loops,
            dedup_batches=dedup_batches,
            default_weight=default_weight,
            snapshot_delta_limit=snapshot_delta_limit,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def capabilities(self) -> Capabilities:
        """Capabilities of the wrapped *instance* (class flags narrowed by
        construction choices such as ``weighted=False``)."""
        return self.backend.instance_capabilities()

    @property
    def num_vertices(self) -> int:
        """Current vertex-id space (ids addressable without growth)."""
        return int(self.backend.num_vertices)

    @property
    def vertex_capacity(self) -> int:
        """Alias of :attr:`num_vertices` (the slab-hash structure's name)."""
        return self.num_vertices

    @property
    def weighted(self) -> bool:
        """Whether this instance stores per-edge weights."""
        return bool(self.backend.weighted)

    @property
    def directed(self) -> bool:
        """Backends without an explicit mode store directed slots."""
        return bool(getattr(self.backend, "directed", True))

    @property
    def mutation_version(self):
        """The backend's monotone mutation version (None if unversioned)."""
        return getattr(self.backend, "mutation_version", None)

    # -- batch normalization (the single validation seam) ------------------------

    def _normalize(self, src, dst, weights, *, fill_default_weight: bool = True):
        return normalize_batch(
            src,
            dst,
            weights,
            num_vertices=self.num_vertices,
            weighted=self.weighted,
            self_loops=self.self_loops,
            dedup_batches=self.dedup_batches,
            default_weight=self.default_weight,
            fill_default_weight=fill_default_weight,
            backend_name=type(self.backend).__name__,
        )

    # -- mutation -----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched edge insertion (replace semantics); returns edges added."""
        src, dst, weights = self._normalize(src, dst, weights)
        if src.size == 0:
            return 0
        before = self.mutation_version
        added = int(self.backend.insert_edges(src, dst, weights))
        self._publish_edges(True, src, dst, weights, before)
        return added

    def delete_edges(self, src, dst) -> int:
        """Batched edge deletion; returns edges actually removed."""
        src, dst, _ = self._normalize(src, dst, None, fill_default_weight=False)
        if src.size == 0:
            return 0
        before = self.mutation_version
        removed = int(self.backend.delete_edges(src, dst))
        self._publish_edges(False, src, dst, None, before)
        return removed

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and incident edges (capability-gated).

        Not expressible as an edge delta (incident edges live in other
        rows), so a structural event is published and event-log consumers
        — the next :meth:`snapshot` included — rebuild cold.
        """
        self._require("vertex_dynamic")
        vids = as_int_array(vertex_ids, "vertex_ids")
        if vids.size == 0:
            return 0
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        before = self.mutation_version
        removed = int(self.backend.delete_vertices(vids))
        # The payload (a copy — the event outlives the caller's buffer)
        # lets replay consumers (the WAL, read replicas) re-apply this.
        self._publish_structural("delete_vertices", before, payload=vids.copy())
        return removed

    def bulk_build(self, coo: COO) -> int:
        """One-shot build from a COO snapshot (requires an empty graph).

        A weighted COO loads into an unweighted graph by *dropping* weights
        — a snapshot restore, unlike :meth:`insert_edges`, which rejects
        explicit weights on unweighted instances.
        """
        # Backends grow their vertex space to fit the COO, so the
        # construction-time packing guard must be re-checked here.
        _check_packable(int(coo.num_vertices))
        if coo.weights is not None and not self.weighted:
            coo = COO(coo.src, coo.dst, coo.num_vertices, weights=None)
        before = self.mutation_version
        built = int(self.backend.bulk_build(coo))
        self._publish_structural(
            "bulk_build",
            before,
            payload=COO(
                coo.src.copy(),
                coo.dst.copy(),
                coo.num_vertices,
                weights=None if coo.weights is None else coo.weights.copy(),
            ),
        )
        return built

    def restore_snapshot(self, snap: CSRSnapshot) -> int:
        """Load a checkpointed :class:`CSRSnapshot` into this (empty)
        graph — the restore half of the durability layer in
        :mod:`repro.persist`.  Equivalent to ``bulk_build(snap.to_coo())``;
        a later :meth:`snapshot` is bit-identical to ``snap``.
        """
        return self.bulk_build(snap.to_coo())

    # -- queries --------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Boolean membership per ``(src, dst)`` pair (batched probe)."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_exists(src, dst)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(found, weight)`` arrays; weight is 0 where absent."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        return self.backend.edge_weights(src, dst)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """One vertex's ``(destinations, weights)`` adjacency arrays."""
        v = int(vertex)
        check_in_range(np.array([v]), 0, self.num_vertices, "vertex")
        return self.backend.neighbors(v)

    def adjacencies(self, vertex_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched adjacency iterator ``(owner_pos, destinations, weights)``."""
        return self.backend.adjacencies(vertex_ids)

    def degree(self, vertex_ids) -> np.ndarray:
        """Out-degree per requested vertex (uniform across backends)."""
        return self.backend.degree(vertex_ids)

    def num_edges(self) -> int:
        """Live edge count (directed slot count for directed backends)."""
        return int(self.backend.num_edges())

    def memory_bytes(self) -> int:
        """Modeled resident bytes of the backend structure."""
        return int(self.backend.memory_bytes())

    def export_coo(self) -> COO:
        """Unsorted COO export of the live edge set (cold full scan)."""
        return self.backend.export_coo()

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex-sorted ``(offsets, destinations)`` CSR arrays."""
        return self.backend.sorted_adjacency()

    def snapshot(self) -> CSRSnapshot:
        """Sorted-CSR snapshot — the uniform view analytics consume.

        Three cost tiers, chosen automatically:

        1. **cached** — the backend is unchanged since the last snapshot:
           return the same object, zero work;
        2. **incremental** — the event-log window since the cached
           snapshot is complete (no retention gap), purely edge batches,
           and its version chain connects the cached version to the live
           one: sort the O(batch) delta and merge it into the cached
           sorted CSR (O(E + B log B));
        3. **cold** — anything else (structural events, version-chain
           breaks from out-of-band backend mutations, retention gaps):
           full export + O(E log E) sort.
        """
        backend = self.backend
        version = getattr(backend, "mutation_version", 0)
        cached = getattr(backend, "_snapshot_cache", None)
        window = None
        if cached is not None and cached[0] != version:
            window = self._mergeable_window(cached[0], version)
        if window:
            snap = merge_event_window(cached[1], window, directed=self.directed)
            backend._snapshot_cache = (version, snap)
        else:
            # Cache hit or cold rebuild — both version-keyed by the
            # backend's own snapshot() (as_snapshot also admits foreign
            # graph objects that only expose export_coo).
            snap = as_snapshot(backend)
        self._snap_cursor.poll()  # re-anchor at the log's tail
        return snap

    def neighbor_range(self, vertex: int, lo: int, hi: int) -> np.ndarray:
        """Neighbors with ids in ``[lo, hi)`` (capability-gated: only
        sorted structures serve this without a scan — Section VII)."""
        self._require("range_queries")
        return self.backend.neighbor_range(int(vertex), int(lo), int(hi))

    # -- maintenance -------------------------------------------------------------------

    def rehash(self, vertex_ids=None, load_factor: float | None = None) -> int:
        """Rebuild hash structures toward ``load_factor``; returns the
        number of rebuilt vertices (capability-gated; publishes a
        structural event, so subscribers rebuild cold)."""
        self._require("rehash")
        before = self.mutation_version
        rebuilt = int(self.backend.rehash(vertex_ids, load_factor))
        self._publish_structural("rehash", before)
        return rebuilt

    def flush_tombstones(self, vertex_ids=None) -> None:
        """Compact deletion tombstones (capability-gated; publishes a
        structural event, so subscribers rebuild cold)."""
        self._require("tombstone_flush")
        before = self.mutation_version
        self.backend.flush_tombstones(vertex_ids)
        self._publish_structural("flush_tombstones", before)

    # -- event publishing --------------------------------------------------------------

    def _publish_edges(self, is_insert: bool, src, dst, weights, before_version) -> None:
        # Undirected backends mirror each batch internally; the mirrored
        # rows are added at merge time but accounted against retention
        # (and the merge's sort charge) here.
        rows = int(src.shape[0]) * (1 if self.directed else 2)
        self.events.publish_edge_batch(
            is_insert,
            src,
            dst,
            weights,
            before_version=before_version,
            after_version=self.mutation_version,
            rows=rows,
        )

    def _publish_structural(self, reason: str, before_version, payload=None) -> None:
        self.events.publish_structural(
            reason,
            before_version=before_version,
            after_version=self.mutation_version,
            payload=payload,
        )
        # A backend snapshot cache that is now stale can no longer serve
        # either a hit or a merge base, so release its O(E) arrays rather
        # than pinning them until the next snapshot.
        backend = self.backend
        cache = getattr(backend, "_snapshot_cache", None)
        if cache is not None and cache[0] != getattr(backend, "mutation_version", 0):
            backend._snapshot_cache = None

    def _mergeable_window(self, base_version, live_version):
        """The pending event window iff it can serve an incremental merge:
        complete (no retention gap), purely edge batches, and version-
        chained from the cached snapshot to the live backend."""
        events, gapped = self._snap_cursor.peek()
        if gapped or not events:
            return None
        if not all(isinstance(e, EdgeBatch) for e in events):
            return None
        if not version_chain_intact(events, base_version, live_version):
            return None
        return events

    @property
    def _delta_rows(self) -> int:
        """Pending snapshot-merge rows (mirror-adjusted; test hook)."""
        return self._snap_cursor.pending_rows()

    # -- delta subscribers -------------------------------------------------------------

    def subscribe_deltas(self, subscriber) -> None:
        """Register a live observer of this facade's applied deltas.

        ``subscriber`` must implement ``on_edge_batch(is_insert, src, dst,
        weights, before_version)`` — called after every applied edge
        batch with the *normalized* arrays — and ``on_structural(reason)``
        for mutations that cannot be expressed as an edge delta
        (``"delete_vertices"``, ``"bulk_build"``, ``"rehash"``,
        ``"flush_tombstones"``).  This is a compatibility adapter over
        ``self.events.subscribe``; consumers that want sequence numbers,
        cursors, or gap detection should use the event log directly.
        """
        if subscriber in self._legacy_subscribers:
            return
        adapter = _LegacyDeltaAdapter(subscriber)
        self._legacy_subscribers[subscriber] = adapter
        self.events.subscribe(adapter)

    def unsubscribe_deltas(self, subscriber) -> None:
        """Remove a subscriber registered via :meth:`subscribe_deltas`."""
        adapter = self._legacy_subscribers.pop(subscriber, None)
        if adapter is not None:
            self.events.unsubscribe(adapter)

    # -- plumbing ----------------------------------------------------------------------

    def _require(self, flag: str) -> None:
        caps = self.capabilities
        if not getattr(caps, flag):
            raise ValidationError(
                f"backend {type(self.backend).__name__} does not support this "
                f"operation (capability {flag}=False)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({type(self.backend).__name__}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges()}, weighted={self.weighted})"
        )
