"""Capability flags every backend declares (Section II-A's operation set).

The paper compares structures that deliberately *differ* in what they can
do: Hornet has no vertex deletion, GPMA stores an unweighted edge set, only
the slab-hash structure rehashes, only sorted structures answer range
queries.  Rather than papering over the differences with ``hasattr`` probes
scattered through the harness, each backend declares a
:class:`Capabilities` record; consumers branch on flags and the contract
test suite asserts the flags match actual behavior.

Two layers of capability exist:

- the **class-level** declaration (``HornetGraph.capabilities``): what the
  implementation can ever do;
- the **instance-level** view (:meth:`GraphBackend.instance_capabilities`):
  the class capabilities narrowed by construction choices — a
  ``DynamicGraph(weighted=False)`` stores no weights even though the class
  supports them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

__all__ = ["Capabilities"]


@dataclass(frozen=True)
class Capabilities:
    """What a graph backend supports beyond the mandatory batched surface.

    Attributes
    ----------
    weighted:
        Can store a per-edge integer weight (map variant / value lanes).
    vertex_dynamic:
        Implements ``delete_vertices`` (Algorithm 2 semantics).
    sorted_neighbors:
        ``neighbors`` returns destinations in ascending order without a
        sort pass (B-tree, PMA).  Hash and list structures must pay the
        Table VIII sort to produce order.
    range_queries:
        Implements ``neighbor_range(vertex, lo, hi)`` — the query the
        paper's Section VII names as the B-tree's advantage.
    rehash:
        Implements ``rehash``/``rehash_candidates`` (chain-length
        maintenance, Section III).
    tombstone_flush:
        Implements ``flush_tombstones`` (lazy-deletion compaction,
        Section IV-C2).
    vertex_id_reuse:
        Can recycle deleted vertex ids (the faimGraph feature, Section
        VI-A3).
    """

    weighted: bool = False
    vertex_dynamic: bool = False
    sorted_neighbors: bool = False
    range_queries: bool = False
    rehash: bool = False
    tombstone_flush: bool = False
    vertex_id_reuse: bool = False

    def narrowed(self, *, weighted: bool | None = None) -> "Capabilities":
        """This record with flags switched off by instance configuration."""
        caps = self
        if weighted is not None and not weighted and caps.weighted:
            caps = replace(caps, weighted=False)
        return caps

    def flags(self) -> dict[str, bool]:
        """Flag name -> value (for reports and the contract tests)."""
        return asdict(self)
