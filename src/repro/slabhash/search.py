"""Batched search / membership kernel driver.

The read-only chain walk behind ``edgeExist`` (Section IV-B): identical
traversal to :mod:`repro.slabhash.delete` but without mutation.  Returns a
found mask and, for map arenas, the stored values.  The per-round probe is
dispatched through :mod:`repro.kernels`; this driver owns scheduling and
device-model charging so every kernel tier prices identically.

Unlike insert/delete, the batch is *not* deduplicated: queries are
idempotent and callers (e.g. triangle counting) legitimately probe the same
pair many times.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.kernels import get_kernels
from repro.kernels.reference import STATUS_ADVANCE, STATUS_HIT
from repro.slabhash.constants import KEY_DTYPE, NULL_SLAB
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["search_batch"]


def search_batch(arena, table_ids, keys) -> tuple[np.ndarray, np.ndarray]:
    """Probe (table, key) items; return ``(found, values)``.

    ``values[i]`` is 0 whenever ``found[i]`` is False or the arena is a set.
    """
    table_ids = as_int_array(table_ids, "table_ids")
    keys = as_int_array(keys, "keys")
    n = check_equal_length(("table_ids", table_ids), ("keys", keys))
    found = np.zeros(n, dtype=bool)
    values = np.zeros(n, dtype=np.int64)
    if n == 0:
        return found, values
    check_in_range(table_ids, 0, arena.num_tables, "table_ids")

    counters = get_counters()
    counters.kernel_launches += 1
    pool = arena.pool
    kern = get_kernels()
    k = keys.astype(KEY_DTYPE)

    # Items aimed at never-created tables trivially miss.
    exists = arena.table_base[table_ids] != NULL_SLAB
    active = np.flatnonzero(exists)
    if active.size == 0:
        return found, values
    cur = np.full(n, NULL_SLAB, dtype=np.int64)
    cur[active] = arena.bucket_heads(table_ids[active], keys[active])
    pending = active.astype(np.int64)

    while pending.size:
        counters.probe_rounds += 1
        cur_p = cur[pending]
        if pool.weighted:
            status, vals = kern.search_round_map(pool.keys, pool.values, cur_p, k[pending])
        else:
            status = kern.search_round_set(pool.keys, cur_p, k[pending])
            vals = None
        counters.slab_reads += int(pending.size)

        got = np.flatnonzero(status == STATUS_HIT)
        if got.size:
            found[pending[got]] = True
            if vals is not None:
                values[pending[got]] = vals[got]

        # STATUS_DONE items hit an empty lane: provably absent, walk over.
        cont = np.flatnonzero(status == STATUS_ADVANCE)
        if cont.size == 0:
            break
        nxt = pool.next_slab[cur_p[cont]]
        alive = nxt != NULL_SLAB
        cur[pending[cont[alive]]] = nxt[alive]
        pending = pending[cont[alive]]

    return found, values
