"""Batched search / membership kernel.

The read-only chain walk behind ``edgeExist`` (Section IV-B): identical
traversal to :mod:`repro.slabhash.delete` but without mutation.  Returns a
found mask and, for map arenas, the stored values.

Unlike insert/delete, the batch is *not* deduplicated: queries are
idempotent and callers (e.g. triangle counting) legitimately probe the same
pair many times.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.slabhash.constants import EMPTY_KEY, KEY_DTYPE, NULL_SLAB
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["search_batch"]


def search_batch(arena, table_ids, keys) -> tuple[np.ndarray, np.ndarray]:
    """Probe (table, key) items; return ``(found, values)``.

    ``values[i]`` is 0 whenever ``found[i]`` is False or the arena is a set.
    """
    table_ids = as_int_array(table_ids, "table_ids")
    keys = as_int_array(keys, "keys")
    n = check_equal_length(("table_ids", table_ids), ("keys", keys))
    found = np.zeros(n, dtype=bool)
    values = np.zeros(n, dtype=np.int64)
    if n == 0:
        return found, values
    check_in_range(table_ids, 0, arena.num_tables, "table_ids")

    counters = get_counters()
    counters.kernel_launches += 1
    pool = arena.pool
    k = keys.astype(KEY_DTYPE)

    exists = arena.table_base[table_ids] != NULL_SLAB
    active = np.flatnonzero(exists)
    if active.size == 0:
        return found, values
    cur = np.full(n, NULL_SLAB, dtype=np.int64)
    cur[active] = arena.bucket_heads(table_ids[active], keys[active])
    pending = active.astype(np.int64)

    while pending.size:
        counters.probe_rounds += 1
        cur_p = cur[pending]
        rows = pool.keys[cur_p]
        counters.slab_reads += int(pending.size)

        hit = rows == k[pending][:, None]
        hit_any = hit.any(axis=1)
        if hit_any.any():
            got = np.flatnonzero(hit_any)
            found[pending[got]] = True
            if pool.weighted:
                lanes = hit[got].argmax(axis=1)
                values[pending[got]] = pool.values[cur_p[got], lanes]

        rest = np.flatnonzero(~hit_any)
        if rest.size == 0:
            break
        # Empty-lane scan over the unresolved remainder only, sliced from
        # this round's gathered rows.
        has_empty = (rows[rest] == KEY_DTYPE(EMPTY_KEY)).any(axis=1)
        cont = rest[~has_empty]
        if cont.size == 0:
            break
        nxt = pool.next_slab[cur_p[cont]]
        alive = nxt != NULL_SLAB
        cur[pending[cont[alive]]] = nxt[alive]
        pending = pending[cont[alive]]

    return found, values
