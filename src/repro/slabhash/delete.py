"""Batched tombstone-delete kernel driver.

The vectorized counterpart of the slab-hash ``delete`` operation
(Section IV-C2): walk the bucket chain; when the key is found its lane is
overwritten with ``TOMBSTONE_KEY`` (the slot is *not* reclaimed, so later
inserts keep appending at chain tails); when a slab containing an empty
lane is reached without a match, the key is provably absent (empties exist
only at chain tails) and the walk stops.  The per-round probe-and-tombstone
pass is dispatched through :mod:`repro.kernels`; this driver owns
scheduling and device-model charging so every kernel tier prices
identically.

The returned mask reports, per item, whether the key actually existed —
the boolean the paper uses to keep exact per-vertex edge counts.
Intra-batch duplicates of the same (table, key) are collapsed first; only
one occurrence can succeed, matching any hardware serialization.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.kernels import get_kernels
from repro.kernels.reference import STATUS_ADVANCE, STATUS_HIT
from repro.slabhash.constants import KEY_DTYPE, NULL_SLAB
from repro.util.groupby import first_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["delete_batch"]


def delete_batch(arena, table_ids, keys) -> np.ndarray:
    """Delete (table, key) items; return per-item "existed and was removed"."""
    table_ids = as_int_array(table_ids, "table_ids")
    keys = as_int_array(keys, "keys")
    n = check_equal_length(("table_ids", table_ids), ("keys", keys))
    if n == 0:
        return np.empty(0, dtype=bool)
    check_in_range(table_ids, 0, arena.num_tables, "table_ids")

    counters = get_counters()
    counters.kernel_launches += 1
    pool = arena.pool
    kern = get_kernels()

    composite = (table_ids.astype(np.int64) << 32) | keys.astype(np.int64)
    keep = first_occurrence_mask(composite)
    live_idx = np.flatnonzero(keep)
    t = table_ids[live_idx]
    keys_live = keys[live_idx]
    k = keys_live.astype(KEY_DTYPE)

    removed = np.zeros(n, dtype=bool)

    # Items aimed at never-created tables trivially miss.
    exists = arena.table_base[t] != NULL_SLAB
    active = np.flatnonzero(exists)
    if active.size == 0:
        return removed
    cur = np.full(live_idx.shape[0], NULL_SLAB, dtype=np.int64)
    cur[active] = arena.bucket_heads(t[active], keys_live[active])
    pending = active.astype(np.int64)

    while pending.size:
        counters.probe_rounds += 1
        cur_p = cur[pending]
        status = kern.delete_round(pool.keys, cur_p, k[pending])
        counters.slab_reads += int(pending.size)

        found = np.flatnonzero(status == STATUS_HIT)
        if found.size:
            counters.slab_writes += int(found.size)
            removed[live_idx[pending[found]]] = True

        # STATUS_DONE items hit an empty lane: provably absent, walk over.
        cont = np.flatnonzero(status == STATUS_ADVANCE)
        if cont.size == 0:
            break
        nxt = pool.next_slab[cur_p[cont]]
        alive = nxt != NULL_SLAB
        cur[pending[cont[alive]]] = nxt[alive]
        pending = pending[cont[alive]]

    return removed
