"""Layout constants for the slab hash.

A slab is 128 bytes = 32 four-byte words (one warp-coalesced transaction;
see :mod:`repro.gpusim.device`).  The concurrent *map* packs 15 key/value
pairs (30 words) plus a next pointer into a slab; the concurrent *set*
packs 30 keys plus a next pointer (Section IV-A2 of the paper gives the
bucket capacities 15 and 30).

Keys are 32-bit vertex ids.  Two values are reserved:

- ``EMPTY_KEY`` (0xFFFFFFFF): a lane that has never held a key.  Because
  insertions never overwrite tombstones, empty lanes exist only in the tail
  slab of a bucket chain — the kernels rely on this to terminate searches
  early.
- ``TOMBSTONE_KEY`` (0xFFFFFFFE): a deleted key.  Skipped by queries and by
  insertions (Section IV-C2), flushed only by explicit compaction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EMPTY_KEY",
    "TOMBSTONE_KEY",
    "MAX_KEY",
    "SLAB_KV_CAPACITY",
    "SLAB_KEY_CAPACITY",
    "NULL_SLAB",
    "KEY_DTYPE",
    "VALUE_DTYPE",
]

#: Sentinel for a never-used lane.
EMPTY_KEY: int = 0xFFFFFFFF

#: Sentinel for a deleted lane (never overwritten by inserts).
TOMBSTONE_KEY: int = 0xFFFFFFFE

#: Largest key a caller may store (both sentinels excluded).
MAX_KEY: int = TOMBSTONE_KEY - 1

#: Key/value pairs per slab in the concurrent-map variant.
SLAB_KV_CAPACITY: int = 15

#: Keys per slab in the concurrent-set variant.
SLAB_KEY_CAPACITY: int = 30

#: Null "pointer" terminating a bucket chain.
NULL_SLAB: int = -1

#: Storage dtypes (32-bit words, as on the device).
KEY_DTYPE = np.uint32
VALUE_DTYPE = np.uint32
