"""Single-table convenience facades over the multi-table arena.

The graph uses :class:`repro.slabhash.arena.SlabArena` directly (one table
per vertex); these wrappers expose an ordinary hash-table API for
standalone use, tests, and the quickstart example.
"""

from __future__ import annotations

import numpy as np

from repro.slabhash.arena import SlabArena
from repro.slabhash.constants import SLAB_KEY_CAPACITY, SLAB_KV_CAPACITY

__all__ = ["SlabHashMap", "SlabHashSet"]


class _SlabTableBase:
    """Shared implementation: a one-table arena plus scalar sugar."""

    _weighted: bool

    def __init__(
        self,
        expected_size: int = 32,
        load_factor: float = 0.7,
        num_buckets: int | None = None,
        hash_seed: int = 0x5AB0,
    ) -> None:
        lane_cap = SLAB_KV_CAPACITY if self._weighted else SLAB_KEY_CAPACITY
        if num_buckets is None:
            num_buckets = int(SlabArena.buckets_for(expected_size, load_factor, lane_cap)[0])
        self._arena = SlabArena(1, weighted=self._weighted, hash_seed=hash_seed)
        self._arena.create_tables(np.array([0]), np.array([num_buckets]))
        self._count = 0

    # -- batched API ---------------------------------------------------------

    def _tids(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.int64)

    def contains_batch(self, keys) -> np.ndarray:
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        found, _ = self._arena.search(self._tids(keys.shape[0]), keys)
        return found

    def delete_batch(self, keys) -> int:
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        removed = self._arena.delete(self._tids(keys.shape[0]), keys)
        n = int(removed.sum())
        self._count -= n
        return n

    # -- scalar sugar ----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return bool(self.contains_batch([int(key)])[0])

    @property
    def num_buckets(self) -> int:
        return int(self._arena.table_buckets[0])

    @property
    def num_slabs(self) -> int:
        slabs, _, _ = self._arena.table_slabs(np.array([0]))
        return int(slabs.shape[0])

    def flush(self) -> None:
        """Compact away tombstones."""
        self._arena.flush_tombstones(np.array([0]))


class SlabHashMap(_SlabTableBase):
    """Concurrent-map slab hash: 32-bit keys to 32-bit values.

    >>> m = SlabHashMap(expected_size=100)
    >>> m.insert_batch([1, 2, 1], [10, 20, 30])   # replace semantics
    2
    >>> m.get(1)
    30
    """

    _weighted = True

    def insert_batch(self, keys, values) -> int:
        """Insert/replace; returns the number of *new* keys added."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        values = np.atleast_1d(np.asarray(values, dtype=np.int64))
        added = self._arena.insert(self._tids(keys.shape[0]), keys, values)
        n = int(added.sum())
        self._count += n
        return n

    def get_batch(self, keys) -> tuple[np.ndarray, np.ndarray]:
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        return self._arena.search(self._tids(keys.shape[0]), keys)

    def get(self, key: int, default=None):
        found, values = self.get_batch([int(key)])
        return int(values[0]) if found[0] else default

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All live (keys, values), unordered."""
        _, keys, values = self._arena.iterate(np.array([0]))
        return keys, values


class SlabHashSet(_SlabTableBase):
    """Concurrent-set slab hash: 32-bit keys, no values.

    >>> s = SlabHashSet(expected_size=100)
    >>> s.insert_batch([5, 6, 5])
    2
    >>> 5 in s
    True
    """

    _weighted = False

    def insert_batch(self, keys) -> int:
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        added = self._arena.insert(self._tids(keys.shape[0]), keys)
        n = int(added.sum())
        self._count += n
        return n

    def items(self) -> np.ndarray:
        """All live keys, unordered."""
        _, keys, _ = self._arena.iterate(np.array([0]))
        return keys
