"""Load-factor / chain-length / memory metrics for slab-hash tables.

These feed the paper's Figure 2 (insertion rate, memory utilization, and
memory usage versus average chain length) and Figure 3 (query performance
versus chain length), plus the rehashing-trigger heuristic mentioned in
Section III ("maintain low-cost metrics per vertex to determine the
chain-length and periodically perform rehashing").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slabhash.constants import EMPTY_KEY, KEY_DTYPE, TOMBSTONE_KEY
from repro.util.groupby import segmented_sum
from repro.util.validation import as_int_array

__all__ = ["ArenaStats", "compute_stats", "chain_lengths", "live_counts"]


@dataclass(frozen=True)
class ArenaStats:
    """Aggregate metrics over a set of tables.

    Attributes
    ----------
    num_tables:
        Tables measured.
    num_slabs:
        Total slabs owned (base + overflow).
    num_buckets:
        Total bucket chains.
    live_entries:
        Keys currently stored (excludes tombstones).
    tombstones:
        Tombstoned lanes.
    mean_chain_length:
        Average slabs per bucket chain (physical chain length).
    mean_bucket_load:
        ``live_entries / (num_buckets * lane_capacity)`` — the average
        bucket's data expressed in slabs, the paper's "average chain
        length" x-axis in Figures 2 and 3 (≈ the sizing load factor).
    memory_utilization:
        ``live_entries / total lane capacity`` — Figure 2b's y-axis.
    memory_bytes:
        Bytes held in slabs (128 B each) — Figure 2c's y-axis.
    """

    num_tables: int
    num_slabs: int
    num_buckets: int
    live_entries: int
    tombstones: int
    mean_chain_length: float
    mean_bucket_load: float
    memory_utilization: float
    memory_bytes: int


def compute_stats(arena, table_ids) -> ArenaStats:
    """Measure the given tables (vectorized, read-only)."""
    table_ids = as_int_array(table_ids, "table_ids")
    slab_ids, _, _ = arena.table_slabs(table_ids)
    num_slabs = int(slab_ids.shape[0])
    num_buckets = int(arena.table_buckets[table_ids].sum())
    if num_slabs == 0:
        return ArenaStats(int(table_ids.size), 0, num_buckets, 0, 0, 0.0, 0.0, 0.0, 0)
    rows = arena.pool.keys[slab_ids]
    live = int(((rows != KEY_DTYPE(EMPTY_KEY)) & (rows != KEY_DTYPE(TOMBSTONE_KEY))).sum())
    tombs = int((rows == KEY_DTYPE(TOMBSTONE_KEY)).sum())
    lane_total = num_slabs * arena.pool.lane_capacity
    return ArenaStats(
        num_tables=int(table_ids.size),
        num_slabs=num_slabs,
        num_buckets=num_buckets,
        live_entries=live,
        tombstones=tombs,
        mean_chain_length=num_slabs / max(num_buckets, 1),
        mean_bucket_load=live / max(num_buckets * arena.pool.lane_capacity, 1),
        memory_utilization=live / max(lane_total, 1),
        memory_bytes=num_slabs * 128,
    )


def chain_lengths(arena, table_ids) -> np.ndarray:
    """Slabs per table (summed over its buckets), aligned with table_ids.

    The per-vertex "chain length" metric a rehashing policy watches.
    """
    table_ids = as_int_array(table_ids, "table_ids")
    _, owner_pos, _ = arena.table_slabs(table_ids)
    counts = np.bincount(owner_pos, minlength=table_ids.size)
    return counts.astype(np.int64)


def live_counts(arena, table_ids) -> np.ndarray:
    """Live keys per table, aligned with table_ids."""
    table_ids = as_int_array(table_ids, "table_ids")
    owners, keys, _ = arena.iterate(table_ids)
    if keys.size == 0:
        return np.zeros(table_ids.size, dtype=np.int64)
    return segmented_sum(np.ones(keys.shape[0], dtype=np.int64), owners, int(table_ids.size))
