"""Chain walkers: table iteration, clearing, and tombstone compaction.

``iterate_tables`` is the vectorized form of the paper's *vertex adjacency
list iterator* (Section IV-B): it walks every bucket chain of every
requested table one slab-level at a time, so a table whose chains have
length L costs exactly L gather rounds — the same traffic the warp
iterator generates on the device.  The walk itself is dispatched through
:mod:`repro.kernels` (``walk_chains``); this driver charges the device
model from the tier-independent level/read totals the kernel reports.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.kernels import get_kernels
from repro.slabhash.constants import EMPTY_KEY, KEY_DTYPE, NULL_SLAB, TOMBSTONE_KEY
from repro.util.validation import as_int_array, check_in_range

__all__ = ["collect_table_slabs", "iterate_tables", "clear_tables", "flush_tombstones"]


def collect_table_slabs(arena, table_ids):
    """All slab ids owned by the given tables.

    Returns
    -------
    slab_ids : np.ndarray
        Every slab (base + overflow) reachable from the tables' buckets.
    owner_pos : np.ndarray
        ``owner_pos[i]`` is the position *within table_ids* owning
        ``slab_ids[i]``.
    is_base : np.ndarray of bool
        True for base slabs (never freed), False for overflow slabs.
    """
    table_ids = as_int_array(table_ids, "table_ids")
    if table_ids.size:
        check_in_range(table_ids, 0, arena.num_tables, "table_ids")
    exists = arena.table_base[table_ids] != NULL_SLAB
    pos = np.flatnonzero(exists)
    if pos.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=bool)

    bases = arena.table_base[table_ids[pos]]
    buckets = arena.table_buckets[table_ids[pos]]
    # Expand each table's contiguous base range [base, base+buckets).
    owner0 = np.repeat(pos, buckets)
    starts = np.repeat(bases, buckets)
    within = _ragged_arange(buckets)
    head_slabs = starts + within

    counters = get_counters()
    slabs, head_idx, is_base, levels, reads = get_kernels().walk_chains(
        arena.pool.next_slab, head_slabs
    )
    counters.probe_rounds += int(levels)
    counters.slab_reads += int(reads)
    return slabs, owner0[head_idx], is_base


def _ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(l)`` for each l in lengths, vectorized."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seq = np.arange(total, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return seq - np.repeat(offsets, lengths)


def iterate_tables(arena, table_ids):
    """Gather all live entries of the given tables.

    Returns
    -------
    owner_pos : np.ndarray
        Position within ``table_ids`` of each entry's table.
    keys : np.ndarray (int64)
        Live keys (tombstones and empties excluded).
    values : np.ndarray (int64)
        Parallel values (zeros for set arenas).
    """
    table_ids = as_int_array(table_ids, "table_ids")
    slab_ids, owner_pos, _ = collect_table_slabs(arena, table_ids)
    if slab_ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    pool = arena.pool
    counters = get_counters()
    rows = pool.keys[slab_ids]
    counters.slab_reads += int(slab_ids.size)
    live = (rows != KEY_DTYPE(EMPTY_KEY)) & (rows != KEY_DTYPE(TOMBSTONE_KEY))
    entry_owner = np.repeat(owner_pos, pool.lane_capacity).reshape(rows.shape)
    keys = rows[live].astype(np.int64)
    owners = entry_owner[live]
    if pool.weighted:
        values = pool.values[slab_ids][live].astype(np.int64)
    else:
        values = np.zeros(keys.shape[0], dtype=np.int64)
    return owners, keys, values


def clear_tables(arena, table_ids) -> None:
    """Empty the given tables; free overflow slabs, keep base slabs.

    Implements the memory side of vertex deletion (Algorithm 2, lines
    18-20 plus the edge-count reset handled by the caller).
    """
    table_ids = as_int_array(table_ids, "table_ids")
    slab_ids, _, is_base = collect_table_slabs(arena, table_ids)
    if slab_ids.size == 0:
        return
    pool = arena.pool
    counters = get_counters()
    base = slab_ids[is_base]
    pool.keys[base] = KEY_DTYPE(EMPTY_KEY)
    pool.next_slab[base] = NULL_SLAB
    if pool.weighted:
        pool.values[base] = 0
    counters.slab_writes += int(base.size)
    overflow = slab_ids[~is_base]
    if overflow.size:
        pool.free(overflow)


def flush_tombstones(arena, table_ids) -> None:
    """Compact tables: drop tombstones, repack entries densely.

    The optional cleanup pass the paper mentions for reclaiming
    tombstone-occupied lanes.  Entries are gathered, the tables cleared
    (overflow slabs returned to the allocator), and the live entries
    reinserted — restoring the empties-only-at-tail invariant by
    construction.
    """
    table_ids = as_int_array(table_ids, "table_ids")
    owners, keys, values = iterate_tables(arena, table_ids)
    clear_tables(arena, table_ids)
    if keys.size == 0:
        return
    arena.insert(table_ids[owners], keys, values if arena.pool.weighted else None)
