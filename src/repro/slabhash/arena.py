"""Slab storage pool and the multi-table slab-hash arena.

Layout (structure-of-arrays; one row per slab):

- ``keys``   — ``(capacity, Bc)`` uint32 lane matrix (``Bc`` = 15 for the
  map variant, 30 for the set variant);
- ``values`` — ``(capacity, 15)`` uint32 lane matrix (map variant only);
- ``next``   — ``(capacity,)`` int64 successor slab index, ``NULL_SLAB``
  terminated.

A SoA layout keeps every kernel a sequence of contiguous gathers/scatters —
the NumPy analogue of coalesced 128-byte transactions (hpc-parallel guide:
prefer views, contiguous access, no per-item Python).

Allocation mirrors SlabAlloc: *base* slabs for a table's buckets are carved
in one contiguous bump allocation (Section IV-A2: "statically allocating
all the memory required for the initial buckets in bulk"), while overflow
slabs come from a free-list allocator and are linked to chain tails.  Only
vertex deletion returns overflow slabs to the free list (Section IV-D2).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.gpusim.memory import GrowableArray
from repro.slabhash.constants import (
    EMPTY_KEY,
    KEY_DTYPE,
    MAX_KEY,
    NULL_SLAB,
    SLAB_KEY_CAPACITY,
    SLAB_KV_CAPACITY,
    VALUE_DTYPE,
)
from repro.util.errors import ValidationError
from repro.util.hashing import UniversalHashFamily
from repro.util.validation import as_int_array, check_in_range

__all__ = ["SlabPool", "SlabArena"]


class SlabPool:
    """Growable slab storage plus a free-list allocator.

    Parameters
    ----------
    weighted:
        If True, build the concurrent-map layout (15 KV pairs per slab and a
        parallel value matrix); otherwise the concurrent-set layout (30 keys
        per slab, no values).
    initial_capacity:
        Number of slabs to preallocate; the pool doubles as needed.
    """

    def __init__(self, weighted: bool, initial_capacity: int = 64) -> None:
        self.weighted = bool(weighted)
        self.lane_capacity = SLAB_KV_CAPACITY if weighted else SLAB_KEY_CAPACITY
        cap = max(int(initial_capacity), 1)
        self._keys = GrowableArray(cap, KEY_DTYPE, width=self.lane_capacity, fill_value=EMPTY_KEY)
        self._next = GrowableArray(cap, np.int64, fill_value=NULL_SLAB)
        self._values = (
            GrowableArray(cap, VALUE_DTYPE, width=self.lane_capacity, fill_value=0)
            if weighted
            else None
        )
        self._bump = 0  # next never-used slab
        self._free = np.empty(0, dtype=np.int64)  # stack of recycled slab ids

    # -- storage views -----------------------------------------------------

    @property
    def keys(self) -> np.ndarray:
        """Full-capacity key lane matrix (rows beyond allocation are junk)."""
        return self._keys.data

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            raise ValidationError("set-variant pool has no values")
        return self._values.data

    @property
    def next_slab(self) -> np.ndarray:
        return self._next.data

    @property
    def num_allocated(self) -> int:
        """Slabs currently owned by tables (bump minus free-list size)."""
        return self._bump - self._free.shape[0]

    @property
    def allocated_bytes(self) -> int:
        """Device bytes consumed by slabs currently owned by tables.

        Each slab is 128 bytes regardless of variant (the set variant packs
        more keys into the same footprint).
        """
        return self.num_allocated * 128

    # -- allocation --------------------------------------------------------

    def allocate(self, n: int) -> np.ndarray:
        """Allocate ``n`` slabs (freshly zeroed) and return their ids.

        Recycled slabs are preferred; the remainder comes from the bump
        pointer.  Each allocation is charged as one simulated atomic
        (SlabAlloc hands out slabs with atomic tickets).
        """
        n = int(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        counters = get_counters()
        counters.slabs_allocated += n
        counters.atomics += n
        from_free = min(n, self._free.shape[0])
        recycled = self._free[self._free.shape[0] - from_free :]
        self._free = self._free[: self._free.shape[0] - from_free]
        fresh_n = n - from_free
        fresh = np.arange(self._bump, self._bump + fresh_n, dtype=np.int64)
        self._bump += fresh_n
        self._ensure(self._bump)
        ids = np.concatenate([recycled, fresh]) if from_free else fresh
        # Reset recycled rows (fresh rows are already in the fill state).
        if from_free:
            self._keys.data[recycled] = EMPTY_KEY
            self._next.data[recycled] = NULL_SLAB
            if self._values is not None:
                self._values.data[recycled] = 0
        return ids

    def allocate_contiguous(self, n: int) -> int:
        """Bulk-allocate ``n`` contiguous slabs; return the first id.

        Used for base slabs: the paper stores a table's buckets at
        consecutive addresses so a single base pointer plus the bucket index
        addresses any bucket.
        """
        n = int(n)
        counters = get_counters()
        counters.slabs_allocated += n
        counters.atomics += 1  # one bulk reservation
        start = self._bump
        self._bump += n
        self._ensure(self._bump)
        return start

    def free(self, ids: np.ndarray) -> None:
        """Return slabs to the free list (no validation of double frees in
        the hot path; tests cover the callers' discipline)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        counters = get_counters()
        counters.slabs_freed += int(ids.size)
        counters.atomics += int(ids.size)
        self._free = np.concatenate([self._free, ids])

    def _ensure(self, needed: int) -> None:
        self._keys.ensure(needed)
        self._next.ensure(needed)
        if self._values is not None:
            self._values.ensure(needed)

    # -- debugging helpers ---------------------------------------------------

    def free_list_size(self) -> int:
        return int(self._free.shape[0])


class SlabArena:
    """Many slab-hash tables sharing one :class:`SlabPool`.

    A table is identified by a dense integer id (for the graph, the vertex
    id).  Per-table metadata:

    - ``table_base[t]``  — first base-slab id (buckets are contiguous), or
      ``NULL_SLAB`` if the table was never created;
    - ``table_buckets[t]`` — bucket count.

    All operations are *batched*: they take parallel arrays of table ids and
    keys and execute in vectorized probe rounds (see
    :mod:`repro.slabhash.insert` etc. for the kernel mechanics).
    """

    def __init__(
        self,
        num_tables: int,
        weighted: bool,
        initial_slab_capacity: int = 64,
        hash_seed: int = 0x5AB0,
    ) -> None:
        if num_tables < 0:
            raise ValidationError("num_tables must be non-negative")
        self.pool = SlabPool(weighted, initial_capacity=initial_slab_capacity)
        self.num_tables = int(num_tables)
        self.table_base = np.full(max(num_tables, 1), NULL_SLAB, dtype=np.int64)[:num_tables]
        self.table_buckets = np.zeros(num_tables, dtype=np.int64)
        self.hash_family = UniversalHashFamily(num_tables, seed=hash_seed)

    # -- table lifecycle -----------------------------------------------------

    def grow_tables(self, new_num_tables: int) -> None:
        """Extend the table-id space, preserving existing tables."""
        if new_num_tables <= self.num_tables:
            return
        extra = new_num_tables - self.num_tables
        self.table_base = np.concatenate(
            [self.table_base, np.full(extra, NULL_SLAB, dtype=np.int64)]
        )
        self.table_buckets = np.concatenate([self.table_buckets, np.zeros(extra, dtype=np.int64)])
        self.hash_family.grow(new_num_tables)
        self.num_tables = int(new_num_tables)

    def create_tables(self, table_ids: np.ndarray, num_buckets: np.ndarray) -> None:
        """Create tables with the given bucket counts (bulk base allocation).

        Base slabs for *all* requested tables are carved from one contiguous
        reservation — the paper's bulk static allocation that avoids
        per-table ``cudaMalloc`` calls.
        """
        table_ids = as_int_array(table_ids, "table_ids")
        num_buckets = as_int_array(num_buckets, "num_buckets")
        if table_ids.shape != num_buckets.shape:
            raise ValidationError("table_ids and num_buckets must have equal length")
        if table_ids.size == 0:
            return
        check_in_range(table_ids, 0, self.num_tables, "table_ids")
        if np.any(num_buckets < 1):
            raise ValidationError("every table needs at least one bucket")
        if np.any(self.table_base[table_ids] != NULL_SLAB):
            raise ValidationError("a requested table already exists")
        total = int(num_buckets.sum())
        start = self.pool.allocate_contiguous(total)
        offsets = np.concatenate([[0], np.cumsum(num_buckets)[:-1]]) + start
        self.table_base[table_ids] = offsets
        self.table_buckets[table_ids] = num_buckets

    def has_table(self, table_ids: np.ndarray) -> np.ndarray:
        table_ids = as_int_array(table_ids, "table_ids")
        return self.table_base[table_ids] != NULL_SLAB

    @staticmethod
    def buckets_for(expected_size, load_factor: float, lane_capacity: int) -> np.ndarray:
        """Bucket count for an expected entry count and load factor.

        ``ceil(|A_u| / (lf * Bc))`` per Section IV-A2, minimum one bucket.
        """
        expected = np.atleast_1d(np.asarray(expected_size, dtype=np.float64))
        buckets = np.ceil(expected / (float(load_factor) * lane_capacity))
        return np.maximum(buckets, 1).astype(np.int64)

    # -- batched kernels (implemented in sibling modules) ---------------------

    def insert(self, table_ids, keys, values=None) -> np.ndarray:
        """Batched insert-with-replace; see :func:`repro.slabhash.insert.insert_batch`."""
        from repro.slabhash.insert import insert_batch

        return insert_batch(self, table_ids, keys, values)

    def delete(self, table_ids, keys) -> np.ndarray:
        """Batched tombstone delete; see :func:`repro.slabhash.delete.delete_batch`."""
        from repro.slabhash.delete import delete_batch

        return delete_batch(self, table_ids, keys)

    def search(self, table_ids, keys):
        """Batched membership probe; see :func:`repro.slabhash.search.search_batch`."""
        from repro.slabhash.search import search_batch

        return search_batch(self, table_ids, keys)

    def iterate(self, table_ids):
        """Gather all live entries of the given tables; see
        :func:`repro.slabhash.iterate.iterate_tables`."""
        from repro.slabhash.iterate import iterate_tables

        return iterate_tables(self, table_ids)

    def clear_tables(self, table_ids) -> None:
        """Empty tables and free their overflow slabs (vertex deletion).

        Base slabs are reset to empty but retained ("statically allocated
        memory is not reclaimed", Section IV-D2); chain slabs go back to the
        allocator.
        """
        from repro.slabhash.iterate import clear_tables

        clear_tables(self, table_ids)

    def flush_tombstones(self, table_ids) -> None:
        """Compact tables in place: drop tombstones, refill densely.

        The paper notes tombstones "can later be completely flushed out of
        the data structure, if required" — this is that optional pass.
        """
        from repro.slabhash.iterate import flush_tombstones

        flush_tombstones(self, table_ids)

    # -- chain geometry (used by kernels and stats) ----------------------------

    def bucket_heads(self, table_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Head slab id for each (table, key) pair."""
        bucket = self.hash_family.bucket(table_ids, keys, self.table_buckets)
        return self.table_base[table_ids] + bucket

    def table_slabs(self, table_ids: np.ndarray):
        """All slab ids belonging to the given tables.

        Returns ``(slab_ids, owner_pos, is_base)`` where ``owner_pos[i]``
        indexes into ``table_ids`` and ``is_base`` marks base slabs.
        """
        from repro.slabhash.iterate import collect_table_slabs

        return collect_table_slabs(self, table_ids)

    # -- scalar reference implementations (the executable specification) ------

    def reference_insert_one(self, table: int, key: int, value: int = 0) -> bool:
        """Chain-walking scalar insert-with-replace; True iff newly added."""
        if key > MAX_KEY:
            raise ValidationError(f"key {key} exceeds MAX_KEY")
        head = int(self.table_base[table])
        if head == NULL_SLAB:
            raise ValidationError(f"table {table} does not exist")
        slab = head + self.hash_family.bucket_single(table, key, int(self.table_buckets[table]))
        pool = self.pool
        while True:
            row = pool.keys[slab]
            hit = np.flatnonzero(row == KEY_DTYPE(key))
            if hit.size:
                if pool.weighted:
                    pool.values[slab, hit[0]] = VALUE_DTYPE(value)
                return False
            empty = np.flatnonzero(row == KEY_DTYPE(EMPTY_KEY))
            if empty.size:
                pool.keys[slab, empty[0]] = KEY_DTYPE(key)
                if pool.weighted:
                    pool.values[slab, empty[0]] = VALUE_DTYPE(value)
                return True
            nxt = int(pool.next_slab[slab])
            if nxt == NULL_SLAB:
                new = int(self.pool.allocate(1)[0])
                pool.next_slab[slab] = new
                nxt = new
            slab = nxt

    def reference_delete_one(self, table: int, key: int) -> bool:
        """Chain-walking scalar tombstone delete; True iff key existed."""
        head = int(self.table_base[table])
        if head == NULL_SLAB:
            return False
        slab = head + self.hash_family.bucket_single(table, key, int(self.table_buckets[table]))
        pool = self.pool
        while slab != NULL_SLAB:
            row = pool.keys[slab]
            hit = np.flatnonzero(row == KEY_DTYPE(key))
            if hit.size:
                pool.keys[slab, hit[0]] = KEY_DTYPE(0xFFFFFFFE)  # TOMBSTONE_KEY
                return True
            if np.any(row == KEY_DTYPE(EMPTY_KEY)):
                return False  # empties only at the tail => key absent
            slab = int(pool.next_slab[slab])
        return False

    def reference_search_one(self, table: int, key: int):
        """Chain-walking scalar search; returns (found, value)."""
        head = int(self.table_base[table])
        if head == NULL_SLAB:
            return False, 0
        slab = head + self.hash_family.bucket_single(table, key, int(self.table_buckets[table]))
        pool = self.pool
        while slab != NULL_SLAB:
            row = pool.keys[slab]
            hit = np.flatnonzero(row == KEY_DTYPE(key))
            if hit.size:
                value = int(pool.values[slab, hit[0]]) if pool.weighted else 0
                return True, value
            if np.any(row == KEY_DTYPE(EMPTY_KEY)):
                return False, 0
            slab = int(pool.next_slab[slab])
        return False, 0
