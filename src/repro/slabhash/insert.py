"""Batched insert-with-replace kernel.

This is the vectorized counterpart of the paper's slab-hash ``replace``
operation as scheduled by Algorithm 1.  One *probe round* of the kernel
corresponds to one warp-synchronous chain step on the device: every pending
item gathers its current slab, checks for its key, and either

1. **replaces** — the key already exists; the value lane is overwritten and
   the item reports "not newly added" (uniqueness is preserved, the most
   recent weight wins);
2. **claims an empty lane** — items targeting the same slab are grouped
   (sort + rank-in-group, the vectorized analogue of the intra-warp
   coalesced group) and the ``r``-th item of a group takes the ``r``-th
   empty lane;
3. **advances** — no key match and not enough empty lanes: the group's first
   unplaced item allocates and links a new tail slab if needed (one
   simulated atomic CAS per chain extension), and the leftovers move to the
   next slab.

Intra-batch duplicates of the same (table, key) are resolved *before* the
walk by keeping the last occurrence — the serialization the paper specifies
("only the most recent edge and its weight will be stored").  Dropped
duplicates report "not newly added", so edge-count accounting stays exact.

Tombstones are treated as occupied (Section IV-C2: faster inserts, empties
only at chain tails), which is what lets searches stop at the first empty
lane.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.slabhash.constants import (
    EMPTY_KEY,
    KEY_DTYPE,
    MAX_KEY,
    NULL_SLAB,
    VALUE_DTYPE,
)
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask, rank_within_group
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["insert_batch"]


def _composite(table_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Pack (table, key) into one int64 for dedup sorts (key < 2**32)."""
    return (table_ids.astype(np.int64) << 32) | keys.astype(np.int64)


def insert_batch(arena, table_ids, keys, values=None) -> np.ndarray:
    """Insert (table, key[, value]) items; return per-item "newly added".

    Parameters
    ----------
    arena:
        A :class:`repro.slabhash.arena.SlabArena`.
    table_ids, keys, values:
        Parallel arrays.  ``values`` is required for weighted (map) arenas
        and ignored for set arenas.

    Returns
    -------
    added : np.ndarray of bool
        ``added[i]`` is True iff item ``i`` created a key that was not
        previously in its table *and* item ``i`` is the batch's surviving
        occurrence of that (table, key).  Summing per table therefore gives
        the exact edge-count delta (popc-of-ballot semantics).
    """
    table_ids = as_int_array(table_ids, "table_ids")
    keys = as_int_array(keys, "keys")
    n = check_equal_length(("table_ids", table_ids), ("keys", keys))
    if values is None:
        values = np.zeros(n, dtype=np.int64)
    else:
        values = as_int_array(values, "values")
        check_equal_length(("keys", keys), ("values", values))
    if n == 0:
        return np.empty(0, dtype=bool)
    check_in_range(table_ids, 0, arena.num_tables, "table_ids")
    check_in_range(keys, 0, MAX_KEY + 1, "keys")
    if np.any(arena.table_base[table_ids] == NULL_SLAB):
        raise ValidationError("insert targets a table that was never created")

    counters = get_counters()
    counters.kernel_launches += 1
    pool = arena.pool
    weighted = pool.weighted

    # Intra-batch replace semantics: keep the last occurrence per (table, key).
    keep = last_occurrence_mask(_composite(table_ids, keys))
    live_idx = np.flatnonzero(keep)
    t = table_ids[live_idx]
    keys_live = keys[live_idx]
    k = keys_live.astype(KEY_DTYPE)
    v = values[live_idx].astype(VALUE_DTYPE)

    cur = arena.bucket_heads(t, keys_live)
    added = np.zeros(n, dtype=bool)
    pending = np.arange(live_idx.shape[0], dtype=np.int64)

    while pending.size:
        counters.probe_rounds += 1
        cur_p = cur[pending]
        rows = pool.keys[cur_p]  # (m, Bc) gather = m slab reads
        counters.slab_reads += int(pending.size)

        hit = rows == k[pending][:, None]
        hit_any = hit.any(axis=1)

        # (1) replace existing keys (value update only; not "added").
        if hit_any.any():
            repl = np.flatnonzero(hit_any)
            if weighted:
                lanes = hit[repl].argmax(axis=1)
                pool.values[cur_p[repl], lanes] = v[pending[repl]]
                counters.slab_writes += int(repl.size)

        rest = np.flatnonzero(~hit_any)
        if rest.size == 0:
            break
        # One stable sort per round, over the not-yet-placed remainder only
        # (placed/replaced items never re-enter the sort).
        rest_slabs = cur_p[rest]
        order = np.argsort(rest_slabs, kind="stable")
        rest = rest[order]
        rest_slabs = rest_slabs[order]
        rank = rank_within_group(rest_slabs)

        # Reuse this round's gathered rows for the empty-lane scan instead
        # of re-reading the pool.
        empty = rows[rest] == KEY_DTYPE(EMPTY_KEY)  # (r, Bc)
        n_empty = empty.sum(axis=1)
        fits = rank < n_empty

        # (2) claim the rank-th empty lane of the shared slab.  The cumsum
        # lane selection runs only over the rows that actually fit.
        if fits.any():
            empty_f = empty[fits]
            csum = np.cumsum(empty_f, axis=1)
            lane_match = empty_f & (csum == (rank[fits] + 1)[:, None])
            lanes = lane_match.argmax(axis=1)
            fit_rows = rest[fits]
            fit_slabs = rest_slabs[fits]
            pool.keys[fit_slabs, lanes] = k[pending[fit_rows]]
            if weighted:
                pool.values[fit_slabs, lanes] = v[pending[fit_rows]]
            counters.slab_writes += int(fit_rows.size)
            added[live_idx[pending[fit_rows]]] = True

        # (3) advance overflow items, extending chains where necessary.
        over = rest[~fits]
        if over.size:
            over_slabs = rest_slabs[~fits]
            nxt = pool.next_slab[over_slabs]
            need = nxt == NULL_SLAB
            if need.any():
                tails = np.unique(over_slabs[need])
                new_ids = pool.allocate(tails.size)
                pool.next_slab[tails] = new_ids
                counters.slab_writes += int(tails.size)  # link writes
                # tails is sorted, so each needing item finds its freshly
                # linked slab by position — no second next_slab gather.
                nxt[need] = new_ids[np.searchsorted(tails, over_slabs[need])]
            cur[pending[over]] = nxt
        pending = pending[over] if over.size else pending[:0]

    return added
