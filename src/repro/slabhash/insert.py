"""Batched insert-with-replace kernel driver.

This is the vectorized counterpart of the paper's slab-hash ``replace``
operation as scheduled by Algorithm 1.  One *probe round* corresponds to
one warp-synchronous chain step on the device: every pending item gathers
its current slab, checks for its key, and either

1. **replaces** — the key already exists; the value lane is overwritten and
   the item reports "not newly added" (uniqueness is preserved, the most
   recent weight wins);
2. **claims an empty lane** — items targeting the same slab cooperate (the
   vectorized analogue of the intra-warp coalesced group) and the ``r``-th
   unplaced item of a group takes the ``r``-th empty lane;
3. **advances** — no key match and not enough empty lanes: the group's first
   unplaced item allocates and links a new tail slab if needed (one
   simulated atomic CAS per chain extension), and the leftovers move to the
   next slab.

The per-round work is dispatched through :mod:`repro.kernels` (reference
NumPy tier or the optional jit tier); this driver owns scheduling, chain
extension, and all device-model charging, so both tiers charge the
:mod:`repro.gpusim` counters identically.

Group ordering is **hoisted out of the round loop**: one stable sort by
head slab up front, and group contiguity is maintained for free across
rounds — every member of a group advances to the same next slab, chains
from different buckets never share slabs (groups can shrink but never
merge or split), and mask-filtering preserves order.  The pre-refactor
per-round re-sort is kept behind ``_resort_every_round`` for the
equivalence regression test and the kernel bench.

Intra-batch duplicates of the same (table, key) are resolved *before* the
walk by keeping the last occurrence — the serialization the paper specifies
("only the most recent edge and its weight will be stored").  Dropped
duplicates report "not newly added", so edge-count accounting stays exact.

Tombstones are treated as occupied (Section IV-C2: faster inserts, empties
only at chain tails), which is what lets searches stop at the first empty
lane.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.kernels import get_kernels
from repro.kernels.reference import STATUS_ADVANCE, STATUS_DONE, STATUS_HIT
from repro.slabhash.constants import (
    EMPTY_KEY,
    KEY_DTYPE,
    MAX_KEY,
    NULL_SLAB,
    VALUE_DTYPE,
)
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["insert_batch"]

# Re-exported for the empty-lane invariant tests (pre-refactor surface).
_ = EMPTY_KEY


def _composite(table_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Pack (table, key) into one int64 for dedup sorts (key < 2**32)."""
    return (table_ids.astype(np.int64) << 32) | keys.astype(np.int64)


def insert_batch(arena, table_ids, keys, values=None, _resort_every_round=False) -> np.ndarray:
    """Insert (table, key[, value]) items; return per-item "newly added".

    Parameters
    ----------
    arena:
        A :class:`repro.slabhash.arena.SlabArena`.
    table_ids, keys, values:
        Parallel arrays.  ``values`` is required for weighted (map) arenas
        and ignored for set arenas.
    _resort_every_round:
        Re-sort the pending set by slab id each round (the pre-refactor
        schedule).  Bit-identical results and counters — maintained group
        contiguity makes the re-sort a no-op permutation of groups — kept
        only so tests and the kernel bench can prove/price exactly that.

    Returns
    -------
    added : np.ndarray of bool
        ``added[i]`` is True iff item ``i`` created a key that was not
        previously in its table *and* item ``i`` is the batch's surviving
        occurrence of that (table, key).  Summing per table therefore gives
        the exact edge-count delta (popc-of-ballot semantics).
    """
    table_ids = as_int_array(table_ids, "table_ids")
    keys = as_int_array(keys, "keys")
    n = check_equal_length(("table_ids", table_ids), ("keys", keys))
    if values is None:
        values = np.zeros(n, dtype=np.int64)
    else:
        values = as_int_array(values, "values")
        check_equal_length(("keys", keys), ("values", values))
    if n == 0:
        return np.empty(0, dtype=bool)
    check_in_range(table_ids, 0, arena.num_tables, "table_ids")
    check_in_range(keys, 0, MAX_KEY + 1, "keys")
    if np.any(arena.table_base[table_ids] == NULL_SLAB):
        raise ValidationError("insert targets a table that was never created")

    counters = get_counters()
    counters.kernel_launches += 1
    pool = arena.pool
    weighted = pool.weighted
    kern = get_kernels()

    # Intra-batch replace semantics: keep the last occurrence per (table, key).
    keep = last_occurrence_mask(_composite(table_ids, keys))
    live_idx = np.flatnonzero(keep)
    t = table_ids[live_idx]
    keys_live = keys[live_idx]
    k = keys_live.astype(KEY_DTYPE)
    v = values[live_idx].astype(VALUE_DTYPE)

    cur = arena.bucket_heads(t, keys_live)
    added = np.zeros(n, dtype=bool)

    # One stable sort for the whole walk (hoisted out of the round loop):
    # items sharing a slab stay contiguous across rounds because a group
    # advances to one shared next slab and groups never merge.
    pending = np.argsort(cur, kind="stable")

    while pending.size:
        if _resort_every_round:
            pending = pending[np.argsort(cur[pending], kind="stable")]
        counters.probe_rounds += 1
        cur_p = cur[pending]
        if weighted:
            status = kern.insert_round_map(pool.keys, pool.values, cur_p, k[pending], v[pending])
        else:
            status = kern.insert_round_set(pool.keys, cur_p, k[pending])
        counters.slab_reads += int(pending.size)

        placed = pending[status == STATUS_DONE]
        writes = int(placed.size)
        if weighted:
            writes += int(np.count_nonzero(status == STATUS_HIT))
        counters.slab_writes += writes
        if placed.size:
            added[live_idx[placed]] = True

        # Advance overflow items, extending chains where necessary.
        over = pending[status == STATUS_ADVANCE]
        if over.size:
            over_slabs = cur[over]
            nxt = pool.next_slab[over_slabs]
            need = nxt == NULL_SLAB
            if need.any():
                tails = np.unique(over_slabs[need])
                new_ids = pool.allocate(tails.size)
                pool.next_slab[tails] = new_ids
                counters.slab_writes += int(tails.size)  # link writes
                # tails is sorted, so each needing item finds its freshly
                # linked slab by position — no second next_slab gather.
                nxt[need] = new_ids[np.searchsorted(tails, over_slabs[need])]
            cur[over] = nxt
        pending = over

    return added
