"""SlabHash: the GPU hash table underlying the paper's dynamic graph.

A *slab* is one 128-byte memory unit — exactly one coalesced warp
transaction on the simulated device.  A hash table is an array of bucket
chains; each chain is a singly linked list of slabs.  Two variants exist
(Section IV):

- **concurrent map** — 15 key/value pairs per slab (``SLAB_KV_CAPACITY``),
  used when edges carry weights/metadata;
- **concurrent set** — 30 keys per slab (``SLAB_KEY_CAPACITY``), used when
  only destinations matter (e.g. triangle counting).

This subpackage implements a *multi-table arena*: all hash tables of a
graph live in one structure-of-arrays slab pool so batched operations
spanning thousands of per-vertex tables run as single vectorized kernels.
:class:`SlabHashMap` / :class:`SlabHashSet` wrap a one-table arena for
standalone use.
"""

from repro.slabhash.arena import SlabArena, SlabPool
from repro.slabhash.constants import (
    EMPTY_KEY,
    MAX_KEY,
    SLAB_KEY_CAPACITY,
    SLAB_KV_CAPACITY,
    TOMBSTONE_KEY,
)
from repro.slabhash.table import SlabHashMap, SlabHashSet

__all__ = [
    "EMPTY_KEY",
    "MAX_KEY",
    "SLAB_KEY_CAPACITY",
    "SLAB_KV_CAPACITY",
    "SlabArena",
    "SlabHashMap",
    "SlabHashSet",
    "SlabPool",
    "TOMBSTONE_KEY",
]
