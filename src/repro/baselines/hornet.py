"""A Hornet-like dynamic graph (Busato et al., HPEC 2018; Section II-B).

Representation: each vertex's adjacency lives in a single *block* whose
capacity is the smallest power of two holding the list.  Block arrays are
managed by a host-side manager (real Hornet tracks free/used blocks with
B-trees; we keep per-class free lists and charge the same allocator
traffic).  When an insertion overflows a block, the whole adjacency is
copied into the next power-of-two block — the cost that makes Hornet's
incremental build slow on low-variance graphs (Table VI analysis).

Uniqueness: Hornet forbids duplicate edges and enforces this with
*sort-based duplicate checking* on every insertion (the paper measures 45%
of Hornet's bulk-insert time in dedup alone).  We reproduce that: every
insert sorts batch ∪ affected adjacencies and charges
``counters.sorted_elements`` accordingly.

Adjacency order: not maintained (the paper's tests "do not require that
either faimGraph or Hornet maintain a sorted adjacency list");
:meth:`HornetGraph.sorted_adjacency` provides the explicit segmented sort
whose cost Table VIII prices.

Vertex deletion is intentionally absent ("Hornet does not implement vertex
deletion", Section VI-A3).
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import GraphBackend, degree_array, scan_edge_weights
from repro.api.capabilities import Capabilities
from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.gpusim.memory import GrowableArray
from repro.util.errors import ValidationError
from repro.util.groupby import (
    group_starts,
    last_occurrence_mask,
    rank_within_group,
)
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["HornetGraph"]


def _next_pow2(x: np.ndarray) -> np.ndarray:
    """Smallest power of two >= x (elementwise, x >= 1)."""
    x = np.maximum(x, 1).astype(np.int64)
    return np.int64(1) << np.ceil(np.log2(x)).astype(np.int64)


class HornetGraph(GraphBackend):
    """Hornet-like block-per-vertex dynamic graph.

    Parameters
    ----------
    num_vertices:
        Vertex-id capacity (Hornet also over-allocates vertex arrays).
    weighted:
        Store a weight per edge.
    """

    capabilities = Capabilities(weighted=True)

    #: Maintained out-degrees (indexable array, callable per the protocol).
    degree = degree_array()

    def __init__(self, num_vertices: int, weighted: bool = True) -> None:
        if num_vertices < 1:
            raise ValidationError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self.weighted = bool(weighted)
        self.degree = np.zeros(self.num_vertices, dtype=np.int64)
        self.block_off = np.full(self.num_vertices, -1, dtype=np.int64)
        self.block_cap = np.zeros(self.num_vertices, dtype=np.int64)
        self._dst = GrowableArray(1024, np.int64, fill_value=-1)
        self._wt = GrowableArray(1024, np.int64, fill_value=0) if weighted else None
        self._pool_used = 0
        # Host-managed per-size-class free lists (real Hornet: B-trees).
        self._free: dict[int, list[int]] = {}

    # -- block manager ---------------------------------------------------------

    def _alloc_blocks(self, caps: np.ndarray) -> np.ndarray:
        """Allocate one block per requested capacity (each a power of two)."""
        counters = get_counters()
        offs = np.empty(caps.shape[0], dtype=np.int64)
        for cls in np.unique(caps):
            idx = np.flatnonzero(caps == cls)
            free = self._free.get(int(cls), [])
            take = min(len(free), idx.size)
            for j in range(take):
                offs[idx[j]] = free.pop()
            # CPU-side block-manager work (B-tree lookups in real Hornet);
            # this is the dominant Table V cost on high-|V| datasets.
            counters.add("hornet_blocks", int(idx.size))
            remaining = idx.size - take
            if remaining:
                start = self._pool_used
                self._pool_used += int(cls) * remaining
                self._dst.ensure(self._pool_used)
                if self._wt is not None:
                    self._wt.ensure(self._pool_used)
                offs[idx[take:]] = start + np.arange(remaining, dtype=np.int64) * int(cls)
        return offs

    def _free_block(self, off: int, cap: int) -> None:
        self._free.setdefault(int(cap), []).append(int(off))
        get_counters().atomics += 1

    @property
    def allocated_bytes(self) -> int:
        """Bytes in live blocks (8B per slot, plus weights when present)."""
        per_slot = 8 * (2 if self.weighted else 1)
        return int(self.block_cap.sum()) * per_slot

    # -- helpers ------------------------------------------------------------------

    def _gather_adjacency(self, vertices: np.ndarray):
        """Concatenate the adjacency slots of ``vertices``.

        Returns ``(owner_pos, dsts, positions)`` where positions are global
        pool indices (for scatter-back) and owner_pos indexes ``vertices``.
        """
        degs = self.degree[vertices]
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), e.copy()
        owner = np.repeat(np.arange(vertices.shape[0], dtype=np.int64), degs)
        starts = np.repeat(self.block_off[vertices], degs)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(degs)[:-1]]), degs
        )
        pos = starts + offsets
        return owner, self._dst.data[pos], pos

    def _composite(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return (src.astype(np.int64) << 32) | dst.astype(np.int64)

    # -- construction ---------------------------------------------------------------

    def bulk_build(self, coo: COO) -> int:
        """One-shot build: global sort + dedup, then block placement.

        This is the Table V workload; the whole COO goes through a sort
        (Hornet's documented dedup step) before any block is written.
        """
        if int(self.degree.sum()) != 0:
            raise ValidationError("bulk_build requires an empty graph")
        self._bump_version()
        counters = get_counters()
        counters.kernel_launches += 1
        counters.add("host_syncs", 1)
        work = coo.without_self_loops()
        # Build-time sort plus the sort-based duplicate check (the paper
        # measures the dedup pass alone at 45% of Hornet's insertion time).
        counters.sorted_elements += 2 * work.num_edges
        order = np.lexsort((work.dst, work.src))
        s, d = work.src[order], work.dst[order]
        w = work.weights_or_zeros()[order]
        comp = self._composite(s, d)
        keep = np.empty(comp.shape[0], dtype=bool)
        if comp.size:
            keep[-1] = True
            np.not_equal(comp[1:], comp[:-1], out=keep[:-1])  # last wins
        s, d, w = s[keep], d[keep], w[keep]

        degs = np.bincount(s, minlength=self.num_vertices).astype(np.int64)
        verts = np.flatnonzero(degs)
        caps = _next_pow2(degs[verts])
        offs = self._alloc_blocks(caps)
        self.block_off[verts] = offs
        self.block_cap[verts] = caps
        self.degree[:] = degs

        starts = group_starts(s)
        rank = rank_within_group(s)
        pos = self.block_off[s] + rank
        self._dst.data[pos] = d
        if self._wt is not None:
            self._wt.data[pos] = w
        counters.bytes_copied += int(s.size) * 8
        return int(s.size)

    # -- updates ----------------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched insertion with sort-based deduplication.

        Returns the number of genuinely new edges.  Existing duplicates
        update the weight (matching the replace semantics the paper's own
        structure uses, so comparisons are apples-to-apples).
        """
        self._reject_weights_if_unweighted(weights)
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if weights is not None:
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", src), ("weights", weights))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        self._bump_version()
        counters = get_counters()
        counters.kernel_launches += 1
        counters.add("host_syncs", 1)

        keep = src != dst
        src, dst = src[keep], dst[keep]
        weights = weights[keep] if weights is not None else None
        if src.size == 0:
            return 0
        w = weights if weights is not None else np.zeros(src.shape[0], dtype=np.int64)

        # (1) intra-batch dedup: sort the batch (charged).
        comp = self._composite(src, dst)
        counters.sorted_elements += int(comp.size)
        keep = last_occurrence_mask(comp)
        src, dst, w, comp = src[keep], dst[keep], w[keep], comp[keep]

        # (2) cross dedup: sort batch ∪ affected adjacencies (charged) and
        # binary-search each batch edge in the existing set.
        verts = np.unique(src)
        owner, exist_dst, exist_pos = self._gather_adjacency(verts)
        exist_comp = self._composite(verts[owner], exist_dst)
        counters.sorted_elements += int(exist_comp.size) + int(comp.size)
        exist_sorted_order = np.argsort(exist_comp)
        exist_sorted = exist_comp[exist_sorted_order]
        if exist_sorted.size:
            loc = np.searchsorted(exist_sorted, comp)
            safe = np.minimum(loc, exist_sorted.shape[0] - 1)
            present = (loc < exist_sorted.shape[0]) & (exist_sorted[safe] == comp)
        else:
            loc = np.zeros(comp.shape[0], dtype=np.int64)
            present = np.zeros(comp.shape[0], dtype=bool)

        # Weight replacement for already-present edges.
        if self._wt is not None and present.any():
            hit_pos = exist_pos[exist_sorted_order[loc[present]]]
            self._wt.data[hit_pos] = w[present]

        src, dst, w = src[~present], dst[~present], w[~present]
        if src.size == 0:
            return 0

        # (3) grow blocks where the new degree overflows capacity.
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        add_per_vertex = np.bincount(src, minlength=self.num_vertices)
        touched = np.flatnonzero(add_per_vertex)
        new_deg = self.degree[touched] + add_per_vertex[touched]
        need_grow = new_deg > self.block_cap[touched]
        if need_grow.any():
            grow_v = touched[need_grow]
            new_caps = _next_pow2(new_deg[need_grow])
            new_offs = self._alloc_blocks(new_caps)
            # Copy old adjacency into the new blocks ("the entire adjacency
            # list must be copied", Section VI-B2) and release old blocks.
            for v, noff in zip(grow_v.tolist(), new_offs.tolist()):
                deg = int(self.degree[v])
                ooff, ocap = int(self.block_off[v]), int(self.block_cap[v])
                if deg:
                    self._dst.data[noff : noff + deg] = self._dst.data[ooff : ooff + deg]
                    if self._wt is not None:
                        self._wt.data[noff : noff + deg] = self._wt.data[ooff : ooff + deg]
                    counters.bytes_copied += deg * 8
                if ooff != -1 and ocap:
                    self._free_block(ooff, ocap)
            self.block_off[grow_v] = new_offs
            self.block_cap[grow_v] = new_caps

        # (4) append at each vertex's tail.
        rank = rank_within_group(src)
        pos = self.block_off[src] + self.degree[src] + rank
        self._dst.data[pos] = dst
        if self._wt is not None:
            self._wt.data[pos] = w
        self.degree += add_per_vertex
        return int(src.size)

    def delete_edges(self, src, dst) -> int:
        """Batched deletion by mark-and-compact; returns edges removed.

        Deletion needs no cross-duplicate sort (the paper notes deletion
        "is a simple process"); matching is a scan of the affected
        adjacencies, then each list is compacted in place.
        """
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        self._bump_version()
        counters = get_counters()
        counters.kernel_launches += 1
        counters.add("host_syncs", 1)

        comp = np.unique(self._composite(src, dst))
        verts = np.unique(src)
        owner, exist_dst, exist_pos = self._gather_adjacency(verts)
        counters.scanned_elements += int(exist_dst.size)
        exist_comp = self._composite(verts[owner], exist_dst)
        doomed = np.isin(exist_comp, comp)
        removed = int(doomed.sum())
        if removed == 0:
            return 0

        # Compact survivors to the front of each block (stable).
        keep_mask = ~doomed
        surv_owner = owner[keep_mask]
        surv_dst = exist_dst[keep_mask]
        surv_pos_old = exist_pos[keep_mask]
        rank = rank_within_group(surv_owner)  # owners are already grouped
        new_pos = self.block_off[verts[surv_owner]] + rank
        self._dst.data[new_pos] = surv_dst
        if self._wt is not None:
            self._wt.data[new_pos] = self._wt.data[surv_pos_old]
        counters.bytes_copied += int(surv_dst.size) * 8
        self.degree[verts] = np.bincount(surv_owner, minlength=verts.shape[0])
        return removed

    # -- queries -----------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Membership by full scan (adjacency is unsorted) — the O(n) cost
        the paper's introduction highlights for list structures."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        counters = get_counters()
        verts = np.unique(src)
        owner, exist_dst, _ = self._gather_adjacency(verts)
        counters.scanned_elements += int(exist_dst.size)
        exist_comp = self._composite(verts[owner], exist_dst)
        query_comp = self._composite(src, dst)
        return np.isin(query_comp, exist_comp)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """(found, weight) per queried pair — a scan of the affected lists."""

        def gather(verts):
            owner, exist_dst, exist_pos = self._gather_adjacency(verts)
            get_counters().scanned_elements += int(exist_dst.size)

            def weight_at(idx):
                if self._wt is None:
                    return np.zeros(idx.shape[0], dtype=np.int64)
                return self._wt.data[exist_pos[idx]]

            return owner, exist_dst, weight_at

        return scan_edge_weights(self, src, dst, gather)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        v = int(vertex)
        off, deg = int(self.block_off[v]), int(self.degree[v])
        if off == -1 or deg == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        d = self._dst.data[off : off + deg].copy()
        w = (
            self._wt.data[off : off + deg].copy()
            if self._wt is not None
            else np.zeros(deg, dtype=np.int64)
        )
        return d, w

    def export_coo(self) -> COO:
        verts = np.flatnonzero(self.degree)
        owner, dsts, pos = self._gather_adjacency(verts)
        srcs = verts[owner]
        w = self._wt.data[pos] if self._wt is not None else None
        return COO(srcs, dsts, self.num_vertices, weights=None if w is None else w.copy())

    def num_edges(self) -> int:
        return int(self.degree.sum())

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Sort every adjacency list (CUB-style segmented sort, charged) and
        return (row_ptr, col_idx) like a CSR view — Table VIII's cost."""
        from repro.baselines.sorting import segmented_sort_adjacency

        return segmented_sort_adjacency(self)

    def delete_vertices(self, vertex_ids) -> int:
        """Not supported — matching the real system (Section VI-A3)."""
        raise NotImplementedError("Hornet does not implement vertex deletion")
