"""A GPMA-like dynamic graph (Sha et al., VLDB 2017; Section II-B).

GPMA stores the whole edge list — composite keys ``(src << 32) | dst`` —
in a Packed Memory Array: a sorted array with deliberate gaps, organized as
implicit windows over fixed-size *segments*.  Each window level has density
thresholds; an update that pushes a window outside its thresholds triggers
an even redistribution over the smallest enclosing window that is back
within thresholds (GPMA's warp/block/device granularities), doubling the
array when the root overflows.

Batched updates follow the GPMA recipe: the batch is sorted, partitioned by
destination segment, and each segment updated; rebalances escalate up the
window tree.  Sort volume and moved elements are charged to the counters,
which is how the PMA maintenance cost enters the ablation benches.

This structure is *not* part of the paper's measured tables (the paper
discusses it as related work); it exists for the related-work ablation
bench and for API parity.
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import GraphBackend, degree_array
from repro.api.capabilities import Capabilities
from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["GPMAGraph"]

_EMPTY = np.int64(-1)

#: Density thresholds, linearly interpolated from leaf to root.
_LEAF_UPPER, _ROOT_UPPER = 0.92, 0.70
_LEAF_LOWER, _ROOT_LOWER = 0.08, 0.30


class GPMAGraph(GraphBackend):
    """PMA-backed dynamic edge set with per-vertex degree tracking."""

    capabilities = Capabilities(sorted_neighbors=True)

    #: Maintained out-degrees (indexable array, callable per the protocol).
    degree = degree_array()

    def __init__(
        self, num_vertices: int, segment_size: int = 32, weighted: bool = False
    ) -> None:
        if num_vertices < 1:
            raise ValidationError("num_vertices must be positive")
        if segment_size < 4 or segment_size & (segment_size - 1):
            raise ValidationError("segment_size must be a power of two >= 4")
        if weighted:
            raise ValidationError(
                "GPMAGraph stores an unweighted edge set (capability "
                "weighted=False); construct with weighted=False"
            )
        self.num_vertices = int(num_vertices)
        self.segment_size = int(segment_size)
        self._data = np.full(segment_size * 2, _EMPTY, dtype=np.int64)
        self._count = 0
        self.degree = np.zeros(self.num_vertices, dtype=np.int64)
        self.weighted = False  # GPMA here stores the unweighted edge set

    # -- geometry ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self._data.shape[0])

    @property
    def _num_segments(self) -> int:
        return self.capacity // self.segment_size

    @property
    def _height(self) -> int:
        """Window-tree height (root spans all segments)."""
        return int(np.log2(max(self._num_segments, 1)))

    def _upper(self, level: int) -> float:
        h = max(self._height, 1)
        return _LEAF_UPPER + (_ROOT_UPPER - _LEAF_UPPER) * (level / h)

    def _lower(self, level: int) -> float:
        h = max(self._height, 1)
        return _LEAF_LOWER + (_ROOT_LOWER - _LEAF_LOWER) * (level / h)

    # -- internal helpers ---------------------------------------------------------

    def _live(self) -> np.ndarray:
        return self._data[self._data != _EMPTY]

    def _segment_of_live(self) -> tuple[np.ndarray, np.ndarray]:
        """(live keys in order, owning segment per live key)."""
        mask = self._data != _EMPTY
        keys = self._data[mask]
        segs = np.flatnonzero(mask) // self.segment_size
        return keys, segs

    def _redistribute(self, seg_lo: int, seg_hi: int, extra: np.ndarray | None = None) -> None:
        """Evenly respread the live elements of segments [seg_lo, seg_hi)
        (plus ``extra`` sorted new keys) across that window."""
        lo = seg_lo * self.segment_size
        hi = seg_hi * self.segment_size
        window = self._data[lo:hi]
        live = window[window != _EMPTY]
        if extra is not None and extra.size:
            live = np.concatenate([live, extra])
            live.sort()
            get_counters().sorted_elements += int(live.size)
        n = live.shape[0]
        cap = hi - lo
        if n > cap:
            raise ValidationError("redistribute window too small")  # pragma: no cover
        window[:] = _EMPTY
        if n:
            slots = np.floor(np.arange(n, dtype=np.float64) * cap / n).astype(np.int64)
            window[slots] = live
        get_counters().bytes_copied += int(n) * 8

    def _grow_and_rebuild(self, extra: np.ndarray) -> None:
        """Double capacity until the root is under threshold; rebuild."""
        live = self._live()
        merged = np.concatenate([live, extra])
        merged.sort()
        get_counters().sorted_elements += int(merged.size)
        need = merged.shape[0]
        cap = self.capacity
        while need > _ROOT_UPPER * cap:
            cap *= 2
        self._data = np.full(cap, _EMPTY, dtype=np.int64)
        if need:
            slots = np.floor(np.arange(need, dtype=np.float64) * cap / need).astype(np.int64)
            self._data[slots] = merged
        get_counters().bytes_copied += int(need) * 8

    @staticmethod
    def _composite(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return (src.astype(np.int64) << 32) | dst.astype(np.int64)

    # -- construction ------------------------------------------------------------------

    def bulk_build(self, coo: COO) -> int:
        if self._count:
            raise ValidationError("bulk_build requires an empty graph")
        self._bump_version()
        work = coo.without_self_loops().deduplicated()
        keys = np.unique(self._composite(work.src, work.dst))
        get_counters().sorted_elements += int(keys.size)
        cap = self.capacity
        while keys.shape[0] > _ROOT_UPPER * cap:
            cap *= 2
        self._data = np.full(cap, _EMPTY, dtype=np.int64)
        if keys.size:
            slots = np.floor(
                np.arange(keys.shape[0], dtype=np.float64) * cap / keys.shape[0]
            ).astype(np.int64)
            self._data[slots] = keys
        self._count = int(keys.size)
        self.degree = np.bincount(
            (keys >> 32).astype(np.int64), minlength=self.num_vertices
        ).astype(np.int64)
        return int(keys.size)

    # -- updates ------------------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Sorted-batch PMA insertion; returns edges newly added.

        GPMA stores an unweighted edge set: passing weights is an error
        (they used to be dropped silently, corrupting comparisons).
        """
        self._reject_weights_if_unweighted(weights)
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        self._bump_version()
        counters = get_counters()

        keep = src != dst
        comp = np.unique(self._composite(src[keep], dst[keep]))
        counters.sorted_elements += int(comp.size)
        if comp.size == 0:
            return 0

        # Drop already-present keys (binary search over live elements).
        live, seg_of = self._segment_of_live()
        if live.size:
            loc = np.searchsorted(live, comp)
            safe = np.minimum(loc, live.shape[0] - 1)
            fresh = ~((loc < live.shape[0]) & (live[safe] == comp))
        else:
            fresh = np.ones(comp.shape[0], dtype=bool)
        comp = comp[fresh]
        if comp.size == 0:
            return 0

        # Route each new key to its leaf segment via its predecessor.
        if live.size:
            pred = np.searchsorted(live, comp, side="right") - 1
            leaf = np.where(pred >= 0, seg_of[np.maximum(pred, 0)], 0)
        else:
            leaf = np.zeros(comp.shape[0], dtype=np.int64)

        added = int(comp.size)
        per_leaf = np.bincount(leaf, minlength=self._num_segments)
        self._apply_leaf_inserts(comp, leaf, per_leaf)
        self._count += added
        self.degree += np.bincount((comp >> 32).astype(np.int64), minlength=self.num_vertices)
        return added

    def _apply_leaf_inserts(self, keys: np.ndarray, leaf: np.ndarray, per_leaf: np.ndarray):
        """Insert sorted ``keys`` into their leaves, escalating rebalances."""
        seg_size = self.segment_size
        occupancy = np.bincount(
            np.flatnonzero(self._data != _EMPTY) // seg_size,
            minlength=self._num_segments,
        )
        target = occupancy + per_leaf
        order = np.argsort(leaf, kind="stable")
        keys_by_leaf = keys[order]
        starts = np.concatenate([[0], np.cumsum(per_leaf)])

        # Root overflow: rebuild at larger capacity in one device-wide pass.
        if int(target.sum()) > _ROOT_UPPER * self.capacity:
            self._grow_and_rebuild(keys)
            return

        handled = np.zeros(self._num_segments, dtype=bool)
        for seg in np.flatnonzero(per_leaf):
            if handled[seg]:
                continue
            # Find the smallest enclosing window within its threshold.
            lo, hi, level = seg, seg + 1, 0
            while True:
                window_target = int(target[lo:hi].sum())
                cap = (hi - lo) * seg_size
                if window_target <= self._upper(level) * cap or (hi - lo) == self._num_segments:
                    break
                level += 1
                width = hi - lo
                lo = (lo // (2 * width)) * (2 * width)
                hi = lo + 2 * width
                hi = min(hi, self._num_segments)
            # Collect every pending key inside [lo, hi) and redistribute.
            in_window = (leaf >= lo) & (leaf < hi) & ~handled[leaf]
            pending = np.sort(keys[in_window])
            self._redistribute(lo, hi, pending)
            # Refresh occupancy for the window and mark it handled.
            occ = np.bincount(
                np.flatnonzero(self._data[lo * seg_size : hi * seg_size] != _EMPTY) // seg_size,
                minlength=hi - lo,
            )
            occupancy[lo:hi] = occ
            target[lo:hi] = occ
            handled[lo:hi] = True

    def delete_edges(self, src, dst) -> int:
        """Mark-and-rebalance deletion; returns edges removed."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        self._bump_version()
        comp = np.unique(self._composite(src, dst))

        mask = self._data != _EMPTY
        positions = np.flatnonzero(mask)
        live = self._data[positions]
        doomed = np.isin(live, comp)
        removed = int(doomed.sum())
        if removed == 0:
            return 0
        gone = live[doomed]
        self._data[positions[doomed]] = _EMPTY
        self._count -= removed
        self.degree -= np.bincount((gone >> 32).astype(np.int64), minlength=self.num_vertices)

        # Lower-threshold maintenance: one root-level check (device pass).
        if self._count < _ROOT_LOWER * self.capacity and self.capacity > 2 * self.segment_size:
            live_now = self._live()
            cap = self.capacity
            while live_now.shape[0] < _ROOT_LOWER * cap and cap > 2 * self.segment_size:
                cap //= 2
            self._data = np.full(cap, _EMPTY, dtype=np.int64)
            if live_now.size:
                slots = np.floor(
                    np.arange(live_now.shape[0], dtype=np.float64) * cap / live_now.shape[0]
                ).astype(np.int64)
                self._data[slots] = live_now
            get_counters().bytes_copied += int(live_now.size) * 8
        return removed

    # -- queries ---------------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Binary search over the sorted live keys — PMA's query strength."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        comp = self._composite(src, dst)
        live = self._live()
        if live.size == 0:
            return np.zeros(src.shape[0], dtype=bool)
        loc = np.searchsorted(live, comp)
        safe = np.minimum(loc, live.shape[0] - 1)
        return (loc < live.shape[0]) & (live[safe] == comp)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        v = int(vertex)
        live = self._live()
        lo = np.searchsorted(live, np.int64(v) << 32)
        hi = np.searchsorted(live, (np.int64(v) + 1) << 32)
        dsts = (live[lo:hi] & np.int64(0xFFFFFFFF)).astype(np.int64)
        return dsts, np.zeros(dsts.shape[0], dtype=np.int64)

    def export_coo(self) -> COO:
        live = self._live()
        return COO(
            (live >> 32).astype(np.int64),
            (live & np.int64(0xFFFFFFFF)).astype(np.int64),
            self.num_vertices,
        )

    def num_edges(self) -> int:
        return self._count

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """PMA keys are always sorted — a free CSR view."""
        live = self._live()
        srcs = (live >> 32).astype(np.int64)
        col = (live & np.int64(0xFFFFFFFF)).astype(np.int64)
        counts = np.bincount(srcs, minlength=self.num_vertices)
        row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return row_ptr, col

    @property
    def allocated_bytes(self) -> int:
        """Bytes in the PMA array (8 B per slot, gaps included)."""
        return self.capacity * 8

    def density(self) -> float:
        """Live fraction of the PMA array (gap bookkeeping metric)."""
        return self._count / self.capacity
