"""Static Compressed Sparse Row (Section II-A background).

CSR is the memory-efficient-but-frozen end of the design space the paper
positions itself against: O(|V| + |E|) storage, adjacency lists stored
sorted and contiguous, but any structural update requires rebuilding the
whole thing — which :meth:`CSRGraph.rebuild_with_edges` implements
literally so benches can price "CSR as a dynamic structure".
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.validation import as_int_array, check_equal_length

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR built from a COO snapshot (deduplicated, sorted).

    Parameters
    ----------
    coo:
        Input edges; duplicates collapse (last weight wins) and self-loops
        are preserved unless ``drop_self_loops``.
    """

    def __init__(self, coo: COO, drop_self_loops: bool = True) -> None:
        work = coo.without_self_loops() if drop_self_loops else coo
        work = work.deduplicated()
        counters = get_counters()
        counters.sorted_elements += work.num_edges  # build-time sort
        self.num_vertices = work.num_vertices
        self.row_ptr, self.col_idx, self.weights = work.to_csr()

    @property
    def num_edges(self) -> int:
        return int(self.col_idx.shape[0])

    def degree(self, vertex_ids) -> np.ndarray:
        vids = as_int_array(vertex_ids, "vertex_ids")
        return (self.row_ptr[vids + 1] - self.row_ptr[vids]).astype(np.int64)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted destination / weight slices (views, zero-copy)."""
        v = int(vertex)
        if not (0 <= v < self.num_vertices):
            raise ValidationError(f"vertex {v} out of range")
        lo, hi = int(self.row_ptr[v]), int(self.row_ptr[v + 1])
        return self.col_idx[lo:hi], self.weights[lo:hi]

    def edge_exists(self, src, dst) -> np.ndarray:
        """Vectorized membership via binary search in each sorted row."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        lo = self.row_ptr[src]
        hi = self.row_ptr[src + 1]
        # Binary search within [lo, hi) on the global column array: offset
        # the query into each row's span via searchsorted on the full array
        # restricted by the row bounds.
        pos = lo + np.array(
            [
                np.searchsorted(self.col_idx[l:h], d)
                for l, h, d in zip(lo.tolist(), hi.tolist(), dst.tolist())
            ],
            dtype=np.int64,
        )
        valid = pos < hi
        out = np.zeros(src.shape[0], dtype=bool)
        out[valid] = self.col_idx[pos[valid]] == dst[valid]
        return out

    def export_coo(self) -> COO:
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self.row_ptr),
        )
        return COO(src, self.col_idx.copy(), self.num_vertices, weights=self.weights.copy())

    def rebuild_with_edges(self, src, dst, weights=None) -> "CSRGraph":
        """The only way to "update" CSR: rebuild from scratch with the new
        edges appended — the cost the paper's Section II-A calls out."""
        extra = COO(
            as_int_array(src, "src"),
            as_int_array(dst, "dst"),
            self.num_vertices,
            weights=None if weights is None else as_int_array(weights, "weights"),
        )
        base = self.export_coo()
        merged = COO(
            np.concatenate([base.src, extra.src]),
            np.concatenate([base.dst, extra.dst]),
            self.num_vertices,
            weights=np.concatenate([base.weights, extra.weights_or_zeros()]),
        )
        return CSRGraph(merged)

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR rows are already sorted; return (row_ptr, col_idx) views."""
        return self.row_ptr, self.col_idx
