"""A faimGraph-like dynamic graph (Winter et al., SC 2018; Section II-B).

Representation: per-vertex adjacency lists broken into fixed-size 128-byte
*pages* (the paper configures faimGraph's page size to 128 B to match the
slab size), singly linked, kept **dense**: entry ``i`` of a vertex's list
lives at page ``i // P``, lane ``i % P``.  Density is maintained by
hole-filling compaction on deletion (the last element moves into the hole),
which keeps appends O(1) but makes list order unstable.

Uniqueness: the list is unsorted, so duplicate prevention requires scanning
the *entire* list on every insertion — the O(n) cost the paper's
introduction assigns to unsorted lists.  We charge it to
``counters.scanned_elements``.

Memory management is fully "on-GPU": a page free queue recycles pages and a
vertex queue recycles deleted vertex ids (the feature the paper credits
faimGraph with and its own structure lacks).

As the paper observes (Section II-B), with a single bucket our slab-hash
graph degenerates into this structure; keeping faimGraph separate keeps the
deletion semantics (compaction vs. tombstones) and the id-reuse queue
faithful.
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import GraphBackend, degree_array, scan_edge_weights
from repro.api.capabilities import Capabilities
from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.gpusim.memory import GrowableArray
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask, rank_within_group
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["FaimGraph"]

#: Page entry capacities: 30 destinations (SoA, single property) or 15
#: destination/weight pairs (AoS, matching the map-variant slab).
PAGE_CAP_UNWEIGHTED = 30
PAGE_CAP_WEIGHTED = 15


class FaimGraph(GraphBackend):
    """faimGraph-like paged dynamic graph with page/id reuse queues."""

    capabilities = Capabilities(
        weighted=True,
        vertex_dynamic=True,
        vertex_id_reuse=True,
    )

    #: Maintained out-degrees (indexable array, callable per the protocol).
    degree = degree_array()

    def __init__(self, num_vertices: int, weighted: bool = False) -> None:
        if num_vertices < 1:
            raise ValidationError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self.weighted = bool(weighted)
        self.page_cap = PAGE_CAP_WEIGHTED if weighted else PAGE_CAP_UNWEIGHTED
        self.degree = np.zeros(self.num_vertices, dtype=np.int64)
        self.head_page = np.full(self.num_vertices, -1, dtype=np.int64)
        self._dst = GrowableArray(64, np.int64, width=self.page_cap, fill_value=-1)
        self._wt = (
            GrowableArray(64, np.int64, width=self.page_cap, fill_value=0) if weighted else None
        )
        self._next = GrowableArray(64, np.int64, fill_value=-1)
        self._bump = 0
        self._page_queue = np.empty(0, dtype=np.int64)  # recycled pages
        self._vertex_queue: list[int] = []  # recycled vertex ids

    # -- page allocator ----------------------------------------------------------

    def _alloc_pages(self, n: int) -> np.ndarray:
        n = int(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        counters = get_counters()
        counters.slabs_allocated += n
        counters.atomics += n  # queue pops / bump tickets
        take = min(n, self._page_queue.shape[0])
        recycled = self._page_queue[self._page_queue.shape[0] - take :]
        self._page_queue = self._page_queue[: self._page_queue.shape[0] - take]
        fresh = np.arange(self._bump, self._bump + (n - take), dtype=np.int64)
        self._bump += n - take
        self._dst.ensure(self._bump)
        self._next.ensure(self._bump)
        if self._wt is not None:
            self._wt.ensure(self._bump)
        ids = np.concatenate([recycled, fresh]) if take else fresh
        self._dst.data[ids] = -1
        self._next.data[ids] = -1
        return ids

    def _free_pages(self, ids: np.ndarray) -> None:
        if ids.size == 0:
            return
        counters = get_counters()
        counters.slabs_freed += int(ids.size)
        counters.atomics += int(ids.size)
        self._page_queue = np.concatenate([self._page_queue, ids])

    @property
    def allocated_bytes(self) -> int:
        """128 bytes per live page."""
        return (self._bump - self._page_queue.shape[0]) * 128

    # -- chain geometry ------------------------------------------------------------

    def _collect_pages(self, verts: np.ndarray):
        """(owner_pos, page_ids, chain_rank) for all pages of ``verts``."""
        heads = self.head_page[verts]
        alive = heads != -1
        owners = np.flatnonzero(alive)
        frontier = heads[alive]
        all_owner, all_page, all_rank = [], [], []
        counters = get_counters()
        rank = 0
        while frontier.size:
            counters.slab_reads += int(frontier.size)
            all_owner.append(owners)
            all_page.append(frontier)
            all_rank.append(np.full(frontier.shape[0], rank, dtype=np.int64))
            nxt = self._next.data[frontier]
            go = nxt != -1
            owners, frontier = owners[go], nxt[go]
            rank += 1
        if not all_owner:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), e.copy()
        return np.concatenate(all_owner), np.concatenate(all_page), np.concatenate(all_rank)

    def _page_lookup(self, verts: np.ndarray):
        """Dense (num_verts, max_chain) page-id matrix for vectorized
        position->page translation (−1 where the chain is shorter)."""
        owner, page, rank = self._collect_pages(verts)
        max_chain = int(rank.max()) + 1 if rank.size else 0
        lookup = np.full((verts.shape[0], max(max_chain, 1)), -1, dtype=np.int64)
        if rank.size:
            lookup[owner, rank] = page
        return lookup

    def _gather(self, verts: np.ndarray):
        """All live entries of ``verts``.

        Returns ``(owner_pos, dsts, pages, lanes)`` in list-position order
        per vertex (the dense invariant makes positions well-defined).
        """
        degs = self.degree[verts]
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), e.copy(), e.copy()
        owner = np.repeat(np.arange(verts.shape[0], dtype=np.int64), degs)
        pos = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(degs)[:-1]]), degs
        )
        lookup = self._page_lookup(verts)
        pages = lookup[owner, pos // self.page_cap]
        lanes = pos % self.page_cap
        return owner, self._dst.data[pages, lanes], pages, lanes

    def _composite(self, src, dst):
        return (src.astype(np.int64) << 32) | dst.astype(np.int64)

    # -- construction -----------------------------------------------------------------

    def bulk_build(self, coo: COO) -> int:
        """Initialize from a COO snapshot (deduplicated setup path)."""
        if int(self.degree.sum()) != 0:
            raise ValidationError("bulk_build requires an empty graph")
        self._bump_version()
        work = coo.without_self_loops().deduplicated()
        order = np.lexsort((work.dst, work.src))
        s, d = work.src[order], work.dst[order]
        w = work.weights_or_zeros()[order]

        degs = np.bincount(s, minlength=self.num_vertices).astype(np.int64)
        verts = np.flatnonzero(degs)
        pages_per = -(-degs[verts] // self.page_cap)
        total_pages = int(pages_per.sum())
        pages = self._alloc_pages(total_pages)
        # Link chains: consecutive pages of a vertex are consecutive here.
        starts = np.concatenate([[0], np.cumsum(pages_per)[:-1]])
        is_last = np.zeros(total_pages, dtype=bool)
        is_last[np.cumsum(pages_per) - 1] = True
        self._next.data[pages[~is_last]] = pages[np.flatnonzero(~is_last) + 1]
        self.head_page[verts] = pages[starts]
        self.degree[verts] = degs[verts]

        rank = rank_within_group(s)
        page_of_entry = pages[starts[np.searchsorted(verts, s)] + rank // self.page_cap]
        lane = rank % self.page_cap
        self._dst.data[page_of_entry, lane] = d
        if self._wt is not None:
            self._wt.data[page_of_entry, lane] = w
        get_counters().bytes_copied += int(s.size) * 8
        return int(s.size)

    # -- updates --------------------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched insertion with full-scan duplicate prevention."""
        self._reject_weights_if_unweighted(weights)
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if weights is not None:
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", src), ("weights", weights))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        check_in_range(dst, 0, self.num_vertices, "dst")
        self._bump_version()
        counters = get_counters()
        counters.kernel_launches += 1

        keep = src != dst
        src, dst = src[keep], dst[keep]
        weights = weights[keep] if weights is not None else None
        if src.size == 0:
            return 0
        w = weights if weights is not None else np.zeros(src.shape[0], dtype=np.int64)

        comp = self._composite(src, dst)
        keep = last_occurrence_mask(comp)
        src, dst, w, comp = src[keep], dst[keep], w[keep], comp[keep]

        # Full-scan duplicate check over the affected adjacency lists.
        verts = np.unique(src)
        owner, exist_dst, pages, lanes = self._gather(verts)
        counters.scanned_elements += int(exist_dst.size)
        # Each inserted item walks its vertex's page chain to the tail
        # (dependent loads) before it can append — the latency cost that
        # separates faimGraph from the hash structure at equal bandwidth.
        chain_pages = np.maximum(-(-self.degree[src] // self.page_cap), 1)
        counters.add("chain_steps", int(chain_pages.sum()))
        exist_comp = self._composite(verts[owner], exist_dst)
        present = np.isin(comp, exist_comp)
        if self._wt is not None and present.any():
            # Replace weights in place for already-present pairs.
            order = np.argsort(exist_comp)
            loc = np.searchsorted(exist_comp[order], comp[present])
            hit = order[loc]
            self._wt.data[pages[hit], lanes[hit]] = w[present]
        src, dst, w = src[~present], dst[~present], w[~present]
        if src.size == 0:
            return 0

        # Append at list tails, allocating pages for overflow.
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        add = np.bincount(src, minlength=self.num_vertices)
        touched = np.flatnonzero(add)
        old_deg = self.degree[touched]
        new_deg = old_deg + add[touched]
        old_pages = -(-old_deg // self.page_cap)
        new_pages = -(-new_deg // self.page_cap)
        extra = new_pages - old_pages
        grow = np.flatnonzero(extra)
        if grow.size:
            fresh = self._alloc_pages(int(extra[grow].sum()))
            # Link fresh pages onto each growing vertex's chain tail.
            fresh_owner = np.repeat(grow, extra[grow])
            fresh_rank = (
                np.arange(fresh.shape[0], dtype=np.int64)
                - np.repeat(np.concatenate([[0], np.cumsum(extra[grow])[:-1]]), extra[grow])
            )
            lookup = self._page_lookup(touched[grow])
            # Previous tail per growing vertex (or none for empty lists).
            prev_tail_rank = old_pages[grow] - 1
            first_fresh = fresh_rank == 0
            idx_in_grow = np.searchsorted(grow, fresh_owner)
            link_from_old = first_fresh & (prev_tail_rank[idx_in_grow] >= 0)
            if link_from_old.any():
                old_idx = idx_in_grow[link_from_old]
                tails = lookup[old_idx, prev_tail_rank[old_idx]]
                self._next.data[tails] = fresh[link_from_old]
            new_heads = first_fresh & (prev_tail_rank[idx_in_grow] < 0)
            if new_heads.any():
                self.head_page[touched[grow[idx_in_grow[new_heads]]]] = fresh[new_heads]
            chain_cont = ~first_fresh
            if chain_cont.any():
                self._next.data[fresh[np.flatnonzero(chain_cont) - 1]] = fresh[chain_cont]
            counters.slab_writes += int(fresh.size)

        # Positions for the appended entries (chains now include new pages).
        lookup = self._page_lookup(touched)
        rank = rank_within_group(src)
        pos = self.degree[src] + rank
        owner_idx = np.searchsorted(touched, src)
        page_of_entry = lookup[owner_idx, pos // self.page_cap]
        lane = pos % self.page_cap
        self._dst.data[page_of_entry, lane] = dst
        if self._wt is not None:
            self._wt.data[page_of_entry, lane] = w
        counters.slab_writes += int(src.size)
        self.degree += add
        return int(src.size)

    def delete_edges(self, src, dst) -> int:
        """Batched deletion by hole-filling compaction.

        The last elements of each affected list move into the holes (list
        order is not preserved — faimGraph semantics); emptied tail pages
        return to the page queue.
        """
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return 0
        check_in_range(src, 0, self.num_vertices, "src")
        self._bump_version()
        counters = get_counters()
        counters.kernel_launches += 1

        comp = np.unique(self._composite(src, dst))
        verts = np.unique(src)
        owner, exist_dst, pages, lanes = self._gather(verts)
        counters.scanned_elements += int(exist_dst.size)
        chain_pages = np.maximum(-(-self.degree[src] // self.page_cap), 1)
        counters.add("chain_steps", int(chain_pages.sum()))
        exist_comp = self._composite(verts[owner], exist_dst)
        doomed = np.isin(exist_comp, comp)
        removed = int(doomed.sum())
        if removed == 0:
            return 0

        degs = self.degree[verts]
        kill_per = np.bincount(owner[doomed], minlength=verts.shape[0])
        new_deg = degs - kill_per
        total = exist_dst.shape[0]
        pos = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(degs)[:-1]]), degs
        )
        survives_boundary = new_deg[owner]
        holes = doomed & (pos < survives_boundary)
        movers = ~doomed & (pos >= survives_boundary)
        # Pair the k-th hole with the k-th mover within each vertex.
        hole_idx = np.flatnonzero(holes)
        mover_idx = np.flatnonzero(movers)
        # Both index lists are grouped by owner and position-ordered, and
        # per vertex their counts are equal, so positional pairing is valid.
        self._dst.data[pages[hole_idx], lanes[hole_idx]] = exist_dst[mover_idx]
        if self._wt is not None:
            self._wt.data[pages[hole_idx], lanes[hole_idx]] = self._wt.data[
                pages[mover_idx], lanes[mover_idx]
            ]
        counters.slab_writes += int(hole_idx.size)

        # Release emptied tail pages and cut the chains.
        old_pages = -(-degs // self.page_cap)
        keep_pages = -(-new_deg // self.page_cap)
        shrink = np.flatnonzero(old_pages > keep_pages)
        if shrink.size:
            lookup = self._page_lookup(verts[shrink])
            for row, vpos in enumerate(shrink.tolist()):
                kp, op = int(keep_pages[vpos]), int(old_pages[vpos])
                dead = lookup[row, kp:op]
                dead = dead[dead != -1]
                self._free_pages(dead)
                if kp == 0:
                    self.head_page[verts[vpos]] = -1
                else:
                    self._next.data[lookup[row, kp - 1]] = -1
        self.degree[verts] = new_deg
        return removed

    # -- vertex operations -------------------------------------------------------------

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices, erase reverse edges (full scans), recycle pages
        and ids — the Table IV workload.  Undirected semantics."""
        vertex_ids = np.unique(as_int_array(vertex_ids, "vertex_ids"))
        if vertex_ids.size == 0:
            return 0
        check_in_range(vertex_ids, 0, self.num_vertices, "vertex_ids")
        self._bump_version()
        counters = get_counters()
        counters.atomics += int(vertex_ids.size)  # vertex-queue pushes

        owner, nbrs, _, _ = self._gather(vertex_ids)
        removed = 0
        if nbrs.size:
            # Erase v from each neighbour's list; each erase pays the
            # neighbour-list scan inside delete_edges.
            doomed_of_entry = vertex_ids[owner]
            mask = ~np.isin(nbrs, vertex_ids)  # doomed->doomed handled by page free
            if mask.any():
                removed += self.delete_edges(nbrs[mask], doomed_of_entry[mask])

        own = int(self.degree[vertex_ids].sum())
        _, pages, _ = self._collect_pages(vertex_ids)
        self._free_pages(pages)
        self.head_page[vertex_ids] = -1
        self.degree[vertex_ids] = 0
        self._vertex_queue.extend(vertex_ids.tolist())
        return removed + own

    def reusable_vertex_ids(self, n: int) -> np.ndarray:
        """Pop up to ``n`` recycled vertex ids (faimGraph's memory-efficiency
        feature the paper contrasts with its own structure)."""
        take = min(int(n), len(self._vertex_queue))
        out = np.array([self._vertex_queue.pop() for _ in range(take)], dtype=np.int64)
        get_counters().atomics += take
        return out

    # -- queries -------------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        """Membership by full list scan (unsorted pages)."""
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if src.size == 0:
            return np.empty(0, dtype=bool)
        counters = get_counters()
        verts = np.unique(src)
        owner, exist_dst, _, _ = self._gather(verts)
        counters.scanned_elements += int(exist_dst.size)
        exist_comp = self._composite(verts[owner], exist_dst)
        return np.isin(self._composite(src, dst), exist_comp)

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        """(found, weight) per queried pair — a scan of the affected lists."""

        def gather(verts):
            owner, exist_dst, pages, lanes = self._gather(verts)
            get_counters().scanned_elements += int(exist_dst.size)

            def weight_at(idx):
                if self._wt is None:
                    return np.zeros(idx.shape[0], dtype=np.int64)
                return self._wt.data[pages[idx], lanes[idx]]

            return owner, exist_dst, weight_at

        return scan_edge_weights(self, src, dst, gather)

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        v = np.array([int(vertex)], dtype=np.int64)
        _, dsts, pages, lanes = self._gather(v)
        w = (
            self._wt.data[pages, lanes].copy()
            if self._wt is not None and dsts.size
            else np.zeros(dsts.shape[0], dtype=np.int64)
        )
        return dsts.copy(), w

    def export_coo(self) -> COO:
        verts = np.flatnonzero(self.degree)
        owner, dsts, pages, lanes = self._gather(verts)
        w = self._wt.data[pages, lanes] if self._wt is not None and dsts.size else None
        return COO(
            verts[owner],
            dsts,
            self.num_vertices,
            weights=None if w is None else w.copy(),
        )

    def num_edges(self) -> int:
        return int(self.degree.sum())

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Sort adjacency with faimGraph's paged sort (Table VIII cost)."""
        from repro.baselines.sorting import faimgraph_page_sort

        return faimgraph_page_sort(self)
