"""Comparison data structures the paper evaluates against.

- :mod:`repro.baselines.csr` — static Compressed Sparse Row (the
  non-updatable representation the paper contrasts with, and Gunrock's
  native format used in the static triangle-counting comparison);
- :mod:`repro.baselines.hornet` — a Hornet-like structure: per-vertex
  power-of-two blocks, CPU-side block manager, sort-based deduplication on
  insertion (Busato et al., HPEC 2018);
- :mod:`repro.baselines.faimgraph` — a faimGraph-like structure: 128-byte
  page chains, full-scan deduplication, hole-filling compaction deletes,
  page reclamation and vertex-id reuse queues (Winter et al., SC 2018);
- :mod:`repro.baselines.gpma` — a GPMA-like packed-memory-array adjacency
  store with density-threshold rebalancing (Sha et al., VLDB 2017);
- :mod:`repro.baselines.sorting` — the sorted-adjacency maintenance costs
  of Table VIII (CUB-style segmented sort vs. faimGraph's paged sort).

Each structure exposes the common subset of the dynamic-graph API
(``insert_edges`` / ``delete_edges`` / ``bulk_build`` / ``export_coo`` /
``sorted_adjacency``) so the bench harness can drive them uniformly.
"""

from repro.baselines.csr import CSRGraph
from repro.baselines.faimgraph import FaimGraph
from repro.baselines.gpma import GPMAGraph
from repro.baselines.hornet import HornetGraph

__all__ = ["CSRGraph", "FaimGraph", "GPMAGraph", "HornetGraph"]
