"""Sorted-adjacency maintenance costs (Table VIII).

List-based structures need sorted adjacency lists for efficient
intersections (triangle counting), and the paper prices two ways of
getting them:

- **CUB-style segmented sort** (``segmented_sort_csr`` /
  ``segmented_sort_adjacency``): one sort kernel per segment.  We execute
  one NumPy sort per adjacency list, which carries a fixed per-segment
  dispatch overhead — the same regime that makes CUB's segmented sort slow
  on graphs with millions of tiny lists (road networks) and fast on graphs
  whose work concentrates in a few huge lists (hollywood-2009).

- **faimGraph's paged sort** (``faimgraph_page_sort``): the list is sorted
  page-by-page with odd-even merge passes — cheap when every list fits in
  a page or two (road networks: faster than CUB by orders of magnitude in
  Table VIII), quadratic-ish for high-degree vertices (soc-orkut:
  catastrophically slower, again matching Table VIII).

Both paths charge ``counters.sorted_elements`` with the elements they push
through comparators, so the modeled costs are comparable even when
wall-clock noise intrudes.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters

__all__ = [
    "segmented_sort_csr",
    "segmented_sort_adjacency",
    "faimgraph_page_sort",
]


def segmented_sort_csr(row_ptr: np.ndarray, col_idx: np.ndarray) -> np.ndarray:
    """Sort each CSR row independently (CUB segmented-sort model).

    Returns a new sorted column array; ``row_ptr`` is unchanged.
    """
    counters = get_counters()
    out = col_idx.copy()
    num_rows = row_ptr.shape[0] - 1
    counters.kernel_launches += 1
    counters.add("sort_segments", int(num_rows))
    for r in range(num_rows):
        lo, hi = int(row_ptr[r]), int(row_ptr[r + 1])
        if hi - lo > 1:
            seg = out[lo:hi]
            seg.sort()
            counters.sorted_elements += hi - lo
        elif hi - lo == 1:
            counters.sorted_elements += 1
    return out


def segmented_sort_adjacency(graph) -> tuple[np.ndarray, np.ndarray]:
    """Materialize a sorted CSR view of any structure exposing
    ``export_coo`` (used by Hornet, which has no native sort)."""
    coo = graph.export_coo()
    row_ptr, col_idx, _ = coo.to_csr()  # the lexsort is the CSR gather
    # Charge the segmented sort itself (to_csr's lexsort stands in for the
    # gather; the per-segment kernel model is what Table VIII prices).
    col_sorted = segmented_sort_csr(row_ptr, col_idx)
    return row_ptr, col_sorted


def faimgraph_page_sort(graph) -> tuple[np.ndarray, np.ndarray]:
    """faimGraph's paged adjacency sort, modeled at page granularity.

    Each vertex's list is a chain of fixed-size pages.  The sort runs
    odd-even merge passes over adjacent pages: every pass sorts page
    contents and exchanges elements across each adjacent page pair; a list
    of ``p`` pages is fully sorted after ``p`` passes.  Work is therefore
    ``O(d * p)`` per vertex — linear-ish for page-resident lists, quadratic
    in pages for high-degree vertices, reproducing Table VIII's crossover.

    Returns a (row_ptr, col_idx) sorted CSR view.
    """
    counters = get_counters()
    coo = graph.export_coo()
    cap = graph.page_cap
    degs = np.bincount(coo.src, minlength=graph.num_vertices).astype(np.int64)
    # Lay lists out in a (total_pages, cap) matrix padded with +inf.
    pages_per = -(-degs // cap)
    verts = np.flatnonzero(degs)
    total_pages = int(pages_per.sum())
    SENTINEL = np.int64(2**62)
    mat = np.full((max(total_pages, 1), cap), SENTINEL, dtype=np.int64)

    order = np.argsort(coo.src, kind="stable")
    s = coo.src[order]
    d = coo.dst[order]
    pos = np.arange(s.shape[0], dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(degs[verts])[:-1]]), degs[verts]
    )
    page_starts = np.concatenate([[0], np.cumsum(pages_per[verts])[:-1]])
    page_of_entry = page_starts[np.searchsorted(verts, s)] + pos // cap
    mat[page_of_entry, pos % cap] = d

    # Odd-even merge passes.  A pass: sort within pages, then merge each
    # adjacent page pair belonging to the same vertex (alternating parity).
    page_owner = np.repeat(np.searchsorted(verts, verts), pages_per[verts])
    max_pages = int(pages_per.max()) if pages_per.size else 0
    page_rank = np.arange(total_pages, dtype=np.int64) - np.repeat(page_starts, pages_per[verts])
    for pass_idx in range(max(max_pages, 1)):
        mat[:total_pages].sort(axis=1)
        counters.add("faim_sort_elements", total_pages * cap)
        for parity in (0, 1):
            left = np.flatnonzero(
                (page_rank % 2 == parity)
                & (page_rank + 1 < pages_per[verts][page_owner])
            )
            if left.size == 0:
                continue
            right = left + 1
            pair = np.concatenate([mat[left], mat[right]], axis=1)
            pair.sort(axis=1)
            counters.add("faim_sort_elements", int(pair.size))
            mat[left] = pair[:, :cap]
            mat[right] = pair[:, cap:]

    # Read back into CSR.
    row_ptr = np.concatenate([[0], np.cumsum(degs)]).astype(np.int64)
    col_idx = np.empty(int(degs.sum()), dtype=np.int64)
    flat = mat[:total_pages].reshape(-1)
    live = flat < SENTINEL
    col_idx[:] = flat[live]
    return row_ptr, col_idx
